//! In-process integration tests for the serving stack: the [`Service`]
//! API end to end — streaming, admission, deadlines, queue capacity,
//! priority ordering, warm cache waves, and telemetry attachments.
//!
//! All tests run with a reduced-SA `Zoned-ZAC` configuration (the same
//! pattern as `tests/telemetry.rs` at the workspace root) so the suite
//! stays fast; the bit-identity of full-config outputs against direct
//! `BatchRunner` runs is locked by `tests/serve.rs` at the root.

use std::sync::{Arc, Mutex};
use zac_arch::Architecture;
use zac_circuit::qasm::{parse_qasm, to_qasm};
use zac_circuit::{bench_circuits, preprocess};
use zac_core::{Compiler, Zac, ZacConfig};
use zac_serve::{
    AdmissionLimits, CircuitEntry, EntryOutcome, RejectReason, Request, Response, Service,
    ServiceConfig,
};

/// The reduced-SA configuration every test service uses.
fn test_zac_config() -> ZacConfig {
    let mut config = zac_bench::zac_config();
    config.placement.sa_iterations = 60;
    config
}

fn test_service(workers: usize) -> Service {
    Service::new(ServiceConfig { workers, zac_config: test_zac_config(), ..Default::default() })
}

fn entry(n: usize) -> CircuitEntry {
    let circuit = bench_circuits::ghz(n);
    CircuitEntry { name: circuit.name().to_string(), qasm: to_qasm(&circuit) }
}

/// What the service should produce for `entry(n)`: the same QASM
/// round-trip, staged and compiled directly with the same configuration.
fn direct_compile(n: usize) -> zac_core::CompileOutput {
    let e = entry(n);
    let circuit = parse_qasm(&e.qasm, &e.name).expect("test QASM parses");
    let zac = Zac::with_config(Architecture::reference(), test_zac_config());
    Compiler::compile(&zac, &preprocess(&circuit)).expect("direct compile succeeds")
}

fn drain(service: &Service, request: Request) -> Vec<Response> {
    service.submit(request).iter().collect()
}

#[test]
fn streams_every_entry_then_terminates_with_done() {
    let service = test_service(2);
    let sizes = [3usize, 4, 5];
    let responses = drain(
        &service,
        Request::new("batch", "Zoned-ZAC", sizes.iter().map(|&n| entry(n)).collect()),
    );
    assert_eq!(responses.len(), sizes.len() + 1, "one result per entry plus Done");

    let mut seen = [false; 3];
    for response in &responses[..sizes.len()] {
        match response {
            Response::Result { id, entry, name, outcome } => {
                assert_eq!(id, "batch");
                assert!(!seen[*entry], "entry {entry} reported twice");
                seen[*entry] = true;
                assert_eq!(name, &format!("ghz_n{}", sizes[*entry]));
                let out = outcome.output().expect("entry compiles");
                assert!(!out.from_cache);
                assert_eq!(
                    out.semantic_digest(),
                    direct_compile(sizes[*entry]).semantic_digest(),
                    "served output must be semantically identical to a direct compile"
                );
            }
            other => panic!("expected per-entry results first, got {other:?}"),
        }
    }
    match responses.last() {
        Some(Response::Done(done)) => {
            assert_eq!((done.ok, done.rejected, done.failed), (3, 0, 0));
            assert!(
                done.phase_totals.place_ns > 0 && done.phase_totals.schedule_ns > 0,
                "Zoned-ZAC entries carry phase timings: {:?}",
                done.phase_totals
            );
            assert!(done.metrics.is_none(), "telemetry off: no metrics block");
        }
        other => panic!("expected Done, got {other:?}"),
    }
}

#[test]
fn warm_wave_serves_from_cache_and_is_identical_modulo_the_hit_flag() {
    let service = test_service(2);
    let request = || Request::new("wave", "Zoned-ZAC", (3..=6).map(entry).collect());

    let cold: Vec<_> = drain(&service, request());
    let warm: Vec<_> = drain(&service, request());
    let output_of = |responses: &[Response], index: usize| {
        responses
            .iter()
            .find_map(|r| match r {
                Response::Result { entry, outcome, .. } if *entry == index => {
                    Some(outcome.output().expect("entry compiles").clone())
                }
                _ => None,
            })
            .expect("entry reported")
    };

    let stats = service.cache().stats();
    assert_eq!(stats.misses, 4, "cold wave misses once per entry");
    assert_eq!(stats.hits, 4, "warm wave hits once per entry");
    for index in 0..4 {
        let cold_out = output_of(&cold, index);
        let warm_out = output_of(&warm, index);
        assert!(!cold_out.from_cache && warm_out.from_cache);
        // Bit-identical modulo the hit flag: hits preserve the original
        // compile time and phase split, so only `from_cache` differs.
        let mut warm_as_cold = warm_out.clone();
        warm_as_cold.from_cache = false;
        assert_eq!(
            serde_json::to_string(&cold_out).unwrap(),
            serde_json::to_string(&warm_as_cold).unwrap(),
            "entry {index}: warm output must be byte-identical modulo from_cache"
        );
    }
}

#[test]
fn queue_overflow_rejects_the_request_whole() {
    let service = Service::new(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        zac_config: test_zac_config(),
        ..Default::default()
    });

    let responses = drain(&service, Request::new("big", "Zoned-ZAC", (3..=5).map(entry).collect()));
    assert_eq!(responses.len(), 1);
    match &responses[0] {
        Response::Rejected { id, reason } => {
            assert_eq!(id, "big");
            assert_eq!(*reason, RejectReason::QueueFull { depth: 0, cap: 2 });
        }
        other => panic!("expected queue-full rejection, got {other:?}"),
    }
    // The service still works for requests that fit.
    let responses = drain(&service, Request::new("fits", "Zoned-ZAC", vec![entry(3)]));
    assert!(matches!(responses.last(), Some(Response::Done(d)) if d.ok == 1));
}

#[test]
fn deadline_expired_in_queue_rejects_with_the_measured_wait() {
    // One worker, occupied by a slow blocker: the deadline request's entry
    // expires while queued and must be rejected at dequeue, not compiled.
    let service = test_service(1);
    // A batch of distinct circuits keeps the single worker busy long
    // enough (well past 1 ms) for the urgent request's wait to register.
    let blocker_rx =
        service.submit(Request::new("blocker", "Zoned-ZAC", (14..=24).map(entry).collect()));

    let mut request = Request::new("urgent", "Zoned-ZAC", vec![entry(4)]);
    request.deadline_ms = Some(0);
    let responses = drain(&service, request);
    let _: Vec<_> = blocker_rx.iter().collect();

    match &responses[0] {
        Response::Result { outcome: EntryOutcome::Rejected(reason), .. } => match reason {
            RejectReason::DeadlineExpired { deadline_ms: 0, waited_ms } => {
                assert!(*waited_ms > 0, "the measured wait is reported");
            }
            other => panic!("expected DeadlineExpired, got {other:?}"),
        },
        other => panic!("expected a rejected entry, got {other:?}"),
    }
    match responses.last() {
        Some(Response::Done(done)) => {
            assert_eq!((done.ok, done.rejected, done.failed), (0, 1, 0));
        }
        other => panic!("expected Done, got {other:?}"),
    }
}

#[test]
fn higher_priority_requests_overtake_queued_work() {
    let service = Arc::new(test_service(1));
    let order = Arc::new(Mutex::new(Vec::new()));

    // Occupy the single worker so both contenders queue behind it (the
    // multi-entry batch keeps it busy across the contenders' submissions).
    let blocker_rx =
        service.submit(Request::new("blocker", "Zoned-ZAC", (14..=24).map(entry).collect()));

    let mut contenders = Vec::new();
    for (id, priority, n) in [("low", 0, 5), ("high", 10, 6)] {
        let mut request = Request::new(id, "Zoned-ZAC", vec![entry(n)]);
        request.priority = priority;
        let rx = service.submit(request);
        let order = Arc::clone(&order);
        contenders.push(std::thread::spawn(move || {
            for response in rx {
                if let Response::Done(done) = response {
                    order.lock().unwrap().push(done.id);
                }
            }
        }));
    }
    let _: Vec<_> = blocker_rx.iter().collect();
    for contender in contenders {
        contender.join().unwrap();
    }

    assert_eq!(
        *order.lock().unwrap(),
        ["high", "low"],
        "priority 10 overtakes priority 0 submitted earlier"
    );
}

#[test]
fn oversized_entries_reject_individually_while_the_rest_compile() {
    let service = Service::new(ServiceConfig {
        workers: 2,
        zac_config: test_zac_config(),
        limits: AdmissionLimits { max_qubits: Some(8), ..Default::default() },
        ..Default::default()
    });

    let responses =
        drain(&service, Request::new("mixed", "Zoned-ZAC", vec![entry(4), entry(12), entry(6)]));
    let rejected = responses
        .iter()
        .find_map(|r| match r {
            Response::Result {
                entry: 1, name, outcome: EntryOutcome::Rejected(reason), ..
            } => Some((name.clone(), *reason)),
            _ => None,
        })
        .expect("entry 1 is rejected");
    assert_eq!(rejected.0, "ghz_n12");
    assert_eq!(rejected.1, RejectReason::TooLarge { needed: 12, available: 8 });
    match responses.last() {
        Some(Response::Done(done)) => {
            assert_eq!((done.ok, done.rejected, done.failed), (2, 1, 0));
        }
        other => panic!("expected Done, got {other:?}"),
    }
}

#[test]
fn bad_requests_come_back_as_error_responses() {
    let service = test_service(1);

    let responses = drain(&service, Request::new("who", "Quantum-Fantasy", vec![entry(3)]));
    match &responses[0] {
        Response::Error { id, reason } => {
            assert_eq!(id.as_deref(), Some("who"));
            assert!(reason.contains("unknown compiler"), "{reason}");
        }
        other => panic!("expected Error, got {other:?}"),
    }

    // Malformed line: id recovered best-effort when present, None otherwise.
    let responses: Vec<_> = service.submit_line("{\"id\":\"r9\",\"compiler\":42}").iter().collect();
    assert!(
        matches!(&responses[0], Response::Error { id: Some(id), .. } if id == "r9"),
        "{responses:?}"
    );
    let responses: Vec<_> = service.submit_line("not json at all").iter().collect();
    assert!(matches!(&responses[0], Response::Error { id: None, .. }), "{responses:?}");
}

#[test]
fn telemetry_attaches_metrics_delta_and_trace_to_done() {
    zac_telemetry::set_enabled(true);
    let service = test_service(2);
    let mut request = Request::new("traced", "Zoned-ZAC", vec![entry(3), entry(4)]);
    request.trace = true;
    let responses = drain(&service, request);
    zac_telemetry::set_enabled(false);

    match responses.last() {
        Some(Response::Done(done)) => {
            let metrics = done.metrics.as_ref().expect("metrics delta attached");
            let text = serde_json::to_string(metrics).unwrap();
            assert!(text.contains("serve.entry.ok"), "serve counters in the delta: {text}");
            let trace = done.trace.as_ref().expect("trace attached on request");
            assert!(
                serde_json::to_string(trace).unwrap().contains("serve.exec.compile"),
                "compile spans appear in the Chrome trace"
            );
        }
        other => panic!("expected Done, got {other:?}"),
    }
}
