//! Fault-injection tests for the serving stack's resilience layer: panic
//! isolation + worker respawn, the per-compiler circuit breaker, compile
//! deadlines via cooperative cancellation, and priority-aware shedding.
//!
//! Fault plans are **process-global** (`zac_telemetry::fault`), so every
//! test here — armed or not — serializes on [`GATE`]; this file is its own
//! test binary precisely so an armed plan can never leak into the main
//! service suite running in another process.

use std::sync::Mutex;
use zac_circuit::bench_circuits;
use zac_circuit::qasm::to_qasm;
use zac_core::ZacConfig;
use zac_serve::{
    CircuitEntry, EntryError, EntryOutcome, RejectReason, Request, Response, Service, ServiceConfig,
};
use zac_telemetry::{fault, FaultPlan};

/// Serializes every test in this binary: fault plans are process-global.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn test_zac_config() -> ZacConfig {
    let mut config = zac_bench::zac_config();
    config.placement.sa_iterations = 60;
    config
}

fn entry(n: usize) -> CircuitEntry {
    let circuit = bench_circuits::ghz(n);
    CircuitEntry { name: circuit.name().to_string(), qasm: to_qasm(&circuit) }
}

fn drain(service: &Service, request: Request) -> Vec<Response> {
    service.submit(request).iter().collect()
}

/// The entry outcomes of a drained response stream, in entry order.
fn outcomes(responses: &[Response]) -> Vec<(usize, EntryOutcome)> {
    let mut out: Vec<_> = responses
        .iter()
        .filter_map(|r| match r {
            Response::Result { entry, outcome, .. } => Some((*entry, outcome.clone())),
            _ => None,
        })
        .collect();
    out.sort_by_key(|(entry, _)| *entry);
    out
}

#[test]
fn injected_compile_panics_are_isolated_and_the_worker_respawns() {
    let _gate = gate();
    let service = Service::new(ServiceConfig {
        workers: 1,
        zac_config: test_zac_config(),
        ..Default::default()
    });

    fault::arm(FaultPlan::parse("1:serve.exec.compile=panic").expect("plan parses"));
    let responses = drain(&service, Request::new("boom", "Zoned-ZAC", vec![entry(3)]));
    fault::disarm();

    let outcome = &outcomes(&responses)[0].1;
    match outcome {
        EntryOutcome::Failed(EntryError::Panicked { message }) => {
            assert!(message.contains("serve.exec.compile"), "payload names the point: {message}");
        }
        other => panic!("expected a panic failure, got {other:?}"),
    }
    assert!(matches!(responses.last(), Some(Response::Done(d)) if d.failed == 1));
    assert_eq!(service.worker_respawns(), 1, "the supervisor respawned the panicked worker");

    // The respawned worker keeps serving — on the same single-worker pool.
    let responses = drain(&service, Request::new("after", "Zoned-ZAC", vec![entry(3)]));
    assert!(matches!(responses.last(), Some(Response::Done(d)) if d.ok == 1), "{responses:?}");
}

#[test]
fn injected_io_faults_fail_the_entry_with_a_typed_compile_error() {
    let _gate = gate();
    let service = Service::new(ServiceConfig {
        workers: 1,
        zac_config: test_zac_config(),
        ..Default::default()
    });

    fault::arm(FaultPlan::parse("2:serve.exec.compile=io").expect("plan parses"));
    let responses = drain(&service, Request::new("io", "Zoned-ZAC", vec![entry(3)]));
    fault::disarm();

    match &outcomes(&responses)[0].1 {
        EntryOutcome::Failed(EntryError::Compile(reason)) => {
            assert!(reason.contains("injected fault"), "{reason}");
        }
        other => panic!("expected a compile failure, got {other:?}"),
    }
    assert_eq!(service.worker_respawns(), 0, "io faults do not kill the worker");
}

#[test]
fn breaker_opens_after_consecutive_panics_and_recovers_through_a_probe() {
    let _gate = gate();
    let service = Service::new(ServiceConfig {
        workers: 1,
        breaker_threshold: 2,
        breaker_cooldown_ms: 100,
        zac_config: test_zac_config(),
        ..Default::default()
    });

    fault::arm(FaultPlan::parse("3:serve.exec.compile=panic").expect("plan parses"));
    // Two consecutive panics reach the threshold and open the breaker.
    for id in ["p1", "p2"] {
        let responses = drain(&service, Request::new(id, "Zoned-ZAC", vec![entry(3)]));
        assert!(
            matches!(&outcomes(&responses)[0].1, EntryOutcome::Failed(EntryError::Panicked { .. })),
            "{responses:?}"
        );
    }

    // Open: entries are rejected without running (the armed panic plan
    // would otherwise fire — rejection proves the compile never started).
    let responses = drain(&service, Request::new("rejected", "Zoned-ZAC", vec![entry(4)]));
    match &outcomes(&responses)[0].1 {
        EntryOutcome::Rejected(RejectReason::BreakerOpen { failures, cooldown_ms }) => {
            assert_eq!((*failures, *cooldown_ms), (2, 100));
        }
        other => panic!("expected a breaker rejection, got {other:?}"),
    }

    // A half-open probe that still panics re-opens immediately…
    std::thread::sleep(std::time::Duration::from_millis(150));
    let responses = drain(&service, Request::new("probe1", "Zoned-ZAC", vec![entry(3)]));
    assert!(
        matches!(&outcomes(&responses)[0].1, EntryOutcome::Failed(EntryError::Panicked { .. })),
        "the probe is admitted and fails: {responses:?}"
    );
    let responses = drain(&service, Request::new("reopened", "Zoned-ZAC", vec![entry(4)]));
    assert!(
        matches!(
            &outcomes(&responses)[0].1,
            EntryOutcome::Rejected(RejectReason::BreakerOpen { .. })
        ),
        "a failed probe re-opens the breaker: {responses:?}"
    );
    fault::disarm();

    // …and a probe that succeeds closes it for good.
    std::thread::sleep(std::time::Duration::from_millis(150));
    for id in ["probe2", "closed"] {
        let responses = drain(&service, Request::new(id, "Zoned-ZAC", vec![entry(3)]));
        assert!(matches!(responses.last(), Some(Response::Done(d)) if d.ok == 1), "{responses:?}");
    }
}

#[test]
fn half_open_probe_ending_deterministically_closes_the_breaker() {
    let _gate = gate();
    let service = Service::new(ServiceConfig {
        workers: 1,
        breaker_threshold: 2,
        breaker_cooldown_ms: 100,
        zac_config: test_zac_config(),
        ..Default::default()
    });

    // Two consecutive panics open the breaker.
    fault::arm(FaultPlan::parse("5:serve.exec.compile=panic").expect("plan parses"));
    for id in ["p1", "p2"] {
        let responses = drain(&service, Request::new(id, "Zoned-ZAC", vec![entry(3)]));
        assert!(
            matches!(&outcomes(&responses)[0].1, EntryOutcome::Failed(EntryError::Panicked { .. })),
            "{responses:?}"
        );
    }
    fault::disarm();

    // The half-open probe ends in a *deterministic* failure — an injected
    // io fault surfacing as a typed compile error, not a panic or hang.
    std::thread::sleep(std::time::Duration::from_millis(150));
    fault::arm(FaultPlan::parse("5:serve.exec.compile=io").expect("plan parses"));
    let responses = drain(&service, Request::new("probe", "Zoned-ZAC", vec![entry(3)]));
    fault::disarm();
    assert!(
        matches!(&outcomes(&responses)[0].1, EntryOutcome::Failed(EntryError::Compile(_))),
        "the probe is admitted and fails deterministically: {responses:?}"
    );

    // The compiler answered, so the probe closes the breaker: the next
    // entry is admitted immediately — no cooldown, no breaker_open. (This
    // wedged permanently half-open before the deterministic-completion
    // outcomes counted as probe successes.)
    let responses = drain(&service, Request::new("after", "Zoned-ZAC", vec![entry(3)]));
    assert!(
        matches!(responses.last(), Some(Response::Done(d)) if d.ok == 1),
        "a deterministic probe outcome closes the breaker: {responses:?}"
    );
}

#[test]
fn request_deadline_cancellations_do_not_open_the_breaker() {
    let _gate = gate();
    let mut slow = zac_bench::zac_config();
    // Compiles run far past any request deadline unless cancelled (see
    // `compile_deadlines_cancel_runaway_work_cooperatively`). No
    // service-wide budget: every cancel is bound by the request's own.
    slow.placement.sa_iterations = 50_000_000;
    slow.placement.engine = zac_place::PlacementEngine::Exhaustive;
    let service = Service::new(ServiceConfig {
        workers: 1,
        breaker_threshold: 2,
        breaker_cooldown_ms: 60_000,
        zac_config: slow,
        ..Default::default()
    });

    // Threshold-many cancellations, all caused by the requests' own tight
    // deadlines — one impatient client must not trip the breaker.
    for id in ["c1", "c2"] {
        let mut request = Request::new(id, "Zoned-ZAC", vec![entry(8)]);
        request.deadline_ms = Some(5);
        let responses = drain(&service, request);
        assert!(
            matches!(
                &outcomes(&responses)[0].1,
                EntryOutcome::Failed(EntryError::Cancelled { .. })
            ),
            "{responses:?}"
        );
    }

    // A third short-deadline entry is still *admitted* (cancelled by its
    // own deadline, not rejected breaker_open): with the one-hour cooldown
    // an opened breaker could not have recovered here.
    let mut request = Request::new("c3", "Zoned-ZAC", vec![entry(8)]);
    request.deadline_ms = Some(5);
    let responses = drain(&service, request);
    assert!(
        matches!(&outcomes(&responses)[0].1, EntryOutcome::Failed(EntryError::Cancelled { .. })),
        "client-deadline cancels never open the breaker: {responses:?}"
    );
}

#[test]
fn compile_deadlines_cancel_runaway_work_cooperatively() {
    let _gate = gate();
    let mut slow = zac_bench::zac_config();
    // Enough SA iterations that the compile runs for tens of milliseconds —
    // far past the 5 ms budget — unless the watchdog's cancellation lands.
    // The engine is pinned: only the exhaustive engine always runs the full
    // budget (windowed caps iterations, so a ZAC_PLACER=windowed run would
    // finish before the deadline and see nothing to cancel).
    slow.placement.sa_iterations = 50_000_000;
    slow.placement.engine = zac_place::PlacementEngine::Exhaustive;
    let service = Service::new(ServiceConfig {
        workers: 1,
        compile_deadline_ms: Some(5),
        zac_config: slow,
        ..Default::default()
    });

    let responses = drain(&service, Request::new("runaway", "Zoned-ZAC", vec![entry(8)]));
    match &outcomes(&responses)[0].1 {
        EntryOutcome::Failed(EntryError::Cancelled { after_ms }) => {
            assert!(*after_ms >= 5, "cancelled only after the budget elapsed: {after_ms}ms");
            assert!(*after_ms < 5_000, "cancellation is prompt, not a full compile: {after_ms}ms");
        }
        other => panic!("expected a cancelled entry, got {other:?}"),
    }
    assert!(matches!(responses.last(), Some(Response::Done(d)) if d.failed == 1));
    assert_eq!(service.worker_respawns(), 0, "cancellation unwinds cleanly, no panic");
}

#[test]
fn overload_sheds_strictly_lower_priority_queued_work_first() {
    let _gate = gate();
    let service = Service::new(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        zac_config: test_zac_config(),
        ..Default::default()
    });

    // Pin the single worker on a long injected delay so the queue state is
    // deterministic while we stack up the contenders.
    fault::arm(FaultPlan::parse("4:serve.exec.compile=delay400").expect("plan parses"));
    let blocker_rx = service.submit(Request::new("blocker", "Zoned-ZAC", vec![entry(3)]));
    // Wait until the worker has dequeued the blocker (queue back to empty).
    std::thread::sleep(std::time::Duration::from_millis(100));
    fault::disarm();

    let mut low = Request::new("low", "Zoned-ZAC", vec![entry(4), entry(5)]);
    low.priority = 0;
    let low_rx = service.submit(low);
    let mut high = Request::new("high", "Zoned-ZAC", vec![entry(6), entry(7)]);
    high.priority = 10;
    let high_responses = drain(&service, high);
    let low_responses: Vec<Response> = low_rx.iter().collect();
    let _: Vec<Response> = blocker_rx.iter().collect();

    // Both of low's queued entries were shed to make room for high's.
    for (_, outcome) in outcomes(&low_responses) {
        match outcome {
            EntryOutcome::Rejected(RejectReason::Shed { depth, cap }) => {
                assert_eq!((depth, cap), (2, 2));
            }
            other => panic!("expected shed entries, got {other:?}"),
        }
    }
    assert!(
        matches!(low_responses.last(), Some(Response::Done(d)) if d.rejected == 2),
        "shed entries still terminate their request: {low_responses:?}"
    );
    assert!(
        matches!(high_responses.last(), Some(Response::Done(d)) if d.ok == 2),
        "the high-priority request compiles in the freed slots: {high_responses:?}"
    );
}
