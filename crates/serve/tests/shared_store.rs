//! Multi-process shared-store test: two real `zac-serve` processes pointed
//! at one `ZAC_CACHE_DIR` (the segment-log store). The first process
//! compiles the bundled corpus and exits; the second serves the *same*
//! requests entirely from the shared store — recompiling nothing — and its
//! outputs are semantically bit-identical to direct compiles.
//!
//! This is the fleet topology the segment tier exists for: N workers, one
//! store, cross-process hits with no coordination beyond the directory.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::process::{Command, Stdio};
use zac_arch::Architecture;
use zac_circuit::preprocess;
use zac_circuit::qasm::parse_qasm;
use zac_core::{CompileOutput, Compiler, Zac};
use zac_serve::{CircuitEntry, Request, Response};

/// The bundled corpus: (file stem, QASM source) in sorted file-name order.
fn bundled_corpus() -> Vec<(String, String)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("bundled corpus directory exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x.eq_ignore_ascii_case("qasm")))
        .collect();
    files.sort_by(|a, b| a.file_name().cmp(&b.file_name()));
    files
        .into_iter()
        .map(|path| {
            let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
            let source = std::fs::read_to_string(&path).expect("corpus file readable");
            (stem, source)
        })
        .collect()
}

/// Runs one `zac-serve` process over `cache_dir`, submits the corpus as one
/// request, and returns each entry's output keyed by corpus index.
fn serve_wave(
    cache_dir: &Path,
    corpus: &[(String, String)],
    id: &str,
) -> HashMap<usize, CompileOutput> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_zac-serve"))
        .env("ZAC_SERVE_WORKERS", "2")
        .env("ZAC_CACHE_DIR", cache_dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn zac-serve");

    {
        let mut stdin = child.stdin.take().unwrap();
        let request = Request::new(
            id,
            "Zoned-ZAC",
            corpus
                .iter()
                .map(|(name, qasm)| CircuitEntry { name: name.clone(), qasm: qasm.clone() })
                .collect(),
        );
        writeln!(stdin, "{}", serde_json::to_string(&request).unwrap()).unwrap();
        // stdin drops: the binary drains, seals its active segment, exits.
    }

    let mut outputs = HashMap::new();
    for line in BufReader::new(child.stdout.take().unwrap()).lines() {
        let line = line.expect("read response line");
        match serde_json::from_str::<Response>(&line)
            .unwrap_or_else(|e| panic!("bad line `{line}`: {e}"))
        {
            Response::Result { entry, name, outcome, .. } => {
                let out = outcome.output().unwrap_or_else(|| panic!("{name} compiles"));
                assert!(outputs.insert(entry, out.clone()).is_none(), "{name} reported once");
            }
            Response::Done(done) => {
                assert_eq!((done.ok, done.rejected, done.failed), (corpus.len(), 0, 0), "{id}");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(child.wait().expect("binary exits").success(), "{id} exits 0");
    assert_eq!(outputs.len(), corpus.len(), "{id}: every entry answered");
    outputs
}

#[test]
fn two_services_share_one_store_and_the_second_wave_recompiles_nothing() {
    let corpus = bundled_corpus();
    assert!(corpus.len() >= 10, "the bundled corpus is non-trivial");
    let cache_dir =
        Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("shared-store-{}", std::process::id()));
    std::fs::remove_dir_all(&cache_dir).ok();

    // Wave 1 — a fresh service over an empty store compiles everything.
    let first = serve_wave(&cache_dir, &corpus, "wave-1");
    for (name, _) in &corpus {
        let i = corpus.iter().position(|(n, _)| n == name).unwrap();
        assert!(!first[&i].from_cache, "{name}: the first wave compiles cold");
    }

    // Wave 2 — a *different process* over the same directory serves every
    // entry from the shared segment store: nothing recompiles.
    let second = serve_wave(&cache_dir, &corpus, "wave-2");
    let zac = Zac::with_config(Architecture::reference(), zac_bench::zac_config());
    for (i, (name, qasm)) in corpus.iter().enumerate() {
        let served = &second[&i];
        assert!(served.from_cache, "{name}: second wave must hit the shared store");

        // Semantic payloads are byte-stable across the processes and
        // identical to a direct compile — the store round trip (binary
        // record codec included) cannot drift results.
        let circuit = parse_qasm(qasm, name).expect("corpus QASM parses");
        let direct = Compiler::compile(&zac, &preprocess(&circuit)).expect("direct compile");
        let served_json = served.semantic_json().expect("serialize");
        assert_eq!(served_json, direct.semantic_json().expect("serialize"), "{name}");
        assert_eq!(served_json, first[&i].semantic_json().expect("serialize"), "{name}");
        // Original compile times survive the store; the hit never reports
        // its lookup time as a compile time.
        assert_eq!(served.compile_time, first[&i].compile_time, "{name}");
    }

    std::fs::remove_dir_all(&cache_dir).ok();
}
