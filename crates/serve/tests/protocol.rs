//! End-to-end smoke test of the `zac-serve` binary over its line-delimited
//! JSON protocol — the test CI runs as the service smoke job.
//!
//! Spawns the real binary, submits the bundled QASM corpus
//! (`tests/corpus/` at the workspace root) plus two malformed inputs over
//! stdin, and asserts that *every* stdout line parses against the
//! versioned [`Response`] schema, that every corpus entry's output matches
//! a direct compile's semantic digest, and that the `Done` line carries a
//! telemetry metrics delta. When `ZAC_SERVE_METRICS_OUT` names a path, the
//! per-request metrics blocks are written there as a JSON artifact for CI
//! to upload.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::process::{Command, Stdio};
use zac_arch::Architecture;
use zac_circuit::preprocess;
use zac_circuit::qasm::parse_qasm;
use zac_core::{CompileOutput, Compiler, Zac};
use zac_serve::{CircuitEntry, Request, Response};

/// The bundled corpus: (file stem, QASM source) in sorted file-name order.
fn bundled_corpus() -> Vec<(String, String)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("bundled corpus directory exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x.eq_ignore_ascii_case("qasm")))
        .collect();
    files.sort_by(|a, b| a.file_name().cmp(&b.file_name()));
    files
        .into_iter()
        .map(|path| {
            let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
            let source = std::fs::read_to_string(&path).expect("corpus file readable");
            (stem, source)
        })
        .collect()
}

#[test]
fn binary_serves_the_bundled_corpus_over_the_wire() {
    let corpus = bundled_corpus();
    assert!(corpus.len() >= 10, "the bundled corpus is non-trivial");

    let mut child = Command::new(env!("CARGO_BIN_EXE_zac-serve"))
        .env("ZAC_SERVE_WORKERS", "2")
        .env("ZAC_TELEMETRY", "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn zac-serve");

    {
        let mut stdin = child.stdin.take().unwrap();
        let request = Request::new(
            "corpus",
            "Zoned-ZAC",
            corpus
                .iter()
                .map(|(name, qasm)| CircuitEntry { name: name.clone(), qasm: qasm.clone() })
                .collect(),
        );
        writeln!(stdin, "{}", serde_json::to_string(&request).unwrap()).unwrap();
        writeln!(stdin, "this line is not JSON").unwrap();
        let unknown = Request::new(
            "bad-compiler",
            "Quantum-Fantasy",
            vec![CircuitEntry { name: corpus[0].0.clone(), qasm: corpus[0].1.clone() }],
        );
        writeln!(stdin, "{}", serde_json::to_string(&unknown).unwrap()).unwrap();
        // stdin drops here: the binary drains in-flight work, then exits.
    }

    let mut outputs: HashMap<usize, CompileOutput> = HashMap::new();
    let mut corpus_done = None;
    let mut metrics_artifacts = Vec::new();
    let mut saw_malformed_error = false;
    let mut saw_unknown_compiler_error = false;
    for line in BufReader::new(child.stdout.take().unwrap()).lines() {
        let line = line.expect("read response line");
        // Every line the binary emits must parse against the versioned
        // response schema — this is the wire-compatibility assertion.
        let response: Response =
            serde_json::from_str(&line).unwrap_or_else(|e| panic!("bad line `{line}`: {e}"));
        match response {
            Response::Result { id, entry, name, outcome } => {
                assert_eq!(id, "corpus", "only the corpus request streams results");
                assert_eq!(name, corpus[entry].0);
                let out = outcome.output().unwrap_or_else(|| panic!("{name} compiles"));
                assert!(outputs.insert(entry, out.clone()).is_none(), "{name} reported once");
            }
            Response::Done(done) => {
                assert_eq!(done.id, "corpus");
                assert!(done.metrics.is_some(), "telemetry on: Done carries a metrics delta");
                metrics_artifacts.push(serde_json::from_str::<serde::Value>(&line).unwrap());
                corpus_done = Some(done);
            }
            Response::Error { id, reason } => match id.as_deref() {
                None => {
                    assert!(reason.contains("malformed"), "{reason}");
                    saw_malformed_error = true;
                }
                Some("bad-compiler") => {
                    assert!(reason.contains("unknown compiler"), "{reason}");
                    saw_unknown_compiler_error = true;
                }
                other => panic!("unexpected error for {other:?}: {reason}"),
            },
            Response::Rejected { id, reason } => panic!("unexpected rejection {id}: {reason}"),
        }
    }
    assert!(child.wait().expect("binary exits").success());
    assert!(saw_malformed_error && saw_unknown_compiler_error);

    let done = corpus_done.expect("corpus request terminates with Done");
    assert_eq!((done.ok, done.rejected, done.failed), (corpus.len(), 0, 0));
    assert!(done.phase_totals.place_ns > 0 && done.phase_totals.schedule_ns > 0);

    // Served outputs must match direct compiles of the same sources with
    // the same (paper) configuration, bit-for-bit in semantic content.
    let zac = Zac::with_config(Architecture::reference(), zac_bench::zac_config());
    for (index, (name, qasm)) in corpus.iter().enumerate() {
        let served = &outputs[&index];
        let circuit = parse_qasm(qasm, name).expect("corpus QASM parses");
        let direct = Compiler::compile(&zac, &preprocess(&circuit)).expect("direct compile");
        assert_eq!(
            served.semantic_digest(),
            direct.semantic_digest(),
            "{name}: served output must match a direct compile"
        );
    }

    // CI artifact: the terminal lines (latency, phase totals, metrics
    // delta) of every request, one JSON document.
    if let Ok(path) = std::env::var("ZAC_SERVE_METRICS_OUT") {
        let artifact = serde_json::to_string(&metrics_artifacts).unwrap();
        std::fs::write(&path, artifact).expect("write metrics artifact");
    }
}

#[test]
fn stdin_eof_drains_in_flight_work_and_exits_zero() {
    let corpus = bundled_corpus();
    // One worker plus an injected 100 ms delay per compile guarantees the
    // batch is still genuinely in flight when stdin closes below — the
    // graceful drain, not scheduling luck, is what delivers the responses.
    let mut child = Command::new(env!("CARGO_BIN_EXE_zac-serve"))
        .env("ZAC_SERVE_WORKERS", "1")
        .env("ZAC_FAULTS", "11:serve.exec.compile=delay100")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn zac-serve");

    let total = 4usize;
    {
        let mut stdin = child.stdin.take().unwrap();
        let request = Request::new(
            "drain",
            "Zoned-ZAC",
            (0..total)
                .map(|i| CircuitEntry { name: format!("e{i}"), qasm: corpus[0].1.clone() })
                .collect(),
        );
        writeln!(stdin, "{}", serde_json::to_string(&request).unwrap()).unwrap();
        // stdin drops here, long before the delayed compiles can finish.
    }

    let mut results = 0usize;
    let mut done = None;
    for line in BufReader::new(child.stdout.take().unwrap()).lines() {
        let line = line.expect("read response line");
        match serde_json::from_str::<Response>(&line)
            .unwrap_or_else(|e| panic!("bad line `{line}`: {e}"))
        {
            Response::Result { id, outcome, .. } => {
                assert_eq!(id, "drain");
                assert!(outcome.output().is_some(), "in-flight entries still compile");
                results += 1;
            }
            Response::Done(d) => done = Some(d),
            other => panic!("unexpected response {other:?}"),
        }
    }
    let status = child.wait().expect("binary exits");
    assert!(status.success(), "graceful shutdown exits 0, got {status:?}");
    assert_eq!(results, total, "every in-flight entry got its terminal response");
    let done = done.expect("the request terminates with Done after EOF");
    assert_eq!((done.ok, done.rejected, done.failed), (total, 0, 0));
}
