//! The binder: raw [`Request`] → validated, compiler-resolved work.
//!
//! Binding is everything that can fail *loudly* (a [`Response::Error`](crate::protocol::Response)
//! on the wire) before admission control even looks at the request: QASM
//! parse failures, unknown compiler labels, engine overrides on compilers
//! that have none. Past the binder, a request is well-formed; whether it
//! *runs* is the planner's call.
//!
//! Compiler resolution is fingerprint-faithful: the instances bound here
//! are constructed exactly like `zac_bench::default_compilers()`'s lineup
//! (the `Zoned-ZAC` config is the service's — `zac_bench::zac_config()`
//! unless overridden), so a serve-side cache key equals the bench-side key
//! and serving shares warm state with direct `BatchRunner` runs.

use crate::protocol::Request;
use std::sync::Arc;
use zac_arch::Architecture;
use zac_circuit::qasm::parse_qasm;
use zac_circuit::{preprocess, StagedCircuit};
use zac_core::admission::AdmissionLimits;
use zac_core::{Compiler, Zac, ZacConfig};
use zac_place::PlacementEngine;

/// A validated request: compiler resolved, every circuit parsed and staged.
pub struct BoundRequest {
    /// Echoed request id.
    pub id: String,
    /// The resolved compiler (shared with the worker pool).
    pub compiler: Arc<dyn Compiler>,
    /// Preprocessed circuits, in request order.
    pub circuits: Vec<StagedCircuit>,
    /// Scheduling priority (higher first).
    pub priority: i64,
    /// Deadline budget in milliseconds from submission.
    pub deadline_ms: Option<u64>,
    /// Request-side caps (not yet tightened against the service policy).
    pub limits: AdmissionLimits,
    /// Whether the client asked for a Chrome trace.
    pub trace: bool,
}

impl std::fmt::Debug for BoundRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundRequest")
            .field("id", &self.id)
            .field("compiler", &self.compiler.name())
            .field("circuits", &self.circuits.len())
            .field("priority", &self.priority)
            .field("deadline_ms", &self.deadline_ms)
            .field("limits", &self.limits)
            .field("trace", &self.trace)
            .finish()
    }
}

/// Resolves compilers and parses circuits. One per service, configured
/// with the service's `Zoned-ZAC` configuration.
pub struct Binder {
    zac_config: ZacConfig,
}

impl Binder {
    /// A binder whose `Zoned-ZAC` uses `zac_config` (the service default is
    /// `zac_bench::zac_config()`, the paper configuration).
    pub fn new(zac_config: ZacConfig) -> Self {
        Self { zac_config }
    }

    /// Validates `request` into runnable work.
    ///
    /// # Errors
    ///
    /// A human-readable reason (for [`Response::Error`](crate::protocol::Response))
    /// on unknown compiler labels, invalid engine overrides, or QASM that
    /// does not parse. Error messages name the *entry*, not the circuit
    /// contents, so they are safe to log redacted.
    pub fn bind(&self, request: Request) -> Result<BoundRequest, String> {
        let compiler = self.resolve(&request.compiler, request.engine.as_deref())?;
        let mut circuits = Vec::with_capacity(request.circuits.len());
        for (index, entry) in request.circuits.iter().enumerate() {
            let circuit = parse_qasm(&entry.qasm, &entry.name)
                .map_err(|e| format!("entry {index}: QASM parse error: {e}"))?;
            circuits.push(preprocess(&circuit));
        }
        Ok(BoundRequest {
            id: request.id,
            compiler: Arc::from(compiler),
            circuits,
            priority: request.priority,
            deadline_ms: request.deadline_ms,
            limits: request.limits,
            trace: request.trace,
        })
    }

    /// Resolves a compiler label (+ optional engine override) to a fresh
    /// instance, fingerprint-equal to the bench lineup's.
    fn resolve(&self, name: &str, engine: Option<&str>) -> Result<Box<dyn Compiler>, String> {
        let engine = match engine {
            None => None,
            Some("exhaustive") => Some(PlacementEngine::Exhaustive),
            Some("windowed") => Some(PlacementEngine::windowed()),
            Some(other) => {
                return Err(format!(
                    "unknown engine `{other}` (expected `exhaustive` or `windowed`)"
                ))
            }
        };
        if name == "Zoned-ZAC" {
            let mut config = self.zac_config.clone();
            if let Some(engine) = engine {
                config.placement.engine = engine;
            }
            return Ok(Box::new(Zac::with_config(Architecture::reference(), config)));
        }
        if engine.is_some() {
            return Err(format!("engine override only applies to `Zoned-ZAC`, not `{name}`"));
        }
        zac_bench::default_compilers()
            .into_iter()
            .find(|c| c.name() == name)
            .map(|c| c as Box<dyn Compiler>)
            .ok_or_else(|| {
                format!("unknown compiler `{name}` (known: {})", zac_bench::COMPILERS.join(", "))
            })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::protocol::CircuitEntry;
    use zac_circuit::bench_circuits;
    use zac_circuit::qasm::to_qasm;

    fn binder() -> Binder {
        Binder::new(zac_bench::zac_config())
    }

    fn ghz_request(id: &str, compiler: &str) -> Request {
        let circuit = bench_circuits::ghz(4);
        Request::new(
            id,
            compiler,
            vec![CircuitEntry { name: circuit.name().to_string(), qasm: to_qasm(&circuit) }],
        )
    }

    #[test]
    fn binds_every_lineup_compiler_fingerprint_faithfully() {
        for (bench, label) in zac_bench::default_compilers().iter().zip(zac_bench::COMPILERS.iter())
        {
            let bound = binder().bind(ghz_request("r", label)).expect(label);
            assert_eq!(bound.compiler.name(), *label);
            assert_eq!(
                bound.compiler.fingerprint(),
                bench.fingerprint(),
                "{label}: serve-side instance must share the bench cache identity"
            );
            assert_eq!(bound.circuits.len(), 1);
            assert_eq!(bound.circuits[0].num_qubits, 4);
        }
    }

    #[test]
    fn engine_override_changes_only_the_zac_fingerprint() {
        // Pin the base engine: the service's default honors `ZAC_PLACER`
        // (tests run under both values in CI), so anchor on an explicit
        // exhaustive base rather than whatever the environment says.
        let mut config = zac_bench::zac_config();
        config.placement.engine = zac_place::PlacementEngine::Exhaustive;
        let binder = Binder::new(config);

        let mut req = ghz_request("r", "Zoned-ZAC");
        req.engine = Some("windowed".into());
        let windowed = binder.bind(req).unwrap();
        let exhaustive = binder.bind(ghz_request("r", "Zoned-ZAC")).unwrap();
        assert_ne!(windowed.compiler.fingerprint(), exhaustive.compiler.fingerprint());

        let mut explicit = ghz_request("r", "Zoned-ZAC");
        explicit.engine = Some("exhaustive".into());
        assert_eq!(
            binder.bind(explicit).unwrap().compiler.fingerprint(),
            exhaustive.compiler.fingerprint(),
            "explicit `exhaustive` equals the pinned base engine"
        );
    }

    #[test]
    fn bad_inputs_error_with_the_offending_entry() {
        let err = binder().bind(ghz_request("r", "Quantum-Fantasy")).unwrap_err();
        assert!(err.contains("unknown compiler"), "{err}");
        assert!(err.contains("Zoned-ZAC"), "lists known labels: {err}");

        let mut req = ghz_request("r", "SC-Heron");
        req.engine = Some("windowed".into());
        let err = binder().bind(req).unwrap_err();
        assert!(err.contains("only applies to `Zoned-ZAC`"), "{err}");

        let mut req = ghz_request("r", "Zoned-ZAC");
        req.engine = Some("quantum".into());
        assert!(binder().bind(req).unwrap_err().contains("unknown engine"));

        let mut req = ghz_request("r", "Zoned-ZAC");
        req.circuits.push(CircuitEntry { name: "bad".into(), qasm: "not qasm".into() });
        let err = binder().bind(req).unwrap_err();
        assert!(err.contains("entry 1"), "names the offending entry: {err}");
    }
}
