//! A long-running batch-compile service over the compiler/cache/telemetry
//! seams.
//!
//! The stack has four layers, each its own module:
//!
//! * **session** ([`Service`]) — owns the stack; [`Service::submit`] is the
//!   in-process API, [`Service::submit_line`] the wire entry point, and the
//!   `zac-serve` binary the stdin/stdout session loop;
//! * **binder** ([`bind`]) — parses QASM, validates, resolves the compiler
//!   label (+ placement-engine override) to a fingerprint-faithful
//!   instance;
//! * **planner** ([`plan`]) — admission control: the service's
//!   [`AdmissionLimits`] tightened with the request's, batch caps rejecting
//!   whole requests, per-circuit caps rejecting single entries;
//! * **executor** ([`exec`]) — a worker pool draining a (priority,
//!   submission-order) queue through one shared
//!   [`CompileCache`](zac_cache::CompileCache), enforcing deadlines at
//!   dequeue and streaming each entry's [`EntryOutcome`] as it finishes.
//!
//! The wire format is line-delimited JSON ([`protocol`]); successful
//! entries embed the versioned `CompileOutput` envelope from
//! `zac_core::output_json`. The executor's compile path is byte-for-byte
//! the bench harness's cache get → compile → put, so responses are
//! bit-identical to direct `BatchRunner` runs — the serving layer never
//! changes compilation semantics (locked by `tests/serve.rs` at the
//! workspace root; see DESIGN.md §9).
//!
//! The service is hardened against faults (DESIGN.md §10): compiler panics
//! are isolated per entry (the worker respawns), compile deadlines cancel
//! runaway work cooperatively, a per-compiler circuit breaker sheds load
//! off crashing compilers, and overload sheds strictly-lower-priority
//! queued work first. Every submitted entry receives exactly one terminal
//! response, whatever faults fire — the crate denies `clippy::unwrap_used`
//! so no serving path can abort the process.
//!
//! # Example
//!
//! ```
//! use zac_circuit::{bench_circuits, qasm::to_qasm};
//! use zac_serve::{CircuitEntry, Request, Response, Service, ServiceConfig};
//!
//! let mut config = ServiceConfig::default();
//! config.zac_config.placement.sa_iterations = 50; // fast doc-test config
//! let service = Service::new(config);
//! let circuit = bench_circuits::ghz(4);
//! let request = Request::new(
//!     "r1",
//!     "Zoned-ZAC",
//!     vec![CircuitEntry { name: circuit.name().to_string(), qasm: to_qasm(&circuit) }],
//! );
//! let responses: Vec<Response> = service.submit(request).iter().collect();
//! assert!(matches!(responses.last(), Some(Response::Done(d)) if d.ok == 1));
//! ```

#![deny(clippy::unwrap_used)]

pub mod bind;
pub mod exec;
pub mod plan;
pub mod protocol;
mod service;

pub use protocol::{
    CircuitEntry, Done, EntryError, EntryOutcome, PhaseTotals, Request, Response, PROTOCOL_VERSION,
};
pub use service::{Service, ServiceConfig};
pub use zac_core::admission::{AdmissionLimits, Outcome, RejectReason};
