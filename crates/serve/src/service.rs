//! The session layer: one [`Service`] value owning the whole stack.
//!
//! `submit` carries a request through binder → planner → executor and hands
//! back the response stream; `submit_line` is the same entry point for raw
//! protocol lines (stdin, sockets, load generators). Every failure mode is
//! a response on the stream — the methods themselves never fail.

use crate::bind::Binder;
use crate::exec::{Executor, ResilienceConfig};
use crate::plan::Planner;
use crate::protocol::{Request, Response};
use std::sync::mpsc::{channel, Receiver};
use zac_cache::CompileCache;
use zac_core::admission::AdmissionLimits;
use zac_core::ZacConfig;
use zac_telemetry::metrics::{SERVE_REQUESTS_REJECTED, SERVE_REQUESTS_SUBMITTED};
use zac_telemetry::{MetricsSnapshot, Redacted};

/// Service construction knobs.
pub struct ServiceConfig {
    /// Worker threads in the executor pool.
    pub workers: usize,
    /// Maximum queued jobs (admitted entries) across all requests; a
    /// request that would overflow it is rejected whole.
    pub queue_capacity: usize,
    /// Service-side admission policy, tightened against each request's own
    /// caps (strictest wins).
    pub limits: AdmissionLimits,
    /// Configuration for `Zoned-ZAC` requests. The default is the paper
    /// configuration (`zac_bench::zac_config()`); tests inject reduced-SA
    /// configs here and compare against direct compiles with the same one.
    pub zac_config: ZacConfig,
    /// The compile cache shared by all workers. Inject a disk-backed or
    /// pre-warmed cache to share state with other runners; the default is
    /// a fresh in-memory cache.
    pub cache: CompileCache,
    /// Per-entry compile budget in milliseconds, enforced by the executor's
    /// watchdog through cooperative cancellation. `None` (the default)
    /// disables the service-wide budget; request deadlines still apply.
    pub compile_deadline_ms: Option<u64>,
    /// Consecutive panics/cancellations that open a compiler's circuit
    /// breaker (`0` disables it). While open, entries for that compiler are
    /// rejected with `breaker_open` instead of risking another dead worker.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects before admitting one half-open
    /// probe compile.
    pub breaker_cooldown_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
            queue_capacity: 1024,
            limits: AdmissionLimits::default(),
            zac_config: zac_bench::zac_config(),
            cache: CompileCache::in_memory(256),
            compile_deadline_ms: None,
            breaker_threshold: 3,
            breaker_cooldown_ms: 250,
        }
    }
}

/// A running compile service: binder + planner + worker pool over one
/// shared cache. Dropping it stops the workers.
pub struct Service {
    binder: Binder,
    planner: Planner,
    executor: Executor,
    log: bool,
}

impl Default for Service {
    fn default() -> Self {
        Self::new(ServiceConfig::default())
    }
}

impl Service {
    /// Builds the stack from `config`.
    pub fn new(config: ServiceConfig) -> Self {
        let resilience = ResilienceConfig {
            compile_deadline_ms: config.compile_deadline_ms,
            breaker_threshold: config.breaker_threshold,
            breaker_cooldown_ms: config.breaker_cooldown_ms,
        };
        Self {
            binder: Binder::new(config.zac_config),
            planner: Planner::new(config.limits),
            executor: Executor::new(
                config.workers,
                config.queue_capacity,
                config.cache,
                resilience,
            ),
            log: std::env::var("ZAC_SERVE_LOG").is_ok_and(|v| !v.is_empty() && v != "0"),
        }
    }

    /// The shared compile cache (inspect hit rates, pre-warm, persist).
    pub fn cache(&self) -> &CompileCache {
        self.executor.cache()
    }

    /// Worker panics recovered by the executor's supervisor so far. Always
    /// counted (independent of the telemetry recorder); a non-zero value
    /// with the service still answering is the panic-isolation guarantee.
    pub fn worker_respawns(&self) -> u64 {
        self.executor.worker_respawns()
    }

    /// Submits one request; the returned receiver streams every response
    /// for it, ending with a terminal `Done`/`Rejected`/`Error`. Draining
    /// it is the in-process API; serializing each response is the wire
    /// protocol.
    pub fn submit(&self, request: Request) -> Receiver<Response> {
        let (tx, rx) = channel();
        SERVE_REQUESTS_SUBMITTED.incr();
        // Snapshot before any work so the Done delta covers binding too.
        let base = zac_telemetry::enabled().then(MetricsSnapshot::capture);
        if self.log {
            // Log surfaces mask circuit names; the protocol keeps them (the
            // client sent them in the first place).
            for entry in &request.circuits {
                eprintln!(
                    "zac-serve: request {} [{}] circuit {}",
                    request.id,
                    request.compiler,
                    Redacted(&entry.name)
                );
            }
        }
        let id = request.id.clone();
        let bound = match self.binder.bind(request) {
            Ok(bound) => bound,
            Err(reason) => {
                tx.send(Response::Error { id: Some(id), reason }).ok();
                return rx;
            }
        };
        let planned = match self.planner.plan(bound) {
            Ok(planned) => planned,
            Err(reason) => {
                SERVE_REQUESTS_REJECTED.incr();
                tx.send(Response::Rejected { id, reason }).ok();
                return rx;
            }
        };
        self.executor.submit(planned, tx, base);
        rx
    }

    /// [`submit`](Self::submit) for one raw protocol line.
    pub fn submit_line(&self, line: &str) -> Receiver<Response> {
        match serde_json::from_str::<Request>(line) {
            Ok(request) => self.submit(request),
            Err(e) => {
                let (tx, rx) = channel();
                // Best-effort id recovery so the client can correlate.
                let id = serde_json::from_str::<serde::Value>(line)
                    .ok()
                    .and_then(|v| serde::ObjectView::new(&v).ok()?.opt_field("id").ok()?);
                tx.send(Response::Error { id, reason: format!("malformed request: {e}") }).ok();
                rx
            }
        }
    }
}
