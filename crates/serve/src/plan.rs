//! The planner: admission control over bound requests.
//!
//! The planner owns *policy*: it tightens the request's own caps against
//! the service's ([`AdmissionLimits::tightened`] — strictest wins, so a
//! client can never widen what the operator allows), rejects whole requests
//! that blow the batch cap, and pre-judges each circuit against the
//! per-circuit caps. Oversized circuits become per-entry rejections with
//! typed payloads rather than sinking the request: a batch with one
//! too-large circuit still compiles the other N−1, mirroring the bench
//! harness's blank-cell semantics.
//!
//! Deadlines and queue capacity are *runtime* conditions, so they are
//! checked where the clock and the queue live — in the executor — against
//! the limits this planner stamped on the work.

use crate::bind::BoundRequest;
use std::sync::Arc;
use zac_circuit::StagedCircuit;
use zac_core::admission::{AdmissionLimits, RejectReason};
use zac_core::Compiler;

/// One planned entry: either runnable work or a pre-judged rejection.
pub enum PlannedEntry {
    /// Admitted — the executor will compile it.
    Run {
        /// Index within the request's `circuits`.
        index: usize,
        /// The staged circuit.
        staged: StagedCircuit,
    },
    /// Turned away at admission; the executor only reports it.
    Reject {
        /// Index within the request's `circuits`.
        index: usize,
        /// The circuit's name (for the streamed response).
        name: String,
        /// The typed reason.
        reason: RejectReason,
    },
}

/// An admitted request, ready for the executor.
pub struct PlannedRequest {
    /// Echoed request id.
    pub id: String,
    /// The resolved compiler.
    pub compiler: Arc<dyn Compiler>,
    /// Scheduling priority (higher first).
    pub priority: i64,
    /// Deadline budget in milliseconds from submission (already the
    /// tightened value).
    pub deadline_ms: Option<u64>,
    /// Whether the client asked for a Chrome trace.
    pub trace: bool,
    /// Per-entry plan, in request order.
    pub entries: Vec<PlannedEntry>,
}

/// Applies the service's admission policy to bound requests.
pub struct Planner {
    policy: AdmissionLimits,
}

impl Planner {
    /// A planner enforcing `policy` on top of whatever each request asks.
    pub fn new(policy: AdmissionLimits) -> Self {
        Self { policy }
    }

    /// Admission-checks `bound`.
    ///
    /// # Errors
    ///
    /// A request-level [`RejectReason`] (currently only
    /// [`RejectReason::TooManyCircuits`]) when the whole request must be
    /// turned away; per-circuit violations come back as
    /// [`PlannedEntry::Reject`] instead.
    pub fn plan(&self, bound: BoundRequest) -> Result<PlannedRequest, RejectReason> {
        let limits = self.policy.tightened(&bound.limits);
        limits.admit_batch(bound.circuits.len())?;
        // The request's top-level `deadline_ms` is sugar for the limit of
        // the same name; tightening applies across both spellings.
        let deadline_ms = match (bound.deadline_ms, limits.deadline_ms) {
            (Some(request), Some(policy)) => Some(request.min(policy)),
            (request, policy) => request.or(policy),
        };
        let entries = bound
            .circuits
            .into_iter()
            .enumerate()
            .map(|(index, staged)| match limits.admit_circuit(&staged) {
                Ok(()) => PlannedEntry::Run { index, staged },
                Err(reason) => PlannedEntry::Reject { index, name: staged.name, reason },
            })
            .collect();
        Ok(PlannedRequest {
            id: bound.id,
            compiler: bound.compiler,
            priority: bound.priority,
            deadline_ms,
            trace: bound.trace,
            entries,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::bind::Binder;
    use crate::protocol::{CircuitEntry, Request};
    use zac_circuit::bench_circuits;
    use zac_circuit::qasm::to_qasm;

    fn request(sizes: &[usize]) -> BoundRequest {
        let circuits = sizes
            .iter()
            .map(|&n| {
                let c = bench_circuits::ghz(n);
                CircuitEntry { name: c.name().to_string(), qasm: to_qasm(&c) }
            })
            .collect();
        Binder::new(zac_bench::zac_config()).bind(Request::new("r", "Zoned-ZAC", circuits)).unwrap()
    }

    #[test]
    fn batch_cap_rejects_the_whole_request() {
        let planner = Planner::new(AdmissionLimits { max_circuits: Some(2), ..Default::default() });
        assert_eq!(
            planner.plan(request(&[3, 3, 3])).err(),
            Some(RejectReason::TooManyCircuits { circuits: 3, cap: 2 })
        );
    }

    #[test]
    fn oversized_circuits_reject_per_entry_not_per_request() {
        let planner = Planner::new(AdmissionLimits { max_qubits: Some(8), ..Default::default() });
        let planned = planner.plan(request(&[4, 12, 6])).unwrap();
        assert_eq!(planned.entries.len(), 3);
        assert!(matches!(planned.entries[0], PlannedEntry::Run { index: 0, .. }));
        match &planned.entries[1] {
            PlannedEntry::Reject { index: 1, name, reason } => {
                assert_eq!(name, "ghz_n12");
                assert_eq!(*reason, RejectReason::TooLarge { needed: 12, available: 8 });
            }
            _ => panic!("entry 1 must be rejected"),
        }
        assert!(matches!(planned.entries[2], PlannedEntry::Run { index: 2, .. }));
    }

    #[test]
    fn request_limits_tighten_but_never_widen_policy() {
        let planner = Planner::new(AdmissionLimits {
            max_qubits: Some(8),
            deadline_ms: Some(1_000),
            ..Default::default()
        });
        let mut bound = request(&[12]);
        bound.limits = AdmissionLimits {
            max_qubits: Some(100), // wider than policy: policy still wins
            deadline_ms: Some(50), // tighter than policy: request wins
            ..Default::default()
        };
        let planned = planner.plan(bound).unwrap();
        assert!(matches!(planned.entries[0], PlannedEntry::Reject { .. }));
        assert_eq!(planned.deadline_ms, Some(50));
    }

    #[test]
    fn top_level_deadline_tightens_like_the_limit_spelling() {
        let planner = Planner::new(AdmissionLimits::default());
        let mut bound = request(&[3]);
        bound.deadline_ms = Some(20);
        bound.limits.deadline_ms = Some(50);
        assert_eq!(planner.plan(bound).unwrap().deadline_ms, Some(20));

        let mut bound = request(&[3]);
        bound.deadline_ms = Some(80);
        assert_eq!(
            planner.plan(bound).unwrap().deadline_ms,
            Some(80),
            "top-level deadline survives without a limits spelling"
        );
    }
}
