//! The line-delimited JSON protocol.
//!
//! One request per line in, one response object per line out. A request
//! names a compiler, carries a batch of QASM circuits, and optionally caps
//! itself with [`AdmissionLimits`]; the service streams one
//! [`Response::Result`] per entry *as it finishes* (entries complete out of
//! order under the worker pool — correlate by `entry` index), then a
//! terminal [`Response::Done`] with aggregates, latency, deterministic
//! phase totals, and — when telemetry is on — a metrics delta and optional
//! Chrome trace. Requests that never reach the executor end with a single
//! [`Response::Rejected`] (admission) or [`Response::Error`] (malformed
//! input) instead.
//!
//! Every response object leads with `"type"` and `"protocol"`, and every
//! successful entry embeds the versioned `CompileOutput` envelope from
//! `zac_core::output_json` — the same bytes a direct compile serializes to,
//! which is what the bit-identity tests assert.

use serde::{DeError, Deserialize, ObjectView, Serialize, Value};
use zac_core::admission::{AdmissionLimits, RejectReason};
use zac_core::CompileOutput;

/// Version tag carried by every response line. Readers accept 1..=current.
pub const PROTOCOL_VERSION: u64 = 1;

/// One circuit in a request: a display name plus OpenQASM 2.0 source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitEntry {
    /// Display name (used in responses; redacted on log surfaces).
    pub name: String,
    /// OpenQASM 2.0 source text.
    pub qasm: String,
}

impl Serialize for CircuitEntry {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".into(), self.name.to_value()),
            ("qasm".into(), self.qasm.to_value()),
        ])
    }
}

impl Deserialize for CircuitEntry {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = ObjectView::new(v)?;
        Ok(Self { name: obj.field("name")?, qasm: obj.field("qasm")? })
    }
}

/// One compile request: a compiler, a batch of circuits, and scheduling
/// knobs. Everything but `id`, `compiler`, and `circuits` is optional on
/// the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on every response.
    pub id: String,
    /// Compiler label — one of the paper lineup (`zac_bench::COMPILERS`),
    /// e.g. `"Zoned-ZAC"` or `"SC-Heron"`.
    pub compiler: String,
    /// Placement-engine override for `Zoned-ZAC`: `"exhaustive"` or
    /// `"windowed"`. Rejected for other compilers (they have no engine).
    pub engine: Option<String>,
    /// Scheduling priority; higher runs first, ties in submission order.
    pub priority: i64,
    /// Deadline budget in milliseconds from submission; entries still
    /// queued when it expires are rejected, not compiled.
    pub deadline_ms: Option<u64>,
    /// Request-side admission caps, tightened against the service policy
    /// (strictest wins — a client can never widen the policy).
    pub limits: AdmissionLimits,
    /// The circuits to compile.
    pub circuits: Vec<CircuitEntry>,
    /// Request a Chrome trace of this request's spans in the `Done`
    /// response (needs telemetry enabled service-side).
    pub trace: bool,
}

impl Request {
    /// A request with default knobs (priority 0, no deadline, no caps).
    pub fn new(
        id: impl Into<String>,
        compiler: impl Into<String>,
        circuits: Vec<CircuitEntry>,
    ) -> Self {
        Self {
            id: id.into(),
            compiler: compiler.into(),
            engine: None,
            priority: 0,
            deadline_ms: None,
            limits: AdmissionLimits::default(),
            circuits,
            trace: false,
        }
    }
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("id".into(), self.id.to_value()),
            ("compiler".into(), self.compiler.to_value()),
            ("engine".into(), self.engine.to_value()),
            ("priority".into(), self.priority.to_value()),
            ("deadline_ms".into(), self.deadline_ms.to_value()),
            ("limits".into(), self.limits.to_value()),
            ("circuits".into(), self.circuits.to_value()),
            ("trace".into(), self.trace.to_value()),
        ])
    }
}

impl Deserialize for Request {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = ObjectView::new(v)?;
        Ok(Self {
            id: obj.field("id")?,
            compiler: obj.field("compiler")?,
            engine: obj.opt_field("engine")?,
            priority: obj.field_or_default("priority")?,
            deadline_ms: obj.opt_field("deadline_ms")?,
            limits: obj.field_or_default("limits")?,
            circuits: obj.field("circuits")?,
            trace: obj.field_or_default("trace")?,
        })
    }
}

/// Why an entry failed terminally (produced no output). On the wire the
/// `reason` field stays a human-readable string for every kind — pre-9
/// readers keep working — and a `kind` tag ("compile" / "panic" /
/// "cancelled") plus kind-specific fields carry the typed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryError {
    /// The compiler reported a failure — a bug, not a capacity limit.
    Compile(String),
    /// The compiler panicked mid-entry; the worker was respawned and the
    /// panic payload is reported here instead of taking the process down.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The compile was cancelled by the deadline watchdog.
    Cancelled {
        /// Milliseconds the compile ran before cancellation took effect.
        after_ms: u64,
    },
}

impl EntryError {
    /// The wire `kind` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Compile(_) => "compile",
            Self::Panicked { .. } => "panic",
            Self::Cancelled { .. } => "cancelled",
        }
    }
}

impl std::fmt::Display for EntryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Compile(reason) => write!(f, "{reason}"),
            Self::Panicked { message } => write!(f, "compiler panicked: {message}"),
            Self::Cancelled { after_ms } => {
                write!(f, "compile cancelled after {after_ms} ms (deadline)")
            }
        }
    }
}

impl std::error::Error for EntryError {}

/// How one entry ended: the serving-side mirror of the bench harness's
/// three-way `RunOutcome`, with the full output (not a row projection) on
/// success.
#[derive(Debug, Clone)]
pub enum EntryOutcome {
    /// Compiled (or served from cache): the versioned output envelope.
    Ok(Box<CompileOutput>),
    /// Turned away by admission control or hardware capacity, with the
    /// typed reason.
    Rejected(RejectReason),
    /// The entry failed terminally, with the typed [`EntryError`].
    Failed(EntryError),
}

impl EntryOutcome {
    /// The output, if the entry succeeded.
    pub fn output(&self) -> Option<&CompileOutput> {
        match self {
            Self::Ok(out) => Some(out),
            _ => None,
        }
    }
}

impl Serialize for EntryOutcome {
    fn to_value(&self) -> Value {
        match self {
            Self::Ok(out) => Value::Object(vec![
                ("status".into(), "ok".to_value()),
                ("output".into(), out.to_value()),
            ]),
            Self::Rejected(reason) => Value::Object(vec![
                ("status".into(), "rejected".to_value()),
                ("reason".into(), reason.to_value()),
            ]),
            Self::Failed(err) => {
                let mut obj = vec![
                    ("status".into(), "failed".to_value()),
                    ("kind".into(), err.kind().to_value()),
                    ("reason".into(), err.to_string().to_value()),
                ];
                match err {
                    EntryError::Compile(_) => {}
                    EntryError::Panicked { message } => {
                        obj.push(("message".into(), message.to_value()));
                    }
                    EntryError::Cancelled { after_ms } => {
                        obj.push(("after_ms".into(), after_ms.to_value()));
                    }
                }
                Value::Object(obj)
            }
        }
    }
}

impl Deserialize for EntryOutcome {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = ObjectView::new(v)?;
        Ok(match obj.tag("status")? {
            "ok" => Self::Ok(Box::new(obj.field("output")?)),
            "rejected" => Self::Rejected(obj.field("reason")?),
            "failed" => {
                // Pre-9 writers emitted no `kind`; their failures were all
                // compiler failures.
                let kind: Option<String> = obj.opt_field("kind")?;
                Self::Failed(match kind.as_deref().unwrap_or("compile") {
                    "compile" => EntryError::Compile(obj.field("reason")?),
                    "panic" => EntryError::Panicked { message: obj.field("message")? },
                    "cancelled" => EntryError::Cancelled { after_ms: obj.field("after_ms")? },
                    other => return Err(DeError::msg(format!("unknown failure kind `{other}`"))),
                })
            }
            other => return Err(DeError::msg(format!("unknown entry status `{other}`"))),
        })
    }
}

/// Deterministic per-request phase totals: place/schedule nanoseconds
/// summed over the successful entries (cache hits contribute their
/// *original* split, so a warm request reports the same totals as the cold
/// one that populated it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTotals {
    /// Total placement nanoseconds across ok entries.
    pub place_ns: u64,
    /// Total scheduling nanoseconds across ok entries.
    pub schedule_ns: u64,
}

impl Serialize for PhaseTotals {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("place_ns".into(), self.place_ns.to_value()),
            ("schedule_ns".into(), self.schedule_ns.to_value()),
        ])
    }
}

impl Deserialize for PhaseTotals {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = ObjectView::new(v)?;
        Ok(Self { place_ns: obj.field("place_ns")?, schedule_ns: obj.field("schedule_ns")? })
    }
}

/// The terminal response of a request that reached the executor.
#[derive(Debug, Clone)]
pub struct Done {
    /// Echoed request id.
    pub id: String,
    /// Entries that produced an output.
    pub ok: usize,
    /// Entries rejected (admission caps, deadline, hardware capacity).
    pub rejected: usize,
    /// Entries whose compiler failed.
    pub failed: usize,
    /// Wall-clock milliseconds from submission to this response.
    pub latency_ms: u64,
    /// Deterministic phase totals over the ok entries.
    pub phase_totals: PhaseTotals,
    /// Registry metrics delta since submission (snapshot-schema JSON),
    /// attached when telemetry is enabled. Process-global: concurrent
    /// requests' activity overlaps, exactly like
    /// `BatchRunner::run_with_metrics`.
    pub metrics: Option<Value>,
    /// Chrome trace of the spans drained at completion, when the request
    /// asked for one and telemetry is enabled. Same global caveat.
    pub trace: Option<Value>,
}

/// One response line. `Result` streams per entry; exactly one of
/// `Done`/`Rejected`/`Error` terminates each request.
#[derive(Debug, Clone)]
pub enum Response {
    /// One entry finished (in completion order, not submission order).
    Result {
        /// Echoed request id.
        id: String,
        /// Index of the entry within the request's `circuits`.
        entry: usize,
        /// The entry's circuit name.
        name: String,
        /// How it ended.
        outcome: EntryOutcome,
    },
    /// The whole request was turned away before any entry ran.
    Rejected {
        /// Echoed request id.
        id: String,
        /// The typed reason.
        reason: RejectReason,
    },
    /// Terminal summary of an executed request.
    Done(Done),
    /// The request could not be understood (malformed JSON, unknown
    /// compiler, QASM parse failure). `id` is present when it could be
    /// recovered from the input.
    Error {
        /// Echoed request id, when parseable.
        id: Option<String>,
        /// Human-readable reason.
        reason: String,
    },
}

impl Response {
    /// The request id this response belongs to, when known.
    pub fn id(&self) -> Option<&str> {
        match self {
            Self::Result { id, .. } | Self::Rejected { id, .. } => Some(id),
            Self::Done(done) => Some(&done.id),
            Self::Error { id, .. } => id.as_deref(),
        }
    }

    /// Whether this is the last response of its request.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Self::Result { .. })
    }
}

fn head(kind: &str) -> Vec<(String, Value)> {
    vec![("type".into(), kind.to_value()), ("protocol".into(), PROTOCOL_VERSION.to_value())]
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        match self {
            Self::Result { id, entry, name, outcome } => {
                let mut obj = head("result");
                obj.push(("id".into(), id.to_value()));
                obj.push(("entry".into(), entry.to_value()));
                obj.push(("name".into(), name.to_value()));
                obj.push(("outcome".into(), outcome.to_value()));
                Value::Object(obj)
            }
            Self::Rejected { id, reason } => {
                let mut obj = head("rejected");
                obj.push(("id".into(), id.to_value()));
                obj.push(("reason".into(), reason.to_value()));
                Value::Object(obj)
            }
            Self::Done(done) => {
                let mut obj = head("done");
                obj.push(("id".into(), done.id.to_value()));
                obj.push(("ok".into(), done.ok.to_value()));
                obj.push(("rejected".into(), done.rejected.to_value()));
                obj.push(("failed".into(), done.failed.to_value()));
                obj.push(("latency_ms".into(), done.latency_ms.to_value()));
                obj.push(("phase_totals".into(), done.phase_totals.to_value()));
                obj.push(("metrics".into(), done.metrics.to_value()));
                obj.push(("trace".into(), done.trace.to_value()));
                Value::Object(obj)
            }
            Self::Error { id, reason } => {
                let mut obj = head("error");
                obj.push(("id".into(), id.to_value()));
                obj.push(("reason".into(), reason.to_value()));
                Value::Object(obj)
            }
        }
    }
}

impl Deserialize for Response {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = ObjectView::new(v)?;
        let protocol: u64 = obj.field_or_default("protocol")?;
        if !(0..=PROTOCOL_VERSION).contains(&protocol) {
            return Err(DeError::msg(format!(
                "unsupported protocol version {protocol} (reader supports <= {PROTOCOL_VERSION})"
            )));
        }
        Ok(match obj.tag("type")? {
            "result" => Self::Result {
                id: obj.field("id")?,
                entry: obj.field("entry")?,
                name: obj.field("name")?,
                outcome: obj.field("outcome")?,
            },
            "rejected" => Self::Rejected { id: obj.field("id")?, reason: obj.field("reason")? },
            "done" => Self::Done(Done {
                id: obj.field("id")?,
                ok: obj.field("ok")?,
                rejected: obj.field("rejected")?,
                failed: obj.field("failed")?,
                latency_ms: obj.field("latency_ms")?,
                phase_totals: obj.field("phase_totals")?,
                metrics: obj.opt_field("metrics")?,
                trace: obj.opt_field("trace")?,
            }),
            "error" => Self::Error { id: obj.opt_field("id")?, reason: obj.field("reason")? },
            other => return Err(DeError::msg(format!("unknown response type `{other}`"))),
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_fills_defaults() {
        let json = "{\"id\":\"r1\",\"compiler\":\"Zoned-ZAC\",\"circuits\":[{\"name\":\"c\",\"qasm\":\"...\"}]}";
        let req: Request = serde_json::from_str(json).unwrap();
        assert_eq!(req.id, "r1");
        assert_eq!(req.priority, 0);
        assert_eq!(req.engine, None);
        assert_eq!(req.deadline_ms, None);
        assert_eq!(req.limits, AdmissionLimits::default());
        assert!(!req.trace);
        assert_eq!(req.circuits.len(), 1);
    }

    #[test]
    fn full_request_roundtrips() {
        let mut req = Request::new(
            "r2",
            "Zoned-ZAC",
            vec![CircuitEntry { name: "ghz".into(), qasm: "OPENQASM 2.0;".into() }],
        );
        req.engine = Some("windowed".into());
        req.priority = 7;
        req.deadline_ms = Some(5_000);
        req.limits = AdmissionLimits { max_qubits: Some(64), ..Default::default() };
        req.trace = true;
        let json = serde_json::to_string(&req).unwrap();
        assert_eq!(serde_json::from_str::<Request>(&json).unwrap(), req);
    }

    #[test]
    fn responses_roundtrip_and_tag_their_type() {
        let rejected = Response::Rejected {
            id: "r".into(),
            reason: RejectReason::QueueFull { depth: 9, cap: 9 },
        };
        let json = serde_json::to_string(&rejected).unwrap();
        assert!(json.starts_with("{\"type\":\"rejected\",\"protocol\":1,"), "{json}");
        match serde_json::from_str::<Response>(&json).unwrap() {
            Response::Rejected { id, reason } => {
                assert_eq!(id, "r");
                assert_eq!(reason, RejectReason::QueueFull { depth: 9, cap: 9 });
            }
            other => panic!("wrong variant: {other:?}"),
        }

        let done = Response::Done(Done {
            id: "r".into(),
            ok: 3,
            rejected: 1,
            failed: 0,
            latency_ms: 42,
            phase_totals: PhaseTotals { place_ns: 10, schedule_ns: 20 },
            metrics: None,
            trace: None,
        });
        assert!(done.is_terminal());
        let back: Response = serde_json::from_str(&serde_json::to_string(&done).unwrap()).unwrap();
        match back {
            Response::Done(d) => {
                assert_eq!((d.ok, d.rejected, d.failed, d.latency_ms), (3, 1, 0, 42));
                assert_eq!(d.phase_totals, PhaseTotals { place_ns: 10, schedule_ns: 20 });
                assert!(d.metrics.is_none() && d.trace.is_none());
            }
            other => panic!("wrong variant: {other:?}"),
        }

        let err = Response::Error { id: None, reason: "bad json".into() };
        assert_eq!(err.id(), None);
        let back: Response = serde_json::from_str(&serde_json::to_string(&err).unwrap()).unwrap();
        assert!(matches!(back, Response::Error { id: None, .. }));

        assert!(serde_json::from_str::<Response>("{\"type\":\"martian\",\"protocol\":1}").is_err());
        assert!(serde_json::from_str::<Response>("{\"type\":\"done\",\"protocol\":99}").is_err());
    }

    #[test]
    fn entry_outcomes_roundtrip() {
        let rejected = EntryOutcome::Rejected(RejectReason::TooLarge { needed: 40, available: 16 });
        let json = serde_json::to_string(&rejected).unwrap();
        assert!(json.contains("\"status\":\"rejected\""), "{json}");
        assert!(matches!(
            serde_json::from_str::<EntryOutcome>(&json).unwrap(),
            EntryOutcome::Rejected(RejectReason::TooLarge { needed: 40, available: 16 })
        ));
        let failed = EntryOutcome::Failed(EntryError::Compile("boom".into()));
        assert!(failed.output().is_none());
        let json = serde_json::to_string(&failed).unwrap();
        assert!(json.contains("\"kind\":\"compile\""), "{json}");
        let back: EntryOutcome = serde_json::from_str(&json).unwrap();
        assert!(matches!(back, EntryOutcome::Failed(EntryError::Compile(r)) if r == "boom"));
    }

    #[test]
    fn entry_errors_roundtrip_with_typed_payloads() {
        for err in [
            EntryError::Compile("no detour trap".into()),
            EntryError::Panicked { message: "index out of bounds".into() },
            EntryError::Cancelled { after_ms: 125 },
        ] {
            let json = serde_json::to_string(&EntryOutcome::Failed(err.clone())).unwrap();
            assert!(json.contains(&format!("\"kind\":\"{}\"", err.kind())), "{json}");
            assert!(json.contains("\"reason\":"), "every kind keeps the legacy string: {json}");
            match serde_json::from_str::<EntryOutcome>(&json).unwrap() {
                EntryOutcome::Failed(back) => assert_eq!(back, err),
                other => panic!("wrong variant: {other:?}"),
            }
        }

        // Pre-9 lines carried no kind: they deserialize as compiler failures.
        let legacy = "{\"status\":\"failed\",\"reason\":\"boom\"}";
        assert!(matches!(
            serde_json::from_str::<EntryOutcome>(legacy).unwrap(),
            EntryOutcome::Failed(EntryError::Compile(r)) if r == "boom"
        ));
        let unknown = "{\"status\":\"failed\",\"kind\":\"martian\",\"reason\":\"x\"}";
        assert!(serde_json::from_str::<EntryOutcome>(unknown).is_err());
    }
}
