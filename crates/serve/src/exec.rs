//! The executor: a supervised worker pool draining a priority queue of
//! compile jobs.
//!
//! Each admitted entry becomes one job, so a request's entries fan out
//! across workers and stream back as they finish. Jobs order by (priority
//! desc, submission seq asc) — higher-priority requests overtake, ties are
//! FIFO. Deadlines are enforced at *dequeue*: work whose request deadline
//! passed while it sat in the queue is rejected with the measured wait, not
//! compiled. Queue capacity is enforced at *enqueue*: when a request would
//! overflow the queue, strictly-lower-priority queued entries are **shed**
//! (rejected with [`RejectReason::Shed`]) to make room; if that cannot free
//! enough slots the newcomer is rejected whole with
//! [`RejectReason::QueueFull`] — equal-priority work is never displaced.
//!
//! The compile path is byte-for-byte the bench harness's `run_cell_with`:
//! cache get → compile → cache put, against one [`CompileCache`] shared by
//! every worker. The serving layer never touches compilation semantics —
//! that is the bit-identity guarantee, locked by `tests/serve.rs` at the
//! workspace root.
//!
//! # Resilience (PR 9)
//!
//! The invariant everything below serves: **every submitted entry receives
//! exactly one terminal response**, whatever faults fire.
//!
//! * **Panic isolation.** Each worker thread runs its dequeue loop under
//!   `catch_unwind`; a panicking compile surfaces as
//!   [`EntryError::Panicked`] on the entry's own response stream, the
//!   worker is respawned in place (counted in `serve.worker.respawns`),
//!   and the queue keeps draining.
//! * **Compile deadlines.** A watchdog thread scans each worker's
//!   current-job slot and fires that job's
//!   [`CancelToken`](zac_telemetry::CancelToken) when its deadline passes
//!   (the stricter of the service-wide compile deadline and the request's
//!   remaining budget). The SA anneal and the scheduler emit loop poll the
//!   token and unwind as [`EntryError::Cancelled`].
//! * **Circuit breaker.** Per-compiler (by fingerprint): consecutive
//!   panics/cancellations open the breaker, work is rejected with
//!   [`RejectReason::BreakerOpen`] during the cooldown, then a single
//!   half-open probe decides between closing and re-opening.

use crate::plan::{PlannedEntry, PlannedRequest};
use crate::protocol::{Done, EntryError, EntryOutcome, PhaseTotals, Response};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use zac_cache::{CacheKey, CompileCache};
use zac_circuit::StagedCircuit;
use zac_core::admission::RejectReason;
use zac_core::{CompileError, Compiler};
use zac_telemetry::metrics::{
    SERVE_BREAKER_HALF_OPEN_PROBES, SERVE_BREAKER_OPENED, SERVE_BREAKER_REJECTED,
    SERVE_ENTRIES_FAILED, SERVE_ENTRIES_OK, SERVE_ENTRIES_REJECTED, SERVE_QUEUE_DEPTH,
    SERVE_QUEUE_SHED, SERVE_REQUESTS_COMPLETED, SERVE_REQUESTS_REJECTED, SERVE_REQUEST_LATENCY_MS,
    SERVE_WORKER_RESPAWNS,
};
use zac_telemetry::{redact, span, CancelToken, MetricsSnapshot};

/// Resilience knobs threaded down from `ServiceConfig`.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceConfig {
    /// Per-entry compile budget in milliseconds, enforced by the watchdog
    /// through cooperative cancellation. `None` disables the service-wide
    /// budget (request deadlines still cancel running compiles).
    pub compile_deadline_ms: Option<u64>,
    /// Consecutive panics/cancellations that open a compiler's breaker;
    /// `0` disables the breaker entirely.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects before a half-open probe.
    pub breaker_cooldown_ms: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self { compile_deadline_ms: None, breaker_threshold: 3, breaker_cooldown_ms: 250 }
    }
}

/// Shared state of one in-flight request.
struct RequestRun {
    id: String,
    compiler: Arc<dyn Compiler>,
    tx: Sender<Response>,
    start: Instant,
    deadline_ms: Option<u64>,
    trace: bool,
    /// Entries not yet reported; the worker that drops this to zero sends
    /// the `Done`.
    remaining: AtomicUsize,
    ok: AtomicUsize,
    rejected: AtomicUsize,
    failed: AtomicUsize,
    place_ns: AtomicU64,
    schedule_ns: AtomicU64,
    /// Registry snapshot at submission, for the `Done` metrics delta
    /// (captured only while telemetry is enabled).
    base: Option<MetricsSnapshot>,
}

/// One queued unit of work: one admitted entry of one request.
struct Job {
    priority: i64,
    seq: u64,
    run: Arc<RequestRun>,
    index: usize,
    staged: StagedCircuit,
}

impl PartialEq for Job {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Job {}
impl PartialOrd for Job {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Job {
    // Max-heap: higher priority first, then earlier submission.
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority.cmp(&other.priority).then(other.seq.cmp(&self.seq))
    }
}

struct QueueState {
    heap: BinaryHeap<Job>,
    next_seq: u64,
    closed: bool,
}

// --- circuit breaker --------------------------------------------------------

enum BreakerPhase {
    Closed,
    Open { until: Instant },
    HalfOpen,
}

struct BreakerState {
    consecutive: u32,
    phase: BreakerPhase,
}

/// Per-compiler (fingerprint-keyed) circuit breaker. Only *availability*
/// failures — panics and deadline cancellations — count; deterministic
/// compile errors and capacity rejections say nothing about whether the
/// next entry will also hang or crash the worker.
struct Breaker {
    threshold: u32,
    cooldown: Duration,
    states: Mutex<HashMap<u64, BreakerState>>,
}

enum Admission {
    Allow,
    Reject { failures: u32, cooldown_ms: u64 },
}

impl Breaker {
    fn new(config: &ResilienceConfig) -> Self {
        Self {
            threshold: config.breaker_threshold,
            cooldown: Duration::from_millis(config.breaker_cooldown_ms),
            states: Mutex::new(HashMap::new()),
        }
    }

    fn cooldown_ms(&self) -> u64 {
        u64::try_from(self.cooldown.as_millis()).unwrap_or(u64::MAX)
    }

    /// Decides at dequeue whether `fingerprint`'s compiler may run. An
    /// expired open breaker admits exactly one half-open probe; everything
    /// else queued behind it keeps rejecting until the probe reports.
    fn admit(&self, fingerprint: u64) -> Admission {
        if self.threshold == 0 {
            return Admission::Allow;
        }
        let mut states = self.states.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(state) = states.get_mut(&fingerprint) else {
            return Admission::Allow;
        };
        match state.phase {
            BreakerPhase::Closed => Admission::Allow,
            BreakerPhase::Open { until } if Instant::now() >= until => {
                state.phase = BreakerPhase::HalfOpen;
                SERVE_BREAKER_HALF_OPEN_PROBES.incr();
                Admission::Allow
            }
            BreakerPhase::Open { .. } | BreakerPhase::HalfOpen => {
                SERVE_BREAKER_REJECTED.incr();
                Admission::Reject { failures: state.consecutive, cooldown_ms: self.cooldown_ms() }
            }
        }
    }

    /// A compile finished normally (any deterministic outcome): the
    /// compiler is alive, close its breaker.
    fn record_success(&self, fingerprint: u64) {
        if self.threshold == 0 {
            return;
        }
        let mut states = self.states.lock().unwrap_or_else(PoisonError::into_inner);
        states.remove(&fingerprint);
    }

    /// A compile ended without saying anything about the compiler's
    /// health — cancelled by the request's own deadline, not the
    /// watchdog budget. A half-open probe reverts to `Open` so a fresh
    /// probe runs after the cooldown instead of wedging in `HalfOpen`;
    /// the failure count is untouched either way.
    fn record_inconclusive(&self, fingerprint: u64) {
        if self.threshold == 0 {
            return;
        }
        let mut states = self.states.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(state) = states.get_mut(&fingerprint) {
            if matches!(state.phase, BreakerPhase::HalfOpen) {
                state.phase = BreakerPhase::Open { until: Instant::now() + self.cooldown };
            }
        }
    }

    /// A panic or cancellation: count it, and open the breaker at the
    /// threshold (or immediately when a half-open probe fails).
    fn record_failure(&self, fingerprint: u64) {
        if self.threshold == 0 {
            return;
        }
        let mut states = self.states.lock().unwrap_or_else(PoisonError::into_inner);
        let state = states
            .entry(fingerprint)
            .or_insert(BreakerState { consecutive: 0, phase: BreakerPhase::Closed });
        state.consecutive += 1;
        let failed_probe = matches!(state.phase, BreakerPhase::HalfOpen);
        if failed_probe || state.consecutive >= self.threshold {
            state.phase = BreakerPhase::Open { until: Instant::now() + self.cooldown };
            SERVE_BREAKER_OPENED.incr();
        }
    }
}

// --- worker slots -----------------------------------------------------------

/// What a worker is compiling right now — everything the watchdog needs to
/// enforce the deadline, and everything the supervisor needs to report the
/// entry if the compile panics.
struct CurrentJob {
    run: Arc<RequestRun>,
    index: usize,
    name: String,
    fingerprint: u64,
    token: CancelToken,
    deadline: Option<Instant>,
}

type Slot = Mutex<Option<CurrentJob>>;

struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
    cache: CompileCache,
    capacity: usize,
    resilience: ResilienceConfig,
    breaker: Breaker,
    /// One current-job slot per worker, scanned by the watchdog.
    slots: Vec<Arc<Slot>>,
    /// Worker panics recovered (always counted; the telemetry counter
    /// `serve.worker.respawns` mirrors it when the recorder is on).
    respawns: AtomicU64,
    /// Mirror of `QueueState::closed` the watchdog can poll without the
    /// queue lock.
    closed: AtomicBool,
}

/// The worker pool. Dropping it drains nothing: queued jobs are abandoned,
/// workers exit after their current job (in-flight receivers see their
/// channels close). Services are expected to outlive their requests.
pub struct Executor {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl Executor {
    /// Spawns `workers` supervised threads sharing `cache` (queue capacity
    /// `capacity` jobs), plus the deadline watchdog.
    pub fn new(
        workers: usize,
        capacity: usize,
        cache: CompileCache,
        resilience: ResilienceConfig,
    ) -> Self {
        let workers = workers.max(1);
        let slots: Vec<Arc<Slot>> = (0..workers).map(|_| Arc::new(Mutex::new(None))).collect();
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState { heap: BinaryHeap::new(), next_seq: 0, closed: false }),
            available: Condvar::new(),
            cache,
            capacity,
            breaker: Breaker::new(&resilience),
            resilience,
            slots,
            respawns: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let slot = Arc::clone(&shared.slots[i]);
                std::thread::Builder::new()
                    .name(format!("zac-serve-{i}"))
                    .spawn(move || supervise(&shared, &slot))
                    .expect("spawn worker")
            })
            .collect();
        let watchdog = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("zac-serve-watchdog".into())
                .spawn(move || watchdog_loop(&shared))
                .expect("spawn watchdog")
        };
        Self { shared, workers, watchdog: Some(watchdog) }
    }

    /// The shared compile cache.
    pub fn cache(&self) -> &CompileCache {
        &self.shared.cache
    }

    /// Worker panics recovered by the supervisor so far (always counted,
    /// independent of the telemetry recorder).
    pub fn worker_respawns(&self) -> u64 {
        self.shared.respawns.load(AtomicOrdering::Relaxed)
    }

    /// Enqueues an admitted request; every response (per-entry results and
    /// the terminal line) goes to `tx`. Pre-judged rejections are reported
    /// immediately. A queue that cannot fit the admitted entries first
    /// sheds strictly-lower-priority queued work; only when that cannot
    /// free enough room is the request rejected whole.
    pub fn submit(
        &self,
        planned: PlannedRequest,
        tx: Sender<Response>,
        base: Option<MetricsSnapshot>,
    ) {
        let total = planned.entries.len();
        let run = Arc::new(RequestRun {
            id: planned.id,
            compiler: planned.compiler,
            tx,
            start: Instant::now(),
            deadline_ms: planned.deadline_ms,
            trace: planned.trace,
            remaining: AtomicUsize::new(total),
            ok: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            place_ns: AtomicU64::new(0),
            schedule_ns: AtomicU64::new(0),
            base,
        });
        if total == 0 {
            finalize(&run);
            return;
        }

        let mut runnable = Vec::new();
        let mut prejudged = Vec::new();
        for entry in planned.entries {
            match entry {
                PlannedEntry::Run { index, staged } => runnable.push((index, staged)),
                PlannedEntry::Reject { index, name, reason } => {
                    prejudged.push((index, name, reason));
                }
            }
        }

        // Capacity check and enqueue under one lock, so two racing submits
        // cannot both squeeze past the cap. Shed responses are sent after
        // the lock drops — senders may block, and the victims' channels
        // must never hold the queue hostage.
        let mut shed: Vec<Job> = Vec::new();
        // Queue depth at the moment the shed decision was made, reported
        // in the victims' `Shed` reasons.
        let mut shed_depth = 0;
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            let depth = queue.heap.len();
            if depth + runnable.len() > self.shared.capacity {
                shed_depth = depth;
                let needed = depth + runnable.len() - self.shared.capacity;
                if !shed_lower_priority(&mut queue, planned.priority, needed, &mut shed) {
                    drop(queue);
                    SERVE_REQUESTS_REJECTED.incr();
                    let reason = RejectReason::QueueFull { depth, cap: self.shared.capacity };
                    run.tx.send(Response::Rejected { id: run.id.clone(), reason }).ok();
                    return;
                }
            }
            for (index, staged) in runnable {
                let seq = queue.next_seq;
                queue.next_seq += 1;
                queue.heap.push(Job {
                    priority: planned.priority,
                    seq,
                    run: Arc::clone(&run),
                    index,
                    staged,
                });
                SERVE_QUEUE_DEPTH.add(1);
            }
        }
        self.shared.available.notify_all();

        let cap = self.shared.capacity;
        for job in shed {
            SERVE_QUEUE_DEPTH.add(-1);
            SERVE_QUEUE_SHED.incr();
            report(
                &job.run,
                job.index,
                job.staged.name.clone(),
                EntryOutcome::Rejected(RejectReason::Shed { depth: shed_depth, cap }),
            );
        }

        // Report the pre-judged rejections after the runnable entries are
        // queued; each one counts toward the request's completion.
        for (index, name, reason) in prejudged {
            report(&run, index, name, EntryOutcome::Rejected(reason));
        }
    }
}

/// Removes up to `needed` strictly-lower-priority jobs from the queue
/// (lowest priority first, youngest first within a priority), appending
/// them to `shed`. Returns whether enough room was freed; on `false` the
/// queue is left untouched.
fn shed_lower_priority(
    queue: &mut QueueState,
    priority: i64,
    needed: usize,
    shed: &mut Vec<Job>,
) -> bool {
    let candidates = queue.heap.iter().filter(|job| job.priority < priority).count();
    if candidates < needed {
        return false;
    }
    let mut jobs: Vec<Job> = std::mem::take(&mut queue.heap).into_vec();
    // Victim order: lowest priority first; among equals the youngest
    // (largest seq) goes first — it has waited the least.
    jobs.sort_by(|a, b| a.priority.cmp(&b.priority).then(b.seq.cmp(&a.seq)));
    let mut kept = Vec::with_capacity(jobs.len() - needed);
    for job in jobs {
        if shed.len() < needed && job.priority < priority {
            shed.push(job);
        } else {
            kept.push(job);
        }
    }
    queue.heap = BinaryHeap::from(kept);
    true
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            queue.closed = true;
            let abandoned = queue.heap.len();
            queue.heap.clear();
            SERVE_QUEUE_DEPTH.add(-(abandoned as i64));
        }
        self.shared.closed.store(true, AtomicOrdering::Relaxed);
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().ok();
        }
        if let Some(watchdog) = self.watchdog.take() {
            watchdog.join().ok();
        }
    }
}

/// The deadline watchdog: scans every worker's current-job slot and fires
/// the cancel token of any compile past its deadline. Cancellation is
/// cooperative — the worker unwinds through the normal error path and
/// reports [`EntryError::Cancelled`] itself.
fn watchdog_loop(shared: &Shared) {
    while !shared.closed.load(AtomicOrdering::Relaxed) {
        std::thread::sleep(Duration::from_millis(1));
        let now = Instant::now();
        for slot in &shared.slots {
            let guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(current) = guard.as_ref() {
                if current.deadline.is_some_and(|deadline| now >= deadline) {
                    current.token.cancel();
                }
            }
        }
    }
}

/// The worker supervisor: runs the dequeue loop under `catch_unwind`. On a
/// panic, the entry in the worker's slot (the one being compiled when the
/// stack unwound) gets its terminal [`EntryError::Panicked`] response, the
/// breaker records the failure, and the loop restarts — the worker is
/// respawned in place, and the queue keeps draining.
fn supervise(shared: &Shared, slot: &Arc<Slot>) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_loop(shared, slot))) {
            // Clean exit: the queue closed.
            Ok(()) => return,
            Err(payload) => {
                shared.respawns.fetch_add(1, AtomicOrdering::Relaxed);
                SERVE_WORKER_RESPAWNS.incr();
                let current = slot.lock().unwrap_or_else(PoisonError::into_inner).take();
                if let Some(current) = current {
                    shared.breaker.record_failure(current.fingerprint);
                    report(
                        &current.run,
                        current.index,
                        current.name,
                        EntryOutcome::Failed(EntryError::Panicked {
                            message: panic_message(payload.as_ref()),
                        }),
                    );
                }
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message (`panic!` with a
/// format string yields `String`, with a literal `&'static str`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

fn worker_loop(shared: &Shared, slot: &Arc<Slot>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = queue.heap.pop() {
                    break job;
                }
                if queue.closed {
                    return;
                }
                queue = shared.available.wait(queue).unwrap_or_else(PoisonError::into_inner);
            }
        };
        SERVE_QUEUE_DEPTH.add(-1);
        process(shared, slot, job);
    }
}

/// Runs one job: deadline check, breaker admission, then the bench
/// harness's exact cache get → compile → put sequence under a registered
/// current-job slot (so the watchdog can cancel it and the supervisor can
/// report it if it panics).
fn process(shared: &Shared, slot: &Slot, job: Job) {
    let run = Arc::clone(&job.run);
    let waited_ms = u64::try_from(run.start.elapsed().as_millis()).unwrap_or(u64::MAX);
    if let Some(deadline_ms) = run.deadline_ms {
        if waited_ms > deadline_ms {
            let reason = RejectReason::DeadlineExpired { deadline_ms, waited_ms };
            report(&run, job.index, job.staged.name.clone(), EntryOutcome::Rejected(reason));
            return;
        }
    }
    let fingerprint = run.compiler.fingerprint();
    if let Admission::Reject { failures, cooldown_ms } = shared.breaker.admit(fingerprint) {
        let reason = RejectReason::BreakerOpen { failures, cooldown_ms };
        report(&run, job.index, job.staged.name.clone(), EntryOutcome::Rejected(reason));
        return;
    }

    // The effective compile budget: the stricter of the service-wide
    // per-entry deadline and what is left of the request's own budget.
    let service_ms = shared.resilience.compile_deadline_ms;
    let remaining_ms = run.deadline_ms.map(|d| d.saturating_sub(waited_ms));
    let budget_ms = match (service_ms, remaining_ms) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (x, None) | (None, x) => x,
    };
    // Whether a deadline cancellation would be attributable to the
    // service-wide watchdog budget: only then does it say the *compiler*
    // hangs. A cancel bound by the request's own tighter deadline must
    // not open the breaker for unrelated clients of the same compiler.
    let watchdog_bound = service_ms.is_some_and(|a| remaining_ms.is_none_or(|b| a <= b));
    let token = CancelToken::new();
    let started = Instant::now();
    *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(CurrentJob {
        run: Arc::clone(&run),
        index: job.index,
        name: job.staged.name.clone(),
        fingerprint,
        token: token.clone(),
        deadline: budget_ms.map(|ms| started + Duration::from_millis(ms)),
    });

    let outcome = compile_entry(shared, &job, &token, started);

    // Deregister before reporting: once the response is out the watchdog
    // must not cancel (and the supervisor must not re-report) this entry.
    slot.lock().unwrap_or_else(PoisonError::into_inner).take();

    match &outcome {
        // Only availability failures count against the breaker; compile
        // errors and capacity rejections are deterministic properties of
        // the circuit, not signs the compiler will hang or crash again.
        // A cancel bound by the request's own deadline is inconclusive:
        // it neither counts as a failure nor closes a half-open breaker
        // (the probe slot reverts to open so a fresh probe can run).
        EntryOutcome::Failed(EntryError::Cancelled { .. }) => {
            if watchdog_bound {
                shared.breaker.record_failure(fingerprint);
            } else {
                shared.breaker.record_inconclusive(fingerprint);
            }
        }
        // Panics never reach here — they unwind into the supervisor,
        // which records the failure off the worker's slot.
        EntryOutcome::Failed(EntryError::Panicked { .. }) => {}
        // Every other completion — success, deterministic compile error,
        // capacity rejection — proves the compiler is alive and closes
        // the breaker. A half-open probe in particular must always end in
        // success/failure/inconclusive, or the breaker wedges half-open.
        _ => shared.breaker.record_success(fingerprint),
    }
    report(&run, job.index, job.staged.name.clone(), outcome);
}

/// The compile path proper: fault point, cache get, compile under the
/// installed cancel scope, cache put.
fn compile_entry(
    shared: &Shared,
    job: &Job,
    token: &CancelToken,
    started: Instant,
) -> EntryOutcome {
    let run = &job.run;
    // Span labels go through redaction: with `ZAC_REDACT=1` a trace
    // shows `[redacted:xxxxxxxx]`, not the customer's circuit name.
    let _span = span!("serve.exec.compile", &redact(&job.staged.name));
    // The executor's own fault point: `io` surfaces as a compile failure,
    // `panic` unwinds into the supervisor, `delay` stretches the compile
    // into the watchdog's jurisdiction.
    if let Some(e) = zac_telemetry::fault_point!("serve.exec.compile") {
        return EntryOutcome::Failed(EntryError::Compile(e.to_string()));
    }
    let key = CacheKey::compute(&*run.compiler, &job.staged);
    if let Some(out) = shared.cache.get(key) {
        return EntryOutcome::Ok(Box::new(out));
    }
    let _scope = token.install();
    match run.compiler.compile(&job.staged) {
        Ok(out) => {
            shared.cache.put(key, &out);
            EntryOutcome::Ok(Box::new(out))
        }
        Err(CompileError::CircuitTooLarge { needed, available }) => {
            EntryOutcome::Rejected(RejectReason::TooLarge { needed, available })
        }
        Err(CompileError::Failed(reason)) => EntryOutcome::Failed(EntryError::Compile(reason)),
        Err(CompileError::Cancelled) => EntryOutcome::Failed(EntryError::Cancelled {
            after_ms: u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX),
        }),
    }
}

/// Sends one entry's terminal response, updates the request tallies, and
/// retires the entry (the last one triggers the `Done`). Every entry path
/// — compiled, rejected, shed, panicked, cancelled — funnels through here
/// exactly once: that is the exactly-one-terminal-response invariant.
fn report(run: &Arc<RequestRun>, index: usize, name: String, outcome: EntryOutcome) {
    match &outcome {
        EntryOutcome::Ok(out) => {
            run.ok.fetch_add(1, AtomicOrdering::Relaxed);
            SERVE_ENTRIES_OK.incr();
            if let Some(phases) = out.phases {
                let ns = |d: std::time::Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
                run.place_ns.fetch_add(ns(phases.place), AtomicOrdering::Relaxed);
                run.schedule_ns.fetch_add(ns(phases.schedule), AtomicOrdering::Relaxed);
            }
        }
        EntryOutcome::Rejected(_) => {
            run.rejected.fetch_add(1, AtomicOrdering::Relaxed);
            SERVE_ENTRIES_REJECTED.incr();
        }
        EntryOutcome::Failed(_) => {
            run.failed.fetch_add(1, AtomicOrdering::Relaxed);
            SERVE_ENTRIES_FAILED.incr();
        }
    }
    run.tx.send(Response::Result { id: run.id.clone(), entry: index, name, outcome }).ok();
    complete_entry(run);
}

/// Marks one entry reported; the caller that retires the last one sends
/// the terminal `Done`.
fn complete_entry(run: &Arc<RequestRun>) {
    if run.remaining.fetch_sub(1, AtomicOrdering::AcqRel) == 1 {
        finalize(run);
    }
}

fn finalize(run: &RequestRun) {
    let latency_ms = u64::try_from(run.start.elapsed().as_millis()).unwrap_or(u64::MAX);
    // The metrics delta and trace are process-global: under concurrent
    // requests they include overlapping activity, exactly like
    // `BatchRunner::run_with_metrics` (see DESIGN.md §9). Serialization
    // failures drop the attachment, never the terminal response.
    let metrics = run.base.as_ref().and_then(|base| {
        let delta = MetricsSnapshot::capture().delta_since(base);
        serde_json::from_str(&delta.to_json()).ok()
    });
    let trace = (run.trace && zac_telemetry::enabled())
        .then(|| {
            let spans = zac_telemetry::take_spans();
            serde_json::from_str(&zac_telemetry::chrome_trace_json(&spans)).ok()
        })
        .flatten();
    SERVE_REQUESTS_COMPLETED.incr();
    SERVE_REQUEST_LATENCY_MS.observe(latency_ms);
    run.tx
        .send(Response::Done(Done {
            id: run.id.clone(),
            ok: run.ok.load(AtomicOrdering::Relaxed),
            rejected: run.rejected.load(AtomicOrdering::Relaxed),
            failed: run.failed.load(AtomicOrdering::Relaxed),
            latency_ms,
            phase_totals: PhaseTotals {
                place_ns: run.place_ns.load(AtomicOrdering::Relaxed),
                schedule_ns: run.schedule_ns.load(AtomicOrdering::Relaxed),
            },
            metrics,
            trace,
        }))
        .ok();
}
