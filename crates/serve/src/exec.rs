//! The executor: a worker pool draining a priority queue of compile jobs.
//!
//! Each admitted entry becomes one job, so a request's entries fan out
//! across workers and stream back as they finish. Jobs order by (priority
//! desc, submission seq asc) — higher-priority requests overtake, ties are
//! FIFO. Deadlines are enforced at *dequeue*: work whose request deadline
//! passed while it sat in the queue is rejected with the measured wait, not
//! compiled. Queue capacity is enforced at *enqueue*: a request whose
//! admitted entries would not fit is rejected whole with
//! [`RejectReason::QueueFull`].
//!
//! The compile path is byte-for-byte the bench harness's `run_cell_with`:
//! cache get → compile → cache put, against one [`CompileCache`] shared by
//! every worker. The serving layer never touches compilation semantics —
//! that is the bit-identity guarantee, locked by `tests/serve.rs` at the
//! workspace root.

use crate::plan::{PlannedEntry, PlannedRequest};
use crate::protocol::{Done, EntryOutcome, PhaseTotals, Response};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use zac_cache::{CacheKey, CompileCache};
use zac_circuit::StagedCircuit;
use zac_core::admission::RejectReason;
use zac_core::{CompileError, Compiler};
use zac_telemetry::metrics::{
    SERVE_ENTRIES_FAILED, SERVE_ENTRIES_OK, SERVE_ENTRIES_REJECTED, SERVE_QUEUE_DEPTH,
    SERVE_REQUESTS_COMPLETED, SERVE_REQUESTS_REJECTED, SERVE_REQUEST_LATENCY_MS,
};
use zac_telemetry::{redact, span, MetricsSnapshot};

/// Shared state of one in-flight request.
struct RequestRun {
    id: String,
    compiler: Arc<dyn Compiler>,
    tx: Sender<Response>,
    start: Instant,
    deadline_ms: Option<u64>,
    trace: bool,
    /// Entries not yet reported; the worker that drops this to zero sends
    /// the `Done`.
    remaining: AtomicUsize,
    ok: AtomicUsize,
    rejected: AtomicUsize,
    failed: AtomicUsize,
    place_ns: AtomicU64,
    schedule_ns: AtomicU64,
    /// Registry snapshot at submission, for the `Done` metrics delta
    /// (captured only while telemetry is enabled).
    base: Option<MetricsSnapshot>,
}

/// One queued unit of work: one admitted entry of one request.
struct Job {
    priority: i64,
    seq: u64,
    run: Arc<RequestRun>,
    index: usize,
    staged: StagedCircuit,
}

impl PartialEq for Job {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Job {}
impl PartialOrd for Job {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Job {
    // Max-heap: higher priority first, then earlier submission.
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority.cmp(&other.priority).then(other.seq.cmp(&self.seq))
    }
}

struct QueueState {
    heap: BinaryHeap<Job>,
    next_seq: u64,
    closed: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
    cache: CompileCache,
    capacity: usize,
}

/// The worker pool. Dropping it drains nothing: queued jobs are abandoned,
/// workers exit after their current job (in-flight receivers see their
/// channels close). Services are expected to outlive their requests.
pub struct Executor {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Executor {
    /// Spawns `workers` threads sharing `cache`, with a queue capacity of
    /// `capacity` jobs.
    pub fn new(workers: usize, capacity: usize, cache: CompileCache) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState { heap: BinaryHeap::new(), next_seq: 0, closed: false }),
            available: Condvar::new(),
            cache,
            capacity,
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("zac-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// The shared compile cache.
    pub fn cache(&self) -> &CompileCache {
        &self.shared.cache
    }

    /// Enqueues an admitted request; every response (per-entry results and
    /// the terminal line) goes to `tx`. Pre-judged rejections are reported
    /// immediately; a queue that cannot fit the admitted entries rejects
    /// the request whole.
    pub fn submit(
        &self,
        planned: PlannedRequest,
        tx: Sender<Response>,
        base: Option<MetricsSnapshot>,
    ) {
        let total = planned.entries.len();
        let run = Arc::new(RequestRun {
            id: planned.id,
            compiler: planned.compiler,
            tx,
            start: Instant::now(),
            deadline_ms: planned.deadline_ms,
            trace: planned.trace,
            remaining: AtomicUsize::new(total),
            ok: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            place_ns: AtomicU64::new(0),
            schedule_ns: AtomicU64::new(0),
            base,
        });
        if total == 0 {
            finalize(&run);
            return;
        }

        let mut runnable = Vec::new();
        let mut prejudged = Vec::new();
        for entry in planned.entries {
            match entry {
                PlannedEntry::Run { index, staged } => runnable.push((index, staged)),
                PlannedEntry::Reject { index, name, reason } => {
                    prejudged.push((index, name, reason));
                }
            }
        }

        // Capacity check and enqueue under one lock, so two racing submits
        // cannot both squeeze past the cap.
        {
            let mut queue = self.shared.queue.lock().unwrap();
            let depth = queue.heap.len();
            if depth + runnable.len() > self.shared.capacity {
                drop(queue);
                SERVE_REQUESTS_REJECTED.incr();
                let reason = RejectReason::QueueFull { depth, cap: self.shared.capacity };
                run.tx.send(Response::Rejected { id: run.id.clone(), reason }).ok();
                return;
            }
            for (index, staged) in runnable {
                let seq = queue.next_seq;
                queue.next_seq += 1;
                queue.heap.push(Job {
                    priority: planned.priority,
                    seq,
                    run: Arc::clone(&run),
                    index,
                    staged,
                });
                SERVE_QUEUE_DEPTH.add(1);
            }
        }
        self.shared.available.notify_all();

        // Report the pre-judged rejections after the runnable entries are
        // queued; each one counts toward the request's completion.
        for (index, name, reason) in prejudged {
            run.rejected.fetch_add(1, AtomicOrdering::Relaxed);
            SERVE_ENTRIES_REJECTED.incr();
            run.tx
                .send(Response::Result {
                    id: run.id.clone(),
                    entry: index,
                    name,
                    outcome: EntryOutcome::Rejected(reason),
                })
                .ok();
            complete_entry(&run);
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.closed = true;
            let abandoned = queue.heap.len();
            queue.heap.clear();
            SERVE_QUEUE_DEPTH.add(-(abandoned as i64));
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().ok();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.heap.pop() {
                    break job;
                }
                if queue.closed {
                    return;
                }
                queue = shared.available.wait(queue).unwrap();
            }
        };
        SERVE_QUEUE_DEPTH.add(-1);
        process(shared, job);
    }
}

/// Runs one job: deadline check, then the bench harness's exact cache
/// get → compile → put sequence.
fn process(shared: &Shared, job: Job) {
    let run = &job.run;
    let waited_ms = u64::try_from(run.start.elapsed().as_millis()).unwrap_or(u64::MAX);
    let outcome = match run.deadline_ms {
        Some(deadline_ms) if waited_ms > deadline_ms => {
            EntryOutcome::Rejected(RejectReason::DeadlineExpired { deadline_ms, waited_ms })
        }
        _ => {
            // Span labels go through redaction: with `ZAC_REDACT=1` a trace
            // shows `[redacted:xxxxxxxx]`, not the customer's circuit name.
            let _span = span!("serve.exec.compile", &redact(&job.staged.name));
            let key = CacheKey::compute(&*run.compiler, &job.staged);
            match shared.cache.get(key) {
                Some(out) => EntryOutcome::Ok(Box::new(out)),
                None => match run.compiler.compile(&job.staged) {
                    Ok(out) => {
                        shared.cache.put(key, &out);
                        EntryOutcome::Ok(Box::new(out))
                    }
                    Err(CompileError::CircuitTooLarge { needed, available }) => {
                        EntryOutcome::Rejected(RejectReason::TooLarge { needed, available })
                    }
                    Err(CompileError::Failed(reason)) => EntryOutcome::Failed(reason),
                },
            }
        }
    };

    match &outcome {
        EntryOutcome::Ok(out) => {
            run.ok.fetch_add(1, AtomicOrdering::Relaxed);
            SERVE_ENTRIES_OK.incr();
            if let Some(phases) = out.phases {
                let ns = |d: std::time::Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
                run.place_ns.fetch_add(ns(phases.place), AtomicOrdering::Relaxed);
                run.schedule_ns.fetch_add(ns(phases.schedule), AtomicOrdering::Relaxed);
            }
        }
        EntryOutcome::Rejected(_) => {
            run.rejected.fetch_add(1, AtomicOrdering::Relaxed);
            SERVE_ENTRIES_REJECTED.incr();
        }
        EntryOutcome::Failed(_) => {
            run.failed.fetch_add(1, AtomicOrdering::Relaxed);
            SERVE_ENTRIES_FAILED.incr();
        }
    }
    run.tx
        .send(Response::Result {
            id: run.id.clone(),
            entry: job.index,
            name: job.staged.name.clone(),
            outcome,
        })
        .ok();
    complete_entry(run);
}

/// Marks one entry reported; the caller that retires the last one sends
/// the terminal `Done`.
fn complete_entry(run: &Arc<RequestRun>) {
    if run.remaining.fetch_sub(1, AtomicOrdering::AcqRel) == 1 {
        finalize(run);
    }
}

fn finalize(run: &RequestRun) {
    let latency_ms = u64::try_from(run.start.elapsed().as_millis()).unwrap_or(u64::MAX);
    // The metrics delta and trace are process-global: under concurrent
    // requests they include overlapping activity, exactly like
    // `BatchRunner::run_with_metrics` (see DESIGN.md §9).
    let metrics = run.base.as_ref().map(|base| {
        let delta = MetricsSnapshot::capture().delta_since(base);
        serde_json::from_str(&delta.to_json()).expect("snapshot JSON is well-formed")
    });
    let trace = (run.trace && zac_telemetry::enabled()).then(|| {
        let spans = zac_telemetry::take_spans();
        serde_json::from_str(&zac_telemetry::chrome_trace_json(&spans))
            .expect("trace JSON is well-formed")
    });
    SERVE_REQUESTS_COMPLETED.incr();
    SERVE_REQUEST_LATENCY_MS.observe(latency_ms);
    run.tx
        .send(Response::Done(Done {
            id: run.id.clone(),
            ok: run.ok.load(AtomicOrdering::Relaxed),
            rejected: run.rejected.load(AtomicOrdering::Relaxed),
            failed: run.failed.load(AtomicOrdering::Relaxed),
            latency_ms,
            phase_totals: PhaseTotals {
                place_ns: run.place_ns.load(AtomicOrdering::Relaxed),
                schedule_ns: run.schedule_ns.load(AtomicOrdering::Relaxed),
            },
            metrics,
            trace,
        }))
        .ok();
}
