//! `zac-serve` — the compile service over stdin/stdout.
//!
//! Reads one JSON request per line from stdin, streams JSON responses one
//! per line on stdout (interleaved across in-flight requests; correlate by
//! `id`). Exits when stdin closes and every submitted request has
//! terminated: EOF starts a graceful drain — no new requests are accepted,
//! every in-flight entry still gets its terminal response, the writer
//! flushes, and the process exits 0.
//!
//! Environment:
//!
//! * `ZAC_SERVE_WORKERS`  — worker threads (default: CPUs, capped at 8);
//! * `ZAC_SERVE_QUEUE`    — queue capacity in jobs (default 1024);
//! * `ZAC_CACHE_DIR`      — back the compile cache with the segment-log
//!   store in this directory; N services pointed at the same directory
//!   share one store (see DESIGN.md §4);
//! * `ZAC_WARM_MANIFEST`  — corpus manifest (JSON) whose cells are
//!   preloaded from disk into the memory tier before serving;
//! * `ZAC_SERVE_LOG`      — per-request stderr logging (names redacted
//!   when `ZAC_REDACT=1`);
//! * `ZAC_TELEMETRY`      — attach metrics deltas (and traces on request)
//!   to `Done` responses;
//! * `ZAC_FAULTS`         — arm a seeded fault plan (`seed:point=kind@rate,
//!   …`) for resilience testing; see DESIGN.md §10.

#![deny(clippy::unwrap_used)]

use std::io::{BufRead, Write};
use std::sync::mpsc::channel;
use zac_serve::{Response, Service, ServiceConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Writes one response line, retrying transient failures (including
/// injected ones at the `serve.session.write_line` fault point) a bounded
/// number of times. Output I/O is the one seam the service cannot route a
/// typed response through — the retry keeps a transient stdout hiccup from
/// silently dropping a terminal response.
fn write_line(lock: &mut impl Write, line: &str) -> std::io::Result<()> {
    let mut last = std::io::Error::other("write failed");
    // Once the line is buffered, only the flush is retried — re-running
    // the write after a transient flush failure would emit the response
    // twice, breaking the exactly-one-terminal-response invariant.
    let mut written = false;
    for _ in 0..3 {
        if !written {
            let wrote = match zac_telemetry::fault_point!("serve.session.write_line") {
                Some(e) => Err(e),
                None => writeln!(lock, "{line}"),
            };
            match wrote {
                Ok(()) => written = true,
                Err(e) => {
                    last = e;
                    continue;
                }
            }
        }
        match lock.flush() {
            Ok(()) => return Ok(()),
            Err(e) => last = e,
        }
    }
    Err(last)
}

fn main() {
    let mut config = ServiceConfig::default();
    config.workers = env_usize("ZAC_SERVE_WORKERS", config.workers);
    config.queue_capacity = env_usize("ZAC_SERVE_QUEUE", config.queue_capacity);
    if let Ok(dir) = std::env::var("ZAC_CACHE_DIR") {
        if !dir.is_empty() {
            match zac_cache::CompileCache::with_segment_store(4096, &dir) {
                Ok(cache) => config.cache = cache,
                Err(e) => {
                    // A broken cache directory must not take the service
                    // down; degrade to the in-memory default and say so.
                    eprintln!("zac-serve: cache dir {dir:?} unusable ({e}); running memory-only");
                }
            }
        }
    }
    if let Ok(path) = std::env::var("ZAC_WARM_MANIFEST") {
        if !path.is_empty() {
            match zac_core::CorpusManifest::load(&path) {
                Ok(manifest) => {
                    let report = config.cache.warm_from_manifest(&manifest);
                    eprintln!(
                        "zac-serve: warmed {}/{} manifest cells from {path}",
                        report.warmed, report.requested
                    );
                }
                Err(e) => {
                    eprintln!("zac-serve: warm manifest {path} unusable ({e}); starting cold")
                }
            }
        }
    }
    let service = Service::new(config);

    // One writer thread serializes all responses; per-request forwarders
    // feed it so streams interleave without tearing lines.
    let (out_tx, out_rx) = channel::<Response>();
    let writer = std::thread::spawn(move || {
        let stdout = std::io::stdout();
        for response in out_rx {
            let line = serde_json::to_string(&response).unwrap_or_default();
            let mut lock = stdout.lock();
            if write_line(&mut lock, &line).is_err() {
                return; // downstream closed for good; keep draining silently
            }
        }
    });

    let mut forwarders = Vec::new();
    for line in std::io::stdin().lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let rx = service.submit_line(&line);
        let out_tx = out_tx.clone();
        forwarders.push(std::thread::spawn(move || {
            for response in rx {
                if out_tx.send(response).is_err() {
                    return;
                }
            }
        }));
    }

    // Graceful drain: each forwarder's stream ends only after its request's
    // terminal response, so joining them guarantees no in-flight work is
    // abandoned; dropping the sender then lets the writer flush and exit.
    for forwarder in forwarders {
        forwarder.join().ok();
    }
    drop(out_tx);
    writer.join().ok();
}
