//! `zac-serve` — the compile service over stdin/stdout.
//!
//! Reads one JSON request per line from stdin, streams JSON responses one
//! per line on stdout (interleaved across in-flight requests; correlate by
//! `id`). Exits when stdin closes and every submitted request has
//! terminated. Diagnostics go to stderr.
//!
//! Environment:
//!
//! * `ZAC_SERVE_WORKERS`  — worker threads (default: CPUs, capped at 8);
//! * `ZAC_SERVE_QUEUE`    — queue capacity in jobs (default 1024);
//! * `ZAC_SERVE_LOG`      — per-request stderr logging (names redacted
//!   when `ZAC_REDACT=1`);
//! * `ZAC_TELEMETRY`      — attach metrics deltas (and traces on request)
//!   to `Done` responses.

use std::io::{BufRead, Write};
use std::sync::mpsc::channel;
use zac_serve::{Response, Service, ServiceConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let mut config = ServiceConfig::default();
    config.workers = env_usize("ZAC_SERVE_WORKERS", config.workers);
    config.queue_capacity = env_usize("ZAC_SERVE_QUEUE", config.queue_capacity);
    let service = Service::new(config);

    // One writer thread serializes all responses; per-request forwarders
    // feed it so streams interleave without tearing lines.
    let (out_tx, out_rx) = channel::<Response>();
    let writer = std::thread::spawn(move || {
        let stdout = std::io::stdout();
        for response in out_rx {
            let mut lock = stdout.lock();
            if writeln!(lock, "{}", serde_json::to_string(&response).unwrap_or_default()).is_err()
                || lock.flush().is_err()
            {
                return; // downstream closed; keep draining silently
            }
        }
    });

    let mut forwarders = Vec::new();
    for line in std::io::stdin().lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let rx = service.submit_line(&line);
        let out_tx = out_tx.clone();
        forwarders.push(std::thread::spawn(move || {
            for response in rx {
                if out_tx.send(response).is_err() {
                    return;
                }
            }
        }));
    }

    for forwarder in forwarders {
        forwarder.join().ok();
    }
    drop(out_tx);
    writer.join().ok();
}
