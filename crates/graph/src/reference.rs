//! Brute-force reference implementations.
//!
//! These exponential-time routines exist so the production algorithms in this
//! crate can be validated exhaustively on small instances by unit and
//! property-based tests. They are exported (rather than `#[cfg(test)]`) so
//! downstream crates can reuse them in their own tests.

use crate::assignment::CostMatrix;

/// Size of a maximum bipartite matching, by exhaustive augmentation.
///
/// `adj[u]` lists right-side neighbors of left vertex `u`. Intended for
/// `adj.len() <= ~10`.
pub fn brute_force_max_matching(adj: &[Vec<usize>], num_right: usize) -> usize {
    fn go(u: usize, adj: &[Vec<usize>], taken: &mut Vec<bool>) -> usize {
        if u == adj.len() {
            return 0;
        }
        // Option 1: leave u unmatched.
        let mut best = go(u + 1, adj, taken);
        // Option 2: match u to any free neighbor.
        for &v in &adj[u] {
            if !taken[v] {
                taken[v] = true;
                best = best.max(1 + go(u + 1, adj, taken));
                taken[v] = false;
            }
        }
        best
    }
    let mut taken = vec![false; num_right];
    go(0, adj, &mut taken)
}

/// Minimum total cost of a full matching of the rows, or `None` if infeasible.
///
/// Explores all column choices recursively; intended for matrices with at most
/// ~6 rows.
pub fn brute_force_assignment(cost: &CostMatrix) -> Option<f64> {
    if cost.rows() > cost.cols() {
        return None;
    }
    fn go(r: usize, cost: &CostMatrix, taken: &mut Vec<bool>) -> Option<f64> {
        if r == cost.rows() {
            return Some(0.0);
        }
        let mut best: Option<f64> = None;
        for c in 0..cost.cols() {
            if taken[c] || !cost.at(r, c).is_finite() {
                continue;
            }
            taken[c] = true;
            if let Some(rest) = go(r + 1, cost, taken) {
                let total = cost.at(r, c) + rest;
                best = Some(match best {
                    Some(b) if b <= total => b,
                    _ => total,
                });
            }
            taken[c] = false;
        }
        best
    }
    let mut taken = vec![false; cost.cols()];
    go(0, cost, &mut taken)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_on_tiny_graph() {
        let adj = vec![vec![0, 1], vec![0]];
        assert_eq!(brute_force_max_matching(&adj, 2), 2);
    }

    #[test]
    fn matching_with_contention() {
        let adj = vec![vec![0], vec![0], vec![0]];
        assert_eq!(brute_force_max_matching(&adj, 1), 1);
    }

    #[test]
    fn assignment_simple() {
        let cost = CostMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert_eq!(brute_force_assignment(&cost), Some(2.0));
    }

    #[test]
    fn assignment_infeasible() {
        let cost = CostMatrix::from_rows(&[vec![f64::INFINITY, f64::INFINITY]]);
        assert_eq!(brute_force_assignment(&cost), None);
    }

    #[test]
    fn assignment_too_many_rows() {
        let cost = CostMatrix::new(2, 1, 1.0);
        assert_eq!(brute_force_assignment(&cost), None);
    }
}
