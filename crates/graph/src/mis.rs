//! Greedy maximal independent set.
//!
//! Rearrangement-job generation (paper Sec. VI) follows Enola: build a
//! conflict graph whose vertices are pending qubit movements and whose edges
//! connect movements that cannot be executed by one AOD simultaneously, then
//! repeatedly extract a maximal independent set — each set becomes one
//! rearrangement job. The greedy min-degree heuristic gives large sets in
//! `O(n² log n)` overall, matching the complexity the paper quotes.

/// Computes a maximal independent set of the graph given by `adj`.
///
/// Vertices are `0..adj.len()`; `adj[v]` lists the neighbors of `v` (the
/// graph is treated as undirected: an edge may appear in either or both
/// lists). Vertices are visited in order of ascending degree, a classic
/// greedy heuristic that tends to produce large sets.
///
/// The result is sorted ascending and is guaranteed *maximal*: no vertex can
/// be added without breaking independence.
///
/// # Example
///
/// ```
/// use zac_graph::greedy_maximal_independent_set;
/// // Path 0-1-2: the unique maximum independent set is {0, 2}.
/// let adj = vec![vec![1], vec![0, 2], vec![1]];
/// assert_eq!(greedy_maximal_independent_set(&adj), vec![0, 2]);
/// ```
pub fn greedy_maximal_independent_set(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    // Symmetrize: an edge may be listed on one side only.
    let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, list) in adj.iter().enumerate() {
        for &v in list {
            debug_assert!(v < n, "neighbor out of range");
            if v != u {
                neighbors[u].push(v);
                neighbors[v].push(u);
            }
        }
    }
    for list in &mut neighbors {
        list.sort_unstable();
        list.dedup();
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| (neighbors[v].len(), v));

    let mut blocked = vec![false; n];
    let mut chosen = vec![false; n];
    for &v in &order {
        if !blocked[v] {
            chosen[v] = true;
            blocked[v] = true;
            for &w in &neighbors[v] {
                blocked[w] = true;
            }
        }
    }
    (0..n).filter(|&v| chosen[v]).collect()
}

/// Partitions all vertices into maximal independent sets by repeatedly
/// extracting a MIS from the remaining graph.
///
/// This is exactly how Enola (and ZAC's scheduler) turns a movement conflict
/// graph into a sequence of rearrangement jobs. Returns the list of sets, in
/// extraction order; their union is `0..adj.len()` and they are disjoint.
///
/// # Example
///
/// ```
/// use zac_graph::mis::partition_into_independent_sets;
/// // Triangle: every MIS is a single vertex, so 3 rounds.
/// let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
/// let sets = partition_into_independent_sets(&adj);
/// assert_eq!(sets.len(), 3);
/// ```
pub fn partition_into_independent_sets(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut alive: Vec<usize> = (0..n).collect(); // original ids still unassigned
    let mut result = Vec::new();
    while !alive.is_empty() {
        // Build the induced subgraph on `alive`.
        let mut index_of = vec![usize::MAX; n];
        for (i, &v) in alive.iter().enumerate() {
            index_of[v] = i;
        }
        let sub_adj: Vec<Vec<usize>> = alive
            .iter()
            .map(|&v| {
                adj[v]
                    .iter()
                    .filter_map(|&w| {
                        let i = index_of[w];
                        (i != usize::MAX).then_some(i)
                    })
                    .collect()
            })
            .collect();
        let mis = greedy_maximal_independent_set(&sub_adj);
        let set: Vec<usize> = mis.iter().map(|&i| alive[i]).collect();
        let in_set: std::collections::HashSet<usize> = set.iter().copied().collect();
        alive.retain(|v| !in_set.contains(v));
        result.push(set);
    }
    result
}

/// Buffer-reusing MIS partitioner: the workspace entry point the scheduler's
/// job-construction hot loop uses instead of
/// [`partition_into_independent_sets`].
///
/// One conflict graph is partitioned per movement phase of every transition
/// of a compilation — hundreds of small instances of similar shape. The
/// workspace keeps the CSR adjacency, the per-round induced subgraph and all
/// greedy-sweep scratch as reusable buffers, so steady-state partitions
/// perform **zero** heap allocations (the buffers grow to the largest
/// instance seen, then stay; asserted by `zac-schedule`'s counting-allocator
/// test). Results are *identical* to [`partition_into_independent_sets`] on
/// the same graph (locked by the equivalence proptest below).
///
/// # Example
///
/// ```
/// use zac_graph::mis::MisWorkspace;
///
/// let mut ws = MisWorkspace::new();
/// let mut sets: Vec<Vec<usize>> = Vec::new();
/// // Triangle: every MIS is a single vertex, so 3 rounds.
/// ws.reset(3);
/// ws.add_edge(0, 1);
/// ws.add_edge(1, 2);
/// ws.add_edge(0, 2);
/// let rounds = ws.partition_into(&mut sets);
/// assert_eq!(rounds, 3);
/// assert_eq!(sets[0], vec![0]);
/// ```
#[derive(Debug, Default)]
pub struct MisWorkspace {
    n: usize,
    /// Raw edges as added (unordered pairs; duplicates and self-loops are
    /// tolerated and normalized away in [`partition_into`]).
    ///
    /// [`partition_into`]: MisWorkspace::partition_into
    edges: Vec<(u32, u32)>,
    /// Symmetrized, sorted, deduped CSR adjacency of the full graph.
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
    /// Scratch: unassigned vertices (original ids, ascending).
    alive: Vec<usize>,
    /// Scratch: original id → index in `alive` (usize::MAX = dead).
    index_of: Vec<usize>,
    /// Scratch: per-round induced subgraph in CSR form.
    sub_offsets: Vec<usize>,
    sub_neighbors: Vec<u32>,
    /// Scratch: greedy-sweep order and state.
    order: Vec<usize>,
    blocked: Vec<bool>,
    chosen: Vec<bool>,
}

impl MisWorkspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new graph on vertices `0..n`, forgetting previous edges.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.edges.clear();
    }

    /// Adds an undirected edge; self-loops are ignored, duplicates merged.
    #[inline]
    pub fn add_edge(&mut self, u: usize, v: usize) {
        debug_assert!(u < self.n && v < self.n, "edge endpoint out of range");
        if u != v {
            self.edges.push((u as u32, v as u32));
        }
    }

    /// Builds the symmetrized CSR adjacency from the staged edges.
    fn build_csr(&mut self) {
        let n = self.n;
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        for &(u, v) in &self.edges {
            self.offsets[u as usize + 1] += 1;
            self.offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            self.offsets[i + 1] += self.offsets[i];
        }
        self.neighbors.clear();
        self.neighbors.resize(self.offsets[n], 0);
        // Fill using the offsets as running cursors, then restore them.
        for &(u, v) in &self.edges {
            let (u, v) = (u as usize, v as usize);
            self.neighbors[self.offsets[u]] = v as u32;
            self.offsets[u] += 1;
            self.neighbors[self.offsets[v]] = u as u32;
            self.offsets[v] += 1;
        }
        for i in (1..=n).rev() {
            self.offsets[i] = self.offsets[i - 1];
        }
        self.offsets[0] = 0;
        // Sort + dedup each row, compacting in place.
        let mut write = 0;
        let mut row_start = 0;
        for i in 0..n {
            let row_end = self.offsets[i + 1];
            let row = &mut self.neighbors[row_start..row_end];
            row.sort_unstable();
            let mut prev: Option<u32> = None;
            let mut new_len = 0;
            for k in 0..row.len() {
                let x = row[k];
                if prev != Some(x) {
                    row[new_len] = x;
                    new_len += 1;
                    prev = Some(x);
                }
            }
            self.neighbors.copy_within(row_start..row_start + new_len, write);
            write += new_len;
            row_start = row_end;
            self.offsets[i + 1] = write;
        }
        self.neighbors.truncate(write);
    }

    /// Partitions the staged graph into maximal independent sets, writing
    /// them into `sets` (inner `Vec`s are reused; entries past the returned
    /// count are stale leftovers kept for reuse) and returning how many sets
    /// were produced.
    ///
    /// The sets are identical — same vertices, same order, same number of
    /// rounds — to `partition_into_independent_sets` on the same graph.
    pub fn partition_into(&mut self, sets: &mut Vec<Vec<usize>>) -> usize {
        self.build_csr();
        let n = self.n;
        self.alive.clear();
        self.alive.extend(0..n);
        self.index_of.clear();
        self.index_of.resize(n, usize::MAX);
        let mut rounds = 0;
        while !self.alive.is_empty() {
            let m = self.alive.len();
            for (i, &v) in self.alive.iter().enumerate() {
                self.index_of[v] = i;
            }
            // Induced subgraph on `alive` (already symmetric + deduped, and
            // each row stays sorted: `alive` is ascending).
            self.sub_offsets.clear();
            self.sub_neighbors.clear();
            self.sub_offsets.push(0);
            for &v in &self.alive {
                for &w in &self.neighbors[self.offsets[v]..self.offsets[v + 1]] {
                    let i = self.index_of[w as usize];
                    if i != usize::MAX {
                        self.sub_neighbors.push(i as u32);
                    }
                }
                self.sub_offsets.push(self.sub_neighbors.len());
            }
            // Greedy sweep in ascending (degree, vertex) order.
            self.order.clear();
            self.order.extend(0..m);
            let sub_offsets = &self.sub_offsets;
            self.order.sort_unstable_by_key(|&i| (sub_offsets[i + 1] - sub_offsets[i], i));
            self.blocked.clear();
            self.blocked.resize(m, false);
            self.chosen.clear();
            self.chosen.resize(m, false);
            for &i in &self.order {
                if !self.blocked[i] {
                    self.chosen[i] = true;
                    self.blocked[i] = true;
                    for &w in &self.sub_neighbors[self.sub_offsets[i]..self.sub_offsets[i + 1]] {
                        self.blocked[w as usize] = true;
                    }
                }
            }
            if rounds == sets.len() {
                sets.push(Vec::new());
            }
            let set = &mut sets[rounds];
            set.clear();
            set.extend((0..m).filter(|&i| self.chosen[i]).map(|i| self.alive[i]));
            rounds += 1;
            // Retire chosen vertices; `index_of` marks them dead for the
            // next round's induced-subgraph pass.
            for &v in set.iter() {
                self.index_of[v] = usize::MAX;
            }
            let index_of = &self.index_of;
            self.alive.retain(|&v| index_of[v] != usize::MAX);
        }
        rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_independent(adj: &[Vec<usize>], set: &[usize]) -> bool {
        let s: std::collections::HashSet<usize> = set.iter().copied().collect();
        for &v in set {
            for &w in &adj[v] {
                if w != v && s.contains(&w) {
                    return false;
                }
            }
        }
        // also check reverse direction (one-sided edge lists)
        for (u, list) in adj.iter().enumerate() {
            for &v in list {
                if u != v && s.contains(&u) && s.contains(&v) {
                    return false;
                }
            }
        }
        true
    }

    fn is_maximal(adj: &[Vec<usize>], set: &[usize]) -> bool {
        let s: std::collections::HashSet<usize> = set.iter().copied().collect();
        'outer: for v in 0..adj.len() {
            if s.contains(&v) {
                continue;
            }
            for &w in &adj[v] {
                if s.contains(&w) {
                    continue 'outer;
                }
            }
            for (u, list) in adj.iter().enumerate() {
                if s.contains(&u) && list.contains(&v) {
                    continue 'outer;
                }
            }
            return false; // v could be added
        }
        true
    }

    #[test]
    fn empty() {
        assert!(greedy_maximal_independent_set(&[]).is_empty());
    }

    #[test]
    fn edgeless_graph_takes_everything() {
        let adj = vec![vec![], vec![], vec![]];
        assert_eq!(greedy_maximal_independent_set(&adj), vec![0, 1, 2]);
    }

    #[test]
    fn path_graph_optimal() {
        let adj = vec![vec![1], vec![0, 2], vec![1]];
        assert_eq!(greedy_maximal_independent_set(&adj), vec![0, 2]);
    }

    #[test]
    fn star_prefers_leaves() {
        // Center 0 connected to 1..5; min-degree ordering picks the leaves.
        let adj = vec![vec![1, 2, 3, 4, 5], vec![], vec![], vec![], vec![], vec![]];
        let mis = greedy_maximal_independent_set(&adj);
        assert_eq!(mis, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn one_sided_edges_are_symmetrized() {
        // Edge 0-1 listed only on vertex 0's list.
        let adj = vec![vec![1], vec![]];
        let mis = greedy_maximal_independent_set(&adj);
        assert_eq!(mis.len(), 1);
        assert!(is_independent(&adj, &mis));
    }

    #[test]
    fn self_loops_ignored() {
        let adj = vec![vec![0], vec![1]];
        let mis = greedy_maximal_independent_set(&adj);
        assert_eq!(mis, vec![0, 1]);
    }

    #[test]
    fn partition_covers_all_vertices_disjointly() {
        let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1], vec![4], vec![3]];
        let sets = partition_into_independent_sets(&adj);
        let mut all: Vec<usize> = sets.concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        for set in &sets {
            assert!(is_independent(&adj, set));
        }
    }

    #[test]
    fn partition_of_triangle_needs_three_rounds() {
        let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        assert_eq!(partition_into_independent_sets(&adj).len(), 3);
    }

    /// Feeds an adjacency-list graph into a workspace (each edge once).
    fn load_workspace(ws: &mut MisWorkspace, adj: &[Vec<usize>]) {
        ws.reset(adj.len());
        for (u, list) in adj.iter().enumerate() {
            for &v in list {
                ws.add_edge(u, v);
            }
        }
    }

    #[test]
    fn workspace_matches_partition_on_fixed_graphs() {
        let graphs: Vec<Vec<Vec<usize>>> = vec![
            vec![],
            vec![vec![], vec![], vec![]],
            vec![vec![1], vec![0, 2], vec![1]],
            vec![vec![1, 2], vec![0, 2], vec![0, 1], vec![4], vec![3]],
            vec![vec![1, 2, 3, 4, 5], vec![], vec![], vec![], vec![], vec![]],
            vec![vec![1], vec![]],  // one-sided edge
            vec![vec![0], vec![1]], // self-loops
        ];
        let mut ws = MisWorkspace::new();
        let mut sets: Vec<Vec<usize>> = Vec::new();
        for adj in &graphs {
            let expect = partition_into_independent_sets(adj);
            load_workspace(&mut ws, adj);
            let rounds = ws.partition_into(&mut sets);
            assert_eq!(&sets[..rounds], &expect[..], "{adj:?}");
        }
    }

    /// Reused across many instances, the workspace keeps producing the same
    /// partitions (stale buffers from larger graphs never leak).
    #[test]
    fn workspace_reuse_is_stateless_across_instances() {
        let big = vec![vec![1, 2, 3], vec![0, 2], vec![0, 1], vec![0], vec![], vec![4]];
        let small = vec![vec![1], vec![0, 2], vec![1]];
        let mut ws = MisWorkspace::new();
        let mut sets: Vec<Vec<usize>> = Vec::new();
        for adj in [&big, &small, &big, &small] {
            load_workspace(&mut ws, adj);
            let rounds = ws.partition_into(&mut sets);
            assert_eq!(&sets[..rounds], &partition_into_independent_sets(adj)[..]);
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_graph() -> impl Strategy<Value = Vec<Vec<usize>>> {
            (1usize..10).prop_flat_map(|n| {
                proptest::collection::vec(proptest::collection::vec(0..n, 0..n), n..=n)
            })
        }

        proptest! {
            #[test]
            fn mis_is_independent_and_maximal(adj in arb_graph()) {
                let mis = greedy_maximal_independent_set(&adj);
                prop_assert!(is_independent(&adj, &mis));
                prop_assert!(is_maximal(&adj, &mis));
            }

            #[test]
            fn partition_is_exact_cover(adj in arb_graph()) {
                let sets = partition_into_independent_sets(&adj);
                let mut all: Vec<usize> = sets.concat();
                all.sort_unstable();
                let expect: Vec<usize> = (0..adj.len()).collect();
                prop_assert_eq!(all, expect);
                for set in &sets {
                    prop_assert!(is_independent(&adj, set));
                }
            }

            /// The workspace partitioner is exactly equivalent to the
            /// allocating one — same sets, same order, same rounds — on
            /// arbitrary graphs (incl. one-sided edges and self-loops).
            #[test]
            fn workspace_partition_equals_allocating_partition(adj in arb_graph()) {
                let expect = partition_into_independent_sets(&adj);
                let mut ws = MisWorkspace::new();
                load_workspace(&mut ws, &adj);
                let mut sets: Vec<Vec<usize>> = Vec::new();
                let rounds = ws.partition_into(&mut sets);
                prop_assert_eq!(&sets[..rounds], &expect[..]);
            }
        }
    }
}
