//! Greedy maximal independent set.
//!
//! Rearrangement-job generation (paper Sec. VI) follows Enola: build a
//! conflict graph whose vertices are pending qubit movements and whose edges
//! connect movements that cannot be executed by one AOD simultaneously, then
//! repeatedly extract a maximal independent set — each set becomes one
//! rearrangement job. The greedy min-degree heuristic gives large sets in
//! `O(n² log n)` overall, matching the complexity the paper quotes.

/// Computes a maximal independent set of the graph given by `adj`.
///
/// Vertices are `0..adj.len()`; `adj[v]` lists the neighbors of `v` (the
/// graph is treated as undirected: an edge may appear in either or both
/// lists). Vertices are visited in order of ascending degree, a classic
/// greedy heuristic that tends to produce large sets.
///
/// The result is sorted ascending and is guaranteed *maximal*: no vertex can
/// be added without breaking independence.
///
/// # Example
///
/// ```
/// use zac_graph::greedy_maximal_independent_set;
/// // Path 0-1-2: the unique maximum independent set is {0, 2}.
/// let adj = vec![vec![1], vec![0, 2], vec![1]];
/// assert_eq!(greedy_maximal_independent_set(&adj), vec![0, 2]);
/// ```
pub fn greedy_maximal_independent_set(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    // Symmetrize: an edge may be listed on one side only.
    let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, list) in adj.iter().enumerate() {
        for &v in list {
            debug_assert!(v < n, "neighbor out of range");
            if v != u {
                neighbors[u].push(v);
                neighbors[v].push(u);
            }
        }
    }
    for list in &mut neighbors {
        list.sort_unstable();
        list.dedup();
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| (neighbors[v].len(), v));

    let mut blocked = vec![false; n];
    let mut chosen = vec![false; n];
    for &v in &order {
        if !blocked[v] {
            chosen[v] = true;
            blocked[v] = true;
            for &w in &neighbors[v] {
                blocked[w] = true;
            }
        }
    }
    (0..n).filter(|&v| chosen[v]).collect()
}

/// Partitions all vertices into maximal independent sets by repeatedly
/// extracting a MIS from the remaining graph.
///
/// This is exactly how Enola (and ZAC's scheduler) turns a movement conflict
/// graph into a sequence of rearrangement jobs. Returns the list of sets, in
/// extraction order; their union is `0..adj.len()` and they are disjoint.
///
/// # Example
///
/// ```
/// use zac_graph::mis::partition_into_independent_sets;
/// // Triangle: every MIS is a single vertex, so 3 rounds.
/// let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
/// let sets = partition_into_independent_sets(&adj);
/// assert_eq!(sets.len(), 3);
/// ```
pub fn partition_into_independent_sets(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut alive: Vec<usize> = (0..n).collect(); // original ids still unassigned
    let mut result = Vec::new();
    while !alive.is_empty() {
        // Build the induced subgraph on `alive`.
        let mut index_of = vec![usize::MAX; n];
        for (i, &v) in alive.iter().enumerate() {
            index_of[v] = i;
        }
        let sub_adj: Vec<Vec<usize>> = alive
            .iter()
            .map(|&v| {
                adj[v]
                    .iter()
                    .filter_map(|&w| {
                        let i = index_of[w];
                        (i != usize::MAX).then_some(i)
                    })
                    .collect()
            })
            .collect();
        let mis = greedy_maximal_independent_set(&sub_adj);
        let set: Vec<usize> = mis.iter().map(|&i| alive[i]).collect();
        let in_set: std::collections::HashSet<usize> = set.iter().copied().collect();
        alive.retain(|v| !in_set.contains(v));
        result.push(set);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_independent(adj: &[Vec<usize>], set: &[usize]) -> bool {
        let s: std::collections::HashSet<usize> = set.iter().copied().collect();
        for &v in set {
            for &w in &adj[v] {
                if w != v && s.contains(&w) {
                    return false;
                }
            }
        }
        // also check reverse direction (one-sided edge lists)
        for (u, list) in adj.iter().enumerate() {
            for &v in list {
                if u != v && s.contains(&u) && s.contains(&v) {
                    return false;
                }
            }
        }
        true
    }

    fn is_maximal(adj: &[Vec<usize>], set: &[usize]) -> bool {
        let s: std::collections::HashSet<usize> = set.iter().copied().collect();
        'outer: for v in 0..adj.len() {
            if s.contains(&v) {
                continue;
            }
            for &w in &adj[v] {
                if s.contains(&w) {
                    continue 'outer;
                }
            }
            for (u, list) in adj.iter().enumerate() {
                if s.contains(&u) && list.contains(&v) {
                    continue 'outer;
                }
            }
            return false; // v could be added
        }
        true
    }

    #[test]
    fn empty() {
        assert!(greedy_maximal_independent_set(&[]).is_empty());
    }

    #[test]
    fn edgeless_graph_takes_everything() {
        let adj = vec![vec![], vec![], vec![]];
        assert_eq!(greedy_maximal_independent_set(&adj), vec![0, 1, 2]);
    }

    #[test]
    fn path_graph_optimal() {
        let adj = vec![vec![1], vec![0, 2], vec![1]];
        assert_eq!(greedy_maximal_independent_set(&adj), vec![0, 2]);
    }

    #[test]
    fn star_prefers_leaves() {
        // Center 0 connected to 1..5; min-degree ordering picks the leaves.
        let adj = vec![vec![1, 2, 3, 4, 5], vec![], vec![], vec![], vec![], vec![]];
        let mis = greedy_maximal_independent_set(&adj);
        assert_eq!(mis, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn one_sided_edges_are_symmetrized() {
        // Edge 0-1 listed only on vertex 0's list.
        let adj = vec![vec![1], vec![]];
        let mis = greedy_maximal_independent_set(&adj);
        assert_eq!(mis.len(), 1);
        assert!(is_independent(&adj, &mis));
    }

    #[test]
    fn self_loops_ignored() {
        let adj = vec![vec![0], vec![1]];
        let mis = greedy_maximal_independent_set(&adj);
        assert_eq!(mis, vec![0, 1]);
    }

    #[test]
    fn partition_covers_all_vertices_disjointly() {
        let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1], vec![4], vec![3]];
        let sets = partition_into_independent_sets(&adj);
        let mut all: Vec<usize> = sets.concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        for set in &sets {
            assert!(is_independent(&adj, set));
        }
    }

    #[test]
    fn partition_of_triangle_needs_three_rounds() {
        let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        assert_eq!(partition_into_independent_sets(&adj).len(), 3);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_graph() -> impl Strategy<Value = Vec<Vec<usize>>> {
            (1usize..10).prop_flat_map(|n| {
                proptest::collection::vec(proptest::collection::vec(0..n, 0..n), n..=n)
            })
        }

        proptest! {
            #[test]
            fn mis_is_independent_and_maximal(adj in arb_graph()) {
                let mis = greedy_maximal_independent_set(&adj);
                prop_assert!(is_independent(&adj, &mis));
                prop_assert!(is_maximal(&adj, &mis));
            }

            #[test]
            fn partition_is_exact_cover(adj in arb_graph()) {
                let sets = partition_into_independent_sets(&adj);
                let mut all: Vec<usize> = sets.concat();
                all.sort_unstable();
                let expect: Vec<usize> = (0..adj.len()).collect();
                prop_assert_eq!(all, expect);
                for set in &sets {
                    prop_assert!(is_independent(&adj, set));
                }
            }
        }
    }
}
