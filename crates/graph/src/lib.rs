//! Graph-algorithm substrate for the ZAC compiler.
//!
//! The ZAC paper (HPCA 2025) relies on four classic combinatorial routines,
//! which this crate implements from scratch:
//!
//! * [`hopcroft_karp`] — maximum-cardinality bipartite matching, used to find
//!   the largest set of *reusable* qubits between two Rydberg stages
//!   (paper Sec. V-B.1).
//! * [`assignment`] — minimum-weight full matching on a dense bipartite graph
//!   (the Jonker–Volgenant / shortest-augmenting-path algorithm, the same
//!   family SciPy's `linear_sum_assignment` uses), used for gate placement and
//!   non-reuse qubit placement (paper Sec. V-B.2/3).
//! * [`mis`] — greedy maximal independent set, used to group compatible qubit
//!   movements into rearrangement jobs (paper Sec. VI, following Enola).
//! * [`edge_coloring`] — Misra–Gries edge coloring (≤ Δ+1 colors) plus a greedy
//!   multigraph variant, used by the Enola baseline to schedule entangling
//!   gates into a near-optimal number of Rydberg stages.
//!
//! A [`reference`] module provides brute-force implementations used by the
//! property-based tests to validate the production algorithms on small inputs.
//!
//! # Example
//!
//! ```
//! use zac_graph::max_bipartite_matching;
//!
//! // 2 left vertices, 2 right vertices, a perfect matching exists.
//! let adj = vec![vec![0, 1], vec![0]];
//! let m = max_bipartite_matching(&adj, 2);
//! assert_eq!(m.iter().filter(|x| x.is_some()).count(), 2);
//! ```

pub mod assignment;
pub mod edge_coloring;
pub mod hopcroft_karp;
pub mod mis;
pub mod reference;

pub use assignment::{min_weight_full_matching, AssignmentError, AssignmentWorkspace, CostMatrix};
pub use edge_coloring::{greedy_multigraph_edge_coloring, misra_gries_edge_coloring};
pub use hopcroft_karp::max_bipartite_matching;
pub use mis::{greedy_maximal_independent_set, MisWorkspace};
