//! Hopcroft–Karp maximum-cardinality bipartite matching.
//!
//! The ZAC placement stage models qubit reuse between two consecutive Rydberg
//! stages as a bipartite graph: left vertices are gates of stage *t*, right
//! vertices are gates of stage *t+1*, and an edge connects two gates that share
//! a qubit. A maximum matching then selects the largest conflict-free set of
//! reuses (paper Sec. V-B.1). Hopcroft–Karp runs in `O(|E|·sqrt(|V|))`.

/// Computes a maximum-cardinality matching of a bipartite graph.
///
/// `adj[u]` lists the right-side neighbors of left vertex `u`; right vertices
/// are `0..num_right`. Returns `match_left` where `match_left[u]` is the right
/// vertex matched to `u` (or `None`).
///
/// Duplicate entries in an adjacency list are tolerated.
///
/// # Example
///
/// ```
/// use zac_graph::hopcroft_karp::max_bipartite_matching;
/// let adj = vec![vec![0], vec![0, 1], vec![1]];
/// let m = max_bipartite_matching(&adj, 2);
/// // Only two right vertices exist, so at most 2 pairs can match.
/// assert_eq!(m.iter().filter(|x| x.is_some()).count(), 2);
/// ```
pub fn max_bipartite_matching(adj: &[Vec<usize>], num_right: usize) -> Vec<Option<usize>> {
    let num_left = adj.len();
    debug_assert!(
        adj.iter().flatten().all(|&v| v < num_right),
        "adjacency list references right vertex out of range"
    );

    const NIL: usize = usize::MAX;
    let mut match_left = vec![NIL; num_left];
    let mut match_right = vec![NIL; num_right];
    let mut dist = vec![0u32; num_left];
    let mut queue = Vec::with_capacity(num_left);

    // BFS builds the layered graph; returns true if an augmenting path exists.
    let bfs = |match_left: &[usize],
               match_right: &[usize],
               dist: &mut [u32],
               queue: &mut Vec<usize>|
     -> bool {
        const INF: u32 = u32::MAX;
        queue.clear();
        for u in 0..num_left {
            if match_left[u] == NIL {
                dist[u] = 0;
                queue.push(u);
            } else {
                dist[u] = INF;
            }
        }
        let mut found = false;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &v in &adj[u] {
                let w = match_right[v];
                if w == NIL {
                    found = true;
                } else if dist[w] == INF {
                    dist[w] = dist[u] + 1;
                    queue.push(w);
                }
            }
        }
        found
    };

    fn dfs(
        u: usize,
        adj: &[Vec<usize>],
        match_left: &mut [usize],
        match_right: &mut [usize],
        dist: &mut [u32],
    ) -> bool {
        const NIL: usize = usize::MAX;
        for i in 0..adj[u].len() {
            let v = adj[u][i];
            let w = match_right[v];
            if w == NIL || (dist[w] == dist[u] + 1 && dfs(w, adj, match_left, match_right, dist)) {
                match_left[u] = v;
                match_right[v] = u;
                return true;
            }
        }
        dist[u] = u32::MAX;
        false
    }

    while bfs(&match_left, &match_right, &mut dist, &mut queue) {
        for u in 0..num_left {
            if match_left[u] == NIL {
                dfs(u, adj, &mut match_left, &mut match_right, &mut dist);
            }
        }
    }

    match_left.into_iter().map(|v| if v == NIL { None } else { Some(v) }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::brute_force_max_matching;

    fn matching_size(m: &[Option<usize>]) -> usize {
        m.iter().filter(|x| x.is_some()).count()
    }

    fn assert_valid(adj: &[Vec<usize>], m: &[Option<usize>]) {
        let mut used = std::collections::HashSet::new();
        for (u, v) in m.iter().enumerate() {
            if let Some(v) = v {
                assert!(adj[u].contains(v), "matched pair ({u},{v}) is not an edge");
                assert!(used.insert(*v), "right vertex {v} matched twice");
            }
        }
    }

    #[test]
    fn empty_graph() {
        let m = max_bipartite_matching(&[], 0);
        assert!(m.is_empty());
    }

    #[test]
    fn no_edges() {
        let adj = vec![vec![], vec![]];
        let m = max_bipartite_matching(&adj, 3);
        assert_eq!(matching_size(&m), 0);
    }

    #[test]
    fn perfect_matching_on_cycle() {
        // C4 as bipartite: left {0,1}, right {0,1}, edges 0-0, 0-1, 1-0, 1-1.
        let adj = vec![vec![0, 1], vec![0, 1]];
        let m = max_bipartite_matching(&adj, 2);
        assert_eq!(matching_size(&m), 2);
        assert_valid(&adj, &m);
    }

    #[test]
    fn augmenting_path_needed() {
        // Greedy left-to-right would match 0-0 and block vertex 1.
        let adj = vec![vec![0], vec![0, 1]];
        let m = max_bipartite_matching(&adj, 2);
        assert_eq!(matching_size(&m), 2);
        assert_valid(&adj, &m);
    }

    #[test]
    fn long_augmenting_chain() {
        // Chain forcing multiple phases: li matched to ri only after reshuffle.
        let adj = vec![vec![0], vec![0, 1], vec![1, 2], vec![2, 3]];
        let m = max_bipartite_matching(&adj, 4);
        assert_eq!(matching_size(&m), 4);
        assert_valid(&adj, &m);
    }

    #[test]
    fn duplicate_edges_tolerated() {
        let adj = vec![vec![0, 0, 0], vec![0, 1, 1]];
        let m = max_bipartite_matching(&adj, 2);
        assert_eq!(matching_size(&m), 2);
        assert_valid(&adj, &m);
    }

    #[test]
    fn unbalanced_sides() {
        let adj = vec![vec![0, 1, 2, 3, 4]];
        let m = max_bipartite_matching(&adj, 5);
        assert_eq!(matching_size(&m), 1);
        assert_valid(&adj, &m);
    }

    #[test]
    fn star_graph() {
        // All left vertices want right vertex 0: only one can have it.
        let adj = vec![vec![0]; 6];
        let m = max_bipartite_matching(&adj, 1);
        assert_eq!(matching_size(&m), 1);
        assert_valid(&adj, &m);
    }

    #[test]
    fn matches_brute_force_on_fixed_cases() {
        let cases: Vec<(Vec<Vec<usize>>, usize)> = vec![
            (vec![vec![0, 2], vec![1], vec![0, 1], vec![2, 3]], 4),
            (vec![vec![1, 2], vec![2], vec![2]], 3),
            (vec![vec![0], vec![0], vec![0, 1]], 2),
        ];
        for (adj, nr) in cases {
            let hk = max_bipartite_matching(&adj, nr);
            let bf = brute_force_max_matching(&adj, nr);
            assert_eq!(matching_size(&hk), bf, "adj={adj:?}");
            assert_valid(&adj, &hk);
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_bipartite() -> impl Strategy<Value = (Vec<Vec<usize>>, usize)> {
            (1usize..7, 1usize..7).prop_flat_map(|(nl, nr)| {
                (
                    proptest::collection::vec(proptest::collection::vec(0..nr, 0..=nr), nl..=nl),
                    Just(nr),
                )
            })
        }

        proptest! {
            #[test]
            fn hk_matches_brute_force((adj, nr) in arb_bipartite()) {
                let hk = max_bipartite_matching(&adj, nr);
                let bf = brute_force_max_matching(&adj, nr);
                prop_assert_eq!(matching_size(&hk), bf);
                assert_valid(&adj, &hk);
            }
        }
    }
}
