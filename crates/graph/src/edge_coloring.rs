//! Edge coloring for Rydberg-stage scheduling.
//!
//! The Enola baseline (paper Sec. II) schedules entangling gates with an edge
//! coloring of the interaction graph: vertices are qubits, edges are 2Q gates,
//! and each color class becomes one Rydberg stage. For *simple* graphs the
//! Misra–Gries algorithm achieves the near-optimal bound of Δ+1 colors; for
//! circuits that apply several gates to the same qubit pair the interaction
//! graph is a multigraph and a greedy pass is used instead.

const NONE: usize = usize::MAX;

/// Colors the edges of a simple graph with at most Δ+1 colors (Misra–Gries).
///
/// `edges` are undirected pairs over vertices `0..n`. Returns one color per
/// edge (colors are `0..=Δ`), such that no two edges sharing a vertex receive
/// the same color.
///
/// # Panics
///
/// Panics if an edge is a self-loop, references a vertex `>= n`, or if the
/// same pair appears twice (use [`greedy_multigraph_edge_coloring`] for
/// multigraphs).
///
/// # Example
///
/// ```
/// use zac_graph::misra_gries_edge_coloring;
/// // A triangle needs 3 colors (Δ = 2, so Δ+1 = 3).
/// let colors = misra_gries_edge_coloring(3, &[(0, 1), (1, 2), (2, 0)]);
/// assert_eq!(colors.len(), 3);
/// let mut sorted = colors.clone();
/// sorted.sort_unstable();
/// sorted.dedup();
/// assert_eq!(sorted.len(), 3);
/// ```
pub fn misra_gries_edge_coloring(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    // Validate.
    {
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            assert_ne!(a, b, "self-loop ({a},{b}) not allowed");
            let key = (a.min(b), a.max(b));
            assert!(seen.insert(key), "duplicate edge ({a},{b}); use the multigraph variant");
        }
    }

    let mut degree = vec![0usize; n];
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); n]; // edge ids
    for (e, &(a, b)) in edges.iter().enumerate() {
        degree[a] += 1;
        degree[b] += 1;
        incident[a].push(e);
        incident[b].push(e);
    }
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    let num_colors = max_deg + 1;

    let mut color = vec![NONE; edges.len()];
    // used[v][c] = edge id colored c incident to v, or NONE.
    let mut used: Vec<Vec<usize>> = vec![vec![NONE; num_colors]; n];

    let other = |e: usize, v: usize| -> usize {
        let (a, b) = edges[e];
        if a == v {
            b
        } else {
            a
        }
    };

    let free_color = |used: &[Vec<usize>], v: usize| -> usize {
        (0..num_colors).find(|&c| used[v][c] == NONE).expect("Δ+1 colors guarantee a free one")
    };

    for e0 in 0..edges.len() {
        let (u, v) = edges[e0];

        // Build a maximal fan of u starting at v.
        let mut fan: Vec<usize> = vec![v];
        let mut fan_edges: Vec<usize> = vec![e0];
        let mut in_fan = std::collections::HashSet::new();
        in_fan.insert(v);
        loop {
            let last = *fan.last().unwrap();
            let mut extended = false;
            for &e in &incident[u] {
                if color[e] == NONE {
                    continue;
                }
                let x = other(e, u);
                if in_fan.contains(&x) {
                    continue;
                }
                // color(u, x) must be free on the current last fan vertex.
                if used[last][color[e]] == NONE {
                    fan.push(x);
                    fan_edges.push(e);
                    in_fan.insert(x);
                    extended = true;
                    break;
                }
            }
            if !extended {
                break;
            }
        }

        let c = free_color(&used, u);
        let d = free_color(&used, *fan.last().unwrap());

        if c != d {
            // Invert the cd-path starting at u (alternates d, c, d, ...).
            // First walk the path with the colors *before* inversion (flipping
            // while walking would immediately re-find the flipped edge), then
            // swap colors in two passes (clear, then set) so a middle vertex's
            // two path edges don't clobber each other's `used` entries.
            let mut path_edges = Vec::new();
            let mut cur = u;
            let mut col = d;
            loop {
                let e = used[cur][col];
                if e == NONE {
                    break;
                }
                path_edges.push(e);
                cur = other(e, cur);
                col = if col == c { d } else { c };
            }
            for &e in &path_edges {
                let old = color[e];
                let (a1, b1) = edges[e];
                used[a1][old] = NONE;
                used[b1][old] = NONE;
            }
            for &e in &path_edges {
                let new = if color[e] == c { d } else { c };
                let (a1, b1) = edges[e];
                color[e] = new;
                used[a1][new] = e;
                used[b1][new] = e;
            }
        }

        // Find w in the fan such that the prefix is still a fan and d is free
        // at w; rotate the prefix and color (u, w) with d.
        let mut w_index = None;
        'search: for i in 0..fan.len() {
            if used[fan[i]][d] != NONE {
                continue;
            }
            // Verify the prefix [0..=i] is a fan under current colors.
            for j in 1..=i {
                let ce = color[fan_edges[j]];
                if ce == NONE || used[fan[j - 1]][ce] != NONE {
                    continue 'search;
                }
            }
            w_index = Some(i);
            break;
        }
        let w_index = w_index.expect("Misra–Gries invariant: a rotatable fan prefix exists");

        // Rotate: shift colors down the fan prefix.
        for j in 0..w_index {
            let e_from = fan_edges[j + 1];
            let e_to = fan_edges[j];
            let ce = color[e_from];
            // Un-color e_from.
            let (a1, b1) = edges[e_from];
            used[a1][ce] = NONE;
            used[b1][ce] = NONE;
            color[e_from] = NONE;
            // Color e_to (previous color of e_to, if any, was already shifted
            // away in the prior iteration or it is e0 which is uncolored).
            if color[e_to] != NONE {
                let old = color[e_to];
                let (a2, b2) = edges[e_to];
                used[a2][old] = NONE;
                used[b2][old] = NONE;
            }
            let (a2, b2) = edges[e_to];
            color[e_to] = ce;
            used[a2][ce] = e_to;
            used[b2][ce] = e_to;
        }
        // Assign d to the last prefix edge.
        let e_w = fan_edges[w_index];
        if color[e_w] != NONE {
            let old = color[e_w];
            let (a2, b2) = edges[e_w];
            used[a2][old] = NONE;
            used[b2][old] = NONE;
        }
        let (a2, b2) = edges[e_w];
        color[e_w] = d;
        used[a2][d] = e_w;
        used[b2][d] = e_w;
    }

    color
}

/// Greedy edge coloring that tolerates multigraphs (repeated qubit pairs).
///
/// Each edge gets the smallest color unused at both endpoints; at most
/// `2Δ - 1` colors are produced. This is the scheduling fallback for circuits
/// whose interaction graph repeats pairs (e.g. QFT-style circuits once
/// lowered), where [`misra_gries_edge_coloring`] does not apply.
///
/// # Example
///
/// ```
/// use zac_graph::greedy_multigraph_edge_coloring;
/// let colors = greedy_multigraph_edge_coloring(2, &[(0, 1), (0, 1)]);
/// assert_ne!(colors[0], colors[1]);
/// ```
pub fn greedy_multigraph_edge_coloring(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut used: Vec<Vec<bool>> = vec![Vec::new(); n];
    let mut colors = Vec::with_capacity(edges.len());
    for &(a, b) in edges {
        assert!(a < n && b < n, "edge ({a},{b}) out of range");
        assert_ne!(a, b, "self-loop ({a},{b}) not allowed");
        let mut c = 0;
        loop {
            let a_used = used[a].get(c).copied().unwrap_or(false);
            let b_used = used[b].get(c).copied().unwrap_or(false);
            if !a_used && !b_used {
                break;
            }
            c += 1;
        }
        for v in [a, b] {
            if used[v].len() <= c {
                used[v].resize(c + 1, false);
            }
            used[v][c] = true;
        }
        colors.push(c);
    }
    colors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_proper(n: usize, edges: &[(usize, usize)], colors: &[usize]) {
        assert_eq!(edges.len(), colors.len());
        let mut seen = std::collections::HashSet::new();
        for (e, &(a, b)) in edges.iter().enumerate() {
            for v in [a, b] {
                assert!(seen.insert((v, colors[e], e)), "sanity: unique tuples");
            }
            let _ = n;
        }
        // No two edges sharing a vertex may share a color.
        for i in 0..edges.len() {
            for j in (i + 1)..edges.len() {
                let (a, b) = edges[i];
                let (c, d) = edges[j];
                if a == c || a == d || b == c || b == d {
                    assert_ne!(colors[i], colors[j], "edges {i} and {j} conflict");
                }
            }
        }
    }

    fn max_degree(n: usize, edges: &[(usize, usize)]) -> usize {
        let mut deg = vec![0usize; n];
        for &(a, b) in edges {
            deg[a] += 1;
            deg[b] += 1;
        }
        deg.into_iter().max().unwrap_or(0)
    }

    #[test]
    fn empty_graph() {
        let colors = misra_gries_edge_coloring(0, &[]);
        assert!(colors.is_empty());
    }

    #[test]
    fn single_edge_uses_one_color() {
        let colors = misra_gries_edge_coloring(2, &[(0, 1)]);
        assert_eq!(colors, vec![0]);
    }

    #[test]
    fn path_uses_two_colors() {
        let edges = [(0, 1), (1, 2), (2, 3)];
        let colors = misra_gries_edge_coloring(4, &edges);
        assert_proper(4, &edges, &colors);
        assert!(colors.iter().max().unwrap() <= &2);
    }

    #[test]
    fn triangle_needs_three() {
        let edges = [(0, 1), (1, 2), (2, 0)];
        let colors = misra_gries_edge_coloring(3, &edges);
        assert_proper(3, &edges, &colors);
    }

    #[test]
    fn complete_graph_k5_within_bound() {
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let colors = misra_gries_edge_coloring(5, &edges);
        assert_proper(5, &edges, &colors);
        let delta = max_degree(5, &edges);
        assert!(*colors.iter().max().unwrap() <= delta, "K5 is class 2, ≤ Δ+1 colors");
    }

    #[test]
    fn star_uses_exactly_delta_colors() {
        let edges: Vec<(usize, usize)> = (1..8).map(|i| (0, i)).collect();
        let colors = misra_gries_edge_coloring(8, &edges);
        assert_proper(8, &edges, &colors);
        let mut uniq = colors.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 7);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_panics() {
        misra_gries_edge_coloring(2, &[(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        misra_gries_edge_coloring(2, &[(1, 1)]);
    }

    #[test]
    fn greedy_multigraph_proper_and_bounded() {
        let edges = [(0, 1), (0, 1), (0, 1), (1, 2), (1, 2)];
        let colors = greedy_multigraph_edge_coloring(3, &edges);
        assert_proper(3, &edges, &colors);
        let delta = max_degree(3, &edges);
        assert!(*colors.iter().max().unwrap() < 2 * delta);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_simple_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
            (2usize..10).prop_flat_map(|n| {
                let all_edges: Vec<(usize, usize)> =
                    (0..n).flat_map(|i| ((i + 1)..n).map(move |j| (i, j))).collect();
                let m = all_edges.len();
                (Just(n), proptest::sample::subsequence(all_edges, 0..=m))
            })
        }

        proptest! {
            #[test]
            fn misra_gries_is_proper_and_bounded((n, edges) in arb_simple_graph()) {
                let colors = misra_gries_edge_coloring(n, &edges);
                assert_proper(n, &edges, &colors);
                let delta = max_degree(n, &edges);
                if !edges.is_empty() {
                    prop_assert!(*colors.iter().max().unwrap() <= delta, "more than Δ+1 colors");
                }
            }

            #[test]
            fn greedy_is_proper((n, mut edges) in arb_simple_graph()) {
                // Duplicate some edges to exercise the multigraph path.
                let dup: Vec<_> = edges.iter().copied().take(3).collect();
                edges.extend(dup);
                let colors = greedy_multigraph_edge_coloring(n, &edges);
                assert_proper(n, &edges, &colors);
            }
        }
    }
}
