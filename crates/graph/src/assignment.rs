//! Minimum-weight full matching (rectangular linear assignment).
//!
//! ZAC places 2Q gates onto candidate Rydberg sites and non-reuse qubits onto
//! candidate storage traps by solving a minimum-weight *full* matching: every
//! left vertex (gate or qubit) must be assigned a distinct right vertex (site
//! or trap) while the summed movement cost is minimized (paper Sec. V-B.2/3).
//!
//! The implementation is the shortest-augmenting-path algorithm with dual
//! potentials, the same algorithm family as Jonker–Volgenant and SciPy's
//! `linear_sum_assignment` (Crouse, 2016). Complexity is `O(R²·C)` for an
//! `R×C` cost matrix with `R ≤ C`. Forbidden pairs are expressed with
//! [`f64::INFINITY`] entries.

use std::fmt;

/// A dense row-major cost matrix for the assignment problem.
///
/// Entries may be [`f64::INFINITY`] to forbid a pairing. `rows ≤ cols` is
/// required when solving for a full matching of the rows.
///
/// # Example
///
/// ```
/// use zac_graph::CostMatrix;
/// let m = CostMatrix::from_rows(&[vec![1.0, 2.0], vec![0.5, 9.0]]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.at(1, 0), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl CostMatrix {
    /// Creates a matrix filled with `fill`.
    pub fn new(rows: usize, cols: usize, fill: f64) -> Self {
        Self { rows, cols, data: vec![fill; rows * cols] }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let nc = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|r| r.len() == nc), "ragged cost matrix");
        Self { rows: rows.len(), cols: nc, data: rows.concat() }
    }

    /// Number of rows (left vertices).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (right vertices).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cost of pairing row `r` with column `c`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Sets the cost of pairing row `r` with column `c`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }
}

/// Error returned by [`min_weight_full_matching`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssignmentError {
    /// More rows than columns: a full matching of the rows cannot exist.
    MoreRowsThanColumns,
    /// No feasible full matching exists (infinite entries block all options).
    Infeasible,
    /// The matrix contains NaN entries.
    NanCost,
}

impl fmt::Display for AssignmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MoreRowsThanColumns => write!(f, "cost matrix has more rows than columns"),
            Self::Infeasible => write!(f, "no feasible full matching exists"),
            Self::NanCost => write!(f, "cost matrix contains NaN"),
        }
    }
}

impl std::error::Error for AssignmentError {}

/// Solves the minimum-weight full matching of the rows of `cost`.
///
/// Returns `(assignment, total)` where `assignment[r]` is the column matched
/// to row `r` and `total` is the summed cost.
///
/// # Errors
///
/// * [`AssignmentError::MoreRowsThanColumns`] if `rows > cols`.
/// * [`AssignmentError::Infeasible`] if infinite entries make a full matching
///   impossible.
/// * [`AssignmentError::NanCost`] if any entry is NaN.
///
/// # Example
///
/// ```
/// use zac_graph::{min_weight_full_matching, CostMatrix};
/// let cost = CostMatrix::from_rows(&[vec![4.0, 1.0, 3.0], vec![2.0, 0.0, 5.0]]);
/// let (assign, total) = min_weight_full_matching(&cost)?;
/// assert_eq!(assign.len(), 2);
/// assert_eq!(total, 3.0); // e.g. row0→col1 (1.0) + row1→col0 (2.0)
/// # Ok::<(), zac_graph::AssignmentError>(())
/// ```
pub fn min_weight_full_matching(cost: &CostMatrix) -> Result<(Vec<usize>, f64), AssignmentError> {
    let nr = cost.rows();
    let nc = cost.cols();
    if nr > nc {
        return Err(AssignmentError::MoreRowsThanColumns);
    }
    if cost.data.iter().any(|v| v.is_nan()) {
        return Err(AssignmentError::NanCost);
    }
    if nr == 0 {
        return Ok((Vec::new(), 0.0));
    }

    const NONE: usize = usize::MAX;
    let mut u = vec![0.0f64; nr]; // row potentials
    let mut v = vec![0.0f64; nc]; // column potentials
    let mut row4col = vec![NONE; nc];
    let mut col4row = vec![NONE; nr];
    let mut path = vec![NONE; nc];
    let mut shortest = vec![f64::INFINITY; nc];
    let mut sr = vec![false; nr];
    let mut sc = vec![false; nc];
    let mut remaining: Vec<usize> = Vec::with_capacity(nc);

    for cur_row in 0..nr {
        // Dijkstra over the alternating tree rooted at `cur_row`.
        sr.iter_mut().for_each(|x| *x = false);
        sc.iter_mut().for_each(|x| *x = false);
        shortest.iter_mut().for_each(|x| *x = f64::INFINITY);
        remaining.clear();
        remaining.extend(0..nc);

        let mut min_val = 0.0f64;
        let mut i = cur_row;
        let mut sink = NONE;
        while sink == NONE {
            sr[i] = true;
            let mut lowest = f64::INFINITY;
            let mut index = NONE;
            for (it, &j) in remaining.iter().enumerate() {
                let c = cost.at(i, j);
                if c.is_finite() {
                    let r = min_val + c - u[i] - v[j];
                    if r < shortest[j] {
                        path[j] = i;
                        shortest[j] = r;
                    }
                }
                // Tie-break toward unmatched columns so we terminate earlier.
                if shortest[j] < lowest || (shortest[j] == lowest && row4col[j] == NONE) {
                    lowest = shortest[j];
                    index = it;
                }
            }
            min_val = lowest;
            if !min_val.is_finite() {
                return Err(AssignmentError::Infeasible);
            }
            let j = remaining[index];
            if row4col[j] == NONE {
                sink = j;
            } else {
                i = row4col[j];
            }
            sc[j] = true;
            remaining.swap_remove(index);
        }

        // Update dual potentials.
        u[cur_row] += min_val;
        for r in 0..nr {
            if sr[r] && r != cur_row {
                u[r] += min_val - shortest[col4row[r]];
            }
        }
        for (c, scanned) in sc.iter().enumerate() {
            if *scanned {
                v[c] -= min_val - shortest[c];
            }
        }

        // Augment along the found path.
        let mut j = sink;
        loop {
            let r = path[j];
            row4col[j] = r;
            std::mem::swap(&mut col4row[r], &mut j);
            if r == cur_row {
                break;
            }
        }
    }

    let total = col4row.iter().enumerate().map(|(r, &c)| cost.at(r, c)).sum();
    Ok((col4row, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::brute_force_assignment;

    const INF: f64 = f64::INFINITY;

    fn assert_valid(cost: &CostMatrix, assign: &[usize], total: f64) {
        let mut seen = std::collections::HashSet::new();
        let mut sum = 0.0;
        for (r, &c) in assign.iter().enumerate() {
            assert!(c < cost.cols());
            assert!(seen.insert(c), "column {c} used twice");
            assert!(cost.at(r, c).is_finite(), "assigned a forbidden pair");
            sum += cost.at(r, c);
        }
        assert!((sum - total).abs() < 1e-9, "reported total mismatch");
    }

    #[test]
    fn empty_matrix() {
        let cost = CostMatrix::new(0, 0, 0.0);
        let (assign, total) = min_weight_full_matching(&cost).unwrap();
        assert!(assign.is_empty());
        assert_eq!(total, 0.0);
    }

    #[test]
    fn single_cell() {
        let cost = CostMatrix::from_rows(&[vec![7.5]]);
        let (assign, total) = min_weight_full_matching(&cost).unwrap();
        assert_eq!(assign, vec![0]);
        assert_eq!(total, 7.5);
    }

    #[test]
    fn square_classic() {
        let cost =
            CostMatrix::from_rows(&[vec![4.0, 1.0, 3.0], vec![2.0, 0.0, 5.0], vec![3.0, 2.0, 2.0]]);
        let (assign, total) = min_weight_full_matching(&cost).unwrap();
        assert_valid(&cost, &assign, total);
        assert_eq!(total, 5.0); // 1 + 2 + 2
    }

    #[test]
    fn rectangular_prefers_cheap_columns() {
        let cost = CostMatrix::from_rows(&[vec![10.0, 1.0, 10.0, 10.0]]);
        let (assign, total) = min_weight_full_matching(&cost).unwrap();
        assert_eq!(assign, vec![1]);
        assert_eq!(total, 1.0);
    }

    #[test]
    fn more_rows_than_cols_errors() {
        let cost = CostMatrix::new(3, 2, 1.0);
        assert_eq!(
            min_weight_full_matching(&cost).unwrap_err(),
            AssignmentError::MoreRowsThanColumns
        );
    }

    #[test]
    fn infeasible_when_row_all_forbidden() {
        let cost = CostMatrix::from_rows(&[vec![1.0, 2.0], vec![INF, INF]]);
        assert_eq!(min_weight_full_matching(&cost).unwrap_err(), AssignmentError::Infeasible);
    }

    #[test]
    fn infeasible_by_structure() {
        // Both rows can only use column 0.
        let cost = CostMatrix::from_rows(&[vec![1.0, INF], vec![1.0, INF]]);
        assert_eq!(min_weight_full_matching(&cost).unwrap_err(), AssignmentError::Infeasible);
    }

    #[test]
    fn nan_rejected() {
        let cost = CostMatrix::from_rows(&[vec![f64::NAN]]);
        assert_eq!(min_weight_full_matching(&cost).unwrap_err(), AssignmentError::NanCost);
    }

    #[test]
    fn forbidden_entries_force_detour() {
        let cost = CostMatrix::from_rows(&[
            vec![1.0, 2.0, INF],
            vec![1.0, INF, INF],
            vec![INF, 3.0, 10.0],
        ]);
        let (assign, total) = min_weight_full_matching(&cost).unwrap();
        assert_valid(&cost, &assign, total);
        // Row1 must take col0, row0 then col1, row2 col2 → 2 + 1 + 10 = 13…
        // but row0→col1(2), row2→col1 impossible twice; optimum is 13.
        assert_eq!(total, 13.0);
    }

    #[test]
    fn negative_costs_supported() {
        let cost = CostMatrix::from_rows(&[vec![-5.0, 0.0], vec![0.0, -5.0]]);
        let (assign, total) = min_weight_full_matching(&cost).unwrap();
        assert_valid(&cost, &assign, total);
        assert_eq!(total, -10.0);
    }

    #[test]
    fn matches_brute_force_on_fixed_cases() {
        let cases = vec![
            CostMatrix::from_rows(&[vec![3.0, 8.0, 1.0], vec![4.0, 7.0, 2.0], vec![5.0, 6.0, 9.0]]),
            CostMatrix::from_rows(&[vec![1.0, 1.0, 1.0], vec![1.0, 1.0, 1.0]]),
            CostMatrix::from_rows(&[vec![0.0, INF], vec![0.0, 4.0]]),
        ];
        for cost in cases {
            let (assign, total) = min_weight_full_matching(&cost).unwrap();
            assert_valid(&cost, &assign, total);
            let best = brute_force_assignment(&cost).unwrap();
            assert!((total - best).abs() < 1e-9, "total={total} best={best}");
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_cost() -> impl Strategy<Value = CostMatrix> {
            (1usize..5, 0usize..5).prop_flat_map(|(nr, extra)| {
                let nc = nr + extra;
                proptest::collection::vec(
                    proptest::collection::vec(
                        prop_oneof![4 => 0.0..100.0f64, 1 => Just(f64::INFINITY)],
                        nc..=nc,
                    ),
                    nr..=nr,
                )
                .prop_map(|rows| CostMatrix::from_rows(&rows))
            })
        }

        proptest! {
            #[test]
            fn jv_matches_brute_force(cost in arb_cost()) {
                match (min_weight_full_matching(&cost), brute_force_assignment(&cost)) {
                    (Ok((assign, total)), Some(best)) => {
                        assert_valid(&cost, &assign, total);
                        prop_assert!((total - best).abs() < 1e-6);
                    }
                    (Err(AssignmentError::Infeasible), None) => {}
                    (got, want) => prop_assert!(false, "mismatch: got={got:?} want={want:?}"),
                }
            }
        }
    }
}
