//! Minimum-weight full matching (rectangular linear assignment).
//!
//! ZAC places 2Q gates onto candidate Rydberg sites and non-reuse qubits onto
//! candidate storage traps by solving a minimum-weight *full* matching: every
//! left vertex (gate or qubit) must be assigned a distinct right vertex (site
//! or trap) while the summed movement cost is minimized (paper Sec. V-B.2/3).
//!
//! The implementation is the shortest-augmenting-path algorithm with dual
//! potentials, the same algorithm family as Jonker–Volgenant and SciPy's
//! `linear_sum_assignment` (Crouse, 2016). Complexity is `O(R²·C)` for an
//! `R×C` cost matrix with `R ≤ C`. Forbidden pairs are expressed with
//! [`f64::INFINITY`] entries.

use std::fmt;

/// A dense row-major cost matrix for the assignment problem.
///
/// Entries may be [`f64::INFINITY`] to forbid a pairing. `rows ≤ cols` is
/// required when solving for a full matching of the rows.
///
/// # Example
///
/// ```
/// use zac_graph::CostMatrix;
/// let m = CostMatrix::from_rows(&[vec![1.0, 2.0], vec![0.5, 9.0]]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.at(1, 0), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl CostMatrix {
    /// Creates a matrix filled with `fill`.
    pub fn new(rows: usize, cols: usize, fill: f64) -> Self {
        Self { rows, cols, data: vec![fill; rows * cols] }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let nc = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|r| r.len() == nc), "ragged cost matrix");
        Self { rows: rows.len(), cols: nc, data: rows.concat() }
    }

    /// Number of rows (left vertices).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (right vertices).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cost of pairing row `r` with column `c`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Sets the cost of pairing row `r` with column `c`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Reshapes the matrix in place to `rows × cols`, refilled with `fill`.
    ///
    /// Reuses the existing allocation when capacity suffices, so hot loops
    /// can hold one matrix across many solves without reallocating.
    pub fn reset(&mut self, rows: usize, cols: usize, fill: f64) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, fill);
    }
}

/// Error returned by [`min_weight_full_matching`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssignmentError {
    /// More rows than columns: a full matching of the rows cannot exist.
    MoreRowsThanColumns,
    /// No feasible full matching exists (infinite entries block all options).
    Infeasible,
    /// The matrix contains NaN entries.
    NanCost,
}

impl fmt::Display for AssignmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MoreRowsThanColumns => write!(f, "cost matrix has more rows than columns"),
            Self::Infeasible => write!(f, "no feasible full matching exists"),
            Self::NanCost => write!(f, "cost matrix contains NaN"),
        }
    }
}

impl std::error::Error for AssignmentError {}

/// Solves the minimum-weight full matching of the rows of `cost`.
///
/// Returns `(assignment, total)` where `assignment[r]` is the column matched
/// to row `r` and `total` is the summed cost.
///
/// # Errors
///
/// * [`AssignmentError::MoreRowsThanColumns`] if `rows > cols`.
/// * [`AssignmentError::Infeasible`] if infinite entries make a full matching
///   impossible.
/// * [`AssignmentError::NanCost`] if any entry is NaN.
///
/// # Example
///
/// ```
/// use zac_graph::{min_weight_full_matching, CostMatrix};
/// let cost = CostMatrix::from_rows(&[vec![4.0, 1.0, 3.0], vec![2.0, 0.0, 5.0]]);
/// let (assign, total) = min_weight_full_matching(&cost)?;
/// assert_eq!(assign.len(), 2);
/// assert_eq!(total, 3.0); // e.g. row0→col1 (1.0) + row1→col0 (2.0)
/// # Ok::<(), zac_graph::AssignmentError>(())
/// ```
pub fn min_weight_full_matching(cost: &CostMatrix) -> Result<(Vec<usize>, f64), AssignmentError> {
    let mut ws = AssignmentWorkspace::new();
    let total = ws.solve(cost)?;
    Ok((ws.assignment().to_vec(), total))
}

/// Reusable scratch buffers for the shortest-augmenting-path solver.
///
/// The solver needs dual potentials, predecessor/visited arrays and a
/// frontier list, all sized by the cost matrix. Holding one workspace across
/// many [`AssignmentWorkspace::solve`] calls makes steady-state solves
/// **allocation-free** once the buffers have grown to the largest instance
/// seen (locked by a counting-allocator test in `tests/alloc_free.rs`) —
/// exactly the shape of ZAC's per-stage assignment loop, which solves
/// hundreds of similarly-sized matchings over one compilation.
///
/// # Example
///
/// ```
/// use zac_graph::{AssignmentWorkspace, CostMatrix};
/// let mut ws = AssignmentWorkspace::new();
/// let cost = CostMatrix::from_rows(&[vec![4.0, 1.0], vec![2.0, 0.0]]);
/// let total = ws.solve(&cost)?;
/// assert_eq!(total, 3.0);
/// assert_eq!(ws.assignment(), &[1, 0]);
/// # Ok::<(), zac_graph::AssignmentError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct AssignmentWorkspace {
    u: Vec<f64>,
    v: Vec<f64>,
    row4col: Vec<usize>,
    col4row: Vec<usize>,
    path: Vec<usize>,
    shortest: Vec<f64>,
    sr: Vec<bool>,
    sc: Vec<bool>,
    remaining: Vec<usize>,
}

const NONE: usize = usize::MAX;

impl AssignmentWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The row → column assignment of the most recent successful
    /// [`AssignmentWorkspace::solve`] (empty before the first call).
    pub fn assignment(&self) -> &[usize] {
        &self.col4row
    }

    /// Resizes every buffer for an `nr × nc` instance without releasing
    /// capacity.
    fn prepare(&mut self, nr: usize, nc: usize) {
        let reset_vec = |v: &mut Vec<usize>, n: usize, fill: usize| {
            v.clear();
            v.resize(n, fill);
        };
        let reset_f64 = |v: &mut Vec<f64>, n: usize, fill: f64| {
            v.clear();
            v.resize(n, fill);
        };
        reset_f64(&mut self.u, nr, 0.0);
        reset_f64(&mut self.v, nc, 0.0);
        reset_vec(&mut self.row4col, nc, NONE);
        reset_vec(&mut self.col4row, nr, NONE);
        reset_vec(&mut self.path, nc, NONE);
        reset_f64(&mut self.shortest, nc, f64::INFINITY);
        self.sr.clear();
        self.sr.resize(nr, false);
        self.sc.clear();
        self.sc.resize(nc, false);
        self.remaining.clear();
        self.remaining.reserve(nc);
    }

    /// Solves the minimum-weight full matching of the rows of `cost`,
    /// returning the total; read the matching via
    /// [`AssignmentWorkspace::assignment`].
    ///
    /// Identical algorithm and results as [`min_weight_full_matching`]; the
    /// only difference is buffer reuse.
    ///
    /// # Errors
    ///
    /// Same as [`min_weight_full_matching`].
    pub fn solve(&mut self, cost: &CostMatrix) -> Result<f64, AssignmentError> {
        let nr = cost.rows();
        let nc = cost.cols();
        if nr > nc {
            return Err(AssignmentError::MoreRowsThanColumns);
        }
        if cost.data.iter().any(|v| v.is_nan()) {
            return Err(AssignmentError::NanCost);
        }
        self.prepare(nr, nc);
        if nr == 0 {
            return Ok(0.0);
        }

        for cur_row in 0..nr {
            // Dijkstra over the alternating tree rooted at `cur_row`.
            self.sr.iter_mut().for_each(|x| *x = false);
            self.sc.iter_mut().for_each(|x| *x = false);
            self.shortest.iter_mut().for_each(|x| *x = f64::INFINITY);
            self.remaining.clear();
            self.remaining.extend(0..nc);

            let mut min_val = 0.0f64;
            let mut i = cur_row;
            let mut sink = NONE;
            while sink == NONE {
                self.sr[i] = true;
                let mut lowest = f64::INFINITY;
                let mut index = NONE;
                for (it, &j) in self.remaining.iter().enumerate() {
                    let c = cost.at(i, j);
                    if c.is_finite() {
                        let r = min_val + c - self.u[i] - self.v[j];
                        if r < self.shortest[j] {
                            self.path[j] = i;
                            self.shortest[j] = r;
                        }
                    }
                    // Tie-break toward unmatched columns so we terminate
                    // earlier.
                    if self.shortest[j] < lowest
                        || (self.shortest[j] == lowest && self.row4col[j] == NONE)
                    {
                        lowest = self.shortest[j];
                        index = it;
                    }
                }
                min_val = lowest;
                if !min_val.is_finite() {
                    return Err(AssignmentError::Infeasible);
                }
                let j = self.remaining[index];
                if self.row4col[j] == NONE {
                    sink = j;
                } else {
                    i = self.row4col[j];
                }
                self.sc[j] = true;
                self.remaining.swap_remove(index);
            }

            // Update dual potentials.
            self.u[cur_row] += min_val;
            for r in 0..nr {
                if self.sr[r] && r != cur_row {
                    self.u[r] += min_val - self.shortest[self.col4row[r]];
                }
            }
            for (c, scanned) in self.sc.iter().enumerate() {
                if *scanned {
                    self.v[c] -= min_val - self.shortest[c];
                }
            }

            // Augment along the found path.
            let mut j = sink;
            loop {
                let r = self.path[j];
                self.row4col[j] = r;
                std::mem::swap(&mut self.col4row[r], &mut j);
                if r == cur_row {
                    break;
                }
            }
        }

        Ok(self.col4row.iter().enumerate().map(|(r, &c)| cost.at(r, c)).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::brute_force_assignment;

    const INF: f64 = f64::INFINITY;

    fn assert_valid(cost: &CostMatrix, assign: &[usize], total: f64) {
        let mut seen = std::collections::HashSet::new();
        let mut sum = 0.0;
        for (r, &c) in assign.iter().enumerate() {
            assert!(c < cost.cols());
            assert!(seen.insert(c), "column {c} used twice");
            assert!(cost.at(r, c).is_finite(), "assigned a forbidden pair");
            sum += cost.at(r, c);
        }
        assert!((sum - total).abs() < 1e-9, "reported total mismatch");
    }

    #[test]
    fn empty_matrix() {
        let cost = CostMatrix::new(0, 0, 0.0);
        let (assign, total) = min_weight_full_matching(&cost).unwrap();
        assert!(assign.is_empty());
        assert_eq!(total, 0.0);
    }

    #[test]
    fn single_cell() {
        let cost = CostMatrix::from_rows(&[vec![7.5]]);
        let (assign, total) = min_weight_full_matching(&cost).unwrap();
        assert_eq!(assign, vec![0]);
        assert_eq!(total, 7.5);
    }

    #[test]
    fn square_classic() {
        let cost =
            CostMatrix::from_rows(&[vec![4.0, 1.0, 3.0], vec![2.0, 0.0, 5.0], vec![3.0, 2.0, 2.0]]);
        let (assign, total) = min_weight_full_matching(&cost).unwrap();
        assert_valid(&cost, &assign, total);
        assert_eq!(total, 5.0); // 1 + 2 + 2
    }

    #[test]
    fn rectangular_prefers_cheap_columns() {
        let cost = CostMatrix::from_rows(&[vec![10.0, 1.0, 10.0, 10.0]]);
        let (assign, total) = min_weight_full_matching(&cost).unwrap();
        assert_eq!(assign, vec![1]);
        assert_eq!(total, 1.0);
    }

    #[test]
    fn more_rows_than_cols_errors() {
        let cost = CostMatrix::new(3, 2, 1.0);
        assert_eq!(
            min_weight_full_matching(&cost).unwrap_err(),
            AssignmentError::MoreRowsThanColumns
        );
    }

    #[test]
    fn infeasible_when_row_all_forbidden() {
        let cost = CostMatrix::from_rows(&[vec![1.0, 2.0], vec![INF, INF]]);
        assert_eq!(min_weight_full_matching(&cost).unwrap_err(), AssignmentError::Infeasible);
    }

    #[test]
    fn infeasible_by_structure() {
        // Both rows can only use column 0.
        let cost = CostMatrix::from_rows(&[vec![1.0, INF], vec![1.0, INF]]);
        assert_eq!(min_weight_full_matching(&cost).unwrap_err(), AssignmentError::Infeasible);
    }

    #[test]
    fn nan_rejected() {
        let cost = CostMatrix::from_rows(&[vec![f64::NAN]]);
        assert_eq!(min_weight_full_matching(&cost).unwrap_err(), AssignmentError::NanCost);
    }

    #[test]
    fn forbidden_entries_force_detour() {
        let cost = CostMatrix::from_rows(&[
            vec![1.0, 2.0, INF],
            vec![1.0, INF, INF],
            vec![INF, 3.0, 10.0],
        ]);
        let (assign, total) = min_weight_full_matching(&cost).unwrap();
        assert_valid(&cost, &assign, total);
        // Row1 must take col0, row0 then col1, row2 col2 → 2 + 1 + 10 = 13…
        // but row0→col1(2), row2→col1 impossible twice; optimum is 13.
        assert_eq!(total, 13.0);
    }

    #[test]
    fn negative_costs_supported() {
        let cost = CostMatrix::from_rows(&[vec![-5.0, 0.0], vec![0.0, -5.0]]);
        let (assign, total) = min_weight_full_matching(&cost).unwrap();
        assert_valid(&cost, &assign, total);
        assert_eq!(total, -10.0);
    }

    #[test]
    fn matches_brute_force_on_fixed_cases() {
        let cases = vec![
            CostMatrix::from_rows(&[vec![3.0, 8.0, 1.0], vec![4.0, 7.0, 2.0], vec![5.0, 6.0, 9.0]]),
            CostMatrix::from_rows(&[vec![1.0, 1.0, 1.0], vec![1.0, 1.0, 1.0]]),
            CostMatrix::from_rows(&[vec![0.0, INF], vec![0.0, 4.0]]),
        ];
        for cost in cases {
            let (assign, total) = min_weight_full_matching(&cost).unwrap();
            assert_valid(&cost, &assign, total);
            let best = brute_force_assignment(&cost).unwrap();
            assert!((total - best).abs() < 1e-9, "total={total} best={best}");
        }
    }

    /// One workspace reused across differently-shaped instances produces the
    /// same results as the one-shot entry point (including error cases).
    #[test]
    fn workspace_reuse_matches_one_shot() {
        let mut ws = AssignmentWorkspace::new();
        let cases = vec![
            CostMatrix::from_rows(&[vec![4.0, 1.0, 3.0], vec![2.0, 0.0, 5.0], vec![3.0, 2.0, 2.0]]),
            CostMatrix::from_rows(&[vec![10.0, 1.0, 10.0, 10.0]]),
            CostMatrix::from_rows(&[vec![1.0, 2.0], vec![INF, INF]]),
            CostMatrix::new(0, 0, 0.0),
            CostMatrix::from_rows(&[vec![-5.0, 0.0], vec![0.0, -5.0]]),
        ];
        for cost in cases {
            match (ws.solve(&cost), min_weight_full_matching(&cost)) {
                (Ok(total), Ok((assign, expect))) => {
                    assert_eq!(ws.assignment(), &assign[..]);
                    assert_eq!(total.to_bits(), expect.to_bits());
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (got, want) => panic!("mismatch: {got:?} vs {want:?}"),
            }
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_cost() -> impl Strategy<Value = CostMatrix> {
            (1usize..5, 0usize..5).prop_flat_map(|(nr, extra)| {
                let nc = nr + extra;
                proptest::collection::vec(
                    proptest::collection::vec(
                        prop_oneof![4 => 0.0..100.0f64, 1 => Just(f64::INFINITY)],
                        nc..=nc,
                    ),
                    nr..=nr,
                )
                .prop_map(|rows| CostMatrix::from_rows(&rows))
            })
        }

        proptest! {
            #[test]
            fn jv_matches_brute_force(cost in arb_cost()) {
                match (min_weight_full_matching(&cost), brute_force_assignment(&cost)) {
                    (Ok((assign, total)), Some(best)) => {
                        assert_valid(&cost, &assign, total);
                        prop_assert!((total - best).abs() < 1e-6);
                    }
                    (Err(AssignmentError::Infeasible), None) => {}
                    (got, want) => prop_assert!(false, "mismatch: got={got:?} want={want:?}"),
                }
            }
        }
    }
}
