//! Steady-state allocation test for the assignment solver.
//!
//! ZAC's per-stage placement solves hundreds of min-weight matchings of
//! similar shape over one compilation. With a reused [`AssignmentWorkspace`]
//! and a [`CostMatrix`] recycled via `reset`, every solve after the first
//! must perform **zero heap allocations** — the acceptance criterion of the
//! workspace-reuse optimization. A counting global allocator makes the claim
//! checkable instead of asserted.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use zac_graph::{AssignmentWorkspace, CostMatrix};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A dense synthetic instance with deterministic pseudo-random costs.
fn fill(cost: &mut CostMatrix, rows: usize, cols: usize, salt: u64) {
    cost.reset(rows, cols, f64::INFINITY);
    let mut x = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for r in 0..rows {
        for c in 0..cols {
            // xorshift64*: cheap, allocation-free determinism.
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let v = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
            cost.set(r, c, v * 100.0);
        }
    }
}

#[test]
fn steady_state_solves_do_not_allocate() {
    let mut ws = AssignmentWorkspace::new();
    let mut cost = CostMatrix::new(0, 0, 0.0);

    // Warm-up: grow every buffer to the largest shape in the mix.
    fill(&mut cost, 24, 40, 0);
    ws.solve(&cost).expect("feasible warm-up instance");

    // Steady state: same-or-smaller shapes must be allocation-free.
    let shapes = [(24usize, 40usize), (10, 32), (24, 40), (1, 7), (16, 16)];
    for round in 0..50u64 {
        let (rows, cols) = shapes[(round as usize) % shapes.len()];
        fill(&mut cost, rows, cols, round + 1);
        let before = allocations();
        let total = ws.solve(&cost).expect("feasible instance");
        let after = allocations();
        assert!(total.is_finite());
        assert_eq!(
            after - before,
            0,
            "round {round} ({rows}x{cols}): solver allocated in steady state"
        );
    }
}

/// The workspace produces correct assignments under reuse (cross-checked
/// against the allocating entry point on the same instances).
#[test]
fn reused_workspace_matches_one_shot_solver() {
    let mut ws = AssignmentWorkspace::new();
    let mut cost = CostMatrix::new(0, 0, 0.0);
    for round in 0..10u64 {
        fill(&mut cost, 8, 12, round);
        let total = ws.solve(&cost).expect("feasible");
        let (assign, expect) = zac_graph::min_weight_full_matching(&cost).expect("feasible");
        assert_eq!(ws.assignment(), &assign[..], "round {round}");
        assert_eq!(total.to_bits(), expect.to_bits(), "round {round}");
    }
}
