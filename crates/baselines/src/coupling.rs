//! Superconducting coupling graphs: IBM Heron heavy-hex (127 qubits) and an
//! 11×11 grid (Google Sycamore style), per paper Sec. VII-A.

/// An undirected coupling graph over physical qubits.
#[derive(Debug, Clone)]
pub struct CouplingGraph {
    num_qubits: usize,
    adj: Vec<Vec<usize>>,
    /// A precomputed long simple path used for line-friendly initial layout.
    line: Vec<usize>,
}

impl CouplingGraph {
    /// Builds a graph from undirected edges.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or self-loop edges.
    pub fn new(num_qubits: usize, edges: &[(usize, usize)], line: Vec<usize>) -> Self {
        let mut adj = vec![Vec::new(); num_qubits];
        for &(a, b) in edges {
            assert!(a < num_qubits && b < num_qubits && a != b, "bad edge ({a},{b})");
            adj[a].push(b);
            adj[b].push(a);
        }
        for l in &adj {
            debug_assert!(!l.is_empty() || num_qubits == 1);
        }
        // Validate the line is a simple path in the graph.
        for w in line.windows(2) {
            assert!(adj[w[0]].contains(&w[1]), "line not a path at {}-{}", w[0], w[1]);
        }
        Self { num_qubits, adj, line }
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Neighbors of `q`.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adj[q]
    }

    /// Whether `a` and `b` are directly coupled.
    pub fn adjacent(&self, a: usize, b: usize) -> bool {
        self.adj[a].contains(&b)
    }

    /// The precomputed long simple path (for chain-friendly layouts).
    pub fn line(&self) -> &[usize] {
        &self.line
    }

    /// BFS shortest path from `a` to `b` (inclusive of both endpoints).
    ///
    /// # Panics
    ///
    /// Panics if `b` is unreachable (coupling graphs are connected).
    pub fn shortest_path(&self, a: usize, b: usize) -> Vec<usize> {
        if a == b {
            return vec![a];
        }
        let mut prev = vec![usize::MAX; self.num_qubits];
        let mut queue = std::collections::VecDeque::new();
        prev[a] = a;
        queue.push_back(a);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if prev[v] == usize::MAX {
                    prev[v] = u;
                    if v == b {
                        let mut path = vec![b];
                        let mut cur = b;
                        while cur != a {
                            cur = prev[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return path;
                    }
                    queue.push_back(v);
                }
            }
        }
        panic!("qubit {b} unreachable from {a}");
    }

    /// The IBM 127-qubit heavy-hexagon lattice (Eagle/Heron layout): seven
    /// 15-qubit rows (14 at the ends) joined by four connector qubits between
    /// consecutive rows.
    pub fn heavy_hex_127() -> Self {
        let mut edges = Vec::new();
        // Row chains.
        let rows: [(usize, usize); 7] =
            [(0, 13), (18, 32), (37, 51), (56, 70), (75, 89), (94, 108), (113, 126)];
        for &(lo, hi) in &rows {
            for q in lo..hi {
                edges.push((q, q + 1));
            }
        }
        // Connectors: (connector, upper, lower).
        let connectors: [(usize, usize, usize); 24] = [
            (14, 0, 18),
            (15, 4, 22),
            (16, 8, 26),
            (17, 12, 30),
            (33, 20, 39),
            (34, 24, 43),
            (35, 28, 47),
            (36, 32, 51),
            (52, 37, 56),
            (53, 41, 60),
            (54, 45, 64),
            (55, 49, 68),
            (71, 58, 77),
            (72, 62, 81),
            (73, 66, 85),
            (74, 70, 89),
            (90, 75, 94),
            (91, 79, 98),
            (92, 83, 102),
            (93, 87, 106),
            (109, 96, 114),
            (110, 100, 118),
            (111, 104, 122),
            (112, 108, 126),
        ];
        for &(c, up, down) in &connectors {
            edges.push((c, up));
            edges.push((c, down));
        }
        // A 109-qubit simple path threading the lattice (chain-friendly).
        let mut line = Vec::new();
        line.extend((0..=13).rev()); // 13..0
        line.push(14);
        line.extend(18..=32);
        line.push(36);
        line.extend((37..=51).rev());
        line.push(52);
        line.extend(56..=70);
        line.push(74);
        line.extend((75..=89).rev());
        line.push(90);
        line.extend(94..=108);
        line.push(112);
        line.extend((113..=126).rev());
        Self::new(127, &edges, line)
    }

    /// An `n×n` grid with 4-neighbor coupling; the line is the row snake.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn grid(n: usize) -> Self {
        assert!(n > 0, "empty grid");
        let idx = |r: usize, c: usize| r * n + c;
        let mut edges = Vec::new();
        for r in 0..n {
            for c in 0..n {
                if c + 1 < n {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < n {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        let mut line = Vec::new();
        for r in 0..n {
            if r % 2 == 0 {
                line.extend((0..n).map(|c| idx(r, c)));
            } else {
                line.extend((0..n).rev().map(|c| idx(r, c)));
            }
        }
        Self::new(n * n, &edges, line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_hex_shape() {
        let g = CouplingGraph::heavy_hex_127();
        assert_eq!(g.num_qubits(), 127);
        // Heavy-hex degree bound is 3.
        for q in 0..127 {
            assert!(g.neighbors(q).len() <= 3, "qubit {q} has degree > 3");
            assert!(!g.neighbors(q).is_empty(), "qubit {q} isolated");
        }
        // 127-qubit Eagle has 144 edges.
        let total: usize = (0..127).map(|q| g.neighbors(q).len()).sum();
        assert_eq!(total / 2, 144);
    }

    #[test]
    fn heavy_hex_line_is_long_simple_path() {
        let g = CouplingGraph::heavy_hex_127();
        let line = g.line();
        assert!(line.len() >= 98, "line must host ising_n98, got {}", line.len());
        let set: std::collections::HashSet<_> = line.iter().collect();
        assert_eq!(set.len(), line.len(), "line revisits a qubit");
    }

    #[test]
    fn grid_shape() {
        let g = CouplingGraph::grid(11);
        assert_eq!(g.num_qubits(), 121);
        assert_eq!(g.line().len(), 121);
        // Corner degree 2, center degree 4.
        assert_eq!(g.neighbors(0).len(), 2);
        assert_eq!(g.neighbors(60).len(), 4);
    }

    #[test]
    fn shortest_path_endpoints_and_adjacency() {
        let g = CouplingGraph::grid(5);
        let p = g.shortest_path(0, 24);
        assert_eq!(*p.first().unwrap(), 0);
        assert_eq!(*p.last().unwrap(), 24);
        assert_eq!(p.len(), 9); // Manhattan distance 8 → 9 nodes
        for w in p.windows(2) {
            assert!(g.adjacent(w[0], w[1]));
        }
    }

    #[test]
    fn shortest_path_trivial() {
        let g = CouplingGraph::grid(3);
        assert_eq!(g.shortest_path(4, 4), vec![4]);
        assert_eq!(g.shortest_path(0, 1).len(), 2);
    }
}
