//! Enola baseline: monolithic architecture with near-optimal stage count
//! (paper Sec. II / VII-A).
//!
//! Enola schedules entangling gates into a near-optimal number of Rydberg
//! stages and realizes each stage with rounds of parallel qubit movements
//! found by a maximal-independent-set pass over the movement compatibility
//! graph. The defining cost of the monolithic architecture is that the
//! global Rydberg laser excites **every** idle qubit at every exposure.
//!
//! This reimplementation keeps those structural properties: ASAP staging
//! (optimal under dependencies, matching the paper's "optimal number of
//! Rydberg exposures"), MIS movement rounds, per-stage round trips for the
//! moving qubit of each gate, and the full idle-excitation penalty.

use std::time::Instant;
use zac_arch::{Architecture, Loc};
use zac_circuit::StagedCircuit;
use zac_fidelity::{evaluate_neutral_atom, ExecutionSummary, FidelityReport, NeutralAtomParams};
use zac_graph::mis::partition_into_independent_sets;
use zac_zair::{moves_compatible, MoveSpec};

/// Enola compilation result.
#[derive(Debug, Clone)]
pub struct EnolaOutput {
    /// Execution summary.
    pub summary: ExecutionSummary,
    /// Fidelity report.
    pub report: FidelityReport,
    /// Total movement rounds across all stages.
    pub movement_rounds: usize,
    /// Compile wall time.
    pub compile_time: std::time::Duration,
}

/// Error: circuit larger than the monolithic array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayTooSmall {
    /// Required qubits.
    pub needed: usize,
    /// Available sites.
    pub sites: usize,
}

impl std::fmt::Display for ArrayTooSmall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "circuit needs {} qubits, array has {} sites", self.needed, self.sites)
    }
}

impl std::error::Error for ArrayTooSmall {}

/// Compiles a staged circuit for a `rows×cols`-site monolithic array
/// (the paper compares against 10×10).
///
/// # Errors
///
/// [`ArrayTooSmall`] if the circuit has more qubits than sites.
pub fn compile_enola(
    staged: &StagedCircuit,
    rows: usize,
    cols: usize,
    params: &NeutralAtomParams,
) -> Result<EnolaOutput, ArrayTooSmall> {
    let start = Instant::now();
    let arch = Architecture::monolithic(rows, cols);
    let n = staged.num_qubits;
    if n > rows * cols {
        return Err(ArrayTooSmall { needed: n, sites: rows * cols });
    }

    // Home site of qubit i: row-major, slot 0.
    let home = |q: usize| -> Loc { Loc::Site { zone: 0, row: q / cols, col: q % cols, slot: 0 } };

    let mut duration = 0.0f64;
    let mut busy = vec![0.0f64; n];
    let mut g1 = 0usize;
    let mut g2 = 0usize;
    let mut n_exc = 0usize;
    let mut n_tran = 0usize;
    let mut movement_rounds = 0usize;

    for stage in &staged.stages {
        // 1Q gates: sequential Raman pulses.
        for op in &stage.pre_1q {
            duration += params.t_1q_us;
            busy[op.qubit] += params.t_1q_us;
            g1 += 1;
        }

        // One mover per gate travels to its partner's site (slot 1).
        let moves: Vec<MoveSpec> = stage
            .gates
            .iter()
            .map(|g| {
                let target = match home(g.b) {
                    Loc::Site { zone, row, col, .. } => Loc::Site { zone, row, col, slot: 1 },
                    _ => unreachable!("monolithic homes are sites"),
                };
                MoveSpec::new(g.a, home(g.a), target)
            })
            .collect();

        // MIS rounds over the AOD-compatibility conflict graph.
        let adj: Vec<Vec<usize>> = (0..moves.len())
            .map(|i| {
                (0..moves.len())
                    .filter(|&j| j != i && !moves_compatible(&arch, &moves[i], &moves[j]))
                    .collect()
            })
            .collect();
        let rounds = partition_into_independent_sets(&adj);
        movement_rounds += rounds.len();
        for round in &rounds {
            let max_d = round
                .iter()
                .map(|&i| arch.position(moves[i].from).distance(arch.position(moves[i].to)))
                .fold(0.0, f64::max);
            // Outbound trip for this round.
            duration += 2.0 * params.t_tran_us + zac_arch::movement_time_us(max_d);
            for &i in round {
                busy[moves[i].qubit] += 2.0 * params.t_tran_us;
                n_tran += 2;
            }
        }

        // One global exposure: gates fire, every other qubit is excited.
        duration += params.t_2q_us;
        g2 += stage.gates.len();
        n_exc += n - 2 * stage.gates.len();
        for g in &stage.gates {
            busy[g.a] += params.t_2q_us;
            busy[g.b] += params.t_2q_us;
        }

        // Return trips (same rounds in reverse).
        for round in &rounds {
            let max_d = round
                .iter()
                .map(|&i| arch.position(moves[i].from).distance(arch.position(moves[i].to)))
                .fold(0.0, f64::max);
            duration += 2.0 * params.t_tran_us + zac_arch::movement_time_us(max_d);
            for &i in round {
                busy[moves[i].qubit] += 2.0 * params.t_tran_us;
                n_tran += 2;
            }
        }
    }
    for op in &staged.trailing_1q {
        duration += params.t_1q_us;
        busy[op.qubit] += params.t_1q_us;
        g1 += 1;
    }

    let idle_us: Vec<f64> = busy.iter().map(|b| (duration - b).max(0.0)).collect();
    let summary = ExecutionSummary {
        name: staged.name.clone(),
        num_qubits: n,
        duration_us: duration,
        g1,
        g2,
        n_exc,
        n_tran,
        idle_us,
    };
    let report = evaluate_neutral_atom(&summary, params);
    Ok(EnolaOutput { summary, report, movement_rounds, compile_time: start.elapsed() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zac_circuit::{bench_circuits, preprocess};

    fn params() -> NeutralAtomParams {
        NeutralAtomParams::reference()
    }

    #[test]
    fn ghz_counts() {
        let staged = preprocess(&bench_circuits::ghz(10));
        let out = compile_enola(&staged, 10, 10, &params()).unwrap();
        assert_eq!(out.summary.g2, 9);
        // 9 sequential stages, each exciting the 8 idle qubits.
        assert_eq!(out.summary.n_exc, 9 * 8);
        assert!(out.summary.n_tran >= 9 * 4, "each gate's mover round-trips");
    }

    #[test]
    fn too_small_array_rejected() {
        let staged = preprocess(&bench_circuits::ghz(101));
        let err = compile_enola(&staged, 10, 10, &params()).unwrap_err();
        assert_eq!(err, ArrayTooSmall { needed: 101, sites: 100 });
    }

    #[test]
    fn excitation_errors_dominate_for_deep_circuits() {
        // Fig. 1c: side-effect excitation is the dominant monolithic error.
        let staged = preprocess(&bench_circuits::bv(70, 36));
        let out = compile_enola(&staged, 10, 10, &params()).unwrap();
        let p = params();
        let exc_component = p.f_exc.powi(out.summary.n_exc as i32);
        let gate_component = p.f_2q.powi(out.summary.g2 as i32);
        assert!(
            exc_component < gate_component,
            "excitation {exc_component} should dominate gates {gate_component}"
        );
    }

    #[test]
    fn parallel_stage_uses_few_rounds() {
        let staged = preprocess(&bench_circuits::ising(20));
        let out = compile_enola(&staged, 10, 10, &params()).unwrap();
        // 4 stages for one Trotter step (2 per ZZ layer); rounds stay small.
        assert!(out.movement_rounds <= 4 * staged.num_stages());
    }

    #[test]
    fn fidelity_in_unit_interval() {
        for staged in [preprocess(&bench_circuits::ghz(23)), preprocess(&bench_circuits::qft(10))] {
            let out = compile_enola(&staged, 10, 10, &params()).unwrap();
            let f = out.report.total();
            assert!((0.0..=1.0).contains(&f), "{}: {f}", staged.name);
        }
    }
}
