//! NALAC baseline: zoned compilation with row sliding (paper Sec. II).
//!
//! NALAC (Stade et al.) fetches rows of qubits into the entanglement zone
//! and slides two rows past each other to bring gate pairs together. Its
//! reuse policy keeps qubits needed by the next stage *inside* the zone —
//! which is exactly the paper's criticism: those idle residents are excited
//! at every exposure, and gate placement restricted to a single zone row
//! under-utilizes the zone and serializes wide stages.
//!
//! This reimplementation keeps those properties: batched single-row gate
//! execution (≤ one zone row of gates at a time), order-compatible slide
//! rounds, stay-in-zone reuse with its excitation penalty, and greedy
//! single-stage placement.

use std::collections::HashSet;
use std::time::Instant;
use zac_arch::movement_time_us;
use zac_circuit::{Gate2, StagedCircuit};
use zac_fidelity::{evaluate_neutral_atom, ExecutionSummary, FidelityReport, NeutralAtomParams};
use zac_graph::mis::partition_into_independent_sets;

/// Storage pitch (µm) and storage→zone travel distance for the reference
/// zoned geometry.
const STORAGE_PITCH: f64 = 3.0;
const ZONE_TRAVEL: f64 = 10.0;

/// NALAC compilation result.
#[derive(Debug, Clone)]
pub struct NalacOutput {
    /// Execution summary.
    pub summary: ExecutionSummary,
    /// Fidelity report.
    pub report: FidelityReport,
    /// Slide/exposure rounds executed.
    pub rounds: usize,
    /// Compile wall time.
    pub compile_time: std::time::Duration,
}

/// Compiles a staged circuit with the NALAC model onto a zoned architecture
/// whose entanglement row holds `zone_row_sites` Rydberg sites (20 on the
/// reference architecture).
pub fn compile_nalac(
    staged: &StagedCircuit,
    zone_row_sites: usize,
    params: &NeutralAtomParams,
) -> NalacOutput {
    let start = Instant::now();
    let n = staged.num_qubits;
    let zone_row_sites = zone_row_sites.max(1);

    let mut duration = 0.0f64;
    let mut busy = vec![0.0f64; n];
    let mut g1 = 0usize;
    let mut g2 = 0usize;
    let mut n_exc = 0usize;
    let mut n_tran = 0usize;
    let mut rounds = 0usize;

    // Qubits currently parked in the entanglement zone.
    let mut in_zone: HashSet<usize> = HashSet::new();

    let fetch_time =
        2.0 * params.t_tran_us + movement_time_us(ZONE_TRAVEL + STORAGE_PITCH * (n as f64).sqrt());

    for (t, stage) in staged.stages.iter().enumerate() {
        for op in &stage.pre_1q {
            duration += params.t_1q_us;
            busy[op.qubit] += params.t_1q_us;
            g1 += 1;
        }

        let next_qubits: HashSet<usize> = staged
            .stages
            .get(t + 1)
            .map(|s| s.gates.iter().flat_map(|g| [g.a, g.b]).collect())
            .unwrap_or_default();

        // Single-row gate placement: at most one zone row of gates at a time.
        for batch in stage.gates.chunks(zone_row_sites) {
            // Fetch this batch's absent qubits as two row loads.
            let fetched: Vec<usize> =
                batch.iter().flat_map(|g| [g.a, g.b]).filter(|q| !in_zone.contains(q)).collect();
            if !fetched.is_empty() {
                // Two AOD row-loads per NALAC step.
                duration += 2.0 * fetch_time;
                for &q in &fetched {
                    busy[q] += 2.0 * params.t_tran_us;
                    n_tran += 2;
                    in_zone.insert(q);
                }
            }

            // Slide rounds: movers must keep their x-order relative to their
            // partners; incompatible pairs serialize.
            let order_conflict = |g1: &Gate2, g2: &Gate2| -> bool {
                let (m1, p1) = (g1.b as i64, g1.a as i64);
                let (m2, p2) = (g2.b as i64, g2.a as i64);
                ((m1 - m2) > 0) != ((p1 - p2) > 0)
            };
            let adj: Vec<Vec<usize>> = (0..batch.len())
                .map(|i| {
                    (0..batch.len())
                        .filter(|&j| j != i && order_conflict(&batch[i], &batch[j]))
                        .collect()
                })
                .collect();
            for round in partition_into_independent_sets(&adj) {
                // Slide distance: the farthest mover-to-partner offset.
                let slide = round
                    .iter()
                    .map(|&i| (batch[i].a as f64 - batch[i].b as f64).abs() * STORAGE_PITCH)
                    .fold(ZONE_TRAVEL, f64::max);
                duration += movement_time_us(slide) + params.t_2q_us;
                rounds += 1;
                g2 += round.len();
                // Everyone resident in the zone but not gated this round is
                // excited — the NALAC reuse penalty.
                n_exc += in_zone.len().saturating_sub(2 * round.len());
                for &i in round.iter() {
                    busy[batch[i].a] += params.t_2q_us;
                    busy[batch[i].b] += params.t_2q_us;
                }
            }
        }

        // Stay-in-zone reuse: only qubits idle in the next stage return.
        let leavers: Vec<usize> =
            in_zone.iter().copied().filter(|q| !next_qubits.contains(q)).collect();
        if !leavers.is_empty() {
            duration += 2.0 * fetch_time;
            for q in leavers {
                busy[q] += 2.0 * params.t_tran_us;
                n_tran += 2;
                in_zone.remove(&q);
            }
        }
    }
    for op in &staged.trailing_1q {
        duration += params.t_1q_us;
        busy[op.qubit] += params.t_1q_us;
        g1 += 1;
    }

    let idle_us: Vec<f64> = busy.iter().map(|b| (duration - b).max(0.0)).collect();
    let summary = ExecutionSummary {
        name: staged.name.clone(),
        num_qubits: n,
        duration_us: duration,
        g1,
        g2,
        n_exc,
        n_tran,
        idle_us,
    };
    let report = evaluate_neutral_atom(&summary, params);
    NalacOutput { summary, report, rounds, compile_time: start.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zac_circuit::{bench_circuits, preprocess};

    fn params() -> NeutralAtomParams {
        NeutralAtomParams::reference()
    }

    #[test]
    fn gate_counts_preserved() {
        let staged = preprocess(&bench_circuits::ghz(12));
        let out = compile_nalac(&staged, 20, &params());
        assert_eq!(out.summary.g2, staged.num_2q_gates());
        assert_eq!(out.summary.g1, staged.num_1q_gates());
    }

    #[test]
    fn reuse_exposes_idle_residents() {
        // A chain keeps the shared qubit in the zone; with only 2 qubits per
        // gate there is an idle resident whenever three qubits overlap.
        let staged = preprocess(&bench_circuits::qft(8));
        let out = compile_nalac(&staged, 20, &params());
        assert!(out.summary.n_exc > 0, "NALAC must pay excitation for reuse");
    }

    #[test]
    fn excitation_below_monolithic() {
        // Zoned NALAC shields storage qubits: far fewer excitations than
        // Enola's whole-array exposure.
        let staged = preprocess(&bench_circuits::bv(30, 18));
        let nalac = compile_nalac(&staged, 20, &params());
        let enola = crate::enola::compile_enola(&staged, 10, 10, &params()).unwrap();
        assert!(
            nalac.summary.n_exc < enola.summary.n_exc,
            "nalac {} !< enola {}",
            nalac.summary.n_exc,
            enola.summary.n_exc
        );
    }

    #[test]
    fn wide_stages_serialize_into_batches() {
        // ising has 24-gate stages at n=50; a 20-site row forces ≥ 2 batches.
        let staged = preprocess(&bench_circuits::ising(50));
        let out = compile_nalac(&staged, 20, &params());
        assert!(out.rounds > staged.num_stages(), "rounds {}", out.rounds);
    }

    #[test]
    fn fidelity_in_unit_interval() {
        let staged = preprocess(&bench_circuits::wstate(15));
        let out = compile_nalac(&staged, 20, &params());
        let f = out.report.total();
        assert!((0.0..=1.0).contains(&f));
    }
}
