//! Superconducting-qubit baseline: SWAP routing + ASAP timing
//! (paper Sec. VII-A: Qiskit/Sabre on Heron heavy-hex and an 11×11 grid).
//!
//! The router places logical qubits along a precomputed long path of the
//! coupling graph (so linear circuits route swap-free, as Sabre achieves) and
//! inserts SWAPs (3 CX each) along shortest paths for non-adjacent gates —
//! a lookahead-free Sabre-flavoured heuristic (deviation noted in DESIGN.md).

use crate::coupling::CouplingGraph;
use std::time::Instant;
use zac_circuit::StagedCircuit;
use zac_fidelity::{
    evaluate_superconducting, ExecutionSummary, FidelityReport, SuperconductingParams,
};

/// Which superconducting machine to target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScMachine {
    /// IBM Heron, 127-qubit heavy-hex.
    Heron,
    /// 11×11 grid (Google Sycamore style).
    Grid,
}

impl ScMachine {
    /// The machine's coupling graph.
    pub fn coupling(&self) -> CouplingGraph {
        match self {
            Self::Heron => CouplingGraph::heavy_hex_127(),
            Self::Grid => CouplingGraph::grid(11),
        }
    }

    /// The machine's hardware parameters (Table I).
    pub fn params(&self) -> SuperconductingParams {
        match self {
            Self::Heron => SuperconductingParams::heron(),
            Self::Grid => SuperconductingParams::grid(),
        }
    }
}

/// Routing + evaluation result.
#[derive(Debug, Clone)]
pub struct ScOutput {
    /// Execution summary (g2 includes inserted SWAP gates: 3 CX each).
    pub summary: ExecutionSummary,
    /// Fidelity under the machine's parameters.
    pub report: FidelityReport,
    /// SWAPs inserted by routing.
    pub swaps: usize,
    /// Compilation wall time.
    pub compile_time: std::time::Duration,
}

/// Routing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooManyQubits {
    /// Required logical qubits.
    pub needed: usize,
    /// Physical qubits available.
    pub available: usize,
}

impl std::fmt::Display for TooManyQubits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "circuit needs {} qubits, machine has {}", self.needed, self.available)
    }
}

impl std::error::Error for TooManyQubits {}

/// Compiles a staged circuit for a superconducting machine.
///
/// # Errors
///
/// [`TooManyQubits`] if the circuit exceeds the machine size.
///
/// # Example
///
/// ```
/// use zac_baselines::sc::{compile_sc, ScMachine};
/// use zac_circuit::{bench_circuits, preprocess};
///
/// let staged = preprocess(&bench_circuits::ghz(23));
/// let out = compile_sc(&staged, ScMachine::Heron)?;
/// assert_eq!(out.swaps, 0, "chains route swap-free on the line layout");
/// # Ok::<(), zac_baselines::sc::TooManyQubits>(())
/// ```
pub fn compile_sc(staged: &StagedCircuit, machine: ScMachine) -> Result<ScOutput, TooManyQubits> {
    let start = Instant::now();
    let graph = machine.coupling();
    let params = machine.params();
    let n = staged.num_qubits;
    if n > graph.num_qubits() {
        return Err(TooManyQubits { needed: n, available: graph.num_qubits() });
    }

    // Initial layout: along the precomputed line, then any leftover qubits.
    let mut phys_of: Vec<usize> = Vec::with_capacity(n);
    let line = graph.line();
    if n <= line.len() {
        phys_of.extend_from_slice(&line[..n]);
    } else {
        phys_of.extend_from_slice(line);
        for q in 0..graph.num_qubits() {
            if phys_of.len() == n {
                break;
            }
            if !phys_of.contains(&q) {
                phys_of.push(q);
            }
        }
    }
    // logical_at[p] = logical qubit on physical p (or MAX).
    let mut logical_at = vec![usize::MAX; graph.num_qubits()];
    for (l, &p) in phys_of.iter().enumerate() {
        logical_at[p] = l;
    }

    // ASAP timing over physical execution.
    let mut avail = vec![0.0f64; n];
    let mut busy = vec![0.0f64; n];
    let mut g1 = 0usize;
    let mut g2 = 0usize;
    let mut swaps = 0usize;

    // Sabre-flavoured mover choice: the endpoint with more remaining gates
    // travels, so hub qubits (e.g. the BV ancilla) end up sitting amid
    // their future partners instead of being fetched repeatedly.
    let mut remaining = vec![0usize; n];
    for (_, g) in staged.gates_with_stage() {
        remaining[g.a] += 1;
        remaining[g.b] += 1;
    }

    let do_2q =
        |a: usize, b: Option<usize>, avail: &mut [f64], busy: &mut [f64], g2: &mut usize| {
            // `b = None` swaps with an unused physical qubit: the gates are real
            // (the device has a qubit there) but carry no logical timing state.
            let t = match b {
                Some(b) => {
                    let t = avail[a].max(avail[b]) + params.t_2q_us;
                    avail[b] = t;
                    busy[b] += params.t_2q_us;
                    t
                }
                None => avail[a] + params.t_2q_us,
            };
            avail[a] = t;
            busy[a] += params.t_2q_us;
            *g2 += 1;
        };

    for stage in &staged.stages {
        for op in &stage.pre_1q {
            avail[op.qubit] += params.t_1q_us;
            busy[op.qubit] += params.t_1q_us;
            g1 += 1;
        }
        for gate in &stage.gates {
            // Route: bring the two logical qubits adjacent by swapping the
            // busier endpoint along the shortest physical path.
            let (mover, target) = if remaining[gate.a] >= remaining[gate.b] {
                (gate.a, gate.b)
            } else {
                (gate.b, gate.a)
            };
            let pm = phys_of[mover];
            let pt = phys_of[target];
            if !graph.adjacent(pm, pt) && pm != pt {
                let path = graph.shortest_path(pm, pt);
                for w in path.windows(2).take(path.len().saturating_sub(2)) {
                    let (from, to) = (w[0], w[1]);
                    let la = logical_at[from];
                    let lb = logical_at[to];
                    debug_assert_eq!(la, mover);
                    // A SWAP is 3 CX.
                    swaps += 1;
                    if lb != usize::MAX {
                        for _ in 0..3 {
                            do_2q(la, Some(lb), &mut avail, &mut busy, &mut g2);
                        }
                        phys_of[lb] = from;
                    } else {
                        for _ in 0..3 {
                            do_2q(la, None, &mut avail, &mut busy, &mut g2);
                        }
                    }
                    phys_of[la] = to;
                    logical_at[from] = lb;
                    logical_at[to] = la;
                }
            }
            do_2q(gate.a, Some(gate.b), &mut avail, &mut busy, &mut g2);
            remaining[gate.a] -= 1;
            remaining[gate.b] -= 1;
        }
    }
    for op in &staged.trailing_1q {
        avail[op.qubit] += params.t_1q_us;
        busy[op.qubit] += params.t_1q_us;
        g1 += 1;
    }

    let duration = avail.iter().copied().fold(0.0, f64::max);
    let idle_us: Vec<f64> = busy.iter().map(|b| (duration - b).max(0.0)).collect();
    let summary = ExecutionSummary {
        name: staged.name.clone(),
        num_qubits: n,
        duration_us: duration,
        g1,
        g2,
        n_exc: 0,
        n_tran: 0,
        idle_us,
    };
    let report = evaluate_superconducting(&summary, &params);
    Ok(ScOutput { summary, report, swaps, compile_time: start.elapsed() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zac_circuit::{bench_circuits, preprocess};

    #[test]
    fn chain_circuits_route_swap_free() {
        for staged in [preprocess(&bench_circuits::ghz(40)), preprocess(&bench_circuits::ising(42))]
        {
            let out = compile_sc(&staged, ScMachine::Heron).unwrap();
            assert_eq!(out.swaps, 0, "{}", staged.name);
            assert_eq!(out.summary.g2, staged.num_2q_gates());
        }
    }

    #[test]
    fn bv_routes_with_sabre_like_swap_count() {
        // BV couples every data qubit to one ancilla. Moving the hub ancilla
        // (the busier endpoint) keeps swap counts linear, like Sabre.
        let staged = preprocess(&bench_circuits::bv(14, 13));
        let out = compile_sc(&staged, ScMachine::Heron).unwrap();
        assert!(out.swaps > 0);
        assert!(out.swaps <= 2 * 14, "swap count {} should be ~linear", out.swaps);
        assert_eq!(out.summary.g2, staged.num_2q_gates() + 3 * out.swaps);
    }

    #[test]
    fn qft_needs_swaps() {
        let staged = preprocess(&bench_circuits::qft(18));
        let out = compile_sc(&staged, ScMachine::Heron).unwrap();
        assert!(out.swaps > 0, "all-to-all circuit must swap");
        assert_eq!(out.summary.g2, staged.num_2q_gates() + 3 * out.swaps);
    }

    #[test]
    fn ising_duration_is_microseconds() {
        // Paper: ising_n42 runs in ~2 us on Heron, ~650 ns on the grid.
        let staged = preprocess(&bench_circuits::ising(42));
        let h = compile_sc(&staged, ScMachine::Heron).unwrap();
        let g = compile_sc(&staged, ScMachine::Grid).unwrap();
        assert!(h.summary.duration_us < 10.0, "Heron {} us", h.summary.duration_us);
        assert!(g.summary.duration_us < h.summary.duration_us);
        assert!(h.report.total() > 0.3 && h.report.total() < 1.0);
    }

    #[test]
    fn too_many_qubits_rejected() {
        let staged = preprocess(&bench_circuits::ghz(122));
        let err = compile_sc(&staged, ScMachine::Grid).unwrap_err();
        assert_eq!(err, TooManyQubits { needed: 122, available: 121 });
    }

    #[test]
    fn grid_decoheres_faster_for_long_circuits() {
        let staged = preprocess(&bench_circuits::qft(18));
        let h = compile_sc(&staged, ScMachine::Heron).unwrap();
        let g = compile_sc(&staged, ScMachine::Grid).unwrap();
        assert!(g.report.decoherence <= h.report.decoherence + 1e-12);
    }
}
