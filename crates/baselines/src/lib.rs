//! Baseline compilers the ZAC paper evaluates against (Sec. VII-A).
//!
//! Four faithful-shape reimplementations (see DESIGN.md §2 for the
//! substitution rationale):
//!
//! * [`enola`] — monolithic architecture, near-optimal stage count, MIS
//!   movement rounds, full idle-excitation penalty;
//! * [`atomique`] — monolithic hybrid SLM/AOD arrays, whole-array alignment
//!   rounds, SWAP-tripled intra-array gates, zero atom transfers;
//! * [`nalac`] — zoned row-sliding compiler whose stay-in-zone reuse exposes
//!   idle residents to the Rydberg laser;
//! * [`sc`] — superconducting SWAP routing on the IBM Heron heavy-hex (127
//!   qubits) and an 11×11 grid, over the [`coupling`] substrate.
//!
//! Every baseline produces a [`zac_fidelity::ExecutionSummary`] and a
//! [`zac_fidelity::FidelityReport`], so the experiment harness compares all
//! compilers under one model. The [`compilers`] module wraps each engine in
//! a [`zac_core::Compiler`]-trait implementor with its own config struct;
//! harness code drives those uniformly alongside ZAC itself.

pub mod atomique;
pub mod compilers;
pub mod coupling;
pub mod enola;
pub mod nalac;
pub mod sc;

pub use atomique::{compile_atomique, AtomiqueOutput};
pub use compilers::{
    Atomique, AtomiqueConfig, Enola, EnolaConfig, Nalac, NalacConfig, Sc, ScConfig,
};
pub use coupling::CouplingGraph;
pub use enola::{compile_enola, EnolaOutput};
pub use nalac::{compile_nalac, NalacOutput};
pub use sc::{compile_sc, ScMachine, ScOutput};

#[cfg(test)]
mod tests {
    use super::*;
    use zac_circuit::{bench_circuits, preprocess};
    use zac_fidelity::NeutralAtomParams;

    /// The paper's headline ordering on a deep sequential circuit:
    /// Atomique ≤ Enola < NALAC (zoned beats monolithic).
    #[test]
    fn compiler_ordering_on_sequential_circuit() {
        let staged = preprocess(&bench_circuits::bv(70, 36));
        let p = NeutralAtomParams::reference();
        let enola = compile_enola(&staged, 10, 10, &p).unwrap().report.total();
        let atomique = compile_atomique(&staged, 10, 10, &p).report.total();
        let nalac = compile_nalac(&staged, 20, &p).report.total();
        assert!(atomique <= enola + 1e-12, "atomique {atomique} > enola {enola}");
        assert!(nalac > enola, "zoned NALAC {nalac} should beat monolithic {enola}");
    }

    /// Superconducting platforms beat everything on very short circuits.
    #[test]
    fn sc_wins_on_shallow_parallel_circuits() {
        let staged = preprocess(&bench_circuits::ising(42));
        let p = NeutralAtomParams::reference();
        let heron = sc::compile_sc(&staged, ScMachine::Heron).unwrap().report.total();
        let enola = compile_enola(&staged, 10, 10, &p).unwrap().report.total();
        assert!(heron > enola);
    }
}
