//! Atomique baseline: monolithic hybrid SLM/AOD compilation
//! (paper Sec. II / VII-A).
//!
//! Atomique splits qubits between a static SLM array and a mobile AOD array.
//! Inter-array gates execute by moving the whole AOD array so the pairs
//! align; intra-array gates first insert a SWAP (3 CZ) with the co-located
//! partner from the other array. Every alignment round is a *global*
//! exposure, so idle qubits are excited once per round — and rounds multiply
//! because gates with different displacement vectors cannot share one
//! whole-array move.
//!
//! This reimplementation keeps those cost drivers (array partition by index
//! parity, displacement-grouped rounds, SWAP tripling, zero atom transfers)
//! and is evaluated with the paper's fidelity model.

use std::time::Instant;
use zac_arch::movement_time_us;
use zac_circuit::StagedCircuit;
use zac_fidelity::{evaluate_neutral_atom, ExecutionSummary, FidelityReport, NeutralAtomParams};

/// Site pitch of the monolithic array (µm), matching the reference
/// entanglement-zone geometry.
const SITE_PITCH_X: f64 = 12.0;
const SITE_PITCH_Y: f64 = 10.0;

/// Atomique compilation result.
#[derive(Debug, Clone)]
pub struct AtomiqueOutput {
    /// Execution summary.
    pub summary: ExecutionSummary,
    /// Fidelity report.
    pub report: FidelityReport,
    /// Inserted SWAP gates.
    pub swaps: usize,
    /// Total alignment/exposure rounds.
    pub rounds: usize,
    /// Compile wall time.
    pub compile_time: std::time::Duration,
}

/// Compiles a staged circuit with the Atomique model on a `rows×cols`-site
/// array (paper default 10×10).
///
/// # Panics
///
/// Panics if the circuit has more qubits than `2·rows·cols` (two qubits per
/// site across the two arrays).
pub fn compile_atomique(
    staged: &StagedCircuit,
    rows: usize,
    cols: usize,
    params: &NeutralAtomParams,
) -> AtomiqueOutput {
    let start = Instant::now();
    let n = staged.num_qubits;
    assert!(n <= 2 * rows * cols, "circuit too large for the array");

    // Pair (2k, 2k+1) shares site k: even → SLM, odd → AOD.
    let site_of = |q: usize| -> (usize, usize) {
        let k = q / 2;
        (k / cols, k % cols)
    };
    let is_aod = |q: usize| q % 2 == 1;

    let mut duration = 0.0f64;
    let mut busy = vec![0.0f64; n];
    let mut g1 = 0usize;
    let mut g2 = 0usize;
    let mut n_exc = 0usize;
    let mut rounds = 0usize;
    let mut swaps = 0usize;

    for stage in &staged.stages {
        for op in &stage.pre_1q {
            duration += params.t_1q_us;
            busy[op.qubit] += params.t_1q_us;
            g1 += 1;
        }

        // SWAP insertion: same-array gates swap one operand with its
        // co-located partner in the other array (3 CZ, already aligned).
        let mut swap_pairs: Vec<(usize, usize)> = Vec::new();
        let mut effective: Vec<(usize, usize)> = Vec::new(); // (slm_q, aod_q)
        for g in &stage.gates {
            let (mut a, mut b) = (g.a, g.b);
            if is_aod(a) == is_aod(b) {
                // Swap one operand with its co-located site partner (q XOR 1)
                // to flip it into the other array; fall back to the other
                // operand when the last qubit has no partner.
                let (swap_q, partner) = if b ^ 1 < n { (b, b ^ 1) } else { (a, a ^ 1) };
                swap_pairs.push((swap_q, partner));
                swaps += 1;
                if swap_q == b {
                    b = partner;
                } else {
                    a = partner;
                }
            }
            if is_aod(a) {
                std::mem::swap(&mut a, &mut b);
            }
            effective.push((a, b));
        }

        // SWAPs: three global exposures; everyone not swapping is excited.
        if !swap_pairs.is_empty() {
            for _ in 0..3 {
                duration += params.t_2q_us;
                rounds += 1;
                g2 += swap_pairs.len();
                n_exc += n - 2 * swap_pairs.len();
                for &(x, y) in &swap_pairs {
                    busy[x] += params.t_2q_us;
                    busy[y] += params.t_2q_us;
                }
            }
            // Basis-change 1Q gates around the SWAP's CX ladder.
            g1 += 4 * swap_pairs.len();
            duration += 4.0 * swap_pairs.len() as f64 * params.t_1q_us;
        }

        // Alignment rounds in program order: consecutive gates batch into a
        // round only while they share the whole-array displacement and use
        // disjoint qubits. Unlike Enola, Atomique does not schedule gates
        // into a near-optimal number of exposures (paper Sec. II), so a
        // parallel layer typically costs many rounds.
        let mut i = 0usize;
        while i < effective.len() {
            let (slm_q, aod_q) = effective[i];
            let (ra, ca) = site_of(slm_q);
            let (rb, cb) = site_of(aod_q);
            let key = (ra as i64 - rb as i64, ca as i64 - cb as i64);
            let mut round: Vec<(usize, usize)> = vec![effective[i]];
            let mut used: std::collections::HashSet<usize> = [slm_q, aod_q].into_iter().collect();
            let mut j = i + 1;
            while j < effective.len() {
                let (a, b) = effective[j];
                let (ra2, ca2) = site_of(a);
                let (rb2, cb2) = site_of(b);
                let k2 = (ra2 as i64 - rb2 as i64, ca2 as i64 - cb2 as i64);
                if k2 != key || used.contains(&a) || used.contains(&b) {
                    break;
                }
                used.insert(a);
                used.insert(b);
                round.push(effective[j]);
                j += 1;
            }
            let dist = ((key.0 as f64 * SITE_PITCH_Y).powi(2)
                + (key.1 as f64 * SITE_PITCH_X).powi(2))
            .sqrt();
            // Move the whole array, expose, move back.
            duration += 2.0 * movement_time_us(dist) + params.t_2q_us;
            rounds += 1;
            g2 += round.len();
            n_exc += n - 2 * round.len();
            for &(a, b) in &round {
                busy[a] += params.t_2q_us;
                busy[b] += params.t_2q_us;
            }
            i = j;
        }
    }
    for op in &staged.trailing_1q {
        duration += params.t_1q_us;
        busy[op.qubit] += params.t_1q_us;
        g1 += 1;
    }

    let idle_us: Vec<f64> = busy.iter().map(|b| (duration - b).max(0.0)).collect();
    let summary = ExecutionSummary {
        name: staged.name.clone(),
        num_qubits: n,
        duration_us: duration,
        g1,
        g2,
        n_exc,
        n_tran: 0, // Atomique never transfers atoms between tweezers.
        idle_us,
    };
    let report = evaluate_neutral_atom(&summary, params);
    AtomiqueOutput { summary, report, swaps, rounds, compile_time: start.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zac_circuit::{bench_circuits, preprocess, Circuit};

    fn params() -> NeutralAtomParams {
        NeutralAtomParams::reference()
    }

    #[test]
    fn no_atom_transfers_ever() {
        let staged = preprocess(&bench_circuits::qft(12));
        let out = compile_atomique(&staged, 10, 10, &params());
        assert_eq!(out.summary.n_tran, 0);
        assert_eq!(out.report.transfer, 1.0);
    }

    #[test]
    fn chain_circuits_need_no_swaps() {
        // Neighbor gates (i, i+1) always straddle the two arrays.
        let staged = preprocess(&bench_circuits::ghz(16));
        let out = compile_atomique(&staged, 10, 10, &params());
        assert_eq!(out.swaps, 0);
        assert_eq!(out.summary.g2, staged.num_2q_gates());
    }

    #[test]
    fn same_parity_gates_insert_swaps() {
        let mut c = Circuit::new("even", 4);
        c.cz(0, 2); // both even → same array
        let staged = preprocess(&c);
        let out = compile_atomique(&staged, 10, 10, &params());
        assert_eq!(out.swaps, 1);
        assert_eq!(out.summary.g2, 1 + 3);
    }

    #[test]
    fn distinct_displacements_multiply_rounds() {
        let mut c = Circuit::new("spread", 8);
        // Three inter-array gates with different displacements.
        c.cz(0, 3).cz(2, 7).cz(4, 1);
        let staged = preprocess(&c);
        let out = compile_atomique(&staged, 10, 10, &params());
        assert!(out.rounds >= 3, "rounds {}", out.rounds);
    }

    #[test]
    fn excitations_exceed_enola_for_swap_heavy_circuits() {
        let staged = preprocess(&bench_circuits::qft(14));
        let atomique = compile_atomique(&staged, 10, 10, &params());
        let enola = crate::enola::compile_enola(&staged, 10, 10, &params()).unwrap();
        assert!(
            atomique.summary.n_exc > enola.summary.n_exc,
            "atomique {} !> enola {}",
            atomique.summary.n_exc,
            enola.summary.n_exc
        );
        assert!(atomique.report.total() <= enola.report.total());
    }
}
