//! [`Compiler`]-trait adapters for the four baselines.
//!
//! The free functions ([`compile_enola`](crate::compile_enola) & co.) remain
//! the computational engines; the types here pair each with its
//! configuration struct so harness code can drive every baseline — and ZAC —
//! through one `&[Box<dyn Compiler>]` slice without per-compiler branches.
//! Defaults reproduce the paper's evaluation settings (Sec. VII-A).

use crate::{compile_atomique, compile_enola, compile_nalac, compile_sc, ScMachine};
use zac_circuit::{Fingerprint, StagedCircuit};
use zac_core::{write_params_tokens, CompileError, CompileOutput, Compiler};
use zac_fidelity::NeutralAtomParams;

/// Configuration of the [`Enola`] baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct EnolaConfig {
    /// Site rows of the monolithic array.
    pub rows: usize,
    /// Site columns of the monolithic array.
    pub cols: usize,
    /// Hardware parameters.
    pub params: NeutralAtomParams,
}

impl Default for EnolaConfig {
    /// The paper's 10×10 monolithic array with Table I parameters.
    fn default() -> Self {
        Self { rows: 10, cols: 10, params: NeutralAtomParams::reference() }
    }
}

/// Enola on a monolithic architecture (near-optimal stage count, MIS
/// movement rounds, full idle-excitation penalty).
#[derive(Debug, Clone, Default)]
pub struct Enola {
    /// Configuration.
    pub config: EnolaConfig,
}

impl Enola {
    /// Enola with an explicit configuration.
    pub fn new(config: EnolaConfig) -> Self {
        Self { config }
    }
}

impl Compiler for Enola {
    fn name(&self) -> &str {
        "Monolithic-Enola"
    }

    fn config_tokens(&self, fp: &mut Fingerprint) {
        fp.write_usize(self.config.rows);
        fp.write_usize(self.config.cols);
        write_params_tokens(fp, &self.config.params);
    }

    fn compile(&self, staged: &StagedCircuit) -> Result<CompileOutput, CompileError> {
        let c = &self.config;
        let out = compile_enola(staged, c.rows, c.cols, &c.params)
            .map_err(|e| CompileError::CircuitTooLarge { needed: e.needed, available: e.sites })?;
        Ok(CompileOutput::new(out.summary, out.report, out.compile_time, None))
    }
}

/// Configuration of the [`Atomique`] baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomiqueConfig {
    /// Site rows of the hybrid SLM/AOD array.
    pub rows: usize,
    /// Site columns of the hybrid SLM/AOD array.
    pub cols: usize,
    /// Hardware parameters.
    pub params: NeutralAtomParams,
}

impl Default for AtomiqueConfig {
    /// The paper's 10×10 array with Table I parameters.
    fn default() -> Self {
        Self { rows: 10, cols: 10, params: NeutralAtomParams::reference() }
    }
}

/// Atomique on a monolithic hybrid SLM/AOD architecture (whole-array
/// alignment rounds, SWAP-tripled intra-array gates, zero transfers).
#[derive(Debug, Clone, Default)]
pub struct Atomique {
    /// Configuration.
    pub config: AtomiqueConfig,
}

impl Atomique {
    /// Atomique with an explicit configuration.
    pub fn new(config: AtomiqueConfig) -> Self {
        Self { config }
    }
}

impl Compiler for Atomique {
    fn name(&self) -> &str {
        "Monolithic-Atomique"
    }

    fn config_tokens(&self, fp: &mut Fingerprint) {
        fp.write_usize(self.config.rows);
        fp.write_usize(self.config.cols);
        write_params_tokens(fp, &self.config.params);
    }

    fn compile(&self, staged: &StagedCircuit) -> Result<CompileOutput, CompileError> {
        let c = &self.config;
        // The engine asserts capacity (two qubits per site); surface the
        // bound as a typed error instead.
        let capacity = 2 * c.rows * c.cols;
        if staged.num_qubits > capacity {
            return Err(CompileError::CircuitTooLarge {
                needed: staged.num_qubits,
                available: capacity,
            });
        }
        let out = compile_atomique(staged, c.rows, c.cols, &c.params);
        Ok(CompileOutput::new(out.summary, out.report, out.compile_time, None))
    }
}

/// Configuration of the [`Nalac`] baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct NalacConfig {
    /// Rydberg sites per entanglement-zone row.
    pub zone_row_sites: usize,
    /// Hardware parameters.
    pub params: NeutralAtomParams,
}

impl Default for NalacConfig {
    /// The reference zoned geometry's 20-site row with Table I parameters.
    fn default() -> Self {
        Self { zone_row_sites: 20, params: NeutralAtomParams::reference() }
    }
}

/// NALAC's zoned row-sliding compiler (stay-in-zone reuse exposes idle
/// residents to the Rydberg laser).
#[derive(Debug, Clone, Default)]
pub struct Nalac {
    /// Configuration.
    pub config: NalacConfig,
}

impl Nalac {
    /// NALAC with an explicit configuration.
    pub fn new(config: NalacConfig) -> Self {
        Self { config }
    }
}

impl Compiler for Nalac {
    fn name(&self) -> &str {
        "Zoned-NALAC"
    }

    fn config_tokens(&self, fp: &mut Fingerprint) {
        fp.write_usize(self.config.zone_row_sites);
        write_params_tokens(fp, &self.config.params);
    }

    fn compile(&self, staged: &StagedCircuit) -> Result<CompileOutput, CompileError> {
        let c = &self.config;
        let out = compile_nalac(staged, c.zone_row_sites, &c.params);
        Ok(CompileOutput::new(out.summary, out.report, out.compile_time, None))
    }
}

/// Configuration of the [`Sc`] baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScConfig {
    /// Which superconducting machine to target.
    pub machine: ScMachine,
}

impl Default for ScConfig {
    /// IBM Heron (the stronger of the paper's two SC baselines).
    fn default() -> Self {
        Self { machine: ScMachine::Heron }
    }
}

/// Superconducting SWAP routing (Heron heavy-hex or 11×11 grid).
#[derive(Debug, Clone, Default)]
pub struct Sc {
    /// Configuration.
    pub config: ScConfig,
}

impl Sc {
    /// SC routing with an explicit configuration.
    pub fn new(config: ScConfig) -> Self {
        Self { config }
    }

    /// The IBM Heron 127-qubit heavy-hex machine.
    pub fn heron() -> Self {
        Self::new(ScConfig { machine: ScMachine::Heron })
    }

    /// The 11×11 grid machine.
    pub fn grid() -> Self {
        Self::new(ScConfig { machine: ScMachine::Grid })
    }
}

impl Compiler for Sc {
    fn name(&self) -> &str {
        match self.config.machine {
            ScMachine::Heron => "SC-Heron",
            ScMachine::Grid => "SC-Grid",
        }
    }

    fn config_tokens(&self, fp: &mut Fingerprint) {
        // The machine choice already determines `name()`; tag it anyway so
        // the fingerprint does not depend on the display string alone.
        fp.write_u8(match self.config.machine {
            ScMachine::Heron => 0,
            ScMachine::Grid => 1,
        });
    }

    fn compile(&self, staged: &StagedCircuit) -> Result<CompileOutput, CompileError> {
        let out = compile_sc(staged, self.config.machine).map_err(|e| {
            CompileError::CircuitTooLarge { needed: e.needed, available: e.available }
        })?;
        Ok(CompileOutput::new(out.summary, out.report, out.compile_time, None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zac_circuit::{bench_circuits, preprocess};

    fn all() -> Vec<Box<dyn Compiler>> {
        vec![
            Box::new(Sc::heron()),
            Box::new(Sc::grid()),
            Box::new(Atomique::default()),
            Box::new(Enola::default()),
            Box::new(Nalac::default()),
        ]
    }

    #[test]
    fn trait_outputs_match_free_functions() {
        let staged = preprocess(&bench_circuits::ghz(12));
        let p = NeutralAtomParams::reference();
        let via_trait = Enola::default().compile(&staged).unwrap();
        let direct = compile_enola(&staged, 10, 10, &p).unwrap();
        assert_eq!(via_trait.report.total(), direct.report.total());
        assert_eq!(via_trait.counts.g2, direct.summary.g2);

        let via_trait = Nalac::default().compile(&staged).unwrap();
        let direct = compile_nalac(&staged, 20, &p);
        assert_eq!(via_trait.report.total(), direct.report.total());
    }

    #[test]
    fn names_match_paper_legends() {
        let names: Vec<String> = all().iter().map(|c| c.name().to_owned()).collect();
        assert_eq!(
            names,
            ["SC-Heron", "SC-Grid", "Monolithic-Atomique", "Monolithic-Enola", "Zoned-NALAC"]
        );
    }

    #[test]
    fn oversized_circuits_yield_typed_errors() {
        let staged = preprocess(&bench_circuits::ghz(300));
        for compiler in all() {
            match compiler.compile(&staged) {
                Err(CompileError::CircuitTooLarge { needed, .. }) => assert_eq!(needed, 300),
                Ok(_) if compiler.name() == "Zoned-NALAC" => {
                    // NALAC's sliding rows scale with the circuit; no bound.
                }
                other => panic!("{}: unexpected result {other:?}", compiler.name()),
            }
        }
    }

    #[test]
    fn fingerprints_distinct_across_lineup_and_configs() {
        let fps: Vec<u64> = all().iter().map(|c| c.fingerprint()).collect();
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j], "compilers {i} and {j} share a fingerprint");
            }
        }
        // Same compiler, different config → different fingerprint.
        let wide = Enola::new(EnolaConfig { rows: 12, ..EnolaConfig::default() });
        assert_ne!(wide.fingerprint(), Enola::default().fingerprint());
        let mut params = NeutralAtomParams::reference();
        params.f_2q = 0.999;
        let tuned = Nalac::new(NalacConfig { params, ..NalacConfig::default() });
        assert_ne!(tuned.fingerprint(), Nalac::default().fingerprint());
    }

    #[test]
    fn baselines_produce_no_programs() {
        let staged = preprocess(&bench_circuits::ghz(8));
        for compiler in all() {
            let out = compiler.compile(&staged).unwrap();
            assert!(out.program.is_none(), "{}", compiler.name());
            assert!(out.total_fidelity() > 0.0, "{}", compiler.name());
        }
    }
}
