//! The corpus manifest: a committed list of cache keys worth keeping warm.
//!
//! A manifest names the compilation cells — (circuit fingerprint, compiler
//! fingerprint) pairs, each with a human-readable label — that a service
//! should preload into its in-memory cache tier at start, so the first
//! client wave hits memory instead of paying disk rehydration per request.
//! `zac-cache`'s `CompileCache::warm_from_manifest` consumes one; `zac-serve`
//! loads the file named by `ZAC_WARM_MANIFEST`.
//!
//! Fingerprints are serialized as 16-digit hex strings for the same reason
//! the cache disk envelope uses them: the stand-in JSON number model is
//! `f64`-backed and cannot represent every `u64` exactly, and a silently
//! rounded fingerprint would warm (or miss) the wrong entry.

use serde::{DeError, Deserialize, ObjectView, Serialize, Value};
use std::io;
use std::path::Path;

/// Manifest format version; files with any other version are rejected.
pub const CORPUS_MANIFEST_VERSION: u64 = 1;

/// One cell to keep warm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Human-readable label (circuit @ compiler), for logs only — identity
    /// lives in the fingerprints.
    pub name: String,
    /// `StagedCircuit::fingerprint()` of the input.
    pub circuit: u64,
    /// `Compiler::fingerprint()` of the compiler.
    pub compiler: u64,
}

impl Serialize for ManifestEntry {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".into(), self.name.to_value()),
            ("circuit_fp".into(), format!("{:016x}", self.circuit).to_value()),
            ("compiler_fp".into(), format!("{:016x}", self.compiler).to_value()),
        ])
    }
}

impl Deserialize for ManifestEntry {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = ObjectView::new(v)?;
        let hex = |field: &str| -> Result<u64, DeError> {
            let s: String = obj.field(field)?;
            u64::from_str_radix(&s, 16)
                .map_err(|_| DeError::msg(format!("manifest field `{field}` is not a hex u64")))
        };
        Ok(Self {
            name: obj.field("name")?,
            circuit: hex("circuit_fp")?,
            compiler: hex("compiler_fp")?,
        })
    }
}

/// A versioned, committed list of [`ManifestEntry`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CorpusManifest {
    /// The cells to warm, in warming order.
    pub entries: Vec<ManifestEntry>,
}

impl Serialize for CorpusManifest {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("version".into(), CORPUS_MANIFEST_VERSION.to_value()),
            ("entries".into(), self.entries.to_value()),
        ])
    }
}

impl Deserialize for CorpusManifest {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = ObjectView::new(v)?;
        let version: u64 = obj.field("version")?;
        if version != CORPUS_MANIFEST_VERSION {
            return Err(DeError::msg(format!(
                "unsupported corpus manifest version {version} (expected {CORPUS_MANIFEST_VERSION})"
            )));
        }
        Ok(Self { entries: obj.field("entries")? })
    }
}

impl CorpusManifest {
    /// An empty manifest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one cell.
    pub fn push(&mut self, name: impl Into<String>, circuit: u64, compiler: u64) {
        self.entries.push(ManifestEntry { name: name.into(), circuit, compiler });
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the manifest lists no cells.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes to the versioned JSON document.
    ///
    /// # Errors
    ///
    /// [`serde_json::Error`] — structurally impossible for manifests (no
    /// floats), kept for interface symmetry.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(&self.to_value())
    }

    /// Parses a document produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// [`serde_json::Error`] on malformed JSON, a version mismatch, or a
    /// non-hex fingerprint.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Writes the manifest to `path`.
    ///
    /// # Errors
    ///
    /// [`io::Error`] on write failure.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let json = self
            .to_json()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, json)
    }

    /// Reads a manifest from `path`.
    ///
    /// # Errors
    ///
    /// [`io::Error`] on read failure or an unparseable document.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CorpusManifest {
        let mut m = CorpusManifest::new();
        m.push("ghz_10 @ Zoned-ZAC", 0xdead_beef_0123_4567, 0xfeed_face_89ab_cdef);
        m.push("qft_8 @ SC-Heron", u64::MAX, 1);
        m
    }

    #[test]
    fn roundtrips_including_extreme_fingerprints() {
        let m = sample();
        let back = CorpusManifest::from_json(&m.to_json().unwrap()).unwrap();
        assert_eq!(back, m, "u64::MAX survives the hex encoding exactly");
    }

    #[test]
    fn golden_shape() {
        let json = sample().to_json().unwrap();
        assert!(json.starts_with("{\"version\":1,\"entries\":[{\"name\":\"ghz_10 @ Zoned-ZAC\",\"circuit_fp\":\"deadbeef01234567\",\"compiler_fp\":\"feedface89abcdef\"}"), "{json}");
    }

    #[test]
    fn rejects_future_versions_and_bad_hex() {
        let json = sample().to_json().unwrap();
        let future = json.replacen("\"version\":1", "\"version\":9", 1);
        assert!(CorpusManifest::from_json(&future).is_err());
        let bad = json.replacen("deadbeef01234567", "not-hex-not-a-fp!", 1);
        assert!(CorpusManifest::from_json(&bad).is_err());
    }

    #[test]
    fn save_load_roundtrip() {
        let path = std::env::temp_dir().join(format!("zac-manifest-{}.json", std::process::id()));
        let m = sample();
        m.save(&path).unwrap();
        assert_eq!(CorpusManifest::load(&path).unwrap(), m);
        std::fs::remove_file(&path).ok();
        assert!(CorpusManifest::load(&path).is_err(), "missing file is an error");
    }
}
