//! Idealized execution models for the optimality study (paper Sec. VII-F).
//!
//! Three upper-bound models, each subsuming the previous:
//!
//! * **Perfect movement** — all of ZAC's movements are mutually compatible,
//!   so each transition needs at most two rearrangement instructions (one
//!   return layer, one fetch layer) whose duration is set by the *longest*
//!   movement.
//! * **Perfect placement** — additionally, every movement only crosses the
//!   zone separation, so each rearrangement layer lasts exactly
//!   `2·T_tran + √(d_sep/a)`.
//! * **Perfect reuse** — additionally, every qubit shared by consecutive
//!   stages stays in the zone or moves directly to its next site, saving the
//!   two atom transfers of the storage round-trip.
//!
//! All models keep the real gate counts and the zoned guarantee `N_exc = 0`,
//! so they bound fidelity from above. These are analytic models (they do not
//! construct ZAIR).

use std::collections::HashSet;
use zac_arch::{movement_time_us, Architecture};
use zac_circuit::StagedCircuit;
use zac_fidelity::{ExecutionSummary, NeutralAtomParams};
use zac_place::PlacementPlan;

/// Which idealization to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdealLevel {
    /// All movements compatible: ≤ 2 rearrangement layers per transition.
    PerfectMovement,
    /// Plus: every movement spans only the zone separation.
    PerfectPlacement,
    /// Plus: maximal reuse with direct site-to-site moves.
    PerfectReuse,
}

/// The zone separation `d_sep` (µm): the minimal gap between storage traps
/// and entanglement-zone traps (10 µm on the reference architecture, where
/// the last storage row sits at y = 297 and the first site row at y = 307).
pub fn zone_separation_um(arch: &Architecture) -> f64 {
    let mut best = f64::INFINITY;
    for s in arch.storage_zones() {
        for s_slm in &s.slms {
            let sb = s_slm.bounds();
            for e in arch.entanglement_zones() {
                for e_slm in &e.slms {
                    let eb = e_slm.bounds();
                    // Rectilinear gap between the two trap rectangles.
                    let dx = (eb.origin.x - (sb.origin.x + sb.width))
                        .max(sb.origin.x - (eb.origin.x + eb.width))
                        .max(0.0);
                    let dy = (eb.origin.y - (sb.origin.y + sb.height))
                        .max(sb.origin.y - (eb.origin.y + eb.height))
                        .max(0.0);
                    best = best.min(dx.hypot(dy));
                }
            }
        }
    }
    if best.is_finite() {
        best
    } else {
        10.0
    }
}

/// Computes the idealized execution summary for a compiled circuit.
///
/// `plan` supplies the real movement set for [`IdealLevel::PerfectMovement`];
/// the stricter levels derive movement sets analytically from the staged
/// circuit.
pub fn ideal_summary(
    arch: &Architecture,
    staged: &StagedCircuit,
    plan: &PlacementPlan,
    params: &NeutralAtomParams,
    level: IdealLevel,
) -> ExecutionSummary {
    let n = staged.num_qubits;
    let d_sep = zone_separation_um(arch);
    let sep_layer = 2.0 * params.t_tran_us + movement_time_us(d_sep);

    let mut duration = 0.0f64;
    let mut busy = vec![0.0f64; n];
    let mut n_tran = 0usize;

    let add_layer = |moved: &[usize],
                     max_dist: f64,
                     duration: &mut f64,
                     busy: &mut [f64],
                     n_tran: &mut usize,
                     transfers_per_qubit: usize| {
        if moved.is_empty() {
            return;
        }
        let move_t = movement_time_us(max_dist);
        *duration += transfers_per_qubit as f64 * params.t_tran_us + move_t;
        for &q in moved {
            busy[q] += transfers_per_qubit as f64 * params.t_tran_us;
            *n_tran += transfers_per_qubit;
        }
    };

    let mut current = plan.initial.clone();
    let mut prev_qubits: HashSet<usize> = HashSet::new();
    for (t, stage) in staged.stages.iter().enumerate() {
        let stage_qubits: HashSet<usize> = stage.gates.iter().flat_map(|g| [g.a, g.b]).collect();

        match level {
            IdealLevel::PerfectMovement | IdealLevel::PerfectPlacement => {
                // Real movements from the plan, bundled into ≤ 2 layers.
                // Perfect placement additionally collapses every distance to
                // the zone separation d_sep.
                let during = &plan.stages[t].during;
                let mut returns: Vec<usize> = Vec::new();
                let mut fetches: Vec<usize> = Vec::new();
                let mut ret_d = 0.0f64;
                let mut fet_d = 0.0f64;
                for q in 0..n {
                    if current[q] == during[q] {
                        continue;
                    }
                    let d = if level == IdealLevel::PerfectPlacement {
                        d_sep
                    } else {
                        arch.position(current[q]).distance(arch.position(during[q]))
                    };
                    if during[q].is_storage() {
                        returns.push(q);
                        ret_d = ret_d.max(d);
                    } else {
                        fetches.push(q);
                        fet_d = fet_d.max(d);
                    }
                }
                add_layer(&returns, ret_d, &mut duration, &mut busy, &mut n_tran, 2);
                add_layer(&fetches, fet_d, &mut duration, &mut busy, &mut n_tran, 2);
                current = during.clone();
                let _ = sep_layer;
            }
            IdealLevel::PerfectReuse => {
                // Maximal reuse: every qubit shared by consecutive stages
                // stays at its site for free; only true joiners and leavers
                // move, over d_sep.
                let returns: Vec<usize> =
                    prev_qubits.iter().copied().filter(|q| !stage_qubits.contains(q)).collect();
                let fetches: Vec<usize> =
                    stage_qubits.iter().copied().filter(|q| !prev_qubits.contains(q)).collect();
                add_layer(&returns, d_sep, &mut duration, &mut busy, &mut n_tran, 2);
                add_layer(&fetches, d_sep, &mut duration, &mut busy, &mut n_tran, 2);
            }
        }

        // 1Q group, then the exposure.
        let k = staged.stages[t].pre_1q.len();
        duration += params.t_1q_us * k as f64;
        for op in &staged.stages[t].pre_1q {
            busy[op.qubit] += params.t_1q_us;
        }
        duration += params.t_2q_us;
        for q in &stage_qubits {
            busy[*q] += params.t_2q_us;
        }
        prev_qubits = stage_qubits;
    }
    let k = staged.trailing_1q.len();
    duration += params.t_1q_us * k as f64;
    for op in &staged.trailing_1q {
        busy[op.qubit] += params.t_1q_us;
    }

    let idle_us: Vec<f64> = busy.iter().map(|b| (duration - b).max(0.0)).collect();
    ExecutionSummary {
        name: format!("{}-{:?}", staged.name, level),
        num_qubits: n,
        duration_us: duration,
        g1: staged.num_1q_gates(),
        g2: staged.num_2q_gates(),
        n_exc: 0,
        n_tran,
        idle_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{Zac, ZacConfig};
    use zac_circuit::{bench_circuits, preprocess};
    use zac_fidelity::evaluate_neutral_atom;

    fn setup(n: usize) -> (Architecture, StagedCircuit, PlacementPlan, NeutralAtomParams) {
        let arch = Architecture::reference();
        let staged = preprocess(&bench_circuits::ghz(n));
        let mut cfg = ZacConfig::default();
        cfg.placement.sa_iterations = 100;
        let out = Zac::with_config(arch.clone(), cfg).compile_staged(&staged).unwrap();
        (arch, staged, out.plan, NeutralAtomParams::reference())
    }

    #[test]
    fn reference_zone_separation_is_10um() {
        let arch = Architecture::reference();
        assert!((zone_separation_um(&arch) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ideal_hierarchy_is_monotone() {
        let (arch, staged, plan, params) = setup(14);
        let fid = |level| {
            let s = ideal_summary(&arch, &staged, &plan, &params, level);
            evaluate_neutral_atom(&s, &params).total()
        };
        let fm = fid(IdealLevel::PerfectMovement);
        let fp = fid(IdealLevel::PerfectPlacement);
        let fr = fid(IdealLevel::PerfectReuse);
        assert!(fp >= fm - 1e-9, "placement {fp} >= movement {fm}");
        assert!(fr >= fp - 1e-9, "reuse {fr} >= placement {fp}");
    }

    #[test]
    fn ideal_bounds_real_compilation() {
        let (arch, staged, plan, params) = setup(12);
        let mut cfg = ZacConfig::default();
        cfg.placement.sa_iterations = 100;
        let real =
            Zac::with_config(arch.clone(), cfg).compile_staged(&staged).unwrap().total_fidelity();
        for level in
            [IdealLevel::PerfectMovement, IdealLevel::PerfectPlacement, IdealLevel::PerfectReuse]
        {
            let s = ideal_summary(&arch, &staged, &plan, &params, level);
            let f = evaluate_neutral_atom(&s, &params).total();
            assert!(f >= real - 0.02, "{level:?} bound {f} below real {real}");
        }
    }

    #[test]
    fn perfect_reuse_saves_transfers_over_reuse_free_plan() {
        // Compare against a plan compiled WITHOUT reuse: the perfect-reuse
        // bound must need strictly fewer transfers on a chain circuit.
        let arch = Architecture::reference();
        let staged = preprocess(&bench_circuits::ghz(14));
        let mut cfg = ZacConfig::dyn_place(); // reuse off
        cfg.placement.sa_iterations = 100;
        let out = Zac::with_config(arch.clone(), cfg).compile_staged(&staged).unwrap();
        let params = NeutralAtomParams::reference();
        let sp = ideal_summary(&arch, &staged, &out.plan, &params, IdealLevel::PerfectPlacement);
        let sr = ideal_summary(&arch, &staged, &out.plan, &params, IdealLevel::PerfectReuse);
        assert!(sr.n_tran < sp.n_tran, "reuse {} !< placement {}", sr.n_tran, sp.n_tran);
        // And never worse than the plan-based bound in general.
        let (arch2, staged2, plan2, params2) = setup(14);
        let sp2 = ideal_summary(&arch2, &staged2, &plan2, &params2, IdealLevel::PerfectPlacement);
        let sr2 = ideal_summary(&arch2, &staged2, &plan2, &params2, IdealLevel::PerfectReuse);
        assert!(sr2.n_tran <= sp2.n_tran);
    }

    #[test]
    fn gate_counts_preserved() {
        let (arch, staged, plan, params) = setup(10);
        let s = ideal_summary(&arch, &staged, &plan, &params, IdealLevel::PerfectMovement);
        assert_eq!(s.g2, staged.num_2q_gates());
        assert_eq!(s.g1, staged.num_1q_gates());
        assert_eq!(s.n_exc, 0);
    }
}
