//! A compact binary encoding of [`CompileOutput`] for the cache's segment
//! log.
//!
//! The JSON envelope (`output_json`) is the exchange format — stable,
//! inspectable, streamed to clients. It is also what capped the per-file
//! disk cache: rehydrating a corpus-scale store spends almost all of its
//! wall clock inside the JSON tree parser. Segment records therefore carry
//! this fixed-layout binary form instead — length-prefixed strings, `u64`
//! little-endian integers, `f64` payloads as raw IEEE-754 bits — which
//! decodes with no tokenizer, no `Value` tree, and no number re-parsing.
//!
//! The format is versioned ([`OUTPUT_BIN_FORMAT_VERSION`]) and **exact**:
//! `f64`s round-trip via `to_bits`/`from_bits`, so a decoded output is
//! bit-identical to the encoded one — `decode(encode(out)).to_json() ==
//! out.to_json()` holds for every representable output, which is the
//! invariant the cache's bit-identity guarantees rest on. Encoding rejects
//! non-finite numbers with the same policy as the JSON envelope: a NaN in a
//! compile output is an upstream bug, and the cache must not preserve it.

use crate::interface::{CompileOutput, GateCounts, PhaseTimings};
use std::time::Duration;
use zac_fidelity::{ExecutionSummary, FidelityReport};
use zac_zair::{AodInst, Instruction, Program, QubitLoc, RearrangeJob, U3Application};

/// Version byte leading every encoded output. Bump on any layout change;
/// decoders reject other versions (the cache treats that as a miss and
/// recompiles — its normal degradation mode).
pub const OUTPUT_BIN_FORMAT_VERSION: u8 = 1;

/// Why an encode or decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// The buffer ended before the document did (torn or truncated record).
    Truncated,
    /// The leading version byte is not one this reader supports.
    Version(u8),
    /// An enum discriminant or tag byte holds an unknown value.
    Tag(u8),
    /// A length prefix or string is structurally impossible (overflow,
    /// non-UTF-8 bytes where a string was declared).
    Malformed,
    /// The output contains non-finite numbers and must not be persisted.
    NonFinite,
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "binary output document is truncated"),
            Self::Version(v) => write!(
                f,
                "unsupported binary output version {v} (reader supports {OUTPUT_BIN_FORMAT_VERSION})"
            ),
            Self::Tag(t) => write!(f, "unknown tag byte {t} in binary output document"),
            Self::Malformed => write!(f, "malformed binary output document"),
            Self::NonFinite => write!(f, "compile output contains non-finite numbers"),
        }
    }
}

impl std::error::Error for BinError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) -> Result<(), BinError> {
        if !v.is_finite() {
            return Err(BinError::NonFinite);
        }
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        Ok(())
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn f64s(&mut self, vs: &[f64]) -> Result<(), BinError> {
        self.usize(vs.len());
        vs.iter().try_for_each(|&v| self.f64(v))
    }

    fn usizes(&mut self, vs: &[usize]) {
        self.usize(vs.len());
        vs.iter().for_each(|&v| self.usize(v));
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        let end = self.pos.checked_add(n).ok_or(BinError::Malformed)?;
        let slice = self.buf.get(self.pos..end).ok_or(BinError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, BinError> {
        Ok(self.bytes(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, BinError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(BinError::Tag(t)),
        }
    }

    fn u64(&mut self) -> Result<u64, BinError> {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(self.bytes(8)?);
        Ok(u64::from_le_bytes(raw))
    }

    fn usize(&mut self) -> Result<usize, BinError> {
        usize::try_from(self.u64()?).map_err(|_| BinError::Malformed)
    }

    /// A length prefix about to drive `n` reads of ≥ `width` bytes each:
    /// bounds-checked against the remaining buffer so a corrupt length
    /// cannot trigger a huge allocation before `Truncated` would surface.
    fn len(&mut self, width: usize) -> Result<usize, BinError> {
        let n = self.usize()?;
        if n.saturating_mul(width.max(1)) > self.buf.len() - self.pos {
            return Err(BinError::Truncated);
        }
        Ok(n)
    }

    fn f64(&mut self) -> Result<f64, BinError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, BinError> {
        let n = self.len(1)?;
        std::str::from_utf8(self.bytes(n)?).map(str::to_owned).map_err(|_| BinError::Malformed)
    }

    fn f64s(&mut self) -> Result<Vec<f64>, BinError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn usizes(&mut self) -> Result<Vec<usize>, BinError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.usize()).collect()
    }
}

/// Saturating nanosecond conversion (same policy as the JSON envelope).
fn ns_u64(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn put_loc(w: &mut Writer, loc: &QubitLoc) {
    w.usize(loc.qubit);
    w.usize(loc.slm_id);
    w.usize(loc.row);
    w.usize(loc.col);
}

fn get_loc(r: &mut Reader) -> Result<QubitLoc, BinError> {
    Ok(QubitLoc { qubit: r.usize()?, slm_id: r.usize()?, row: r.usize()?, col: r.usize()? })
}

fn put_locs(w: &mut Writer, locs: &[QubitLoc]) {
    w.usize(locs.len());
    locs.iter().for_each(|l| put_loc(w, l));
}

fn get_locs(r: &mut Reader) -> Result<Vec<QubitLoc>, BinError> {
    let n = r.len(32)?;
    (0..n).map(|_| get_loc(r)).collect()
}

fn put_loc_rows(w: &mut Writer, rows: &[Vec<QubitLoc>]) {
    w.usize(rows.len());
    rows.iter().for_each(|row| put_locs(w, row));
}

fn get_loc_rows(r: &mut Reader) -> Result<Vec<Vec<QubitLoc>>, BinError> {
    let n = r.len(8)?;
    (0..n).map(|_| get_locs(r)).collect()
}

fn put_aod_inst(w: &mut Writer, inst: &AodInst) -> Result<(), BinError> {
    match inst {
        AodInst::Activate { row_id, row_y, col_id, col_x } => {
            w.u8(0);
            w.usizes(row_id);
            w.f64s(row_y)?;
            w.usizes(col_id);
            w.f64s(col_x)?;
        }
        AodInst::Deactivate { row_id, col_id } => {
            w.u8(1);
            w.usizes(row_id);
            w.usizes(col_id);
        }
        AodInst::Move { row_id, row_y_begin, row_y_end, col_id, col_x_begin, col_x_end } => {
            w.u8(2);
            w.usizes(row_id);
            w.f64s(row_y_begin)?;
            w.f64s(row_y_end)?;
            w.usizes(col_id);
            w.f64s(col_x_begin)?;
            w.f64s(col_x_end)?;
        }
    }
    Ok(())
}

fn get_aod_inst(r: &mut Reader) -> Result<AodInst, BinError> {
    match r.u8()? {
        0 => Ok(AodInst::Activate {
            row_id: r.usizes()?,
            row_y: r.f64s()?,
            col_id: r.usizes()?,
            col_x: r.f64s()?,
        }),
        1 => Ok(AodInst::Deactivate { row_id: r.usizes()?, col_id: r.usizes()? }),
        2 => Ok(AodInst::Move {
            row_id: r.usizes()?,
            row_y_begin: r.f64s()?,
            row_y_end: r.f64s()?,
            col_id: r.usizes()?,
            col_x_begin: r.f64s()?,
            col_x_end: r.f64s()?,
        }),
        t => Err(BinError::Tag(t)),
    }
}

fn put_job(w: &mut Writer, job: &RearrangeJob) -> Result<(), BinError> {
    w.usize(job.aod_id);
    put_loc_rows(w, &job.begin_locs);
    put_loc_rows(w, &job.end_locs);
    w.usize(job.insts.len());
    job.insts.iter().try_for_each(|i| put_aod_inst(w, i))?;
    w.f64(job.begin_time)?;
    w.f64(job.end_time)?;
    w.f64(job.pick_duration)?;
    w.f64(job.move_duration)?;
    w.f64(job.drop_duration)
}

fn get_job(r: &mut Reader) -> Result<RearrangeJob, BinError> {
    let aod_id = r.usize()?;
    let begin_locs = get_loc_rows(r)?;
    let end_locs = get_loc_rows(r)?;
    let n = r.len(1)?;
    let insts = (0..n).map(|_| get_aod_inst(r)).collect::<Result<_, _>>()?;
    Ok(RearrangeJob {
        aod_id,
        begin_locs,
        end_locs,
        insts,
        begin_time: r.f64()?,
        end_time: r.f64()?,
        pick_duration: r.f64()?,
        move_duration: r.f64()?,
        drop_duration: r.f64()?,
    })
}

fn put_instruction(w: &mut Writer, inst: &Instruction) -> Result<(), BinError> {
    match inst {
        Instruction::Init { init_locs } => {
            w.u8(0);
            put_locs(w, init_locs);
            Ok(())
        }
        Instruction::OneQGate { gates, begin_time, end_time } => {
            w.u8(1);
            w.usize(gates.len());
            for g in gates {
                w.f64(g.theta)?;
                w.f64(g.phi)?;
                w.f64(g.lambda)?;
                put_loc(w, &g.loc);
            }
            w.f64(*begin_time)?;
            w.f64(*end_time)
        }
        Instruction::Rydberg { zone_id, begin_time, end_time } => {
            w.u8(2);
            w.usize(*zone_id);
            w.f64(*begin_time)?;
            w.f64(*end_time)
        }
        Instruction::RearrangeJob(job) => {
            w.u8(3);
            put_job(w, job)
        }
    }
}

fn get_instruction(r: &mut Reader) -> Result<Instruction, BinError> {
    match r.u8()? {
        0 => Ok(Instruction::Init { init_locs: get_locs(r)? }),
        1 => {
            let n = r.len(56)?;
            let gates = (0..n)
                .map(|_| {
                    Ok(U3Application {
                        theta: r.f64()?,
                        phi: r.f64()?,
                        lambda: r.f64()?,
                        loc: get_loc(r)?,
                    })
                })
                .collect::<Result<_, BinError>>()?;
            Ok(Instruction::OneQGate { gates, begin_time: r.f64()?, end_time: r.f64()? })
        }
        2 => Ok(Instruction::Rydberg {
            zone_id: r.usize()?,
            begin_time: r.f64()?,
            end_time: r.f64()?,
        }),
        3 => Ok(Instruction::RearrangeJob(get_job(r)?)),
        t => Err(BinError::Tag(t)),
    }
}

/// Encodes `out` into the versioned binary layout.
///
/// # Errors
///
/// [`BinError::NonFinite`] if any float in the output is NaN or infinite —
/// the same rejection the JSON envelope applies, so the two formats accept
/// exactly the same set of outputs.
pub fn encode_output(out: &CompileOutput) -> Result<Vec<u8>, BinError> {
    let mut w = Writer { buf: Vec::with_capacity(256) };
    w.u8(OUTPUT_BIN_FORMAT_VERSION);
    // Summary.
    w.str(&out.summary.name);
    w.usize(out.summary.num_qubits);
    w.f64(out.summary.duration_us)?;
    w.usize(out.summary.g1);
    w.usize(out.summary.g2);
    w.usize(out.summary.n_exc);
    w.usize(out.summary.n_tran);
    w.f64s(&out.summary.idle_us)?;
    // Report.
    w.f64(out.report.one_q)?;
    w.f64(out.report.two_q)?;
    w.f64(out.report.transfer)?;
    w.f64(out.report.decoherence)?;
    w.f64(out.report.duration_us)?;
    // Counts.
    w.usize(out.counts.g1);
    w.usize(out.counts.g2);
    w.usize(out.counts.n_exc);
    w.usize(out.counts.n_tran);
    // Timing + cache marker.
    w.u64(ns_u64(out.compile_time));
    w.bool(out.from_cache);
    match out.phases {
        None => w.u8(0),
        Some(p) => {
            w.u8(1);
            w.u64(ns_u64(p.place));
            w.u64(ns_u64(p.schedule));
        }
    }
    // Program.
    match &out.program {
        None => w.u8(0),
        Some(p) => {
            w.u8(1);
            w.str(&p.circuit_name);
            w.str(&p.arch_name);
            w.usize(p.num_qubits);
            w.usize(p.instructions.len());
            p.instructions.iter().try_for_each(|i| put_instruction(&mut w, i))?;
        }
    }
    Ok(w.buf)
}

/// Decodes a document produced by [`encode_output`].
///
/// # Errors
///
/// [`BinError`] on truncation, version mismatch, or structural damage —
/// never a panic, whatever the bytes.
pub fn decode_output(bytes: &[u8]) -> Result<CompileOutput, BinError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let version = r.u8()?;
    if version != OUTPUT_BIN_FORMAT_VERSION {
        return Err(BinError::Version(version));
    }
    let summary = ExecutionSummary {
        name: r.str()?,
        num_qubits: r.usize()?,
        duration_us: r.f64()?,
        g1: r.usize()?,
        g2: r.usize()?,
        n_exc: r.usize()?,
        n_tran: r.usize()?,
        idle_us: r.f64s()?,
    };
    let report = FidelityReport {
        one_q: r.f64()?,
        two_q: r.f64()?,
        transfer: r.f64()?,
        decoherence: r.f64()?,
        duration_us: r.f64()?,
    };
    let counts =
        GateCounts { g1: r.usize()?, g2: r.usize()?, n_exc: r.usize()?, n_tran: r.usize()? };
    let compile_time = Duration::from_nanos(r.u64()?);
    let from_cache = r.bool()?;
    let phases = match r.u8()? {
        0 => None,
        1 => Some(PhaseTimings {
            place: Duration::from_nanos(r.u64()?),
            schedule: Duration::from_nanos(r.u64()?),
        }),
        t => return Err(BinError::Tag(t)),
    };
    let program = match r.u8()? {
        0 => None,
        1 => {
            let circuit_name = r.str()?;
            let arch_name = r.str()?;
            let num_qubits = r.usize()?;
            let n = r.len(1)?;
            let instructions = (0..n).map(|_| get_instruction(&mut r)).collect::<Result<_, _>>()?;
            Some(Program { circuit_name, arch_name, num_qubits, instructions })
        }
        t => return Err(BinError::Tag(t)),
    };
    if r.pos != bytes.len() {
        return Err(BinError::Malformed);
    }
    Ok(CompileOutput { summary, report, counts, compile_time, program, from_cache, phases })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zac_arch::Architecture;
    use zac_circuit::{bench_circuits, preprocess};
    use zac_fidelity::{evaluate_neutral_atom, NeutralAtomParams};

    fn sample() -> CompileOutput {
        let summary = ExecutionSummary {
            name: "bin".into(),
            num_qubits: 3,
            duration_us: 21.5,
            g1: 5,
            g2: 2,
            n_exc: 1,
            n_tran: 6,
            idle_us: vec![0.0, 3.25, 7.5],
        };
        let report = evaluate_neutral_atom(&summary, &NeutralAtomParams::reference());
        CompileOutput::new(summary, report, Duration::from_nanos(987_654), None)
            .with_phases(Duration::from_nanos(700_000), Duration::from_nanos(287_654))
    }

    #[test]
    fn roundtrip_is_json_byte_identical() {
        let out = sample();
        let back = decode_output(&encode_output(&out).unwrap()).unwrap();
        assert_eq!(back.to_json().unwrap(), out.to_json().unwrap());
    }

    /// A full ZAC compile — `Program` with every instruction variant in
    /// play — survives the binary round trip byte-for-byte.
    #[test]
    fn compiled_program_roundtrips_exactly() {
        let mut config = crate::ZacConfig::full();
        config.placement.sa_iterations = 50;
        let zac = crate::Zac::with_config(Architecture::reference(), config);
        let out = crate::Compiler::compile(&zac, &preprocess(&bench_circuits::qft(6))).unwrap();
        assert!(out.program.is_some(), "ZAC emits a program");
        let bytes = encode_output(&out).unwrap();
        let back = decode_output(&bytes).unwrap();
        assert_eq!(back.to_json().unwrap(), out.to_json().unwrap());
        assert!(
            bytes.len() < out.to_json().unwrap().len(),
            "binary form is smaller than the JSON envelope"
        );
    }

    #[test]
    fn from_cache_flag_roundtrips() {
        let mut out = sample();
        out.from_cache = true;
        let back = decode_output(&encode_output(&out).unwrap()).unwrap();
        assert!(back.from_cache);
    }

    #[test]
    fn non_finite_outputs_are_rejected() {
        let mut out = sample();
        out.summary.duration_us = f64::NAN;
        assert_eq!(encode_output(&out).unwrap_err(), BinError::NonFinite);
        let mut out = sample();
        out.report.one_q = f64::INFINITY;
        assert_eq!(encode_output(&out).unwrap_err(), BinError::NonFinite);
    }

    #[test]
    fn truncation_and_version_damage_are_errors_not_panics() {
        let bytes = encode_output(&sample()).unwrap();
        for cut in 0..bytes.len() {
            assert!(decode_output(&bytes[..cut]).is_err(), "prefix of {cut} bytes must not parse");
        }
        let mut wrong = bytes.clone();
        wrong[0] = 99;
        assert_eq!(decode_output(&wrong).unwrap_err(), BinError::Version(99));
        // Trailing garbage is rejected: a record's payload is exactly one
        // document.
        let mut padded = bytes;
        padded.push(0);
        assert_eq!(decode_output(&padded).unwrap_err(), BinError::Malformed);
    }

    /// A corrupt interior length prefix must fail cleanly (bounded
    /// allocation), not attempt a giant `Vec`.
    #[test]
    fn corrupt_length_prefix_fails_cleanly() {
        let out = sample();
        let bytes = encode_output(&out).unwrap();
        // The first length prefix is the summary name at offset 1.
        let mut evil = bytes;
        evil[1..9].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_output(&evil).is_err());
    }
}
