//! ZAC — the zoned-architecture compiler (paper Secs. IV–VI).
//!
//! This crate ties the workspace together into the compiler the paper
//! evaluates:
//!
//! * [`Zac`] — the pipeline: preprocess (`zac-circuit`) → reuse-aware
//!   placement (`zac-place`) → load-balanced scheduling (`zac-schedule`) →
//!   validated ZAIR (`zac-zair`) → fidelity report (`zac-fidelity`);
//! * [`ZacConfig`] — configuration, with presets matching the paper's
//!   ablation arms (Fig. 11): `vanilla`, `dyn_place`, `dyn_place_reuse`,
//!   `full`;
//! * [`ideal`] — the optimality-study upper bounds (Sec. VII-F): perfect
//!   movement, perfect placement and perfect reuse;
//! * [`interface`] — the unified [`Compiler`] trait, [`CompileOutput`] and
//!   [`GateCounts`]: the seam through which ZAC and every baseline are
//!   driven uniformly by the experiment harness.
//!
//! # Example
//!
//! ```
//! use zac_arch::Architecture;
//! use zac_circuit::bench_circuits;
//! use zac_core::{Zac, ZacConfig};
//!
//! let zac = Zac::with_config(Architecture::reference(), ZacConfig::full());
//! let out = zac.compile(&bench_circuits::bv(14, 13))?;
//! println!("fidelity {:.3}, duration {:.1} us",
//!          out.total_fidelity(), out.summary.duration_us);
//! # Ok::<(), zac_core::ZacError>(())
//! ```

pub mod admission;
pub mod compiler;
pub mod ideal;
pub mod interface;
pub mod manifest;
pub mod output_bin;
pub mod output_json;

pub use admission::{AdmissionLimits, Outcome, RejectReason};
pub use compiler::{Zac, ZacConfig, ZacError, ZacOutput};
pub use ideal::{ideal_summary, zone_separation_um, IdealLevel};
pub use interface::{
    write_arch_tokens, write_params_tokens, CompileError, CompileOutput, Compiler, GateCounts,
    Labeled, PhaseTimings,
};
pub use manifest::{CorpusManifest, ManifestEntry, CORPUS_MANIFEST_VERSION};
pub use output_bin::{decode_output, encode_output, BinError, OUTPUT_BIN_FORMAT_VERSION};
pub use output_json::COMPILE_OUTPUT_FORMAT_VERSION;
pub use zac_circuit::Fingerprint;
