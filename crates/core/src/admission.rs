//! Admission control: size caps, deadlines, and typed rejection reasons.
//!
//! The harness originally grew these types inside `zac-bench` — a compile
//! cell either produced a result, exceeded the target's capacity
//! ([`Outcome::TooLarge`]), or failed outright. A serving layer needs the
//! same vocabulary *before* any compiler runs: a request can be turned away
//! because a circuit is too big, because a cap on gates or batch size would
//! be blown, because its deadline already passed in the queue, or because
//! the queue itself is full. All of those are [`RejectReason`]s carrying
//! typed payloads (never bare strings), so callers, protocols, and tests
//! can observe *why* without scraping messages.
//!
//! `zac-bench` re-exports [`Outcome`] as `RunOutcome<RunResult>` for
//! compatibility; `zac-serve` consumes [`AdmissionLimits`]/[`RejectReason`]
//! in its planner.

use std::fmt;
use zac_circuit::StagedCircuit;

use serde::{DeError, Deserialize, ObjectView, Serialize, Value};

/// Outcome of attempting one unit of compile work — the typed replacement
/// for "`Option<T>` plus a stderr warning". Generic so the bench harness
/// (`T = RunResult`) and the serving layer (`T = CompileOutput`) share the
/// same three-way semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome<T> {
    /// The work produced a result.
    Ok(T),
    /// The circuit does not fit the compiler's target hardware; figure
    /// sweeps leave these cells blank, services reject the entry.
    TooLarge {
        /// Qubits (or storage traps) the circuit needs.
        needed: usize,
        /// What the target provides.
        available: usize,
    },
    /// Any other pipeline failure — a compiler bug, not a capacity limit.
    Failed(String),
}

impl<T> Outcome<T> {
    /// The result, if the work succeeded (blank-cell semantics: both
    /// [`Outcome::TooLarge`] and [`Outcome::Failed`] yield `None`).
    pub fn into_result(self) -> Option<T> {
        match self {
            Self::Ok(r) => Some(r),
            Self::TooLarge { .. } | Self::Failed(_) => None,
        }
    }

    /// A shared reference to the result, if the work succeeded.
    pub fn result(&self) -> Option<&T> {
        match self {
            Self::Ok(r) => Some(r),
            _ => None,
        }
    }
}

/// Per-request (or per-sweep) size caps and deadline. `None` means
/// unlimited; [`AdmissionLimits::default`] admits everything.
///
/// Limits compose: a service merges its own policy with the caps a request
/// asks for via [`tightened`](AdmissionLimits::tightened), and the
/// strictest value wins — a client can never *widen* what the service
/// allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionLimits {
    /// Maximum qubits per circuit.
    pub max_qubits: Option<usize>,
    /// Maximum total (1Q + 2Q) gates per circuit.
    pub max_gates: Option<usize>,
    /// Maximum circuits per request.
    pub max_circuits: Option<usize>,
    /// Deadline budget for the whole request, in milliseconds from
    /// submission. Work still queued when it expires is rejected with
    /// [`RejectReason::DeadlineExpired`].
    pub deadline_ms: Option<u64>,
}

fn min_opt<T: Ord + Copy>(a: Option<T>, b: Option<T>) -> Option<T> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (x, None) | (None, x) => x,
    }
}

impl AdmissionLimits {
    /// The element-wise strictest combination of `self` and `other`.
    #[must_use]
    pub fn tightened(&self, other: &Self) -> Self {
        Self {
            max_qubits: min_opt(self.max_qubits, other.max_qubits),
            max_gates: min_opt(self.max_gates, other.max_gates),
            max_circuits: min_opt(self.max_circuits, other.max_circuits),
            deadline_ms: min_opt(self.deadline_ms, other.deadline_ms),
        }
    }

    /// Checks one circuit against the per-circuit caps.
    ///
    /// # Errors
    ///
    /// The first violated cap as a typed [`RejectReason`].
    pub fn admit_circuit(&self, staged: &StagedCircuit) -> Result<(), RejectReason> {
        if let Some(cap) = self.max_qubits {
            if staged.num_qubits > cap {
                return Err(RejectReason::TooLarge { needed: staged.num_qubits, available: cap });
            }
        }
        if let Some(cap) = self.max_gates {
            let gates = staged.num_1q_gates() + staged.num_2q_gates();
            if gates > cap {
                return Err(RejectReason::TooManyGates { gates, cap });
            }
        }
        Ok(())
    }

    /// Checks a request's batch size against [`max_circuits`](Self::max_circuits).
    ///
    /// # Errors
    ///
    /// [`RejectReason::TooManyCircuits`] when the batch exceeds the cap.
    pub fn admit_batch(&self, circuits: usize) -> Result<(), RejectReason> {
        match self.max_circuits {
            Some(cap) if circuits > cap => Err(RejectReason::TooManyCircuits { circuits, cap }),
            _ => Ok(()),
        }
    }
}

/// Why admission control turned work away. Every variant carries the
/// numbers behind the decision, so protocols serialize them and tests
/// assert on them directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The circuit needs more qubits than the cap (or target) provides —
    /// the admission-time generalization of [`Outcome::TooLarge`].
    TooLarge {
        /// Qubits the circuit needs.
        needed: usize,
        /// The configured (or hardware) capacity.
        available: usize,
    },
    /// The circuit has more gates than the per-circuit cap.
    TooManyGates {
        /// Total (1Q + 2Q) gates in the circuit.
        gates: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The request batches more circuits than allowed.
    TooManyCircuits {
        /// Circuits in the request.
        circuits: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The request's deadline passed before this work ran.
    DeadlineExpired {
        /// The deadline budget the request carried.
        deadline_ms: u64,
        /// How long the work actually waited before being examined.
        waited_ms: u64,
    },
    /// The service queue is at capacity.
    QueueFull {
        /// Jobs already queued.
        depth: usize,
        /// The queue capacity.
        cap: usize,
    },
    /// The target compiler's circuit breaker is open: recent compiles
    /// panicked or timed out, and the service is refusing new work for that
    /// compiler until a half-open probe succeeds.
    BreakerOpen {
        /// Consecutive failures that tripped the breaker.
        failures: u32,
        /// How long the breaker stays open before probing, in milliseconds.
        cooldown_ms: u64,
    },
    /// The entry was shed from a saturated queue to make room for
    /// higher-priority work.
    Shed {
        /// Jobs queued when the shed decision was made.
        depth: usize,
        /// The queue capacity.
        cap: usize,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooLarge { needed, available } => {
                write!(f, "circuit needs {needed} qubits, cap is {available}")
            }
            Self::TooManyGates { gates, cap } => {
                write!(f, "circuit has {gates} gates, cap is {cap}")
            }
            Self::TooManyCircuits { circuits, cap } => {
                write!(f, "request batches {circuits} circuits, cap is {cap}")
            }
            Self::DeadlineExpired { deadline_ms, waited_ms } => {
                write!(f, "deadline of {deadline_ms} ms expired after waiting {waited_ms} ms")
            }
            Self::QueueFull { depth, cap } => {
                write!(f, "queue holds {depth} jobs, capacity is {cap}")
            }
            Self::BreakerOpen { failures, cooldown_ms } => {
                write!(
                    f,
                    "circuit breaker open after {failures} failures (cooldown {cooldown_ms} ms)"
                )
            }
            Self::Shed { depth, cap } => {
                write!(f, "shed from a saturated queue ({depth} jobs, capacity {cap})")
            }
        }
    }
}

impl std::error::Error for RejectReason {}

// JSON: a `kind`-tagged object so protocol consumers can dispatch without
// knowing every variant, with the typed payload alongside.
impl Serialize for RejectReason {
    fn to_value(&self) -> Value {
        let (kind, fields): (&str, Vec<(String, Value)>) = match *self {
            Self::TooLarge { needed, available } => (
                "too_large",
                vec![
                    ("needed".into(), needed.to_value()),
                    ("available".into(), available.to_value()),
                ],
            ),
            Self::TooManyGates { gates, cap } => (
                "too_many_gates",
                vec![("gates".into(), gates.to_value()), ("cap".into(), cap.to_value())],
            ),
            Self::TooManyCircuits { circuits, cap } => (
                "too_many_circuits",
                vec![("circuits".into(), circuits.to_value()), ("cap".into(), cap.to_value())],
            ),
            Self::DeadlineExpired { deadline_ms, waited_ms } => (
                "deadline_expired",
                vec![
                    ("deadline_ms".into(), deadline_ms.to_value()),
                    ("waited_ms".into(), waited_ms.to_value()),
                ],
            ),
            Self::QueueFull { depth, cap } => (
                "queue_full",
                vec![("depth".into(), depth.to_value()), ("cap".into(), cap.to_value())],
            ),
            Self::BreakerOpen { failures, cooldown_ms } => (
                "breaker_open",
                vec![
                    ("failures".into(), failures.to_value()),
                    ("cooldown_ms".into(), cooldown_ms.to_value()),
                ],
            ),
            Self::Shed { depth, cap } => {
                ("shed", vec![("depth".into(), depth.to_value()), ("cap".into(), cap.to_value())])
            }
        };
        let mut obj = vec![("kind".into(), kind.to_value())];
        obj.extend(fields);
        Value::Object(obj)
    }
}

impl Deserialize for RejectReason {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = ObjectView::new(v)?;
        Ok(match obj.tag("kind")? {
            "too_large" => {
                Self::TooLarge { needed: obj.field("needed")?, available: obj.field("available")? }
            }
            "too_many_gates" => {
                Self::TooManyGates { gates: obj.field("gates")?, cap: obj.field("cap")? }
            }
            "too_many_circuits" => {
                Self::TooManyCircuits { circuits: obj.field("circuits")?, cap: obj.field("cap")? }
            }
            "deadline_expired" => Self::DeadlineExpired {
                deadline_ms: obj.field("deadline_ms")?,
                waited_ms: obj.field("waited_ms")?,
            },
            "queue_full" => Self::QueueFull { depth: obj.field("depth")?, cap: obj.field("cap")? },
            "breaker_open" => Self::BreakerOpen {
                failures: obj.field("failures")?,
                cooldown_ms: obj.field("cooldown_ms")?,
            },
            "shed" => Self::Shed { depth: obj.field("depth")?, cap: obj.field("cap")? },
            other => return Err(DeError::msg(format!("unknown reject kind `{other}`"))),
        })
    }
}

impl Serialize for AdmissionLimits {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("max_qubits".into(), self.max_qubits.to_value()),
            ("max_gates".into(), self.max_gates.to_value()),
            ("max_circuits".into(), self.max_circuits.to_value()),
            ("deadline_ms".into(), self.deadline_ms.to_value()),
        ])
    }
}

impl Deserialize for AdmissionLimits {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = ObjectView::new(v)?;
        Ok(Self {
            max_qubits: obj.opt_field("max_qubits")?,
            max_gates: obj.opt_field("max_gates")?,
            max_circuits: obj.opt_field("max_circuits")?,
            deadline_ms: obj.opt_field("deadline_ms")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zac_circuit::{bench_circuits, preprocess};

    #[test]
    fn unlimited_limits_admit_everything() {
        let limits = AdmissionLimits::default();
        let staged = preprocess(&bench_circuits::ghz(40));
        assert_eq!(limits.admit_circuit(&staged), Ok(()));
        assert_eq!(limits.admit_batch(10_000), Ok(()));
    }

    /// The cap rejections carry the actual numbers, not a formatted string.
    #[test]
    fn cap_rejections_carry_typed_payloads() {
        let staged = preprocess(&bench_circuits::ghz(40));
        let limits = AdmissionLimits { max_qubits: Some(16), ..Default::default() };
        assert_eq!(
            limits.admit_circuit(&staged),
            Err(RejectReason::TooLarge { needed: 40, available: 16 })
        );

        let gates = staged.num_1q_gates() + staged.num_2q_gates();
        let limits = AdmissionLimits { max_gates: Some(3), ..Default::default() };
        assert_eq!(
            limits.admit_circuit(&staged),
            Err(RejectReason::TooManyGates { gates, cap: 3 })
        );

        let limits = AdmissionLimits { max_circuits: Some(2), ..Default::default() };
        assert_eq!(
            limits.admit_batch(5),
            Err(RejectReason::TooManyCircuits { circuits: 5, cap: 2 })
        );
    }

    #[test]
    fn deadline_and_queue_reasons_expose_their_numbers() {
        let d = RejectReason::DeadlineExpired { deadline_ms: 50, waited_ms: 75 };
        match d {
            RejectReason::DeadlineExpired { deadline_ms, waited_ms } => {
                assert_eq!((deadline_ms, waited_ms), (50, 75));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert!(d.to_string().contains("50 ms"));
        assert!(d.to_string().contains("75 ms"));
        let q = RejectReason::QueueFull { depth: 128, cap: 128 };
        assert!(q.to_string().contains("128"));
    }

    #[test]
    fn tightened_takes_the_strictest_of_each_cap() {
        let policy = AdmissionLimits {
            max_qubits: Some(100),
            max_gates: None,
            max_circuits: Some(64),
            deadline_ms: Some(10_000),
        };
        let request = AdmissionLimits {
            max_qubits: Some(200), // wider than policy: policy wins
            max_gates: Some(5_000),
            max_circuits: Some(8),
            deadline_ms: None,
        };
        assert_eq!(
            policy.tightened(&request),
            AdmissionLimits {
                max_qubits: Some(100),
                max_gates: Some(5_000),
                max_circuits: Some(8),
                deadline_ms: Some(10_000),
            }
        );
    }

    #[test]
    fn reject_reasons_roundtrip_through_json() {
        let reasons = [
            RejectReason::TooLarge { needed: 121, available: 100 },
            RejectReason::TooManyGates { gates: 9001, cap: 9000 },
            RejectReason::TooManyCircuits { circuits: 65, cap: 64 },
            RejectReason::DeadlineExpired { deadline_ms: 5, waited_ms: 9 },
            RejectReason::QueueFull { depth: 12, cap: 12 },
            RejectReason::BreakerOpen { failures: 3, cooldown_ms: 250 },
            RejectReason::Shed { depth: 12, cap: 12 },
        ];
        for reason in reasons {
            let json = serde_json::to_string(&reason).unwrap();
            let back: RejectReason = serde_json::from_str(&json).unwrap();
            assert_eq!(back, reason, "{json}");
            assert!(json.contains("\"kind\""));
        }
        assert!(serde_json::from_str::<RejectReason>("{\"kind\":\"martian\"}").is_err());
    }

    #[test]
    fn limits_roundtrip_and_tolerate_missing_fields() {
        let limits = AdmissionLimits {
            max_qubits: Some(30),
            max_gates: None,
            max_circuits: Some(4),
            deadline_ms: Some(250),
        };
        let json = serde_json::to_string(&limits).unwrap();
        assert_eq!(serde_json::from_str::<AdmissionLimits>(&json).unwrap(), limits);
        // An empty object is "no limits", so clients can omit the block.
        assert_eq!(
            serde_json::from_str::<AdmissionLimits>("{}").unwrap(),
            AdmissionLimits::default()
        );
    }

    /// The generic outcome keeps the bench harness's blank-cell semantics.
    #[test]
    fn outcome_result_accessors() {
        let ok: Outcome<u32> = Outcome::Ok(7);
        assert_eq!(ok.result(), Some(&7));
        assert_eq!(ok.into_result(), Some(7));
        let too_large: Outcome<u32> = Outcome::TooLarge { needed: 10, available: 5 };
        assert_eq!(too_large.result(), None);
        assert_eq!(too_large.into_result(), None);
        let failed: Outcome<u32> = Outcome::Failed("boom".into());
        assert_eq!(failed.into_result(), None);
    }
}
