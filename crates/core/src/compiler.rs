//! The ZAC compilation pipeline: preprocess → place → schedule → evaluate.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use zac_arch::Architecture;
use zac_circuit::{preprocess, Circuit, StagedCircuit};
use zac_fidelity::{evaluate_neutral_atom, ExecutionSummary, FidelityReport, NeutralAtomParams};
use zac_place::{
    plan_placement_cached, InitialPlacementCache, PlaceError, PlacementConfig, PlacementPlan,
};
use zac_schedule::{schedule_with_workspace, ScheduleConfig, ScheduleError, ScheduleWorkspace};
use zac_zair::{Program, ZairError};

/// Full compiler configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ZacConfig {
    /// Placement settings (ablation switches live here).
    pub placement: PlacementConfig,
    /// Hardware parameters (drive both timing and fidelity).
    pub params: NeutralAtomParams,
}

impl Default for ZacConfig {
    fn default() -> Self {
        Self { placement: PlacementConfig::default(), params: NeutralAtomParams::reference() }
    }
}

impl ZacConfig {
    /// 'Vanilla' ablation setting: trivial initial placement, static
    /// intermediate placement, no reuse (Fig. 11).
    pub fn vanilla() -> Self {
        Self {
            placement: PlacementConfig {
                use_sa: false,
                dynamic: false,
                reuse: false,
                ..PlacementConfig::default()
            },
            ..Self::default()
        }
    }

    /// 'dynPlace' ablation setting: dynamic placement, no reuse.
    pub fn dyn_place() -> Self {
        Self {
            placement: PlacementConfig {
                use_sa: false,
                dynamic: true,
                reuse: false,
                ..PlacementConfig::default()
            },
            ..Self::default()
        }
    }

    /// 'dynPlace+reuse' ablation setting.
    pub fn dyn_place_reuse() -> Self {
        Self {
            placement: PlacementConfig {
                use_sa: false,
                dynamic: true,
                reuse: true,
                ..PlacementConfig::default()
            },
            ..Self::default()
        }
    }

    /// 'SA+dynPlace+reuse': the full pipeline (default).
    pub fn full() -> Self {
        Self::default()
    }

    /// The full pipeline with the windowed placement engine (default window
    /// parameters): the compile-time/quality frontier's fast arm.
    pub fn windowed() -> Self {
        let mut cfg = Self::default();
        cfg.placement.engine = zac_place::PlacementEngine::windowed();
        cfg
    }

    fn schedule_config(&self) -> ScheduleConfig {
        ScheduleConfig {
            t_tran_us: self.params.t_tran_us,
            t_ryd_us: self.params.t_2q_us,
            t_1q_us: self.params.t_1q_us,
        }
    }
}

/// Compilation error.
#[derive(Debug)]
pub enum ZacError {
    /// Placement failed.
    Place(PlaceError),
    /// Scheduling failed.
    Schedule(ScheduleError),
    /// The emitted program failed validation (a compiler bug if it occurs).
    Zair(ZairError),
}

impl fmt::Display for ZacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Place(e) => write!(f, "placement: {e}"),
            Self::Schedule(e) => write!(f, "scheduling: {e}"),
            Self::Zair(e) => write!(f, "emitted invalid ZAIR: {e}"),
        }
    }
}

impl std::error::Error for ZacError {}

impl From<PlaceError> for ZacError {
    fn from(e: PlaceError) -> Self {
        Self::Place(e)
    }
}

impl From<ScheduleError> for ZacError {
    fn from(e: ScheduleError) -> Self {
        Self::Schedule(e)
    }
}

impl From<ZairError> for ZacError {
    fn from(e: ZairError) -> Self {
        Self::Zair(e)
    }
}

/// Result of one ZAC compilation: the full pipeline artifacts (program +
/// plan), richer than the trait-level [`crate::CompileOutput`].
#[derive(Debug, Clone)]
pub struct ZacOutput {
    /// The compiled ZAIR program (validated).
    pub program: Program,
    /// The placement plan that produced it.
    pub plan: PlacementPlan,
    /// Execution summary (counts and timing).
    pub summary: ExecutionSummary,
    /// Fidelity report under the configured hardware parameters.
    pub report: FidelityReport,
    /// Wall-clock compilation time.
    pub compile_time: Duration,
    /// Wall-clock time of the placement phase (preprocessing + plan).
    pub place_time: Duration,
    /// Wall-clock time of the scheduling phase (plan → ZAIR program).
    pub schedule_time: Duration,
}

impl ZacOutput {
    /// Total circuit fidelity.
    pub fn total_fidelity(&self) -> f64 {
        self.report.total()
    }
}

/// The ZAC compiler for a fixed target architecture.
///
/// # Example
///
/// ```
/// use zac_arch::Architecture;
/// use zac_circuit::bench_circuits;
/// use zac_core::Zac;
///
/// let zac = Zac::new(Architecture::reference());
/// let out = zac.compile(&bench_circuits::ghz(8))?;
/// assert!(out.total_fidelity() > 0.5);
/// assert_eq!(out.summary.n_exc, 0); // zoned: idle qubits shielded
/// # Ok::<(), zac_core::ZacError>(())
/// ```
#[derive(Debug)]
pub struct Zac {
    arch: Architecture,
    config: ZacConfig,
    placement_cache: Option<InitialPlacementCache>,
    /// Reused scheduler scratch: dense trap tables, conflict-graph and job
    /// buffers shared across `compile()` calls. Never affects results
    /// (bit-identity is locked in `zac-schedule`); a contended or poisoned
    /// lock just falls back to a fresh per-call workspace.
    schedule_ws: Mutex<ScheduleWorkspace>,
}

impl Clone for Zac {
    fn clone(&self) -> Self {
        Self {
            arch: self.arch.clone(),
            config: self.config.clone(),
            placement_cache: self.placement_cache.clone(),
            schedule_ws: Mutex::new(ScheduleWorkspace::new()),
        }
    }
}

impl Zac {
    /// Creates a compiler with the default (full) configuration.
    pub fn new(arch: Architecture) -> Self {
        Self::with_config(arch, ZacConfig::default())
    }

    /// Creates a compiler with an explicit configuration.
    pub fn with_config(arch: Architecture, config: ZacConfig) -> Self {
        Self {
            arch,
            config,
            placement_cache: None,
            schedule_ws: Mutex::new(ScheduleWorkspace::new()),
        }
    }

    /// Shares a [`InitialPlacementCache`] with other compiler instances, so
    /// sweeps whose arms differ only in AOD count (fig14) run the SA initial
    /// placement once per circuit instead of once per arm. Outputs are
    /// bit-identical with or without the cache (the cached value is exactly
    /// what the SA would recompute), so the compiler fingerprint is
    /// unaffected.
    #[must_use]
    pub fn with_placement_cache(mut self, cache: InitialPlacementCache) -> Self {
        self.placement_cache = Some(cache);
        self
    }

    /// The target architecture.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The configuration.
    pub fn config(&self) -> &ZacConfig {
        &self.config
    }

    /// Compiles an input circuit (preprocessing included).
    ///
    /// # Errors
    ///
    /// [`ZacError`] if placement or scheduling fails (e.g. the circuit does
    /// not fit the architecture).
    pub fn compile(&self, circuit: &Circuit) -> Result<ZacOutput, ZacError> {
        self.compile_staged(&preprocess(circuit))
    }

    /// Compiles an already-preprocessed circuit.
    ///
    /// Stages wider than the architecture's Rydberg site count are split
    /// automatically (the paper's Sec. VIII workload relies on this: 64-gate
    /// CNOT layers become 5 exposures on the 15-site logical architecture).
    ///
    /// # Errors
    ///
    /// [`ZacError`] if placement or scheduling fails.
    pub fn compile_staged(&self, staged: &StagedCircuit) -> Result<ZacOutput, ZacError> {
        let _span = zac_telemetry::span!("core.compile", &staged.name);
        zac_telemetry::metrics::CORE_COMPILES.incr();
        let start = Instant::now();
        let num_sites = self.arch.num_sites();
        let split;
        let staged = if staged.max_parallelism() > num_sites && num_sites > 0 {
            split = staged.with_max_stage_width(num_sites);
            &split
        } else {
            staged
        };
        let plan = {
            let _span = zac_telemetry::span!("core.place", &staged.name);
            plan_placement_cached(
                &self.arch,
                staged,
                &self.config.placement,
                self.placement_cache.as_ref(),
            )?
        };
        let place_time = start.elapsed();
        let schedule_start = Instant::now();
        let schedule_cfg = self.config.schedule_config();
        // Reuse the compiler's scheduler workspace; under lock contention
        // (parallel sweeps sharing one instance) fall back to a fresh one —
        // results are bit-identical either way.
        let program = {
            let _span = zac_telemetry::span!("core.schedule", &staged.name);
            match self.schedule_ws.try_lock() {
                Ok(mut ws) => {
                    schedule_with_workspace(&self.arch, staged, &plan, &schedule_cfg, &mut ws)
                }
                Err(_) => {
                    let mut ws = ScheduleWorkspace::new();
                    schedule_with_workspace(&self.arch, staged, &plan, &schedule_cfg, &mut ws)
                }
            }?
        };
        let schedule_time = schedule_start.elapsed();
        let compile_time = start.elapsed();
        let _span_analyze = zac_telemetry::span!("core.analyze", &staged.name);
        let analysis = program.analyze(&self.arch)?;
        let summary = ExecutionSummary::from_analysis(&staged.name, &analysis);
        let report = evaluate_neutral_atom(&summary, &self.config.params);
        Ok(ZacOutput { program, plan, summary, report, compile_time, place_time, schedule_time })
    }
}

impl crate::Compiler for Zac {
    fn name(&self) -> &str {
        "Zoned-ZAC"
    }

    fn config_tokens(&self, fp: &mut zac_circuit::Fingerprint) {
        crate::interface::write_arch_tokens(fp, &self.arch);
        let p = &self.config.placement;
        fp.write_bool(p.use_sa);
        fp.write_bool(p.dynamic);
        fp.write_bool(p.reuse);
        fp.write_usize(p.sa_iterations);
        fp.write_u64(p.seed);
        fp.write_usize(p.window_expansion);
        fp.write_usize(p.neighbor_k);
        fp.write_f64(p.lookahead_alpha);
        // Engine choice (and its window parameters) are part of the
        // compiler's identity: outputs differ across engines, so cached
        // artifacts must never be shared between them.
        p.engine.config_tokens(fp);
        crate::interface::write_params_tokens(fp, &self.config.params);
    }

    fn compile(&self, staged: &StagedCircuit) -> Result<crate::CompileOutput, crate::CompileError> {
        let out = self.compile_staged(staged).map_err(|e| match e {
            ZacError::Place(PlaceError::StorageFull { qubits, traps }) => {
                crate::CompileError::CircuitTooLarge { needed: qubits, available: traps }
            }
            ZacError::Place(PlaceError::Cancelled)
            | ZacError::Schedule(zac_schedule::ScheduleError::Cancelled) => {
                crate::CompileError::Cancelled
            }
            other => crate::CompileError::Failed(other.to_string()),
        })?;
        Ok(crate::CompileOutput::new(out.summary, out.report, out.compile_time, Some(out.program))
            .with_phases(out.place_time, out.schedule_time))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zac_circuit::bench_circuits;

    fn quick() -> ZacConfig {
        let mut c = ZacConfig::default();
        c.placement.sa_iterations = 200;
        c
    }

    #[test]
    fn compile_ghz_end_to_end() {
        let zac = Zac::with_config(Architecture::reference(), quick());
        let out = zac.compile(&bench_circuits::ghz(10)).unwrap();
        assert_eq!(out.summary.g2, 9);
        assert_eq!(out.summary.n_exc, 0);
        assert!(out.total_fidelity() > 0.0 && out.total_fidelity() < 1.0);
        assert!(out.compile_time.as_nanos() > 0);
    }

    #[test]
    fn ablation_configs_differ() {
        assert!(!ZacConfig::vanilla().placement.dynamic);
        assert!(!ZacConfig::vanilla().placement.reuse);
        assert!(ZacConfig::dyn_place().placement.dynamic);
        assert!(!ZacConfig::dyn_place().placement.reuse);
        assert!(ZacConfig::dyn_place_reuse().placement.reuse);
        assert!(ZacConfig::full().placement.use_sa);
    }

    #[test]
    fn reuse_improves_fidelity_on_sequential_circuit() {
        let arch = Architecture::reference();
        let mut with = quick();
        with.placement.use_sa = false;
        let mut without = with.clone();
        without.placement.reuse = false;

        let staged = preprocess(&bench_circuits::ghz(20));
        let f_with =
            Zac::with_config(arch.clone(), with).compile_staged(&staged).unwrap().total_fidelity();
        let f_without =
            Zac::with_config(arch, without).compile_staged(&staged).unwrap().total_fidelity();
        assert!(f_with > f_without, "reuse fidelity {f_with} should beat no-reuse {f_without}");
    }

    #[test]
    fn program_is_replayable_from_json() {
        let zac = Zac::with_config(Architecture::reference(), quick());
        let out = zac.compile(&bench_circuits::bv(8, 7)).unwrap();
        let json = out.program.to_json().expect("serialization succeeds");
        let back = Program::from_json(&json).unwrap();
        let analysis = back.analyze(zac.arch()).unwrap();
        assert_eq!(analysis.g2, out.summary.g2);
        assert_eq!(analysis.n_tran, out.summary.n_tran);
    }

    /// The fig14 sharing contract: arms differing only in AOD count reuse
    /// one SA initial placement, and every output is bit-identical to the
    /// uncached compile.
    #[test]
    fn shared_placement_cache_is_bit_identical_across_aod_arms() {
        let staged = preprocess(&bench_circuits::ghz(12));
        let cache = InitialPlacementCache::new();
        for k in 1..=3 {
            let arch = Architecture::reference().with_num_aods(k);
            let plain = Zac::with_config(arch.clone(), quick()).compile_staged(&staged).unwrap();
            let cached = Zac::with_config(arch, quick())
                .with_placement_cache(cache.clone())
                .compile_staged(&staged)
                .unwrap();
            assert_eq!(plain.plan, cached.plan, "{k} AODs");
            assert_eq!(plain.report, cached.report, "{k} AODs");
            assert_eq!(plain.summary, cached.summary, "{k} AODs");
        }
        assert_eq!(cache.len(), 1, "one SA entry serves every AOD arm");
    }

    /// The windowed engine produces a valid end-to-end compilation and a
    /// distinct compiler fingerprint (so compile caches never mix engines).
    #[test]
    fn windowed_engine_compiles_and_fingerprints_separately() {
        use crate::Compiler;
        use zac_place::PlacementEngine;
        let mut exhaustive_cfg = quick();
        exhaustive_cfg.placement.engine = PlacementEngine::Exhaustive;
        let mut windowed_cfg = quick();
        windowed_cfg.placement.engine = PlacementEngine::windowed();
        let exhaustive = Zac::with_config(Architecture::reference(), exhaustive_cfg);
        let windowed = Zac::with_config(Architecture::reference(), windowed_cfg);
        assert_ne!(
            exhaustive.fingerprint(),
            windowed.fingerprint(),
            "engine choice must alter the compiler fingerprint"
        );
        let out = windowed.compile(&bench_circuits::ghz(10)).unwrap();
        assert_eq!(out.summary.g2, 9);
        assert_eq!(out.summary.n_exc, 0);
        assert!(out.total_fidelity() > 0.0 && out.total_fidelity() < 1.0);
    }

    #[test]
    fn compile_fails_gracefully_when_storage_too_small() {
        let arch = Architecture::arch1_small(); // 120 storage traps
        let zac = Zac::with_config(arch, quick());
        // 121 qubits cannot fit.
        let mut c = Circuit::new("big", 121);
        c.cz(0, 1);
        let err = zac.compile(&c).unwrap_err();
        assert!(matches!(err, ZacError::Place(PlaceError::StorageFull { .. })));
    }
}
