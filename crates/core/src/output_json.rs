//! The versioned [`CompileOutput`] JSON envelope.
//!
//! ZAIR programs (`zac-zair`) and the cache disk layer (`zac-cache`) have
//! carried stable JSON for a while; this module gives the *exchange type*
//! itself one, so a serving layer can stream compile results to clients and
//! a cache entry can embed the very same document. The schema is versioned
//! and forward-tolerant:
//!
//! * **v2** (current, [`COMPILE_OUTPUT_FORMAT_VERSION`]) — summary, report,
//!   named gate counts, wall-clock compile time, the `from_cache` marker,
//!   the optional place/schedule phase split, and the optional ZAIR
//!   program;
//! * **v1** — the pre-serving shape without `counts`/`from_cache`/`phases`;
//!   a v2 reader accepts it, deriving counts from the summary and
//!   defaulting the rest;
//! * unknown fields from *future* versions with the same major shape are
//!   ignored rather than rejected, so a v2 reader keeps working against a
//!   v2-plus-extras writer.
//!
//! Field order is fixed and all numbers are finite for real outputs, so
//! equal outputs serialize byte-identically — the property the serving
//! layer's bit-identity tests are built on.

use crate::interface::{CompileOutput, GateCounts, PhaseTimings};
use serde::{DeError, Deserialize, ObjectView, Serialize, Value};
use std::time::Duration;
use zac_circuit::Fingerprint;

/// Current envelope version written by [`CompileOutput::to_json`]. Readers
/// accept every version from 1 up to this one.
pub const COMPILE_OUTPUT_FORMAT_VERSION: u64 = 2;

impl Serialize for GateCounts {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("g1".into(), self.g1.to_value()),
            ("g2".into(), self.g2.to_value()),
            ("n_exc".into(), self.n_exc.to_value()),
            ("n_tran".into(), self.n_tran.to_value()),
        ])
    }
}

impl Deserialize for GateCounts {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = ObjectView::new(v)?;
        Ok(Self {
            g1: obj.field("g1")?,
            g2: obj.field("g2")?,
            n_exc: obj.field("n_exc")?,
            n_tran: obj.field("n_tran")?,
        })
    }
}

impl Serialize for PhaseTimings {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("place_ns".into(), ns_u64(self.place).to_value()),
            ("schedule_ns".into(), ns_u64(self.schedule).to_value()),
        ])
    }
}

impl Deserialize for PhaseTimings {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = ObjectView::new(v)?;
        let place_ns: u64 = obj.field("place_ns")?;
        let schedule_ns: u64 = obj.field("schedule_ns")?;
        Ok(Self {
            place: Duration::from_nanos(place_ns),
            schedule: Duration::from_nanos(schedule_ns),
        })
    }
}

/// Saturating nanosecond conversion: a `Duration` wider than `u64` ns
/// (≈584 years) is not a real compile time.
fn ns_u64(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl Serialize for CompileOutput {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("version".into(), COMPILE_OUTPUT_FORMAT_VERSION.to_value()),
            ("summary".into(), self.summary.to_value()),
            ("report".into(), self.report.to_value()),
            ("counts".into(), self.counts.to_value()),
            ("compile_time_ns".into(), ns_u64(self.compile_time).to_value()),
            ("from_cache".into(), self.from_cache.to_value()),
            ("phases".into(), self.phases.to_value()),
            ("program".into(), self.program.to_value()),
        ])
    }
}

impl Deserialize for CompileOutput {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = ObjectView::new(v)?;
        let version: u64 = obj.field("version")?;
        if !(1..=COMPILE_OUTPUT_FORMAT_VERSION).contains(&version) {
            return Err(DeError::msg(format!(
                "unsupported CompileOutput envelope version {version} (reader supports 1..={COMPILE_OUTPUT_FORMAT_VERSION})"
            )));
        }
        let summary = obj.field("summary")?;
        // v1 envelopes predate the named counts; derive them exactly as
        // `CompileOutput::new` does.
        let counts =
            obj.opt_field::<GateCounts>("counts")?.unwrap_or_else(|| GateCounts::from(&summary));
        Ok(Self {
            summary,
            report: obj.field("report")?,
            counts,
            compile_time: Duration::from_nanos(obj.field::<u64>("compile_time_ns")?),
            from_cache: obj.opt_field("from_cache")?.unwrap_or(false),
            phases: obj.opt_field("phases")?,
            program: obj.opt_field("program")?,
        })
    }
}

impl CompileOutput {
    /// Serializes to the versioned envelope (see the module docs).
    ///
    /// # Errors
    ///
    /// [`serde_json::Error`] if the output contains non-finite numbers —
    /// JSON cannot represent them, and a NaN in a compile output is an
    /// upstream bug that must not propagate silently as `null`.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        let value = self.to_value();
        if !value.all_numbers_finite() {
            return Err(serde_json::Error::custom(format!(
                "compile output for `{}` contains non-finite numbers",
                self.summary.name
            )));
        }
        serde_json::to_string(&value)
    }

    /// Parses any supported envelope version (see the module docs for the
    /// compatibility rules).
    ///
    /// # Errors
    ///
    /// [`serde_json::Error`] on malformed JSON, an unsupported version, or
    /// a field-shape mismatch.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// The output with its wall-clock and cache bookkeeping normalized:
    /// `compile_time` zeroed, phase durations zeroed (presence preserved),
    /// `from_cache` cleared. What remains — summary, report, counts,
    /// program — is exactly what compilation *semantics* determine, so two
    /// normalized outputs are equal iff the compilations were equivalent.
    #[must_use]
    pub fn normalized(&self) -> Self {
        let mut out = self.clone();
        out.compile_time = Duration::ZERO;
        out.phases =
            out.phases.map(|_| PhaseTimings { place: Duration::ZERO, schedule: Duration::ZERO });
        out.from_cache = false;
        out
    }

    /// Serialized [`normalized`](Self::normalized) form: the byte-stable
    /// semantic payload. Two outputs with equal `semantic_json` came from
    /// equivalent compilations regardless of where or when they ran.
    ///
    /// # Errors
    ///
    /// As [`to_json`](Self::to_json).
    pub fn semantic_json(&self) -> Result<String, serde_json::Error> {
        self.normalized().to_json()
    }

    /// Stable FNV-1a digest of [`semantic_json`](Self::semantic_json) —
    /// the "direct-compile digest" service smoke tests compare against.
    /// Outputs that fail to serialize digest to 0 (never a real digest).
    pub fn semantic_digest(&self) -> u64 {
        let Ok(json) = self.semantic_json() else {
            return 0;
        };
        let mut fp = Fingerprint::new();
        fp.write_str(&json);
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zac_fidelity::{evaluate_neutral_atom, ExecutionSummary, NeutralAtomParams};

    /// A deterministic sample whose floats are integer-valued where that
    /// keeps the golden envelope readable.
    fn sample() -> CompileOutput {
        let summary = ExecutionSummary {
            name: "golden".into(),
            num_qubits: 2,
            duration_us: 16.0,
            g1: 3,
            g2: 2,
            n_exc: 1,
            n_tran: 4,
            idle_us: vec![8.0, 12.5],
        };
        let report = evaluate_neutral_atom(&summary, &NeutralAtomParams::reference());
        CompileOutput::new(summary, report, Duration::from_nanos(1_234_567), None)
            .with_phases(Duration::from_nanos(1_000_000), Duration::from_nanos(234_567))
    }

    /// Golden lock on the v2 envelope: key order, version tag, phases,
    /// `from_cache`, and counts are all part of the stable format.
    #[test]
    fn v2_envelope_matches_golden_shape_and_roundtrips() {
        let mut out = sample();
        out.from_cache = true;
        let json = out.to_json().unwrap();
        let head = "{\"version\":2,\"summary\":{\"name\":\"golden\",\"num_qubits\":2,\
                    \"duration_us\":16,\"g1\":3,\"g2\":2,\"n_exc\":1,\"n_tran\":4,\
                    \"idle_us\":[8,12.5]},\"report\":{";
        assert!(json.starts_with(head), "envelope head drifted:\n{json}");
        let tail = "\"counts\":{\"g1\":3,\"g2\":2,\"n_exc\":1,\"n_tran\":4},\
                    \"compile_time_ns\":1234567,\"from_cache\":true,\
                    \"phases\":{\"place_ns\":1000000,\"schedule_ns\":234567},\
                    \"program\":null}";
        assert!(json.ends_with(tail), "envelope tail drifted:\n{json}");

        let back = CompileOutput::from_json(&json).unwrap();
        assert_eq!(back.summary, out.summary);
        assert_eq!(back.report, out.report);
        assert_eq!(back.counts, out.counts);
        assert_eq!(back.compile_time, out.compile_time);
        assert_eq!(back.phases, out.phases);
        assert_eq!(back.from_cache, out.from_cache);
        assert!(back.program.is_none());
        // And the round trip is byte-stable.
        assert_eq!(back.to_json().unwrap(), json);
    }

    /// A compiled program survives the envelope byte-identically.
    #[test]
    fn program_roundtrips_inside_the_envelope() {
        use zac_arch::Architecture;
        use zac_circuit::{bench_circuits, preprocess};
        let mut config = crate::ZacConfig::full();
        config.placement.sa_iterations = 50;
        let zac = crate::Zac::with_config(Architecture::reference(), config);
        let out = crate::Compiler::compile(&zac, &preprocess(&bench_circuits::ghz(6))).unwrap();
        assert!(out.program.is_some());
        let back = CompileOutput::from_json(&out.to_json().unwrap()).unwrap();
        assert_eq!(
            back.program.as_ref().unwrap().to_json().unwrap(),
            out.program.as_ref().unwrap().to_json().unwrap()
        );
        assert_eq!(back.to_json().unwrap(), out.to_json().unwrap());
    }

    /// A v2 reader accepts a v1 envelope: counts derive from the summary,
    /// `from_cache` defaults to false, phases to absent.
    #[test]
    fn v2_reader_accepts_v1_envelopes() {
        let out = sample();
        // Render a v1 document by hand from the sample's own pieces.
        let v1 = format!(
            "{{\"version\":1,\"summary\":{},\"report\":{},\"compile_time_ns\":1234567,\"program\":null}}",
            serde_json::to_string(&out.summary).unwrap(),
            serde_json::to_string(&out.report).unwrap(),
        );
        let back = CompileOutput::from_json(&v1).unwrap();
        assert_eq!(back.summary, out.summary);
        assert_eq!(back.counts, GateCounts::from(&out.summary), "counts derived from summary");
        assert!(!back.from_cache);
        assert_eq!(back.phases, None);
        assert_eq!(back.compile_time, Duration::from_nanos(1_234_567));
    }

    /// Unknown future fields are tolerated; unknown future *versions* are
    /// rejected loudly.
    #[test]
    fn unknown_future_fields_are_tolerated_but_future_versions_are_not() {
        let json = sample().to_json().unwrap();
        let with_extra = json.replacen(
            "\"summary\"",
            "\"future_hint\":{\"speculative\":[1,2,3]},\"summary\"",
            1,
        );
        let back = CompileOutput::from_json(&with_extra).expect("extra fields are ignored");
        assert_eq!(back.summary, sample().summary);

        let future = json.replacen("\"version\":2", "\"version\":99", 1);
        let err = CompileOutput::from_json(&future).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn non_finite_outputs_refuse_to_serialize() {
        let mut out = sample();
        out.summary.duration_us = f64::NAN;
        let err = out.to_json().unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    /// Normalization erases exactly the wall-clock/cache fields and nothing
    /// else, so semantic digests identify equivalent compilations.
    #[test]
    fn semantic_digest_ignores_timing_and_cache_marking_only() {
        let out = sample();
        let mut later = out.clone();
        later.compile_time = Duration::from_secs(5);
        later.from_cache = true;
        later.phases =
            Some(PhaseTimings { place: Duration::from_secs(4), schedule: Duration::from_secs(1) });
        assert_eq!(out.semantic_digest(), later.semantic_digest());
        assert_eq!(out.semantic_json().unwrap(), later.semantic_json().unwrap());

        let mut different = out.clone();
        different.summary.g1 += 1;
        different.counts = GateCounts::from(&different.summary);
        assert_ne!(out.semantic_digest(), different.semantic_digest());

        // Phase *presence* is semantic (pipeline shape), only durations are
        // normalized away.
        let mut phaseless = out.clone();
        phaseless.phases = None;
        assert_ne!(out.semantic_digest(), phaseless.semantic_digest());
    }
}
