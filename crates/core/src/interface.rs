//! The unified compiler interface.
//!
//! Every compiler the evaluation compares — ZAC itself and the four
//! baselines in `zac-baselines` — implements [`Compiler`], so harness code
//! (`zac-bench`) drives `&[Box<dyn Compiler>]` without per-compiler
//! branches, and new backends plug in by implementing one trait.
//!
//! The exchange types are deliberately lowest-common-denominator:
//! [`CompileOutput`] carries the [`ExecutionSummary`] + [`FidelityReport`]
//! pair every compiler produces, the named [`GateCounts`], and — for
//! compilers that emit full ZAIR (ZAC) — the validated [`Program`].

use std::fmt;
use std::time::Duration;
use zac_arch::Architecture;
use zac_circuit::{Fingerprint, StagedCircuit};
use zac_fidelity::{ExecutionSummary, FidelityReport, NeutralAtomParams};
use zac_zair::Program;

/// The error counters of the paper's fidelity model, named. Replaces the
/// positional `(g1, g2, n_exc, n_tran)` tuples the harness used to pass
/// around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateCounts {
    /// Executed 1Q gates.
    pub g1: usize,
    /// Executed 2Q gates.
    pub g2: usize,
    /// Idle qubits excited by Rydberg exposures (`N_exc`).
    pub n_exc: usize,
    /// Atom transfers (`N_tran`).
    pub n_tran: usize,
}

impl From<&ExecutionSummary> for GateCounts {
    fn from(s: &ExecutionSummary) -> Self {
        Self { g1: s.g1, g2: s.g2, n_exc: s.n_exc, n_tran: s.n_tran }
    }
}

impl fmt::Display for GateCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g1={} g2={} N_exc={} N_tran={}", self.g1, self.g2, self.n_exc, self.n_tran)
    }
}

/// Per-phase compile-time breakdown for pipeline compilers: how the wall
/// clock splits between placement and scheduling. Only backends with that
/// pipeline shape (ZAC) report one; abstract-cost baselines leave
/// [`CompileOutput::phases`] as `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Placement phase (initial + per-stage placement).
    pub place: Duration,
    /// Scheduling phase (placement plan → timed ZAIR program).
    pub schedule: Duration,
}

/// Output of one [`Compiler::compile`] call: the common evaluation payload,
/// plus the full ZAIR program when the backend produces one.
#[derive(Debug, Clone)]
pub struct CompileOutput {
    /// Execution summary (timing + counters).
    pub summary: ExecutionSummary,
    /// Fidelity report under the compiler's hardware model.
    pub report: FidelityReport,
    /// Named gate/error counters (derived from `summary`).
    pub counts: GateCounts,
    /// Wall-clock compilation time.
    ///
    /// For cache hits this is the *original* compile time recorded when the
    /// entry was produced, never the (microsecond-scale) lookup time —
    /// figure timing series must not be polluted by cache bookkeeping.
    pub compile_time: Duration,
    /// The compiled ZAIR program, for backends that emit one (ZAC does;
    /// the abstract-cost baselines do not).
    pub program: Option<Program>,
    /// Whether this output was served from a compilation cache rather than
    /// freshly compiled. Always `false` from a bare compiler; set by
    /// `zac-cache`'s `CachedCompiler`/`CompileCache` on hits.
    pub from_cache: bool,
    /// Per-phase (place vs. schedule) timing breakdown, when the backend
    /// has that pipeline shape. Like [`compile_time`](Self::compile_time),
    /// cache hits carry the *original* phase split.
    pub phases: Option<PhaseTimings>,
}

impl CompileOutput {
    /// Assembles an output, deriving [`GateCounts`] from the summary.
    pub fn new(
        summary: ExecutionSummary,
        report: FidelityReport,
        compile_time: Duration,
        program: Option<Program>,
    ) -> Self {
        let counts = GateCounts::from(&summary);
        Self { summary, report, counts, compile_time, program, from_cache: false, phases: None }
    }

    /// Attaches a per-phase timing breakdown.
    #[must_use]
    pub fn with_phases(mut self, place: Duration, schedule: Duration) -> Self {
        self.phases = Some(PhaseTimings { place, schedule });
        self
    }

    /// Total circuit fidelity.
    pub fn total_fidelity(&self) -> f64 {
        self.report.total()
    }
}

/// Why a compiler could not handle a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The circuit does not fit the compiler's target hardware.
    CircuitTooLarge {
        /// Qubits (or storage traps) the circuit needs.
        needed: usize,
        /// What the target provides.
        available: usize,
    },
    /// Any other pipeline failure, with the backend's own message.
    Failed(String),
    /// The compile was cancelled cooperatively (a deadline watchdog fired a
    /// [`zac_telemetry::cancel::CancelToken`] mid-pipeline). Not a property
    /// of the circuit: retrying with a longer budget may succeed.
    Cancelled,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::CircuitTooLarge { needed, available } => {
                write!(f, "circuit needs {needed} qubits, target fits {available}")
            }
            Self::Failed(msg) => write!(f, "compilation failed: {msg}"),
            Self::Cancelled => write!(f, "compilation cancelled"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Folds an [`Architecture`]'s identity into a fingerprint: its name plus
/// the full zone/SLM/AOD geometry, so two architectures that differ in any
/// structural respect never share a digest even if their names collide.
pub fn write_arch_tokens(fp: &mut Fingerprint, arch: &Architecture) {
    fp.write_str(arch.name());
    fp.write_usize(arch.aods().len());
    for aod in arch.aods() {
        fp.write_usize(aod.aod_id);
        fp.write_f64(aod.min_sep);
        fp.write_usize(aod.max_num_col);
        fp.write_usize(aod.max_num_row);
    }
    for zones in [arch.storage_zones(), arch.entanglement_zones(), arch.readout_zones()] {
        fp.write_usize(zones.len());
        for zone in zones {
            fp.write_usize(zone.zone_id);
            fp.write_f64(zone.offset.x);
            fp.write_f64(zone.offset.y);
            fp.write_f64(zone.dimension.0);
            fp.write_f64(zone.dimension.1);
            fp.write_usize(zone.slms.len());
            for slm in &zone.slms {
                fp.write_usize(slm.slm_id);
                fp.write_f64(slm.sep.0);
                fp.write_f64(slm.sep.1);
                fp.write_usize(slm.num_col);
                fp.write_usize(slm.num_row);
                fp.write_f64(slm.offset.x);
                fp.write_f64(slm.offset.y);
            }
        }
    }
}

/// Folds a [`NeutralAtomParams`] set into a fingerprint (all eight hardware
/// parameters, in declaration order).
pub fn write_params_tokens(fp: &mut Fingerprint, p: &NeutralAtomParams) {
    for v in [p.f_2q, p.f_1q, p.f_exc, p.f_tran, p.t_2q_us, p.t_1q_us, p.t_tran_us, p.t2_us] {
        fp.write_f64(v);
    }
}

/// A circuit compiler targeting some architecture, with its configuration
/// baked into the value. `Send + Sync` so compiler sets can be driven from
/// rayon sweeps.
pub trait Compiler: Send + Sync {
    /// The compiler's display name (the paper's legend label, e.g.
    /// `"Zoned-ZAC"` or `"SC-Heron"`).
    fn name(&self) -> &str;

    /// Compiles a preprocessed circuit.
    ///
    /// # Errors
    ///
    /// [`CompileError`] when the circuit cannot be handled (most commonly
    /// [`CompileError::CircuitTooLarge`]).
    fn compile(&self, staged: &StagedCircuit) -> Result<CompileOutput, CompileError>;

    /// Folds everything that determines this compiler's *output* — target
    /// architecture and configuration — into `fp`.
    ///
    /// The default writes nothing, which is only correct for compilers with
    /// no configurable state. Every implementor carrying a config **must**
    /// override this so that two differently-configured instances never
    /// share a [`fingerprint`](Compiler::fingerprint) (a shared fingerprint
    /// means a compilation cache may serve one config's output for the
    /// other). Wrappers should forward to their inner compiler.
    fn config_tokens(&self, fp: &mut Fingerprint) {
        let _ = fp;
    }

    /// A stable 64-bit identity fingerprint: FNV-1a over the compiler's
    /// [`name`](Compiler::name) and [`config_tokens`](Compiler::config_tokens).
    ///
    /// Because every compiler in this workspace is deterministic given its
    /// configuration (asserted in `tests/compiler_trait.rs`), the pair
    /// *(circuit fingerprint, compiler fingerprint)* fully determines the
    /// compile output — the contract `zac-cache` builds on.
    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_str(self.name());
        self.config_tokens(&mut fp);
        fp.finish()
    }
}

/// Wraps a compiler under a different display name — e.g. the four ZAC
/// ablation arms of Fig. 12, which are all [`crate::Zac`] instances with
/// different configs but need distinct legend labels.
#[derive(Debug, Clone)]
pub struct Labeled<C> {
    label: String,
    inner: C,
}

impl<C: Compiler> Labeled<C> {
    /// Wraps `inner` under `label`.
    pub fn new(label: impl Into<String>, inner: C) -> Self {
        Self { label: label.into(), inner }
    }
}

impl<C: Compiler> Compiler for Labeled<C> {
    fn name(&self) -> &str {
        &self.label
    }

    fn compile(&self, staged: &StagedCircuit) -> Result<CompileOutput, CompileError> {
        self.inner.compile(staged)
    }

    // The label participates via the default `fingerprint` (it uses
    // `self.name()`); the inner compiler's *own* name must be folded in
    // explicitly — without it, two different compiler types whose config
    // tokens happen to coincide (e.g. Enola and Atomique, both hashing
    // rows/cols/params) would share a fingerprint under one label and
    // poison a shared cache.
    fn config_tokens(&self, fp: &mut Fingerprint) {
        fp.write_str(self.inner.name());
        self.inner.config_tokens(fp);
    }
}

impl<C: Compiler + ?Sized> Compiler for Box<C> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn compile(&self, staged: &StagedCircuit) -> Result<CompileOutput, CompileError> {
        (**self).compile(staged)
    }

    fn config_tokens(&self, fp: &mut Fingerprint) {
        (**self).config_tokens(fp);
    }

    fn fingerprint(&self) -> u64 {
        (**self).fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> ExecutionSummary {
        ExecutionSummary {
            name: "demo".into(),
            num_qubits: 2,
            duration_us: 100.0,
            g1: 3,
            g2: 2,
            n_exc: 1,
            n_tran: 4,
            idle_us: vec![50.0, 60.0],
        }
    }

    #[test]
    fn counts_derive_from_summary() {
        let c = GateCounts::from(&summary());
        assert_eq!(c, GateCounts { g1: 3, g2: 2, n_exc: 1, n_tran: 4 });
        assert_eq!(c.to_string(), "g1=3 g2=2 N_exc=1 N_tran=4");
    }

    #[test]
    fn output_assembles_counts() {
        let s = summary();
        let report =
            zac_fidelity::evaluate_neutral_atom(&s, &zac_fidelity::NeutralAtomParams::reference());
        let out = CompileOutput::new(s, report, Duration::from_millis(1), None);
        assert_eq!(out.counts.g2, 2);
        assert!(out.total_fidelity() > 0.0 && out.total_fidelity() < 1.0);
        assert!(out.program.is_none());
    }

    #[test]
    fn error_display() {
        let e = CompileError::CircuitTooLarge { needed: 121, available: 100 };
        assert!(e.to_string().contains("121"));
        assert!(CompileError::Failed("x".into()).to_string().contains("x"));
    }

    #[test]
    fn new_outputs_are_not_from_cache() {
        let s = summary();
        let report =
            zac_fidelity::evaluate_neutral_atom(&s, &zac_fidelity::NeutralAtomParams::reference());
        let out = CompileOutput::new(s, report, Duration::from_millis(1), None);
        assert!(!out.from_cache);
    }

    #[test]
    fn fingerprint_separates_arch_config_and_label() {
        use crate::{Zac, ZacConfig};
        let reference = Zac::new(Architecture::reference());
        assert_eq!(reference.fingerprint(), Zac::new(Architecture::reference()).fingerprint());
        // Different architecture.
        let small = Zac::new(Architecture::arch1_small());
        assert_ne!(reference.fingerprint(), small.fingerprint());
        // Different config on the same architecture.
        let vanilla = Zac::with_config(Architecture::reference(), ZacConfig::vanilla());
        assert_ne!(reference.fingerprint(), vanilla.fingerprint());
        let mut seeded = ZacConfig::full();
        seeded.placement.seed ^= 1;
        let reseeded = Zac::with_config(Architecture::reference(), seeded);
        assert_ne!(reference.fingerprint(), reseeded.fingerprint());
        // A label changes the fingerprint; the inner config still counts.
        let labeled = Labeled::new("ZAC-full", Zac::new(Architecture::reference()));
        assert_ne!(labeled.fingerprint(), reference.fingerprint());
        let labeled_vanilla = Labeled::new(
            "ZAC-full",
            Zac::with_config(Architecture::reference(), ZacConfig::vanilla()),
        );
        assert_ne!(labeled.fingerprint(), labeled_vanilla.fingerprint());
        // Boxing is transparent.
        let boxed: Box<dyn Compiler> = Box::new(Zac::new(Architecture::reference()));
        assert_eq!(boxed.fingerprint(), reference.fingerprint());
    }

    #[test]
    fn labeled_keeps_distinct_compiler_types_distinct() {
        // Two compiler types whose config tokens coincide byte-for-byte:
        // only the inner *name* separates them under a shared label.
        struct A;
        struct B;
        impl Compiler for A {
            fn name(&self) -> &str {
                "TypeA"
            }
            fn config_tokens(&self, fp: &mut Fingerprint) {
                fp.write_usize(10);
            }
            fn compile(&self, _: &StagedCircuit) -> Result<CompileOutput, CompileError> {
                Err(CompileError::Failed("stub".into()))
            }
        }
        impl Compiler for B {
            fn name(&self) -> &str {
                "TypeB"
            }
            fn config_tokens(&self, fp: &mut Fingerprint) {
                fp.write_usize(10);
            }
            fn compile(&self, _: &StagedCircuit) -> Result<CompileOutput, CompileError> {
                Err(CompileError::Failed("stub".into()))
            }
        }
        let a = Labeled::new("arm", A);
        let b = Labeled::new("arm", B);
        assert_ne!(a.fingerprint(), b.fingerprint(), "label must not erase the inner identity");
    }
}
