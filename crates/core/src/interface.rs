//! The unified compiler interface.
//!
//! Every compiler the evaluation compares — ZAC itself and the four
//! baselines in `zac-baselines` — implements [`Compiler`], so harness code
//! (`zac-bench`) drives `&[Box<dyn Compiler>]` without per-compiler
//! branches, and new backends plug in by implementing one trait.
//!
//! The exchange types are deliberately lowest-common-denominator:
//! [`CompileOutput`] carries the [`ExecutionSummary`] + [`FidelityReport`]
//! pair every compiler produces, the named [`GateCounts`], and — for
//! compilers that emit full ZAIR (ZAC) — the validated [`Program`].

use std::fmt;
use std::time::Duration;
use zac_circuit::StagedCircuit;
use zac_fidelity::{ExecutionSummary, FidelityReport};
use zac_zair::Program;

/// The error counters of the paper's fidelity model, named. Replaces the
/// positional `(g1, g2, n_exc, n_tran)` tuples the harness used to pass
/// around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateCounts {
    /// Executed 1Q gates.
    pub g1: usize,
    /// Executed 2Q gates.
    pub g2: usize,
    /// Idle qubits excited by Rydberg exposures (`N_exc`).
    pub n_exc: usize,
    /// Atom transfers (`N_tran`).
    pub n_tran: usize,
}

impl From<&ExecutionSummary> for GateCounts {
    fn from(s: &ExecutionSummary) -> Self {
        Self { g1: s.g1, g2: s.g2, n_exc: s.n_exc, n_tran: s.n_tran }
    }
}

impl fmt::Display for GateCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g1={} g2={} N_exc={} N_tran={}", self.g1, self.g2, self.n_exc, self.n_tran)
    }
}

/// Output of one [`Compiler::compile`] call: the common evaluation payload,
/// plus the full ZAIR program when the backend produces one.
#[derive(Debug, Clone)]
pub struct CompileOutput {
    /// Execution summary (timing + counters).
    pub summary: ExecutionSummary,
    /// Fidelity report under the compiler's hardware model.
    pub report: FidelityReport,
    /// Named gate/error counters (derived from `summary`).
    pub counts: GateCounts,
    /// Wall-clock compilation time.
    pub compile_time: Duration,
    /// The compiled ZAIR program, for backends that emit one (ZAC does;
    /// the abstract-cost baselines do not).
    pub program: Option<Program>,
}

impl CompileOutput {
    /// Assembles an output, deriving [`GateCounts`] from the summary.
    pub fn new(
        summary: ExecutionSummary,
        report: FidelityReport,
        compile_time: Duration,
        program: Option<Program>,
    ) -> Self {
        let counts = GateCounts::from(&summary);
        Self { summary, report, counts, compile_time, program }
    }

    /// Total circuit fidelity.
    pub fn total_fidelity(&self) -> f64 {
        self.report.total()
    }
}

/// Why a compiler could not handle a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The circuit does not fit the compiler's target hardware.
    CircuitTooLarge {
        /// Qubits (or storage traps) the circuit needs.
        needed: usize,
        /// What the target provides.
        available: usize,
    },
    /// Any other pipeline failure, with the backend's own message.
    Failed(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::CircuitTooLarge { needed, available } => {
                write!(f, "circuit needs {needed} qubits, target fits {available}")
            }
            Self::Failed(msg) => write!(f, "compilation failed: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// A circuit compiler targeting some architecture, with its configuration
/// baked into the value. `Send + Sync` so compiler sets can be driven from
/// rayon sweeps.
pub trait Compiler: Send + Sync {
    /// The compiler's display name (the paper's legend label, e.g.
    /// `"Zoned-ZAC"` or `"SC-Heron"`).
    fn name(&self) -> &str;

    /// Compiles a preprocessed circuit.
    ///
    /// # Errors
    ///
    /// [`CompileError`] when the circuit cannot be handled (most commonly
    /// [`CompileError::CircuitTooLarge`]).
    fn compile(&self, staged: &StagedCircuit) -> Result<CompileOutput, CompileError>;
}

/// Wraps a compiler under a different display name — e.g. the four ZAC
/// ablation arms of Fig. 12, which are all [`crate::Zac`] instances with
/// different configs but need distinct legend labels.
#[derive(Debug, Clone)]
pub struct Labeled<C> {
    label: String,
    inner: C,
}

impl<C: Compiler> Labeled<C> {
    /// Wraps `inner` under `label`.
    pub fn new(label: impl Into<String>, inner: C) -> Self {
        Self { label: label.into(), inner }
    }
}

impl<C: Compiler> Compiler for Labeled<C> {
    fn name(&self) -> &str {
        &self.label
    }

    fn compile(&self, staged: &StagedCircuit) -> Result<CompileOutput, CompileError> {
        self.inner.compile(staged)
    }
}

impl<C: Compiler + ?Sized> Compiler for Box<C> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn compile(&self, staged: &StagedCircuit) -> Result<CompileOutput, CompileError> {
        (**self).compile(staged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> ExecutionSummary {
        ExecutionSummary {
            name: "demo".into(),
            num_qubits: 2,
            duration_us: 100.0,
            g1: 3,
            g2: 2,
            n_exc: 1,
            n_tran: 4,
            idle_us: vec![50.0, 60.0],
        }
    }

    #[test]
    fn counts_derive_from_summary() {
        let c = GateCounts::from(&summary());
        assert_eq!(c, GateCounts { g1: 3, g2: 2, n_exc: 1, n_tran: 4 });
        assert_eq!(c.to_string(), "g1=3 g2=2 N_exc=1 N_tran=4");
    }

    #[test]
    fn output_assembles_counts() {
        let s = summary();
        let report =
            zac_fidelity::evaluate_neutral_atom(&s, &zac_fidelity::NeutralAtomParams::reference());
        let out = CompileOutput::new(s, report, Duration::from_millis(1), None);
        assert_eq!(out.counts.g2, 2);
        assert!(out.total_fidelity() > 0.0 && out.total_fidelity() < 1.0);
        assert!(out.program.is_none());
    }

    #[test]
    fn error_display() {
        let e = CompileError::CircuitTooLarge { needed: 121, available: 100 };
        assert!(e.to_string().contains("121"));
        assert!(CompileError::Failed("x".into()).to_string().contains("x"));
    }
}
