//! Quality guarantees of the windowed placement engine.
//!
//! Two layers: a property test that windowed plans are *valid* placements
//! (every invariant of [`PlacementPlan::validate`]) for arbitrary circuits
//! and window parameters, and a suite-wide guard that the windowed engine's
//! movement cost (paper Eq. 1) stays within the configured quality bound of
//! the exhaustive engine on all 17 paper circuits.

use proptest::prelude::*;
use zac_arch::{Architecture, GeomCache};
use zac_circuit::{bench_circuits, preprocess, Circuit, StagedCircuit};
use zac_place::{plan_placement, PlacementConfig, PlacementEngine, PlacementPlan, WindowedPlacer};

/// A random but valid circuit: CZs from the pair list (self pairs skipped).
fn build_circuit(nq: usize, pairs: &[(usize, usize)]) -> Circuit {
    let mut c = Circuit::new("prop", nq);
    for &(a, b) in pairs {
        let (a, b) = (a % nq, b % nq);
        if a != b {
            c.cz(a, b);
        }
    }
    c
}

/// Mirrors `Zac::compile_staged`: stages wider than the site count split.
fn fit(arch: &Architecture, staged: StagedCircuit) -> StagedCircuit {
    let num_sites = arch.num_sites();
    if staged.max_parallelism() > num_sites && num_sites > 0 {
        staged.with_max_stage_width(num_sites)
    } else {
        staged
    }
}

fn windowed_cfg(engine: WindowedPlacer, use_sa: bool, seed: u64) -> PlacementConfig {
    PlacementConfig {
        use_sa,
        sa_iterations: 40,
        seed,
        engine: PlacementEngine::Windowed(engine),
        ..PlacementConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every windowed plan — any circuit, any window geometry, any quality
    /// factor, both architectures — satisfies the full placement contract:
    /// distinct traps, gate qubits co-located at their site, no idle qubit
    /// left in an entanglement zone.
    #[test]
    fn windowed_plans_always_validate(
        nq in 2usize..40,
        pairs in proptest::collection::vec((0usize..40, 0usize..40), 1..60),
        min_width in 1usize..6,
        ratio in 0.25..2.0f64,
        quality in 1.05..2.0f64,
        patience in 0usize..24,
        use_sa in any::<bool>(),
        two_zone in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let arch = if two_zone {
            Architecture::arch2_two_zones()
        } else {
            Architecture::reference()
        };
        let engine = WindowedPlacer {
            window_min_width: min_width,
            window_ratio: ratio,
            quality_factor: quality,
            sa_patience: patience,
        };
        let staged = fit(&arch, preprocess(&build_circuit(nq, &pairs)));
        let cfg = windowed_cfg(engine, use_sa, seed);
        let plan = plan_placement(&arch, &staged, &cfg).unwrap();
        plan.validate(&arch, &staged).unwrap();
    }
}

/// Suite-wide quality guard: on every paper circuit the windowed engine's
/// movement cost stays within the engine's `quality_factor` of the
/// exhaustive cost, and in aggregate the regression is at most 2% (the
/// acceptance bound of the engine frontier; in practice the windowed SA's
/// different anneal makes several circuits *cheaper*).
#[test]
fn windowed_cost_within_guard_across_paper_suite() {
    let arch = Architecture::reference();
    let geom = GeomCache::new(&arch);
    let windowed = WindowedPlacer::default();
    let quality = windowed.quality_factor;
    let cost = |staged: &StagedCircuit, engine: PlacementEngine| -> f64 {
        let cfg = PlacementConfig { sa_iterations: 120, engine, ..PlacementConfig::default() };
        let plan: PlacementPlan = plan_placement(&arch, staged, &cfg).unwrap();
        plan.movement_cost(&geom)
    };
    let suite = bench_circuits::paper_suite();
    assert_eq!(suite.len(), 17);
    let (mut total_exh, mut total_win) = (0.0, 0.0);
    for entry in suite {
        let staged = fit(&arch, preprocess(&entry.circuit));
        let exhaustive = cost(&staged, PlacementEngine::Exhaustive);
        let win = cost(&staged, PlacementEngine::Windowed(windowed.clone()));
        assert!(
            win <= quality * exhaustive + 1e-9,
            "{}: windowed cost {win:.2} breaches the {quality}x guard of exhaustive {exhaustive:.2}",
            staged.name
        );
        total_exh += exhaustive;
        total_win += win;
    }
    let ratio = total_win / total_exh;
    assert!(
        ratio <= 1.02,
        "suite-wide movement-cost regression {:.2}% exceeds the 2% bound",
        (ratio - 1.0) * 100.0
    );
}
