//! Reuse-aware placement for the ZAC compiler (paper Sec. V).
//!
//! Placement decides where every qubit sits at every moment of the schedule:
//!
//! * [`initial`] — initial storage placement: trivial row filling or the
//!   simulated-annealing optimizer minimizing the weighted Eq. 2 cost;
//! * [`cost`] — the movement-cost model (Eq. 1): √distance with same-row
//!   parallel bundling;
//! * [`dynamic`] — per-stage reuse matching, gate placement and non-reuse
//!   qubit return (Eq. 3), committing the better of the reuse / no-reuse
//!   solutions.
//!
//! The output [`PlacementPlan`] is a sequence of qubit-location snapshots;
//! `zac-schedule` turns consecutive snapshots into rearrangement jobs.
//!
//! # Example
//!
//! ```
//! use zac_arch::Architecture;
//! use zac_circuit::{bench_circuits, preprocess};
//! use zac_place::{plan_placement, PlacementConfig};
//!
//! let arch = Architecture::reference();
//! let staged = preprocess(&bench_circuits::ghz(8));
//! let plan = plan_placement(&arch, &staged, &PlacementConfig::default())?;
//! assert_eq!(plan.stages.len(), staged.num_stages());
//! assert!(plan.total_reused_qubits() > 0); // GHZ chains reuse heavily
//! # Ok::<(), zac_place::PlaceError>(())
//! ```

pub mod cost;
pub mod dynamic;
pub mod engine;
pub mod initial;

use std::fmt;

pub use dynamic::{plan_placement, plan_placement_cached, PlacementPlan, StagePlan};
pub use engine::{ExhaustivePlacer, PlacementEngine, Placer, WindowedPlacer};
pub use initial::{sa_initial_placement, trivial_initial_placement, InitialPlacementCache};

/// Configuration of the placement pipeline; the paper's ablation settings
/// (Fig. 11) map onto the three booleans (`use_sa`, `dynamic`, `reuse`).
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementConfig {
    /// Use simulated annealing for initial placement ('SA').
    pub use_sa: bool,
    /// Use dynamic intermediate placement ('dynPlace'); otherwise qubits
    /// always return to their original trap.
    pub dynamic: bool,
    /// Enable qubit reuse ('reuse').
    pub reuse: bool,
    /// SA iteration budget (the paper uses 1000).
    pub sa_iterations: usize,
    /// RNG seed for SA (results are deterministic per seed).
    pub seed: u64,
    /// Initial candidate-window expansion δ for gate placement.
    pub window_expansion: usize,
    /// Neighborhood radius k for return-trap candidates.
    pub neighbor_k: usize,
    /// Lookahead weight α in the return cost (Eq. 3; the paper uses 0.1).
    pub lookahead_alpha: f64,
    /// Placement engine driving the per-stage candidate search. The default
    /// honors the `ZAC_PLACER` environment variable (see
    /// [`PlacementEngine::from_env`]); golden-locked tests pin
    /// [`PlacementEngine::Exhaustive`] explicitly.
    pub engine: PlacementEngine,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        Self {
            use_sa: true,
            dynamic: true,
            reuse: true,
            sa_iterations: 1000,
            seed: 0x5AC,
            window_expansion: 2,
            neighbor_k: 2,
            lookahead_alpha: 0.1,
            engine: PlacementEngine::from_env(),
        }
    }
}

/// Errors from the placement pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PlaceError {
    /// More qubits than storage traps.
    StorageFull {
        /// Qubit count.
        qubits: usize,
        /// Available storage traps.
        traps: usize,
    },
    /// A Rydberg stage has more gates than the architecture has sites.
    TooManyGates {
        /// Gates in the stage.
        gates: usize,
        /// Total Rydberg sites.
        sites: usize,
    },
    /// An internal invariant was violated (with description).
    Invalid(String),
    /// An installed [`zac_telemetry::cancel::CancelToken`] fired; the
    /// placement was abandoned cooperatively (no partial plan escapes).
    Cancelled,
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::StorageFull { qubits, traps } => {
                write!(f, "{qubits} qubits exceed {traps} storage traps")
            }
            Self::TooManyGates { gates, sites } => {
                write!(f, "stage with {gates} gates exceeds {sites} Rydberg sites")
            }
            Self::Invalid(msg) => write!(f, "invalid placement: {msg}"),
            Self::Cancelled => write!(f, "placement cancelled"),
        }
    }
}

impl std::error::Error for PlaceError {}
