//! Pluggable placement engines.
//!
//! The [`Placer`] trait is the seam between the placement pipeline's entry
//! points and the per-stage search strategy. Two engines implement it:
//!
//! * [`ExhaustivePlacer`] — the paper's search, unchanged: gate candidates
//!   come from the δ-expanded neighborhood Ω_near grown only on
//!   infeasibility, and Eq. 3 return candidates are the full bounding box
//!   over the anchor traps. Its output is bit-identical to the pre-trait
//!   pipeline (locked by the scheduler golden digests).
//! * [`WindowedPlacer`] — a windowed search in the spirit of the TUM
//!   routing-aware placement line of work: on large matchings both candidate
//!   pools are capped to geometry windows around the moving qubits, sized by
//!   [`WindowedPlacer::window_min_width`] / [`WindowedPlacer::window_ratio`].
//!   The window grows (and the matching re-solves) only when the assignment
//!   is infeasible or its cost exceeds the
//!   [`WindowedPlacer::quality_factor`] guard; the SA initial placement
//!   early-stops after [`WindowedPlacer::sa_patience`] non-improving
//!   iterations. Together these trade bounded quality loss for a large
//!   compile-time win on big circuits.
//!
//! Engine choice is part of a compiler's identity: [`Placer::config_tokens`]
//! folds it into `Compiler::fingerprint()` (and the
//! [`crate::InitialPlacementCache`] key), so cached artifacts produced by
//! different engines can never be confused.

use crate::dynamic::{plan_with_window, PlacementPlan};
use crate::initial::InitialPlacementCache;
use crate::{PlaceError, PlacementConfig};
use zac_arch::Architecture;
use zac_circuit::{Fingerprint, StagedCircuit};

/// A placement engine: plans qubit locations for every Rydberg stage.
///
/// Implementations must be deterministic functions of `(arch, staged, cfg)`
/// and must describe every behavior-affecting knob in
/// [`config_tokens`](Placer::config_tokens), so compilation caches keyed by
/// fingerprint stay sound.
pub trait Placer: Send + Sync {
    /// Engine name (used in labels and diagnostics).
    fn name(&self) -> &'static str;

    /// Plans placement for the whole circuit.
    ///
    /// # Errors
    ///
    /// [`PlaceError`] if the circuit does not fit the architecture.
    fn plan(
        &self,
        arch: &Architecture,
        staged: &StagedCircuit,
        cfg: &PlacementConfig,
    ) -> Result<PlacementPlan, PlaceError> {
        self.plan_cached(arch, staged, cfg, None)
    }

    /// [`plan`](Placer::plan) with an optional shared
    /// [`InitialPlacementCache`] for the SA initial placement.
    ///
    /// # Errors
    ///
    /// Same as [`plan`](Placer::plan).
    fn plan_cached(
        &self,
        arch: &Architecture,
        staged: &StagedCircuit,
        cfg: &PlacementConfig,
        cache: Option<&InitialPlacementCache>,
    ) -> Result<PlacementPlan, PlaceError>;

    /// Folds every behavior-affecting engine parameter into `fp`.
    fn config_tokens(&self, fp: &mut Fingerprint);
}

/// The paper's exhaustive candidate search (the default engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExhaustivePlacer;

impl Placer for ExhaustivePlacer {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn plan_cached(
        &self,
        arch: &Architecture,
        staged: &StagedCircuit,
        cfg: &PlacementConfig,
        cache: Option<&InitialPlacementCache>,
    ) -> Result<PlacementPlan, PlaceError> {
        plan_with_window(arch, staged, cfg, cache, None)
    }

    fn config_tokens(&self, fp: &mut Fingerprint) {
        fp.write_str("placer/exhaustive");
    }
}

/// Windowed candidate search: caps both the gate-placement site pool and the
/// Eq. 3 return-trap pool to geometry windows around the qubits being moved,
/// and early-stops the SA initial placement once it stops improving.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedPlacer {
    /// Half-height of a candidate window in grid rows (also the gate
    /// window's Chebyshev half-width in the site grid).
    pub window_min_width: usize,
    /// Height/width aspect of the return window: the half-width in columns
    /// is `window_min_width / window_ratio`. Storage rows run parallel to
    /// the entanglement zone, so a wide, flat window tracks the cheap
    /// (same-row) direction of the movement-cost model.
    pub window_ratio: f64,
    /// Quality guard: the window grows and the matching re-solves when the
    /// solved cost exceeds `quality_factor ×` the matching's lower bound
    /// (the sum of each mover's cheapest in-window candidate).
    pub quality_factor: f64,
    /// SA early-stop: end the anneal after this many consecutive
    /// non-improving iterations (0 disables the early stop).
    pub sa_patience: usize,
}

impl Default for WindowedPlacer {
    fn default() -> Self {
        Self { window_min_width: 1, window_ratio: 0.5, quality_factor: 1.5, sa_patience: 12 }
    }
}

/// Resolved window parameters threaded through the per-stage solver.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WindowPolicy {
    pub min_width: usize,
    pub ratio: f64,
    pub quality: f64,
}

impl WindowPolicy {
    /// Return-window half-extent as (rows, cols) for a given half-height:
    /// columns are widened by the aspect ratio (`ratio` ≤ 1 widens).
    pub(crate) fn half_extent(&self, half_rows: usize) -> (usize, usize) {
        let rows = half_rows.max(1);
        let cols = if self.ratio > 0.0 {
            ((rows as f64 / self.ratio).ceil() as usize).max(rows)
        } else {
            rows
        };
        (rows, cols)
    }

    /// Whether `cost` violates the quality guard against `lower_bound`.
    pub(crate) fn violates_guard(&self, cost: f64, lower_bound: f64) -> bool {
        cost > self.quality * lower_bound + 1e-9
    }
}

impl WindowedPlacer {
    pub(crate) fn policy(&self) -> WindowPolicy {
        WindowPolicy {
            min_width: self.window_min_width,
            ratio: self.window_ratio,
            quality: self.quality_factor,
        }
    }
}

impl Placer for WindowedPlacer {
    fn name(&self) -> &'static str {
        "windowed"
    }

    fn plan_cached(
        &self,
        arch: &Architecture,
        staged: &StagedCircuit,
        cfg: &PlacementConfig,
        cache: Option<&InitialPlacementCache>,
    ) -> Result<PlacementPlan, PlaceError> {
        plan_with_window(arch, staged, cfg, cache, Some(self.policy()))
    }

    fn config_tokens(&self, fp: &mut Fingerprint) {
        fp.write_str("placer/windowed");
        fp.write_usize(self.window_min_width);
        fp.write_f64(self.window_ratio);
        fp.write_f64(self.quality_factor);
        fp.write_usize(self.sa_patience);
    }
}

/// Engine selection, stored in [`PlacementConfig::engine`].
#[derive(Debug, Clone, Default, PartialEq)]
pub enum PlacementEngine {
    /// The paper's exhaustive search (default; bit-identity locked).
    #[default]
    Exhaustive,
    /// Windowed candidate search with the given parameters.
    Windowed(WindowedPlacer),
}

impl PlacementEngine {
    /// The windowed engine with default parameters.
    pub fn windowed() -> Self {
        Self::Windowed(WindowedPlacer::default())
    }

    /// Engine selection from the `ZAC_PLACER` environment variable
    /// (`windowed` selects [`WindowedPlacer`]; anything else — including
    /// unset — selects [`ExhaustivePlacer`]). Read once per process, so a
    /// run never mixes engines mid-flight; tests that lock golden outputs
    /// pin `PlacementEngine::Exhaustive` explicitly instead of relying on
    /// the environment.
    pub fn from_env() -> Self {
        static ENGINE: std::sync::OnceLock<PlacementEngine> = std::sync::OnceLock::new();
        ENGINE
            .get_or_init(|| match std::env::var("ZAC_PLACER").as_deref() {
                Ok("windowed") => Self::windowed(),
                _ => Self::Exhaustive,
            })
            .clone()
    }

    /// The engine's [`Placer`] implementation.
    pub fn placer(&self) -> &dyn Placer {
        match self {
            Self::Exhaustive => &ExhaustivePlacer,
            Self::Windowed(w) => w,
        }
    }

    /// Folds the engine choice and its parameters into `fp` (delegates to
    /// [`Placer::config_tokens`]).
    pub fn config_tokens(&self, fp: &mut Fingerprint) {
        self.placer().config_tokens(fp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(engine: &PlacementEngine) -> u64 {
        let mut fp = Fingerprint::new();
        engine.config_tokens(&mut fp);
        fp.finish()
    }

    #[test]
    fn engine_tokens_separate_engines_and_parameters() {
        let exhaustive = tokens(&PlacementEngine::Exhaustive);
        let windowed = tokens(&PlacementEngine::windowed());
        assert_ne!(exhaustive, windowed, "engines must fingerprint differently");

        let wide = tokens(&PlacementEngine::Windowed(WindowedPlacer {
            window_min_width: 5,
            ..WindowedPlacer::default()
        }));
        assert_ne!(windowed, wide, "window parameters are part of the identity");
    }

    #[test]
    fn window_extent_follows_the_aspect_ratio() {
        let p = WindowedPlacer::default().policy();
        // Default ratio 0.5 doubles the column half-width.
        assert_eq!(p.half_extent(2), (2, 4));
        assert_eq!(p.half_extent(8), (8, 16));
        // Ratio 1.0 keeps the window square; the ratio never shrinks it.
        let square = WindowPolicy { min_width: 2, ratio: 1.0, quality: 1.5 };
        assert_eq!(square.half_extent(3), (3, 3));
        let tall = WindowPolicy { min_width: 2, ratio: 4.0, quality: 1.5 };
        assert_eq!(tall.half_extent(3), (3, 3));
        // Degenerate parameters still yield a usable window.
        let tiny = WindowPolicy { min_width: 0, ratio: 0.0, quality: 1.0 };
        assert_eq!(tiny.half_extent(0), (1, 1));
    }

    #[test]
    fn quality_guard_tolerates_the_configured_factor() {
        let p = WindowPolicy { min_width: 2, ratio: 0.5, quality: 1.5 };
        assert!(!p.violates_guard(1.5, 1.0));
        assert!(p.violates_guard(1.6, 1.0));
        assert!(!p.violates_guard(0.0, 0.0));
    }
}
