//! Initial qubit placement: trivial row-filling and simulated annealing
//! (paper Sec. V-A).
//!
//! The SA inner loop is *incremental*: a per-qubit gate-adjacency index and a
//! per-gate cached cost term turn each move evaluation from O(|G|) into
//! O(deg(q) + deg(q′)) — see [`IncrementalCost`]. The accept/reject RNG
//! stream is identical to a cache-free implementation that recomputes the
//! affected gates from scratch each move, so placements are bit-identical
//! for a fixed seed (locked by the regression tests below). The move delta
//! is the *exact* sum over affected gates — in particular, cost-neutral
//! moves see delta = 0 exactly, where a whole-sum recompute would see
//! ±1 ulp of summation noise.

#[cfg(test)]
use crate::cost::initial_placement_cost;
use crate::cost::{gate_term, stage_weight};
use crate::PlaceError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zac_arch::{Architecture, GeomCache, Geometry, Loc, Point};
use zac_circuit::{Gate2, StagedCircuit};

/// All storage traps ordered by proximity to the entanglement zones: rows
/// closest to a zone first, then columns left to right. This is the fill
/// order the paper's trivial ("Vanilla") placement uses.
pub fn storage_traps_by_proximity(arch: &Architecture) -> Vec<Loc> {
    // The sort key (row-to-zone distance, then Loc order) is constant along
    // a row, so sorting whole rows and emitting their columns in order gives
    // the same trap sequence as sorting every trap individually — at a tiny
    // fraction of the comparisons (this runs inside every SA call).
    let mut row_keys: Vec<(f64, usize, usize)> = Vec::new();
    for (z, _zone) in arch.storage_zones().iter().enumerate() {
        let (rows, _cols) = arch.storage_grid(z);
        for row in 0..rows {
            // Distance from this row to the nearest entanglement zone, taken
            // at the row's left edge (x plays no role row-to-row).
            let probe = arch.position(Loc::Storage { zone: z, row, col: 0 });
            let d = arch
                .entanglement_zones()
                .iter()
                .enumerate()
                .map(|(ez, _)| {
                    let (srows, _) = arch.site_grid(ez);
                    (0..srows)
                        .map(|r| {
                            arch.site_position(zac_arch::SiteId::new(ez, r, 0)).y.max(probe.y)
                                - arch.site_position(zac_arch::SiteId::new(ez, r, 0)).y.min(probe.y)
                        })
                        .fold(f64::INFINITY, f64::min)
                })
                .fold(f64::INFINITY, f64::min);
            row_keys.push((d, z, row));
        }
    }
    row_keys.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| (a.1, a.2).cmp(&(b.1, b.2))));
    let mut traps = Vec::new();
    for (_, z, row) in row_keys {
        let (_, cols) = arch.storage_grid(z);
        for col in 0..cols {
            traps.push(Loc::Storage { zone: z, row, col });
        }
    }
    traps
}

/// Row-filling over an already-ordered trap list (the shared core of
/// [`trivial_initial_placement`] and the SA seed, so the proximity ordering
/// is computed once per placement run).
fn trivial_from_traps(traps: &[Loc], num_qubits: usize) -> Result<Vec<Loc>, PlaceError> {
    if num_qubits > traps.len() {
        return Err(PlaceError::StorageFull { qubits: num_qubits, traps: traps.len() });
    }
    Ok(traps[..num_qubits].to_vec())
}

/// Trivial initial placement: qubits in index order filling the storage rows
/// nearest to the entanglement zone.
///
/// # Errors
///
/// [`PlaceError::StorageFull`] if the circuit has more qubits than storage
/// traps.
pub fn trivial_initial_placement(
    arch: &Architecture,
    num_qubits: usize,
) -> Result<Vec<Loc>, PlaceError> {
    trivial_from_traps(&storage_traps_by_proximity(arch), num_qubits)
}

/// Incremental evaluator of the weighted Eq. 2 placement cost.
///
/// Caches one cost term per gate (summing them in gate order reproduces
/// [`initial_placement_cost`] exactly) plus a qubit → gates adjacency index.
/// A proposed move touching qubits `S` re-evaluates only the gates adjacent
/// to `S`; the cached terms are updated on commit and untouched on reject.
/// `total` is re-summed from the cached terms every
/// [`IncrementalCost::RESUM_INTERVAL`] commits to bound float drift from the
/// running accumulation.
pub(crate) struct IncrementalCost<'a> {
    geom: &'a GeomCache,
    gates: &'a [(usize, Gate2)],
    /// Gate indices adjacent to each qubit.
    adj: Vec<Vec<u32>>,
    /// Per-gate stage weights (`stage_weight` evaluated once).
    weights: Vec<f64>,
    /// Cached per-gate weighted cost terms.
    terms: Vec<f64>,
    /// Cached per-qubit physical positions (mirrors the caller's placement).
    qpos: Vec<Point>,
    total: f64,
    /// Scratch: gates affected by the pending proposal + their new terms.
    touched: Vec<u32>,
    new_terms: Vec<f64>,
    /// Scratch: moved qubits' previous positions, for rollback on reject.
    saved_pos: Vec<(usize, Point)>,
    /// Per-gate dedupe stamps (a gate adjacent to both moved qubits must be
    /// re-evaluated once, not twice).
    stamp: Vec<u32>,
    generation: u32,
    commits_since_resum: usize,
    /// Full re-summations performed so far (telemetry: drained into
    /// `place.sa.cost_resyncs` by the caller).
    resyncs: u64,
}

impl<'a> IncrementalCost<'a> {
    /// Commits between full re-sums of `total` (drift bound).
    const RESUM_INTERVAL: usize = 64;

    pub(crate) fn new(
        geom: &'a GeomCache,
        gates: &'a [(usize, Gate2)],
        num_qubits: usize,
        placement: &[Loc],
    ) -> Self {
        let mut adj = vec![Vec::new(); num_qubits];
        for (gi, &(_, g)) in gates.iter().enumerate() {
            adj[g.a].push(gi as u32);
            adj[g.b].push(gi as u32);
        }
        let weights: Vec<f64> = gates.iter().map(|&(stage, _)| stage_weight(stage)).collect();
        let qpos: Vec<Point> = placement.iter().map(|&l| geom.position(l)).collect();
        let terms: Vec<f64> =
            gates.iter().map(|&(stage, g)| gate_term(geom, placement, stage, g)).collect();
        let total = terms.iter().sum();
        Self {
            geom,
            gates,
            adj,
            weights,
            terms,
            qpos,
            total,
            touched: Vec::new(),
            new_terms: Vec::new(),
            saved_pos: Vec::new(),
            stamp: vec![0; gates.len()],
            generation: 0,
            commits_since_resum: 0,
            resyncs: 0,
        }
    }

    /// Number of drift-bounding full re-sums performed so far.
    pub(crate) fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// The current total cost (equals a fresh [`initial_placement_cost`] up
    /// to bounded accumulation rounding).
    pub(crate) fn total(&self) -> f64 {
        self.total
    }

    /// One gate's term off the cached qubit positions — bit-identical to
    /// [`gate_term`]: the cached positions are exactly `geom.position(loc)`
    /// and the cached weight is exactly `stage_weight(stage)`.
    #[inline]
    fn term_of(&self, gi: usize) -> f64 {
        let (_, g) = self.gates[gi];
        let (pa, pb) = (self.qpos[g.a], self.qpos[g.b]);
        let site = crate::cost::nearest_gate_site(self.geom, pa, pb);
        self.weights[gi] * crate::cost::gate_cost(self.geom, pa, pb, site)
    }

    /// Evaluates a proposal: `placement` must already reflect the move, and
    /// `moved` lists the qubits whose locations changed. Returns the cost
    /// delta over the affected gates only. Follow with
    /// [`IncrementalCost::commit`] to keep it or
    /// [`IncrementalCost::reject`] to discard it (reverting `placement` is
    /// the caller's job either way).
    pub(crate) fn propose(&mut self, placement: &[Loc], moved: &[usize]) -> f64 {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Stamp wrap-around: reset to 0 (generations restart at 1 and
            // never take the value 0, so no collision is possible).
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.generation = 1;
        }
        self.touched.clear();
        self.new_terms.clear();
        self.saved_pos.clear();
        for &q in moved {
            self.saved_pos.push((q, self.qpos[q]));
            self.qpos[q] = self.geom.position(placement[q]);
        }
        let mut delta = 0.0;
        for &q in moved {
            for &gi in &self.adj[q] {
                let gi_us = gi as usize;
                if self.stamp[gi_us] == self.generation {
                    continue;
                }
                self.stamp[gi_us] = self.generation;
                let t = self.term_of(gi_us);
                self.touched.push(gi);
                self.new_terms.push(t);
                delta += t - self.terms[gi_us];
            }
        }
        delta
    }

    /// Accepts the pending proposal: installs the re-evaluated terms and
    /// advances the running total by `delta` (as returned by the matching
    /// [`IncrementalCost::propose`]).
    pub(crate) fn commit(&mut self, delta: f64) {
        for (&gi, &t) in self.touched.iter().zip(&self.new_terms) {
            self.terms[gi as usize] = t;
        }
        self.total += delta;
        self.commits_since_resum += 1;
        if self.commits_since_resum >= Self::RESUM_INTERVAL {
            self.total = self.terms.iter().sum();
            self.commits_since_resum = 0;
            self.resyncs += 1;
        }
    }

    /// Discards the pending proposal, restoring the cached qubit positions.
    pub(crate) fn reject(&mut self) {
        for &(q, p) in self.saved_pos.iter().rev() {
            self.qpos[q] = p;
        }
        self.saved_pos.clear();
    }
}

/// Simulated-annealing initial placement (paper Sec. V-A).
///
/// Minimizes the weighted Eq. 2 cost with qubit-swap and move-to-empty-trap
/// neighborhood moves over `iterations` steps (the paper uses 1000), with a
/// geometric temperature schedule. Deterministic for a fixed `seed`.
///
/// Each move is evaluated incrementally over the ≤ deg(q) + deg(q′) affected
/// gates (see [`IncrementalCost`]) instead of re-summing all |G| terms, with
/// positions served from a [`GeomCache`]; the RNG stream and the resulting
/// placement are bit-identical to a cache-free implementation with the same
/// affected-gate delta semantics (see `sa_reference` in the tests).
///
/// # Errors
///
/// [`PlaceError::StorageFull`] if the circuit does not fit in storage.
pub fn sa_initial_placement(
    arch: &Architecture,
    staged: &StagedCircuit,
    iterations: usize,
    seed: u64,
) -> Result<Vec<Loc>, PlaceError> {
    sa_anneal(arch, staged, iterations, seed, None)
}

/// [`sa_initial_placement`] with an early-stop guard: the anneal ends once
/// `patience` consecutive iterations fail to improve the best placement
/// found. The temperature schedule is unchanged (it is derived from the full
/// `iterations` budget), and the accept/reject decision stream is identical
/// to the full run up to the stopping point — the truncation only skips the
/// cold tail where improvements have dried up. Used by the windowed
/// placement engine ("search smarter"); the exhaustive engine always runs
/// the full budget.
///
/// # Errors
///
/// [`PlaceError::StorageFull`] if the circuit does not fit in storage.
pub fn sa_initial_placement_early_stop(
    arch: &Architecture,
    staged: &StagedCircuit,
    iterations: usize,
    seed: u64,
    patience: usize,
) -> Result<Vec<Loc>, PlaceError> {
    sa_anneal(arch, staged, iterations, seed, (patience > 0).then_some(patience))
}

/// The SA initial placement selected by `cfg.engine`: the exhaustive engine
/// runs the full iteration budget; the windowed engine applies its
/// `sa_patience` early stop. Both the direct path and
/// [`InitialPlacementCache::get_or_compute`] route through here, so cached
/// and uncached compilations agree per engine (and the cache key's engine
/// tokens keep the entries apart).
pub(crate) fn sa_for_engine(
    arch: &Architecture,
    staged: &StagedCircuit,
    cfg: &crate::PlacementConfig,
) -> Result<Vec<Loc>, PlaceError> {
    match &cfg.engine {
        crate::PlacementEngine::Exhaustive => {
            sa_initial_placement(arch, staged, cfg.sa_iterations, cfg.seed)
        }
        crate::PlacementEngine::Windowed(w) => sa_initial_placement_early_stop(
            arch,
            staged,
            cfg.sa_iterations.min(350),
            cfg.seed,
            w.sa_patience,
        ),
    }
}

fn sa_anneal(
    arch: &Architecture,
    staged: &StagedCircuit,
    iterations: usize,
    seed: u64,
    patience: Option<usize>,
) -> Result<Vec<Loc>, PlaceError> {
    let _span = zac_telemetry::span!("place.sa_anneal", &staged.name);
    let n = staged.num_qubits;
    // One proximity-ordered trap scan serves both the trivial seed placement
    // and the jump-target pool.
    let all_traps = storage_traps_by_proximity(arch);
    let mut placement = trivial_from_traps(&all_traps, n)?;
    if n < 2 {
        return Ok(placement);
    }

    let gates: Vec<(usize, Gate2)> = staged.gates_with_stage().map(|(t, g)| (t, *g)).collect();
    if gates.is_empty() {
        return Ok(placement);
    }

    // Candidate empty traps: the nearest few rows beyond the occupied ones.
    let pool_len = (n * 4).min(all_traps.len());
    let pool: &[Loc] = &all_traps[..pool_len];
    let mut occupied: std::collections::HashSet<Loc> = placement.iter().copied().collect();

    let geom = GeomCache::new(arch);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inc = IncrementalCost::new(&geom, &gates, n, &placement);
    let mut cost = inc.total();
    let mut best = placement.clone();
    let mut best_cost = cost;

    let t0 = (cost / gates.len() as f64).max(1.0);
    let t_end = 1e-3;
    let alpha = (t_end / t0).powf(1.0 / iterations.max(1) as f64);
    let mut temp = t0;
    let mut since_best = 0usize;
    // Telemetry is batched in locals and flushed once after the loop: the
    // anneal body stays free of atomics even when recording.
    let (mut accepted, mut rejected) = (0u64, 0u64);

    for i in 0..iterations {
        // Cooperative cancellation, polled before any RNG draw so the
        // random stream (and thus bit-identity) is untouched on the
        // uncancelled path.
        if i & 63 == 0 && zac_telemetry::cancel::cancelled() {
            return Err(PlaceError::Cancelled);
        }
        if patience.is_some_and(|p| since_best >= p) {
            break;
        }
        since_best += 1;
        let q = rng.gen_range(0..n);
        let old_loc = placement[q];
        enum MoveKind {
            Swap(usize),
            Jump(Loc),
        }
        let kind = if rng.gen_bool(0.5) {
            let mut other = rng.gen_range(0..n);
            if other == q {
                other = (other + 1) % n;
            }
            MoveKind::Swap(other)
        } else {
            let target = pool[rng.gen_range(0..pool.len())];
            if occupied.contains(&target) {
                temp *= alpha;
                continue;
            }
            MoveKind::Jump(target)
        };

        let delta = match kind {
            MoveKind::Swap(other) => {
                placement.swap(q, other);
                inc.propose(&placement, &[q, other])
            }
            MoveKind::Jump(target) => {
                placement[q] = target;
                inc.propose(&placement, &[q])
            }
        };
        if delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp() {
            // Accept.
            accepted += 1;
            inc.commit(delta);
            match kind {
                MoveKind::Jump(target) => {
                    occupied.remove(&old_loc);
                    occupied.insert(target);
                }
                MoveKind::Swap(_) => {}
            }
            cost = inc.total();
            if cost < best_cost {
                best_cost = cost;
                best.clone_from(&placement);
                since_best = 0;
            }
        } else {
            // Revert.
            rejected += 1;
            inc.reject();
            match kind {
                MoveKind::Swap(other) => {
                    placement.swap(q, other);
                }
                MoveKind::Jump(_) => {
                    placement[q] = old_loc;
                }
            }
        }
        temp *= alpha;
    }

    zac_telemetry::metrics::PLACE_SA_ACCEPTED.add(accepted);
    zac_telemetry::metrics::PLACE_SA_REJECTED.add(rejected);
    zac_telemetry::metrics::PLACE_SA_RESYNCS.add(inc.resyncs());

    Ok(best)
}

/// Shared, thread-safe memo of SA initial placements.
///
/// The SA result depends only on the storage/entanglement zone geometry, the
/// staged circuit, and the SA parameters — notably *not* on the AOD count —
/// so sweeps that vary only the AOD configuration (fig14) or re-plan the
/// same circuit repeatedly can share one cache. Clones share storage.
/// Sharing is bit-identical to recomputation: the cached value is exactly
/// what [`sa_initial_placement`] returns for the same inputs.
#[derive(Debug, Clone, Default)]
pub struct InitialPlacementCache {
    /// Per-key single-flight slots: the map lock is held only to fetch the
    /// slot, and `OnceLock::get_or_init` blocks concurrent misses on the
    /// *same* key while the first caller computes (distinct keys compute in
    /// parallel) — so each (geometry, circuit, config) runs the SA at most
    /// once even under a racing parallel sweep.
    #[allow(clippy::type_complexity)]
    inner: std::sync::Arc<
        std::sync::Mutex<
            std::collections::HashMap<
                u64,
                std::sync::Arc<std::sync::OnceLock<Result<Vec<Loc>, PlaceError>>>,
            >,
        >,
    >,
}

impl InitialPlacementCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct (geometry, circuit, SA-config) entries cached.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock is poisoned.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("placement cache poisoned").len()
    }

    /// Whether the cache is empty.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock is poisoned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Everything the SA output depends on — zone geometry (storage and
    /// entanglement SLMs), the circuit fingerprint, and the SA parameters —
    /// plus the placement-engine tokens. The SA itself is engine-independent
    /// today, but keying on the engine keeps the cache trivially sound if an
    /// engine ever shapes the initial placement, and guarantees two engines
    /// never share a slot.
    fn key(arch: &Architecture, staged: &StagedCircuit, cfg: &crate::PlacementConfig) -> u64 {
        let mut fp = zac_circuit::Fingerprint::new();
        fp.write_u64(staged.fingerprint());
        fp.write_usize(cfg.sa_iterations);
        fp.write_u64(cfg.seed);
        cfg.engine.config_tokens(&mut fp);
        for zones in [arch.storage_zones(), arch.entanglement_zones()] {
            fp.write_usize(zones.len());
            for z in zones {
                fp.write_usize(z.slms.len());
                for slm in &z.slms {
                    fp.write_f64(slm.offset.x);
                    fp.write_f64(slm.offset.y);
                    fp.write_f64(slm.sep.0);
                    fp.write_f64(slm.sep.1);
                    fp.write_usize(slm.num_row);
                    fp.write_usize(slm.num_col);
                }
            }
        }
        fp.finish()
    }

    /// Returns the cached SA placement for this (geometry, circuit, config),
    /// computing and inserting it on first use. Concurrent misses on the
    /// same key block on the first caller's computation instead of
    /// duplicating it, so [`InitialPlacementCache::len`] equals the number
    /// of SA runs actually performed.
    ///
    /// # Errors
    ///
    /// [`PlaceError::StorageFull`] if the circuit does not fit in storage.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock is poisoned.
    pub fn get_or_compute(
        &self,
        arch: &Architecture,
        staged: &StagedCircuit,
        cfg: &crate::PlacementConfig,
    ) -> Result<Vec<Loc>, PlaceError> {
        let key = Self::key(arch, staged, cfg);
        let slot =
            self.inner.lock().expect("placement cache poisoned").entry(key).or_default().clone();
        slot.get_or_init(|| sa_for_engine(arch, staged, cfg)).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zac_circuit::{bench_circuits, preprocess};

    fn arch() -> Architecture {
        Architecture::reference()
    }

    fn assert_distinct(placement: &[Loc]) {
        let set: std::collections::HashSet<_> = placement.iter().collect();
        assert_eq!(set.len(), placement.len(), "duplicate traps in placement");
    }

    /// Cache-free reference SA with the same decision semantics as
    /// [`sa_initial_placement`]: every affected gate term — old and new — is
    /// recomputed from scratch off the `Architecture` on every move (no
    /// `GeomCache`, no cached terms), and the periodic drift re-sum is a
    /// fresh full `initial_placement_cost` recompute. The optimized SA must
    /// reproduce its output bit-for-bit for any fixed seed: any stale cached
    /// term, rollback bug, memo-table mismatch, or unbounded accumulation
    /// drift diverges this test.
    fn sa_reference(
        arch: &Architecture,
        staged: &StagedCircuit,
        iterations: usize,
        seed: u64,
    ) -> Result<Vec<Loc>, PlaceError> {
        let n = staged.num_qubits;
        let mut placement = trivial_initial_placement(arch, n)?;
        if n < 2 {
            return Ok(placement);
        }
        let gates: Vec<(usize, Gate2)> = staged.gates_with_stage().map(|(t, g)| (t, *g)).collect();
        if gates.is_empty() {
            return Ok(placement);
        }
        let all_traps = storage_traps_by_proximity(arch);
        let pool_len = (n * 4).min(all_traps.len());
        let pool: Vec<Loc> = all_traps.into_iter().take(pool_len).collect();
        let mut occupied: std::collections::HashSet<Loc> = placement.iter().copied().collect();

        let mut adj = vec![Vec::new(); n];
        for (gi, &(_, g)) in gates.iter().enumerate() {
            adj[g.a].push(gi);
            adj[g.b].push(gi);
        }
        // Affected-gate delta, recomputed from scratch: same summation order
        // as `IncrementalCost::propose` (adjacency of each moved qubit in
        // turn, duplicates skipped).
        let affected_delta = |before: &[Loc], after: &[Loc], moved: &[usize]| -> f64 {
            let mut seen = std::collections::HashSet::new();
            let mut delta = 0.0;
            for &q in moved {
                for &gi in &adj[q] {
                    if !seen.insert(gi) {
                        continue;
                    }
                    let (stage, g) = gates[gi];
                    delta += gate_term(arch, after, stage, g) - gate_term(arch, before, stage, g);
                }
            }
            delta
        };

        let mut rng = StdRng::seed_from_u64(seed);
        let mut cost = initial_placement_cost(arch, &placement, &gates);
        let mut best = placement.clone();
        let mut best_cost = cost;
        let mut commits = 0usize;

        let t0 = (cost / gates.len() as f64).max(1.0);
        let t_end = 1e-3;
        let alpha = (t_end / t0).powf(1.0 / iterations.max(1) as f64);
        let mut temp = t0;

        for _ in 0..iterations {
            let q = rng.gen_range(0..n);
            let old_loc = placement[q];
            enum MoveKind {
                Swap(usize),
                Jump(Loc),
            }
            let kind = if rng.gen_bool(0.5) {
                let mut other = rng.gen_range(0..n);
                if other == q {
                    other = (other + 1) % n;
                }
                MoveKind::Swap(other)
            } else {
                let target = pool[rng.gen_range(0..pool.len())];
                if occupied.contains(&target) {
                    temp *= alpha;
                    continue;
                }
                MoveKind::Jump(target)
            };

            let before = placement.clone();
            let moved: Vec<usize> = match kind {
                MoveKind::Swap(other) => {
                    placement.swap(q, other);
                    vec![q, other]
                }
                MoveKind::Jump(target) => {
                    placement[q] = target;
                    vec![q]
                }
            };
            let delta = affected_delta(&before, &placement, &moved);
            if delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp() {
                match kind {
                    MoveKind::Jump(target) => {
                        occupied.remove(&old_loc);
                        occupied.insert(target);
                    }
                    MoveKind::Swap(_) => {}
                }
                cost += delta;
                commits += 1;
                if commits >= IncrementalCost::RESUM_INTERVAL {
                    cost = initial_placement_cost(arch, &placement, &gates);
                    commits = 0;
                }
                if cost < best_cost {
                    best_cost = cost;
                    best = placement.clone();
                }
            } else {
                placement = before;
            }
            temp *= alpha;
        }

        Ok(best)
    }

    #[test]
    fn trivial_fills_nearest_row_first() {
        let arch = arch();
        let p = trivial_initial_placement(&arch, 14).unwrap();
        assert_distinct(&p);
        // Reference architecture: entanglement zone is above, so row 99 first.
        assert_eq!(p[0], Loc::Storage { zone: 0, row: 99, col: 0 });
        assert_eq!(p[13], Loc::Storage { zone: 0, row: 99, col: 13 });
    }

    #[test]
    fn trivial_wraps_to_next_row() {
        let arch = arch();
        let p = trivial_initial_placement(&arch, 102).unwrap();
        assert_distinct(&p);
        assert_eq!(p[100], Loc::Storage { zone: 0, row: 98, col: 0 });
    }

    #[test]
    fn storage_full_detected() {
        let arch = Architecture::arch1_small(); // 120 traps
        let err = trivial_initial_placement(&arch, 121).unwrap_err();
        assert!(matches!(err, PlaceError::StorageFull { .. }));
    }

    #[test]
    fn sa_never_worse_than_trivial() {
        let arch = arch();
        let staged = preprocess(&bench_circuits::qft(10));
        let gates: Vec<(usize, Gate2)> = staged.gates_with_stage().map(|(t, g)| (t, *g)).collect();
        let trivial = trivial_initial_placement(&arch, staged.num_qubits).unwrap();
        let sa = sa_initial_placement(&arch, &staged, 1000, 7).unwrap();
        assert_distinct(&sa);
        let c_trivial = initial_placement_cost(&arch, &trivial, &gates);
        let c_sa = initial_placement_cost(&arch, &sa, &gates);
        assert!(c_sa <= c_trivial + 1e-9, "SA {c_sa} worse than trivial {c_trivial}");
    }

    #[test]
    fn sa_is_deterministic_for_fixed_seed() {
        let arch = arch();
        let staged = preprocess(&bench_circuits::ghz(12));
        let a = sa_initial_placement(&arch, &staged, 300, 42).unwrap();
        let b = sa_initial_placement(&arch, &staged, 300, 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sa_keeps_qubits_in_storage() {
        let arch = arch();
        let staged = preprocess(&bench_circuits::ising(12));
        let p = sa_initial_placement(&arch, &staged, 500, 1).unwrap();
        assert!(p.iter().all(Loc::is_storage));
        assert_distinct(&p);
    }

    #[test]
    fn arch2_proximity_order_prefers_edge_rows() {
        // Arch2 has entanglement zones above and below storage: the outer
        // storage rows are closest.
        let arch = Architecture::arch2_two_zones();
        let traps = storage_traps_by_proximity(&arch);
        let first_row = match traps[0] {
            Loc::Storage { row, .. } => row,
            _ => unreachable!(),
        };
        assert!(first_row == 0 || first_row == 2, "outer row first, got {first_row}");
    }

    /// The headline regression: the incremental SA reproduces the
    /// full-recompute reference bit-for-bit across the entire paper suite
    /// for multiple seeds (identical trap sequences, not just equal costs).
    #[test]
    fn sa_bit_identical_to_full_recompute_reference_across_suite() {
        let arch = arch();
        for entry in bench_circuits::paper_suite() {
            let staged = preprocess(&entry.circuit);
            for seed in [0x5AC, 7] {
                let fast = sa_initial_placement(&arch, &staged, 400, seed).unwrap();
                let slow = sa_reference(&arch, &staged, 400, seed).unwrap();
                assert_eq!(fast, slow, "{} seed {seed}", staged.name);
            }
        }
    }

    /// Regression for the engine-aware cache key: configurations differing
    /// only in the placement engine must occupy distinct cache slots (a
    /// shared slot would let one engine's artifacts leak into the other's
    /// compilations if an engine ever shapes the initial placement).
    #[test]
    fn cache_never_shares_a_slot_across_engines() {
        use crate::{PlacementConfig, PlacementEngine, WindowedPlacer};
        let arch = arch();
        let staged = preprocess(&bench_circuits::ghz(8));
        let cache = InitialPlacementCache::new();
        let mut cfg = PlacementConfig {
            sa_iterations: 100,
            engine: PlacementEngine::Exhaustive,
            ..PlacementConfig::default()
        };
        let exhaustive = cache.get_or_compute(&arch, &staged, &cfg).unwrap();
        cfg.engine = PlacementEngine::windowed();
        let windowed = cache.get_or_compute(&arch, &staged, &cfg).unwrap();
        assert_eq!(cache.len(), 2, "two engines must never share a cache slot");
        // The windowed engine caps and early-stops its anneal, so the cached
        // values themselves diverge — exactly why a shared slot would be
        // unsound.
        assert_ne!(exhaustive, windowed, "engines anneal differently; a shared slot would leak");
        // Same engine, different window parameters: a third slot.
        cfg.engine = PlacementEngine::Windowed(WindowedPlacer {
            window_min_width: 4,
            ..WindowedPlacer::default()
        });
        cache.get_or_compute(&arch, &staged, &cfg).unwrap();
        assert_eq!(cache.len(), 3, "window parameters are part of the key");
    }

    /// Same check on a multi-zone architecture (different geometry paths).
    #[test]
    fn sa_bit_identical_on_two_zone_architecture() {
        let arch = Architecture::arch2_two_zones();
        let staged = preprocess(&bench_circuits::ising(20));
        for seed in [1u64, 99] {
            assert_eq!(
                sa_initial_placement(&arch, &staged, 500, seed).unwrap(),
                sa_reference(&arch, &staged, 500, seed).unwrap(),
                "seed {seed}"
            );
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// Random gate list over `n` qubits with random stage indices.
        fn arb_gates(n: usize) -> impl Strategy<Value = Vec<(usize, Gate2)>> {
            proptest::collection::vec((0usize..6, 0..n, 0..n), 1..14).prop_map(|raw| {
                raw.into_iter()
                    .enumerate()
                    .filter(|(_, (_, a, b))| a != b)
                    .map(|(id, (stage, a, b))| (stage, Gate2 { id, a, b }))
                    .collect()
            })
        }

        proptest! {
            /// After every accepted move, the incremental evaluator's total
            /// equals a full `initial_placement_cost` recompute (up to the
            /// bounded accumulation tolerance).
            #[test]
            fn incremental_delta_matches_full_recompute(
                gates in arb_gates(8),
                moves in proptest::collection::vec((0usize..8, 0usize..40, any::<bool>()), 1..40),
            ) {
                let arch = Architecture::arch1_small();
                let geom = GeomCache::new(&arch);
                let traps = storage_traps_by_proximity(&arch);
                let mut placement = trivial_from_traps(&traps, 8).unwrap();
                let mut inc = IncrementalCost::new(&geom, &gates, 8, &placement);

                for (q, trap_idx, accept) in moves {
                    let target = traps[trap_idx];
                    let old = placement[q];
                    if placement.contains(&target) {
                        // Occupied: model a swap with its occupant instead.
                        let other = placement.iter().position(|&l| l == target).unwrap();
                        if other == q {
                            continue;
                        }
                        placement.swap(q, other);
                        let delta = inc.propose(&placement, &[q, other]);
                        if accept {
                            inc.commit(delta);
                        } else {
                            inc.reject();
                            placement.swap(q, other);
                        }
                    } else {
                        placement[q] = target;
                        let delta = inc.propose(&placement, &[q]);
                        if accept {
                            inc.commit(delta);
                        } else {
                            inc.reject();
                            placement[q] = old;
                        }
                    }
                    let full = initial_placement_cost(&geom, &placement, &gates);
                    prop_assert!(
                        (inc.total() - full).abs() <= 1e-6 * full.abs().max(1.0),
                        "incremental {} vs full {full}",
                        inc.total()
                    );
                }
            }
        }
    }
}
