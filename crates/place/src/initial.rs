//! Initial qubit placement: trivial row-filling and simulated annealing
//! (paper Sec. V-A).

use crate::cost::initial_placement_cost;
use crate::PlaceError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zac_arch::{Architecture, Loc};
use zac_circuit::{Gate2, StagedCircuit};

/// All storage traps ordered by proximity to the entanglement zones: rows
/// closest to a zone first, then columns left to right. This is the fill
/// order the paper's trivial ("Vanilla") placement uses.
pub fn storage_traps_by_proximity(arch: &Architecture) -> Vec<Loc> {
    let mut traps: Vec<(f64, Loc)> = Vec::new();
    for (z, _zone) in arch.storage_zones().iter().enumerate() {
        let (rows, cols) = arch.storage_grid(z);
        for row in 0..rows {
            // Distance from this row to the nearest entanglement zone, taken
            // at the row's left edge (x plays no role row-to-row).
            let probe = arch.position(Loc::Storage { zone: z, row, col: 0 });
            let d = arch
                .entanglement_zones()
                .iter()
                .enumerate()
                .map(|(ez, _)| {
                    let (srows, _) = arch.site_grid(ez);
                    (0..srows)
                        .map(|r| {
                            arch.site_position(zac_arch::SiteId::new(ez, r, 0)).y.max(probe.y)
                                - arch.site_position(zac_arch::SiteId::new(ez, r, 0)).y.min(probe.y)
                        })
                        .fold(f64::INFINITY, f64::min)
                })
                .fold(f64::INFINITY, f64::min);
            for col in 0..cols {
                traps.push((d, Loc::Storage { zone: z, row, col }));
            }
        }
    }
    traps.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    traps.into_iter().map(|(_, l)| l).collect()
}

/// Trivial initial placement: qubits in index order filling the storage rows
/// nearest to the entanglement zone.
///
/// # Errors
///
/// [`PlaceError::StorageFull`] if the circuit has more qubits than storage
/// traps.
pub fn trivial_initial_placement(
    arch: &Architecture,
    num_qubits: usize,
) -> Result<Vec<Loc>, PlaceError> {
    let traps = storage_traps_by_proximity(arch);
    if num_qubits > traps.len() {
        return Err(PlaceError::StorageFull { qubits: num_qubits, traps: traps.len() });
    }
    Ok(traps.into_iter().take(num_qubits).collect())
}

/// Simulated-annealing initial placement (paper Sec. V-A).
///
/// Minimizes the weighted Eq. 2 cost with qubit-swap and move-to-empty-trap
/// neighborhood moves over `iterations` steps (the paper uses 1000), with a
/// geometric temperature schedule. Deterministic for a fixed `seed`.
///
/// # Errors
///
/// [`PlaceError::StorageFull`] if the circuit does not fit in storage.
pub fn sa_initial_placement(
    arch: &Architecture,
    staged: &StagedCircuit,
    iterations: usize,
    seed: u64,
) -> Result<Vec<Loc>, PlaceError> {
    let n = staged.num_qubits;
    let mut placement = trivial_initial_placement(arch, n)?;
    if n < 2 {
        return Ok(placement);
    }

    let gates: Vec<(usize, Gate2)> = staged.gates_with_stage().map(|(t, g)| (t, *g)).collect();
    if gates.is_empty() {
        return Ok(placement);
    }

    // Candidate empty traps: the nearest few rows beyond the occupied ones.
    let all_traps = storage_traps_by_proximity(arch);
    let pool_len = (n * 4).min(all_traps.len());
    let pool: Vec<Loc> = all_traps.into_iter().take(pool_len).collect();
    let mut occupied: std::collections::HashSet<Loc> = placement.iter().copied().collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut cost = initial_placement_cost(arch, &placement, &gates);
    let mut best = placement.clone();
    let mut best_cost = cost;

    let t0 = (cost / gates.len() as f64).max(1.0);
    let t_end = 1e-3;
    let alpha = (t_end / t0).powf(1.0 / iterations.max(1) as f64);
    let mut temp = t0;

    for _ in 0..iterations {
        let q = rng.gen_range(0..n);
        let old_loc = placement[q];
        enum MoveKind {
            Swap(usize),
            Jump(Loc),
        }
        let kind = if rng.gen_bool(0.5) {
            let mut other = rng.gen_range(0..n);
            if other == q {
                other = (other + 1) % n;
            }
            MoveKind::Swap(other)
        } else {
            let target = pool[rng.gen_range(0..pool.len())];
            if occupied.contains(&target) {
                temp *= alpha;
                continue;
            }
            MoveKind::Jump(target)
        };

        match kind {
            MoveKind::Swap(other) => {
                placement.swap(q, other);
            }
            MoveKind::Jump(target) => {
                placement[q] = target;
            }
        }
        let new_cost = initial_placement_cost(arch, &placement, &gates);
        let delta = new_cost - cost;
        if delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp() {
            // Accept.
            match kind {
                MoveKind::Jump(target) => {
                    occupied.remove(&old_loc);
                    occupied.insert(target);
                }
                MoveKind::Swap(_) => {}
            }
            cost = new_cost;
            if cost < best_cost {
                best_cost = cost;
                best = placement.clone();
            }
        } else {
            // Revert.
            match kind {
                MoveKind::Swap(other) => {
                    placement.swap(q, other);
                }
                MoveKind::Jump(_) => {
                    placement[q] = old_loc;
                }
            }
        }
        temp *= alpha;
    }

    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zac_circuit::{bench_circuits, preprocess};

    fn arch() -> Architecture {
        Architecture::reference()
    }

    fn assert_distinct(placement: &[Loc]) {
        let set: std::collections::HashSet<_> = placement.iter().collect();
        assert_eq!(set.len(), placement.len(), "duplicate traps in placement");
    }

    #[test]
    fn trivial_fills_nearest_row_first() {
        let arch = arch();
        let p = trivial_initial_placement(&arch, 14).unwrap();
        assert_distinct(&p);
        // Reference architecture: entanglement zone is above, so row 99 first.
        assert_eq!(p[0], Loc::Storage { zone: 0, row: 99, col: 0 });
        assert_eq!(p[13], Loc::Storage { zone: 0, row: 99, col: 13 });
    }

    #[test]
    fn trivial_wraps_to_next_row() {
        let arch = arch();
        let p = trivial_initial_placement(&arch, 102).unwrap();
        assert_distinct(&p);
        assert_eq!(p[100], Loc::Storage { zone: 0, row: 98, col: 0 });
    }

    #[test]
    fn storage_full_detected() {
        let arch = Architecture::arch1_small(); // 120 traps
        let err = trivial_initial_placement(&arch, 121).unwrap_err();
        assert!(matches!(err, PlaceError::StorageFull { .. }));
    }

    #[test]
    fn sa_never_worse_than_trivial() {
        let arch = arch();
        let staged = preprocess(&bench_circuits::qft(10));
        let gates: Vec<(usize, Gate2)> = staged.gates_with_stage().map(|(t, g)| (t, *g)).collect();
        let trivial = trivial_initial_placement(&arch, staged.num_qubits).unwrap();
        let sa = sa_initial_placement(&arch, &staged, 1000, 7).unwrap();
        assert_distinct(&sa);
        let c_trivial = initial_placement_cost(&arch, &trivial, &gates);
        let c_sa = initial_placement_cost(&arch, &sa, &gates);
        assert!(c_sa <= c_trivial + 1e-9, "SA {c_sa} worse than trivial {c_trivial}");
    }

    #[test]
    fn sa_is_deterministic_for_fixed_seed() {
        let arch = arch();
        let staged = preprocess(&bench_circuits::ghz(12));
        let a = sa_initial_placement(&arch, &staged, 300, 42).unwrap();
        let b = sa_initial_placement(&arch, &staged, 300, 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sa_keeps_qubits_in_storage() {
        let arch = arch();
        let staged = preprocess(&bench_circuits::ising(12));
        let p = sa_initial_placement(&arch, &staged, 500, 1).unwrap();
        assert!(p.iter().all(Loc::is_storage));
        assert_distinct(&p);
    }

    #[test]
    fn arch2_proximity_order_prefers_edge_rows() {
        // Arch2 has entanglement zones above and below storage: the outer
        // storage rows are closest.
        let arch = Architecture::arch2_two_zones();
        let traps = storage_traps_by_proximity(&arch);
        let first_row = match traps[0] {
            Loc::Storage { row, .. } => row,
            _ => unreachable!(),
        };
        assert!(first_row == 0 || first_row == 2, "outer row first, got {first_row}");
    }
}
