//! Movement-cost model for placement (paper Eq. 1–2).
//!
//! The cost of performing gate `g(q, q′)` at Rydberg site ω approximates the
//! rearrangement duration: movement time scales with √distance, and two
//! pickups from the *same SLM row* ride one AOD row and move in parallel
//! (cost = max), while pickups from different rows must be sequential
//! (cost = sum) because AOD rows cannot stack on one drop-off row.

use zac_arch::{Geometry, Loc, Point, SiteId};
use zac_circuit::Gate2;

/// Vertical-coordinate tolerance for "same SLM row".
const ROW_EPS: f64 = 1e-6;

/// Movement cost `√d(ω, m_q)` of bringing a qubit at `from` to site `site`.
///
/// Generic over [`Geometry`]: pass the [`zac_arch::Architecture`] directly,
/// or a [`zac_arch::GeomCache`] on hot paths (bit-identical results).
pub fn qubit_to_site_cost<G: Geometry + ?Sized>(arch: &G, from: Point, site: SiteId) -> f64 {
    arch.site_position(site).distance(from).sqrt()
}

/// Eq. 1: the cost of gate `g` executing at `site` given qubit positions.
///
/// If the two qubits sit in the same row (equal y), the movements bundle
/// into one rearrangement job: cost is the max of the two √distances;
/// otherwise they are sequential: cost is the sum.
///
/// # Example
///
/// ```
/// use zac_arch::{Architecture, Point, SiteId};
/// use zac_place::cost::gate_cost;
///
/// let arch = Architecture::reference();
/// // Two qubits in the same storage row: their movements bundle into one
/// // AOD row, so the gate cost is the *max* of the two √distances (Eq. 1).
/// let (a, b) = (Point::new(13.0, 297.0), Point::new(1.0, 297.0));
/// let w = arch.site_position(SiteId::new(0, 0, 0));
/// let c = gate_cost(&arch, a, b, SiteId::new(0, 0, 0));
/// let expect = w.distance(a).sqrt().max(w.distance(b).sqrt());
/// assert!((c - expect).abs() < 1e-9, "same row → max of the two costs");
/// ```
pub fn gate_cost<G: Geometry + ?Sized>(arch: &G, q_pos: Point, q2_pos: Point, site: SiteId) -> f64 {
    let c1 = qubit_to_site_cost(arch, q_pos, site);
    let c2 = qubit_to_site_cost(arch, q2_pos, site);
    if (q_pos.y - q2_pos.y).abs() < ROW_EPS {
        c1.max(c2)
    } else {
        c1 + c2
    }
}

/// The gate's *nearest site* ω_near (paper Sec. V-A): find each target
/// qubit's nearest Rydberg site, then take the middle site
/// (⌊(r+r′)/2⌋, ⌊(c+c′)/2⌋) within the first qubit's zone.
pub fn nearest_gate_site<G: Geometry + ?Sized>(arch: &G, q_pos: Point, q2_pos: Point) -> SiteId {
    let s1 = arch.nearest_site(q_pos);
    let s2 = arch.nearest_site(q2_pos);
    arch.middle_site(s1, s2)
}

/// Stage-decay weight `w_g = max(0.1, 1 − 0.1·(t−1))` for a gate scheduled
/// at Rydberg stage `t` (1-based in the paper; pass the 0-based index).
pub fn stage_weight(stage_index: usize) -> f64 {
    (1.0 - 0.1 * stage_index as f64).max(0.1)
}

/// Eq. 2: the total weighted cost of an initial placement.
///
/// `placement[q]` is each qubit's storage trap; `gates` pairs each CZ with
/// its 0-based stage index.
pub fn initial_placement_cost<G: Geometry + ?Sized>(
    arch: &G,
    placement: &[Loc],
    gates: &[(usize, Gate2)],
) -> f64 {
    gates.iter().map(|&(stage, g)| gate_term(arch, placement, stage, g)).sum()
}

/// One gate's weighted Eq. 2 contribution — the unit the incremental SA
/// evaluator caches per gate (summing these in gate order reproduces
/// [`initial_placement_cost`] exactly).
#[inline]
pub(crate) fn gate_term<G: Geometry + ?Sized>(
    arch: &G,
    placement: &[Loc],
    stage: usize,
    g: Gate2,
) -> f64 {
    let pa = arch.position(placement[g.a]);
    let pb = arch.position(placement[g.b]);
    let site = nearest_gate_site(arch, pa, pb);
    stage_weight(stage) * gate_cost(arch, pa, pb, site)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zac_arch::Architecture;

    fn arch() -> Architecture {
        Architecture::reference()
    }

    #[test]
    fn same_row_uses_max() {
        let arch = arch();
        let a = Point::new(3.0, 297.0);
        let b = Point::new(30.0, 297.0);
        let s = SiteId::new(0, 0, 0);
        let c = gate_cost(&arch, a, b, s);
        let ca = qubit_to_site_cost(&arch, a, s);
        let cb = qubit_to_site_cost(&arch, b, s);
        assert!((c - ca.max(cb)).abs() < 1e-12);
        assert!(c < ca + cb);
    }

    #[test]
    fn different_rows_use_sum() {
        let arch = arch();
        let a = Point::new(3.0, 297.0);
        let b = Point::new(3.0, 294.0);
        let s = SiteId::new(0, 0, 0);
        let c = gate_cost(&arch, a, b, s);
        let ca = qubit_to_site_cost(&arch, a, s);
        let cb = qubit_to_site_cost(&arch, b, s);
        assert!((c - (ca + cb)).abs() < 1e-12);
    }

    #[test]
    fn paper_example_distances() {
        // Sec. V-A: d(ω00, s3,4) = 16.40, d(ω00, s3,0) = 10.05 in the toy
        // frame; cost = max(√16.40, √10.05) = 4.05.
        let w = Point::new(0.0, 19.0);
        let q0 = Point::new(13.0, 9.0);
        let q1 = Point::new(1.0, 9.0);
        let d0 = w.distance(q0);
        let d1 = w.distance(q1);
        assert!((d0 - 16.401).abs() < 1e-2);
        assert!((d1 - 10.049).abs() < 1e-2);
        let cost = d0.sqrt().max(d1.sqrt());
        assert!((cost - 4.05).abs() < 1e-2);
    }

    #[test]
    fn stage_weights_decay_and_floor() {
        assert_eq!(stage_weight(0), 1.0);
        assert!((stage_weight(1) - 0.9).abs() < 1e-12);
        assert!((stage_weight(5) - 0.5).abs() < 1e-12);
        assert_eq!(stage_weight(20), 0.1);
        assert_eq!(stage_weight(100), 0.1);
    }

    #[test]
    fn nearest_gate_site_is_middle() {
        let arch = arch();
        // Two qubits below columns 0 and 4 of the site grid.
        let a = Point::new(35.0, 297.0);
        let b = Point::new(35.0 + 4.0 * 12.0, 297.0);
        let s = nearest_gate_site(&arch, a, b);
        assert_eq!(s, SiteId::new(0, 0, 2));
    }

    #[test]
    fn initial_cost_prefers_front_row() {
        let arch = arch();
        let near = vec![
            Loc::Storage { zone: 0, row: 99, col: 10 },
            Loc::Storage { zone: 0, row: 99, col: 11 },
        ];
        let far = vec![
            Loc::Storage { zone: 0, row: 0, col: 10 },
            Loc::Storage { zone: 0, row: 0, col: 11 },
        ];
        let gates = vec![(0usize, Gate2 { id: 0, a: 0, b: 1 })];
        let c_near = initial_placement_cost(&arch, &near, &gates);
        let c_far = initial_placement_cost(&arch, &far, &gates);
        assert!(c_near < c_far);
    }

    /// The memoized geometry path produces bit-identical Eq. 2 costs to the
    /// direct `Architecture` path (the SA hot loop relies on this).
    #[test]
    fn memo_cost_bit_identical_to_architecture_cost() {
        use zac_arch::GeomCache;
        let arch = arch();
        let geom = GeomCache::new(&arch);
        let placement: Vec<Loc> =
            (0..8).map(|q| Loc::Storage { zone: 0, row: 99 - (q % 3), col: 4 * q }).collect();
        let gates: Vec<(usize, Gate2)> =
            (0..7).map(|i| (i % 4, Gate2 { id: i, a: i, b: (i + 3) % 8 })).collect();
        let via_arch = initial_placement_cost(&arch, &placement, &gates);
        let via_memo = initial_placement_cost(&geom, &placement, &gates);
        assert_eq!(via_arch.to_bits(), via_memo.to_bits());
    }

    #[test]
    fn later_stages_weigh_less() {
        let arch = arch();
        let placement = vec![
            Loc::Storage { zone: 0, row: 99, col: 10 },
            Loc::Storage { zone: 0, row: 99, col: 11 },
        ];
        let early = vec![(0usize, Gate2 { id: 0, a: 0, b: 1 })];
        let late = vec![(5usize, Gate2 { id: 0, a: 0, b: 1 })];
        let ce = initial_placement_cost(&arch, &placement, &early);
        let cl = initial_placement_cost(&arch, &placement, &late);
        assert!((cl / ce - 0.5).abs() < 1e-9);
    }
}
