//! Reuse-aware dynamic placement (paper Sec. V-B).
//!
//! For each Rydberg stage the planner:
//!
//! 1. identifies **qubit reuse** between consecutive stages with a maximum
//!    bipartite matching (Hopcroft–Karp) over gates sharing a qubit —
//!    matched gates stay pinned at their predecessor's Rydberg site;
//! 2. places the remaining gates with a **minimum-weight full matching**
//!    (Jonker–Volgenant) from gates to candidate sites around each gate's
//!    nearest site `ω_near`, with a lookahead term pulling the site toward
//!    next-stage partners;
//! 3. returns idle qubits to the storage zone with a second min-weight
//!    matching over candidate traps (original home, neighbors of the nearest
//!    trap, nearest trap to the *related* next-stage partner — Eq. 3);
//! 4. builds both a reuse and a no-reuse solution and **commits the cheaper**
//!    (paper Sec. V-B: "we commit to the better solution between the two").

use crate::cost::{gate_cost, nearest_gate_site, qubit_to_site_cost};
use crate::initial::InitialPlacementCache;
use crate::{PlaceError, PlacementConfig};
use std::collections::{HashMap, HashSet};
use zac_arch::{
    Architecture, GeomCache, Geometry, Loc, Point, SiteId, TrapIndex, TrapMap, TrapSet,
};
use zac_circuit::{Gate2, StagedCircuit};
use zac_graph::{max_bipartite_matching, AssignmentError, AssignmentWorkspace, CostMatrix};

/// Placement decisions for one Rydberg stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StagePlan {
    /// Each gate of the stage with the Rydberg site it executes at.
    pub gate_sites: Vec<(Gate2, SiteId)>,
    /// Without reuse, every entanglement-zone resident first returns to
    /// storage (the paper's non-reuse round trip); this intermediate
    /// all-in-storage snapshot precedes the stage's fetches.
    pub pre_returns: Option<Vec<Loc>>,
    /// Location of every qubit *during* the stage's exposure.
    pub during: Vec<Loc>,
    /// Whether this stage committed the reuse solution.
    pub used_reuse: bool,
    /// Number of qubits that stayed at their site (reused in place).
    pub reused_qubits: usize,
}

/// The full placement plan: initial placement plus one [`StagePlan`] per
/// Rydberg stage. Consecutive `during` snapshots define the rearrangement
/// the scheduler must realize.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementPlan {
    /// Initial storage placement (the `init` ZAIR instruction).
    pub initial: Vec<Loc>,
    /// Per-stage placements.
    pub stages: Vec<StagePlan>,
}

impl PlacementPlan {
    /// Total count of in-place qubit reuses across all stages.
    pub fn total_reused_qubits(&self) -> usize {
        self.stages.iter().map(|s| s.reused_qubits).sum()
    }

    /// Checks the plan's invariants against the architecture and circuit.
    ///
    /// # Errors
    ///
    /// [`PlaceError::Invalid`] describing the first violation: duplicate
    /// traps, a gate's qubits not co-located at its site, or an idle qubit
    /// left inside an entanglement zone during an exposure.
    pub fn validate(&self, arch: &Architecture, staged: &StagedCircuit) -> Result<(), PlaceError> {
        let check_distinct = |p: &[Loc], what: &str| -> Result<(), PlaceError> {
            let set: HashSet<&Loc> = p.iter().collect();
            if set.len() != p.len() {
                return Err(PlaceError::Invalid(format!("duplicate trap in {what}")));
            }
            for &loc in p {
                arch.check_loc(loc).map_err(|e| PlaceError::Invalid(format!("{what}: {e}")))?;
            }
            Ok(())
        };
        check_distinct(&self.initial, "initial placement")?;
        if !self.initial.iter().all(Loc::is_storage) {
            return Err(PlaceError::Invalid("initial placement not in storage".into()));
        }
        if self.stages.len() != staged.stages.len() {
            return Err(PlaceError::Invalid("stage count mismatch".into()));
        }
        for (t, plan) in self.stages.iter().enumerate() {
            if let Some(pre) = &plan.pre_returns {
                check_distinct(pre, &format!("stage {t} pre-returns"))?;
                if !pre.iter().all(Loc::is_storage) {
                    return Err(PlaceError::Invalid(format!(
                        "stage {t}: pre-return snapshot leaves a qubit in the zone"
                    )));
                }
            }
            check_distinct(&plan.during, &format!("stage {t}"))?;
            let mut gate_qubits = HashSet::new();
            for (g, site) in &plan.gate_sites {
                for q in [g.a, g.b] {
                    gate_qubits.insert(q);
                    match plan.during[q] {
                        Loc::Site { zone, row, col, .. }
                            if SiteId::new(zone, row, col) == *site => {}
                        other => {
                            return Err(PlaceError::Invalid(format!(
                                "stage {t}: qubit {q} of gate {} at {other}, expected site {site}",
                                g.id
                            )))
                        }
                    }
                }
            }
            for (q, loc) in plan.during.iter().enumerate() {
                if loc.is_site() && !gate_qubits.contains(&q) {
                    return Err(PlaceError::Invalid(format!(
                        "stage {t}: idle qubit {q} left in entanglement zone"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// One candidate solution for a stage, before committing.
struct StageSolution {
    gate_sites: Vec<(Gate2, SiteId)>,
    pre_returns: Option<Vec<Loc>>,
    during: Vec<Loc>,
    transition_cost: f64,
    reused_qubits: usize,
}

/// Scratch state reused across every `solve_stage` call of one compilation:
/// the geometry memo tables plus the assignment solver's workspace and cost
/// matrix. Steady-state stage solves are allocation-free in the solver
/// (the buffers grow to the largest stage seen, then stay).
struct StageWorkspace {
    geom: GeomCache,
    assign: AssignmentWorkspace,
    cost: CostMatrix,
    traps: TrapScratch,
}

impl StageWorkspace {
    fn new(arch: &Architecture) -> Self {
        Self {
            geom: GeomCache::new(arch),
            assign: AssignmentWorkspace::new(),
            cost: CostMatrix::new(0, 0, 0.0),
            traps: TrapScratch::new(arch),
        }
    }
}

/// Per-call scratch of the Eq. 3 return matching, built on the shared
/// generation-stamped trap tables in [`zac_arch::trap`] (lifted out of this
/// module in the scheduler-core refactor so `zac-schedule`'s emission loop
/// uses the same implementation): one array load per candidate-trap probe
/// instead of three hashes, and `next_generation` clears all tables in O(1).
struct TrapScratch {
    /// Dense `Loc → flat` indexer (shared layout with the scheduler).
    index: TrapIndex,
    /// Traps occupied by a non-returning storage resident this generation.
    occupied: TrapSet,
    /// Traps reserved (a stayer's or returner's home) this generation.
    reserved: TrapSet,
    /// Candidate-column dedup: trap → assigned dense column.
    col_index: TrapMap<usize>,
    /// Per-qubit candidate buffer (reused across qubits and calls).
    cands: Vec<Loc>,
}

impl TrapScratch {
    fn new(arch: &Architecture) -> Self {
        let index = TrapIndex::new(arch);
        let n = index.len();
        Self {
            index,
            occupied: TrapSet::new(n),
            reserved: TrapSet::new(n),
            col_index: TrapMap::new(n),
            cands: Vec::new(),
        }
    }

    /// Starts a fresh generation (constant-time clear of all tables).
    fn next_generation(&mut self) {
        self.occupied.clear();
        self.reserved.clear();
        self.col_index.clear();
    }
}

/// Plans placement for the whole circuit.
///
/// # Errors
///
/// * [`PlaceError::StorageFull`] if the qubits don't fit in storage.
/// * [`PlaceError::TooManyGates`] if a stage has more gates than sites.
pub fn plan_placement(
    arch: &Architecture,
    staged: &StagedCircuit,
    cfg: &PlacementConfig,
) -> Result<PlacementPlan, PlaceError> {
    plan_placement_cached(arch, staged, cfg, None)
}

/// [`plan_placement`] with an optional [`InitialPlacementCache`]: the SA
/// initial placement — which depends only on the zone geometry and the
/// circuit, never on AOD count — is computed once per (geometry, circuit,
/// SA-config) key and shared across callers (e.g. the fig14 multi-AOD sweep
/// arms). Results are bit-identical with and without the cache.
///
/// # Errors
///
/// Same as [`plan_placement`].
pub fn plan_placement_cached(
    arch: &Architecture,
    staged: &StagedCircuit,
    cfg: &PlacementConfig,
    cache: Option<&InitialPlacementCache>,
) -> Result<PlacementPlan, PlaceError> {
    let initial = if cfg.use_sa {
        match cache {
            Some(cache) => cache.get_or_compute(arch, staged, cfg)?,
            None => {
                crate::initial::sa_initial_placement(arch, staged, cfg.sa_iterations, cfg.seed)?
            }
        }
    } else {
        crate::initial::trivial_initial_placement(arch, staged.num_qubits)?
    };

    let mut ws = StageWorkspace::new(arch);
    let mut current = initial.clone();
    let mut home = initial.clone();
    let mut prev_gates: Vec<(Gate2, SiteId)> = Vec::new();
    let mut plans = Vec::with_capacity(staged.stages.len());

    for (t, stage) in staged.stages.iter().enumerate() {
        let next_gates = staged.stages.get(t + 1).map(|s| s.gates.as_slice());
        let plain = solve_stage(
            arch,
            &mut ws,
            &current,
            &home,
            &prev_gates,
            &stage.gates,
            next_gates,
            cfg,
            false,
        )?;
        let (solution, used_reuse) = if cfg.reuse && !prev_gates.is_empty() {
            let reuse = solve_stage(
                arch,
                &mut ws,
                &current,
                &home,
                &prev_gates,
                &stage.gates,
                next_gates,
                cfg,
                true,
            )?;
            if reuse.transition_cost <= plain.transition_cost {
                (reuse, true)
            } else {
                (plain, false)
            }
        } else {
            (plain, false)
        };

        if let Some(pre) = &solution.pre_returns {
            for (q, loc) in pre.iter().enumerate() {
                if loc.is_storage() {
                    home[q] = *loc;
                }
            }
        }
        for (q, loc) in solution.during.iter().enumerate() {
            if loc.is_storage() {
                home[q] = *loc;
            }
        }
        current = solution.during.clone();
        prev_gates = solution.gate_sites.clone();
        plans.push(StagePlan {
            gate_sites: solution.gate_sites,
            pre_returns: solution.pre_returns,
            during: solution.during,
            used_reuse,
            reused_qubits: solution.reused_qubits,
        });
    }

    let plan = PlacementPlan { initial, stages: plans };
    debug_assert!(plan.validate(arch, staged).is_ok());
    Ok(plan)
}

/// All sites within Chebyshev radius `delta` of the per-zone projection of
/// point `p` (the δ-expanded neighborhood Ω_near of the paper).
fn neighborhood_sites(arch: &Architecture, center: SiteId, delta: usize) -> Vec<SiteId> {
    let mut out = Vec::new();
    for z in 0..arch.entanglement_zones().len() {
        let (rows, cols) = arch.site_grid(z);
        if z == center.zone {
            let r0 = center.row.saturating_sub(delta);
            let r1 = (center.row + delta).min(rows - 1);
            let c0 = center.col.saturating_sub(delta);
            let c1 = (center.col + delta).min(cols - 1);
            for r in r0..=r1 {
                for c in c0..=c1 {
                    out.push(SiteId::new(z, r, c));
                }
            }
        } else if delta > 0 {
            // Other zones join the candidate pool once expansion starts, so
            // multi-zone architectures can spill over.
            let scaled = delta.min(rows.max(cols));
            for r in 0..rows.min(scaled * 2) {
                for c in 0..cols.min(scaled * 2) {
                    out.push(SiteId::new(z, r, c));
                }
            }
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn solve_stage(
    arch: &Architecture,
    ws: &mut StageWorkspace,
    current: &[Loc],
    home: &[Loc],
    prev_gates: &[(Gate2, SiteId)],
    gates: &[Gate2],
    next_gates: Option<&[Gate2]>,
    cfg: &PlacementConfig,
    use_reuse: bool,
) -> Result<StageSolution, PlaceError> {
    // Split borrows: the memo tables are read-only while the solver scratch
    // is mutated.
    let StageWorkspace { geom, assign: assign_ws, cost: cost_buf, traps: trap_scratch } = ws;
    let n = current.len();

    // Related qubit in the next stage (for lookahead and Eq. 3).
    let related: HashMap<usize, usize> = next_gates
        .map(|ng| {
            let mut m = HashMap::new();
            for g in ng {
                m.insert(g.a, g.b);
                m.insert(g.b, g.a);
            }
            m
        })
        .unwrap_or_default();

    // Without reuse, the paper's pipeline returns *every* zone resident to
    // storage before placing this stage's gates (the non-reuse round trip).
    // The "related qubit" for these returns is the partner in THIS stage.
    let pre_returns: Option<Vec<Loc>> = if !use_reuse {
        let residents: Vec<usize> = (0..n).filter(|&q| current[q].is_site()).collect();
        if residents.is_empty() {
            None
        } else {
            let mut snapshot = current.to_vec();
            if cfg.dynamic {
                let this_stage_related: HashMap<usize, usize> = {
                    let mut m = HashMap::new();
                    for g in gates {
                        m.insert(g.a, g.b);
                        m.insert(g.b, g.a);
                    }
                    m
                };
                place_returns(
                    arch,
                    geom,
                    assign_ws,
                    cost_buf,
                    trap_scratch,
                    &mut snapshot,
                    current,
                    home,
                    &residents,
                    &this_stage_related,
                    cfg,
                )?;
            } else {
                for &q in &residents {
                    snapshot[q] = home[q];
                }
            }
            Some(snapshot)
        }
    } else {
        None
    };
    // All placement decisions below see the post-return configuration.
    let working: Vec<Loc> = pre_returns.clone().unwrap_or_else(|| current.to_vec());
    let geom = &*geom;
    let pos = |q: usize| -> Point { geom.position(working[q]) };

    // ---- 1. reuse matching --------------------------------------------
    // Dense per-gate tables (gate indices are 0..gates.len()): cheaper than
    // hash maps on this per-stage hot path.
    let mut pinned: Vec<Option<SiteId>> = vec![None; gates.len()];
    let mut reused_qubits_of: Vec<Vec<usize>> = vec![Vec::new(); gates.len()];
    if use_reuse && !prev_gates.is_empty() {
        let adj: Vec<Vec<usize>> = prev_gates
            .iter()
            .map(|(pg, _)| {
                gates
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.touches(pg.a) || g.touches(pg.b))
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        let matching = max_bipartite_matching(&adj, gates.len());
        for (pi, m) in matching.iter().enumerate() {
            if let Some(gi) = m {
                let (pg, site) = &prev_gates[pi];
                let g = &gates[*gi];
                let shared: Vec<usize> =
                    [g.a, g.b].into_iter().filter(|&q| pg.touches(q)).collect();
                if !shared.is_empty() {
                    pinned[*gi] = Some(*site);
                    reused_qubits_of[*gi] = shared;
                }
            }
        }
    }
    let reused_qubits: usize = reused_qubits_of.iter().map(Vec::len).sum();

    // ---- 2. gate placement for unpinned gates --------------------------
    let unpinned: Vec<usize> = (0..gates.len()).filter(|&i| pinned[i].is_none()).collect();
    let pinned_sites: HashSet<SiteId> = pinned.iter().filter_map(|s| *s).collect();
    let total_sites = arch.num_sites();
    if gates.len() > total_sites {
        return Err(PlaceError::TooManyGates { gates: gates.len(), sites: total_sites });
    }

    let mut assignment: Vec<Option<SiteId>> = pinned.clone();
    if !unpinned.is_empty() {
        let centers: Vec<SiteId> = unpinned
            .iter()
            .map(|&gi| {
                let g = &gates[gi];
                nearest_gate_site(geom, pos(g.a), pos(g.b))
            })
            .collect();
        let max_dim = arch
            .entanglement_zones()
            .iter()
            .enumerate()
            .map(|(z, _)| {
                let (r, c) = arch.site_grid(z);
                r.max(c)
            })
            .max()
            .unwrap_or(1);
        let mut delta = cfg.window_expansion.max(1);
        loop {
            // Collect the candidate-site union.
            let mut site_index: HashMap<SiteId, usize> = HashMap::new();
            let mut sites: Vec<SiteId> = Vec::new();
            let mut per_gate: Vec<Vec<usize>> = Vec::with_capacity(unpinned.len());
            for center in &centers {
                let cand = neighborhood_sites(arch, *center, delta);
                let mut cols = Vec::new();
                for s in cand {
                    if pinned_sites.contains(&s) {
                        continue;
                    }
                    let idx = *site_index.entry(s).or_insert_with(|| {
                        sites.push(s);
                        sites.len() - 1
                    });
                    cols.push(idx);
                }
                per_gate.push(cols);
            }
            if sites.len() >= unpinned.len() {
                cost_buf.reset(unpinned.len(), sites.len(), f64::INFINITY);
                for (row, &gi) in unpinned.iter().enumerate() {
                    let g = &gates[gi];
                    for &col in &per_gate[row] {
                        let site = sites[col];
                        let mut c = gate_cost(geom, pos(g.a), pos(g.b), site);
                        // Lookahead (Sec. V-B.2): if this gate is reused by
                        // g'(q, q'') next stage, add the cost of moving q''
                        // to this site.
                        for q in [g.a, g.b] {
                            if let Some(&q2) = related.get(&q) {
                                if !gates[gi].touches(q2) {
                                    c += qubit_to_site_cost(geom, pos(q2), site);
                                    break;
                                }
                            }
                        }
                        cost_buf.set(row, col, c);
                    }
                }
                match assign_ws.solve(cost_buf) {
                    Ok(_) => {
                        for (row, &gi) in unpinned.iter().enumerate() {
                            assignment[gi] = Some(sites[assign_ws.assignment()[row]]);
                        }
                        break;
                    }
                    Err(AssignmentError::Infeasible | AssignmentError::MoreRowsThanColumns) => {}
                    Err(e) => return Err(PlaceError::Invalid(format!("gate matching: {e}"))),
                }
            }
            if delta > max_dim * 2 {
                return Err(PlaceError::TooManyGates { gates: gates.len(), sites: total_sites });
            }
            delta *= 2;
        }
    }

    // ---- 3. build `during`: gate qubits to site slots ------------------
    let mut during = working.clone();
    for (gi, g) in gates.iter().enumerate() {
        let site = assignment[gi].expect("every gate assigned a site");
        let cap = arch.site_capacity(site.zone);
        // Reused qubits keep their slot.
        let mut taken: Vec<usize> = Vec::new();
        let reused_list = &reused_qubits_of[gi];
        let reused = (!reused_list.is_empty()).then_some(reused_list);
        for &q in [g.a, g.b].iter() {
            if let Some(list) = reused {
                if list.contains(&q) {
                    if let Loc::Site { slot, .. } = working[q] {
                        during[q] =
                            Loc::Site { zone: site.zone, row: site.row, col: site.col, slot };
                        taken.push(slot);
                        continue;
                    }
                }
            }
        }
        // Remaining qubits: order by current x for deterministic slots.
        let mut rest: Vec<usize> =
            [g.a, g.b].into_iter().filter(|&q| !reused.is_some_and(|l| l.contains(&q))).collect();
        rest.sort_by(|&x, &y| pos(x).x.total_cmp(&pos(y).x).then(x.cmp(&y)));
        let mut next_slot = 0usize;
        for q in rest {
            while taken.contains(&next_slot) {
                next_slot += 1;
            }
            if next_slot >= cap {
                return Err(PlaceError::Invalid(format!(
                    "site {site} slot overflow for gate {}",
                    g.id
                )));
            }
            during[q] =
                Loc::Site { zone: site.zone, row: site.row, col: site.col, slot: next_slot };
            taken.push(next_slot);
        }
    }

    // ---- 4. return idle zone qubits to storage --------------------------
    let mut is_gate_qubit = vec![false; n];
    for g in gates {
        is_gate_qubit[g.a] = true;
        is_gate_qubit[g.b] = true;
    }
    let returning: Vec<usize> =
        (0..n).filter(|&q| working[q].is_site() && !is_gate_qubit[q]).collect();

    if !returning.is_empty() {
        if cfg.dynamic {
            place_returns(
                arch,
                geom,
                assign_ws,
                cost_buf,
                trap_scratch,
                &mut during,
                &working,
                home,
                &returning,
                &related,
                cfg,
            )?;
        } else {
            for &q in &returning {
                during[q] = home[q];
            }
        }
    }

    // ---- 5. transition cost ---------------------------------------------
    let return_leg: f64 = (0..n)
        .filter(|&q| working[q] != current[q])
        .map(|q| geom.position(working[q]).distance(geom.position(current[q])).sqrt())
        .sum();
    let fetch_leg: f64 = (0..n)
        .filter(|&q| during[q] != working[q])
        .map(|q| geom.position(during[q]).distance(geom.position(working[q])).sqrt())
        .sum();
    let transition_cost = return_leg + fetch_leg;

    let gate_sites: Vec<(Gate2, SiteId)> = gates
        .iter()
        .enumerate()
        .map(|(gi, g)| (*g, assignment[gi].expect("every gate assigned a site")))
        .collect();

    Ok(StageSolution { gate_sites, pre_returns, during, transition_cost, reused_qubits })
}

/// Eq. 3: assign returning qubits to candidate storage traps by min-weight
/// full matching (solved in the shared workspace, allocation-free in steady
/// state).
#[allow(clippy::too_many_arguments)]
fn place_returns(
    arch: &Architecture,
    geom: &GeomCache,
    assign_ws: &mut AssignmentWorkspace,
    cost_buf: &mut CostMatrix,
    scratch: &mut TrapScratch,
    during: &mut [Loc],
    current: &[Loc],
    home: &[Loc],
    returning: &[usize],
    related: &HashMap<usize, usize>,
    cfg: &PlacementConfig,
) -> Result<(), PlaceError> {
    let n = during.len();
    scratch.next_generation();
    let mut is_returning = vec![false; n];
    for &q in returning {
        is_returning[q] = true;
    }
    // Storage occupancy after gate fetches: qubits whose `during` is storage.
    for q in 0..n {
        if !is_returning[q] && during[q].is_storage() {
            let idx = scratch.index.flat(during[q]);
            scratch.occupied.insert(idx);
        }
    }
    // Homes of qubits staying in the zone stay reserved; homes of returning
    // qubits are private to their owner.
    for q in 0..n {
        if during[q].is_site() || is_returning[q] {
            let idx = scratch.index.flat(home[q]);
            scratch.reserved.insert(idx);
        }
    }

    // Collect candidates per qubit.
    let mut traps: Vec<Loc> = Vec::new();
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(returning.len());
    let mut home_cols: Vec<Option<usize>> = Vec::with_capacity(returning.len());
    for &q in returning {
        let q_pos = geom.position(current[q]);
        let related_pos = related.get(&q).map(|&q2| geom.position(current[q2]));
        return_candidates(arch, geom, scratch, q_pos, related_pos, home[q], cfg.neighbor_k);
        let mut row = Vec::with_capacity(scratch.cands.len());
        for &trap in &scratch.cands {
            let flat = scratch.index.flat(trap);
            let idx = match scratch.col_index.get(flat) {
                Some(idx) => idx,
                None => {
                    scratch.col_index.set(flat, traps.len());
                    traps.push(trap);
                    traps.len() - 1
                }
            };
            let trap_pos = geom.position(trap);
            let mut c = trap_pos.distance(q_pos).sqrt();
            if let Some(rp) = related_pos {
                c += cfg.lookahead_alpha * trap_pos.distance(rp).sqrt();
            }
            row.push((idx, c));
        }
        rows.push(row);
        let hf = scratch.index.flat(home[q]);
        home_cols.push(scratch.col_index.get(hf));
    }

    cost_buf.reset(returning.len(), traps.len(), f64::INFINITY);
    for (r, row) in rows.iter().enumerate() {
        for &(c, v) in row {
            cost_buf.set(r, c, v);
        }
    }
    // Private homes: forbid other qubits from taking a returner's home.
    for (r, _) in returning.iter().enumerate() {
        if let Some(ci) = home_cols[r] {
            for r2 in 0..returning.len() {
                if r2 != r {
                    cost_buf.set(r2, ci, f64::INFINITY);
                }
            }
        }
    }

    assign_ws.solve(cost_buf).map_err(|e| PlaceError::Invalid(format!("return matching: {e}")))?;
    for (r, &q) in returning.iter().enumerate() {
        during[q] = traps[assign_ws.assignment()[r]];
    }
    Ok(())
}

/// Candidate storage traps for a returning qubit (paper Sec. V-B.3): the
/// bounding box over (a) its home trap, (b) the k-neighborhood of the
/// nearest trap to its current site, and (c) the nearest trap to its related
/// qubit — restricted to empty, unreserved traps (its own home always
/// included). Fills `scratch.cands`; occupancy/reservation checks go
/// through the generation-stamped tables.
fn return_candidates(
    arch: &Architecture,
    geom: &GeomCache,
    scratch: &mut TrapScratch,
    q_pos: Point,
    related_pos: Option<Point>,
    home: Loc,
    k: usize,
) {
    let mut anchor_traps: Vec<Loc> = vec![home];
    let nearest = geom.nearest_storage_trap(q_pos);
    anchor_traps.push(nearest);
    if let Loc::Storage { zone, row, col } = nearest {
        let (rows, cols) = arch.storage_grid(zone);
        for i in 1..=k {
            if col + i < cols {
                anchor_traps.push(Loc::Storage { zone, row, col: col + i });
            }
            if col >= i {
                anchor_traps.push(Loc::Storage { zone, row, col: col - i });
            }
            if row + i < rows {
                anchor_traps.push(Loc::Storage { zone, row: row + i, col });
            }
            if row >= i {
                anchor_traps.push(Loc::Storage { zone, row: row - i, col });
            }
        }
    }
    if let Some(rp) = related_pos {
        anchor_traps.push(geom.nearest_storage_trap(rp));
    }

    // Bounding box per storage zone (anchors may span zones).
    scratch.cands.clear();
    for z in 0..arch.storage_zones().len() {
        let zone_anchors: Vec<(usize, usize)> = anchor_traps
            .iter()
            .filter_map(|l| match *l {
                Loc::Storage { zone, row, col } if zone == z => Some((row, col)),
                _ => None,
            })
            .collect();
        if zone_anchors.is_empty() {
            continue;
        }
        let r0 = zone_anchors.iter().map(|a| a.0).min().unwrap();
        let r1 = zone_anchors.iter().map(|a| a.0).max().unwrap();
        let c0 = zone_anchors.iter().map(|a| a.1).min().unwrap();
        let c1 = zone_anchors.iter().map(|a| a.1).max().unwrap();
        for row in r0..=r1 {
            for col in c0..=c1 {
                let trap = Loc::Storage { zone: z, row, col };
                let flat = scratch.index.flat(trap);
                let free = !scratch.occupied.contains(flat) && !scratch.reserved.contains(flat);
                if trap == home || free {
                    scratch.cands.push(trap);
                }
            }
        }
    }
    if !scratch.cands.contains(&home) {
        scratch.cands.push(home);
    }
    // Cap the candidate set, keeping the nearest traps (home always kept).
    const CAP: usize = 400;
    if scratch.cands.len() > CAP {
        scratch.cands.sort_by(|a, b| {
            geom.position(*a).distance(q_pos).total_cmp(&geom.position(*b).distance(q_pos))
        });
        scratch.cands.truncate(CAP);
        if !scratch.cands.contains(&home) {
            scratch.cands.push(home);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zac_circuit::{bench_circuits, preprocess, Circuit};

    fn arch() -> Architecture {
        Architecture::reference()
    }

    fn cfg(reuse: bool) -> PlacementConfig {
        PlacementConfig {
            use_sa: false,
            dynamic: true,
            reuse,
            sa_iterations: 200,
            seed: 1,
            window_expansion: 2,
            neighbor_k: 1,
            lookahead_alpha: 0.1,
        }
    }

    #[test]
    fn fig4_running_example_plans_two_stages() {
        let mut c = Circuit::new("fig4", 6);
        c.cz(0, 1).cz(3, 4).cz(1, 2).cz(3, 5).cz(0, 4);
        let staged = preprocess(&c);
        let arch = arch();
        let plan = plan_placement(&arch, &staged, &cfg(true)).unwrap();
        plan.validate(&arch, &staged).unwrap();
        assert_eq!(plan.stages.len(), 2);
        // All five qubits of stage 2 are reusable in the paper's example:
        // matching pairs (g0,g2),(g1,g3) or similar → at least 2 reuses.
        assert!(plan.stages[1].reused_qubits >= 2 || !plan.stages[1].used_reuse);
    }

    #[test]
    fn plan_validates_for_suite_circuits() {
        let arch = arch();
        for circ in [bench_circuits::ghz(10), bench_circuits::ising(12), bench_circuits::qft(6)] {
            let staged = preprocess(&circ);
            for reuse in [false, true] {
                let plan = plan_placement(&arch, &staged, &cfg(reuse)).unwrap();
                plan.validate(&arch, &staged)
                    .unwrap_or_else(|e| panic!("{} reuse={reuse}: {e}", circ.name()));
            }
        }
    }

    #[test]
    fn reuse_keeps_chain_qubit_in_zone() {
        // GHZ chain: q_{t+1} participates in stages t and t+1 — with reuse
        // it should stay in the zone between them.
        let arch = arch();
        let staged = preprocess(&bench_circuits::ghz(8));
        let plan = plan_placement(&arch, &staged, &cfg(true)).unwrap();
        assert!(plan.total_reused_qubits() > 0, "chain circuit must reuse");
    }

    #[test]
    fn no_reuse_config_never_reuses() {
        let arch = arch();
        let staged = preprocess(&bench_circuits::ghz(8));
        let plan = plan_placement(&arch, &staged, &cfg(false)).unwrap();
        assert_eq!(plan.total_reused_qubits(), 0);
    }

    #[test]
    fn static_mode_returns_home() {
        let arch = arch();
        let staged = preprocess(&bench_circuits::ghz(6));
        let mut c = cfg(false);
        c.dynamic = false;
        let plan = plan_placement(&arch, &staged, &c).unwrap();
        plan.validate(&arch, &staged).unwrap();
        // After any stage, a qubit in storage must sit at its initial trap.
        for stage in &plan.stages {
            for (q, loc) in stage.during.iter().enumerate() {
                if loc.is_storage() {
                    assert_eq!(*loc, plan.initial[q], "static placement moved qubit {q}");
                }
            }
        }
    }

    #[test]
    fn idle_qubits_never_in_zone() {
        let arch = arch();
        let staged = preprocess(&bench_circuits::bv(10, 9));
        let plan = plan_placement(&arch, &staged, &cfg(true)).unwrap();
        for (t, stage) in plan.stages.iter().enumerate() {
            let gate_qubits: HashSet<usize> =
                staged.stages[t].gates.iter().flat_map(|g| [g.a, g.b]).collect();
            for (q, loc) in stage.during.iter().enumerate() {
                if !gate_qubits.contains(&q) {
                    assert!(loc.is_storage(), "stage {t}: idle qubit {q} at {loc}");
                }
            }
        }
    }

    #[test]
    fn too_many_gates_detected() {
        // Monolithic 2x2 = 4 sites; a stage with 5 parallel gates cannot fit.
        let arch = Architecture::monolithic(2, 2);
        let mut c = Circuit::new("wide", 10);
        for i in 0..5 {
            c.cz(2 * i, 2 * i + 1);
        }
        let staged = preprocess(&c);
        // Monolithic has no storage; use a zoned arch with a tiny zone.
        let _ = arch;
        let small = small_zoned(2, 2);
        let err = plan_placement(&small, &staged, &cfg(false)).unwrap_err();
        assert!(matches!(err, PlaceError::TooManyGates { .. }), "{err:?}");
    }

    fn small_zoned(rows: usize, cols: usize) -> Architecture {
        use zac_arch::{AodArray, Point, SlmArray, Zone};
        let storage = Zone::new(
            0,
            Point::new(0.0, 0.0),
            (100.0, 40.0),
            vec![SlmArray::new(0, (3.0, 3.0), 30, 10, Point::new(0.0, 0.0))],
        );
        let width = (cols - 1).max(1) as f64 * 12.0 + 2.0;
        let height = (rows - 1).max(1) as f64 * 10.0;
        let ent = Zone::new(
            0,
            Point::new(0.0, 50.0),
            (width, height.max(1.0)),
            vec![
                SlmArray::new(1, (12.0, 10.0), cols, rows, Point::new(0.0, 50.0)),
                SlmArray::new(2, (12.0, 10.0), cols, rows, Point::new(2.0, 50.0)),
            ],
        );
        Architecture::new(
            "small",
            vec![AodArray::new(0, 2.0, 50, 50)],
            vec![storage],
            vec![ent],
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn ising_parallel_stage_fits_reference_zone() {
        let arch = arch();
        let staged = preprocess(&bench_circuits::ising(42));
        let plan = plan_placement(&arch, &staged, &cfg(true)).unwrap();
        plan.validate(&arch, &staged).unwrap();
        // First Rydberg stage hosts 21 parallel gates.
        assert_eq!(plan.stages[0].gate_sites.len(), 21);
        let sites: HashSet<SiteId> = plan.stages[0].gate_sites.iter().map(|(_, s)| *s).collect();
        assert_eq!(sites.len(), 21, "gates at distinct sites");
    }

    #[test]
    fn multi_zone_architecture_is_usable() {
        let arch = Architecture::arch2_two_zones();
        let staged = preprocess(&bench_circuits::ising(20));
        let plan = plan_placement(&arch, &staged, &cfg(true)).unwrap();
        plan.validate(&arch, &staged).unwrap();
    }

    #[test]
    fn reuse_reduces_transition_distance_on_ghz() {
        let arch = arch();
        let staged = preprocess(&bench_circuits::ghz(12));
        let with = plan_placement(&arch, &staged, &cfg(true)).unwrap();
        let without = plan_placement(&arch, &staged, &cfg(false)).unwrap();
        let dist = |plan: &PlacementPlan| -> f64 {
            let mut cur = plan.initial.clone();
            let mut total = 0.0;
            for s in &plan.stages {
                for (q, loc) in cur.iter().enumerate() {
                    total += arch.position(*loc).distance(arch.position(s.during[q]));
                }
                cur = s.during.clone();
            }
            total
        };
        assert!(
            dist(&with) < dist(&without),
            "reuse {} !< no-reuse {}",
            dist(&with),
            dist(&without)
        );
    }
}
