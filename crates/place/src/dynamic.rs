//! Reuse-aware dynamic placement (paper Sec. V-B).
//!
//! For each Rydberg stage the planner:
//!
//! 1. identifies **qubit reuse** between consecutive stages with a maximum
//!    bipartite matching (Hopcroft–Karp) over gates sharing a qubit —
//!    matched gates stay pinned at their predecessor's Rydberg site;
//! 2. places the remaining gates with a **minimum-weight full matching**
//!    (Jonker–Volgenant) from gates to candidate sites around each gate's
//!    nearest site `ω_near`, with a lookahead term pulling the site toward
//!    next-stage partners;
//! 3. returns idle qubits to the storage zone with a second min-weight
//!    matching over candidate traps (original home, neighbors of the nearest
//!    trap, nearest trap to the *related* next-stage partner — Eq. 3);
//! 4. builds both a reuse and a no-reuse solution and **commits the cheaper**
//!    (paper Sec. V-B: "we commit to the better solution between the two").

use crate::cost::{gate_cost, nearest_gate_site, qubit_to_site_cost};
use crate::engine::WindowPolicy;
use crate::initial::InitialPlacementCache;
use crate::{PlaceError, PlacementConfig};
use std::collections::HashSet;
use zac_arch::{
    Architecture, GeomCache, Geometry, Loc, Point, SiteId, TrapIndex, TrapMap, TrapSet,
};
use zac_circuit::{Gate2, StagedCircuit};
use zac_graph::{max_bipartite_matching, AssignmentError, AssignmentWorkspace, CostMatrix};
use zac_telemetry::metrics;

/// Placement decisions for one Rydberg stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StagePlan {
    /// Each gate of the stage with the Rydberg site it executes at.
    pub gate_sites: Vec<(Gate2, SiteId)>,
    /// Without reuse, every entanglement-zone resident first returns to
    /// storage (the paper's non-reuse round trip); this intermediate
    /// all-in-storage snapshot precedes the stage's fetches.
    pub pre_returns: Option<Vec<Loc>>,
    /// Location of every qubit *during* the stage's exposure.
    pub during: Vec<Loc>,
    /// Whether this stage committed the reuse solution.
    pub used_reuse: bool,
    /// Number of qubits that stayed at their site (reused in place).
    pub reused_qubits: usize,
}

/// The full placement plan: initial placement plus one [`StagePlan`] per
/// Rydberg stage. Consecutive `during` snapshots define the rearrangement
/// the scheduler must realize.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementPlan {
    /// Initial storage placement (the `init` ZAIR instruction).
    pub initial: Vec<Loc>,
    /// Per-stage placements.
    pub stages: Vec<StagePlan>,
}

impl PlacementPlan {
    /// Total count of in-place qubit reuses across all stages.
    pub fn total_reused_qubits(&self) -> usize {
        self.stages.iter().map(|s| s.reused_qubits).sum()
    }

    /// Total movement cost of the plan under the paper's Eq. 1 metric:
    /// the sum over every stage transition of √distance per moved qubit,
    /// including the intermediate pre-return leg of non-reuse stages. This
    /// is the quantity the per-stage solver minimizes, so it is the quality
    /// axis the engine frontier (exhaustive vs. windowed) is measured on.
    pub fn movement_cost<G: Geometry>(&self, geom: &G) -> f64 {
        let leg = |from: &[Loc], to: &[Loc]| -> f64 {
            from.iter()
                .zip(to)
                .filter(|(a, b)| a != b)
                .map(|(a, b)| geom.position(*a).distance(geom.position(*b)).sqrt())
                .sum::<f64>()
        };
        let mut current: &[Loc] = &self.initial;
        let mut total = 0.0;
        for stage in &self.stages {
            if let Some(pre) = &stage.pre_returns {
                total += leg(current, pre) + leg(pre, &stage.during);
            } else {
                total += leg(current, &stage.during);
            }
            current = &stage.during;
        }
        total
    }

    /// Checks the plan's invariants against the architecture and circuit.
    ///
    /// # Errors
    ///
    /// [`PlaceError::Invalid`] describing the first violation: duplicate
    /// traps, a gate's qubits not co-located at its site, or an idle qubit
    /// left inside an entanglement zone during an exposure.
    pub fn validate(&self, arch: &Architecture, staged: &StagedCircuit) -> Result<(), PlaceError> {
        let check_distinct = |p: &[Loc], what: &str| -> Result<(), PlaceError> {
            let set: HashSet<&Loc> = p.iter().collect();
            if set.len() != p.len() {
                return Err(PlaceError::Invalid(format!("duplicate trap in {what}")));
            }
            for &loc in p {
                arch.check_loc(loc).map_err(|e| PlaceError::Invalid(format!("{what}: {e}")))?;
            }
            Ok(())
        };
        check_distinct(&self.initial, "initial placement")?;
        if !self.initial.iter().all(Loc::is_storage) {
            return Err(PlaceError::Invalid("initial placement not in storage".into()));
        }
        if self.stages.len() != staged.stages.len() {
            return Err(PlaceError::Invalid("stage count mismatch".into()));
        }
        for (t, plan) in self.stages.iter().enumerate() {
            if let Some(pre) = &plan.pre_returns {
                check_distinct(pre, &format!("stage {t} pre-returns"))?;
                if !pre.iter().all(Loc::is_storage) {
                    return Err(PlaceError::Invalid(format!(
                        "stage {t}: pre-return snapshot leaves a qubit in the zone"
                    )));
                }
            }
            check_distinct(&plan.during, &format!("stage {t}"))?;
            let mut gate_qubits = HashSet::new();
            for (g, site) in &plan.gate_sites {
                for q in [g.a, g.b] {
                    gate_qubits.insert(q);
                    match plan.during[q] {
                        Loc::Site { zone, row, col, .. }
                            if SiteId::new(zone, row, col) == *site => {}
                        other => {
                            return Err(PlaceError::Invalid(format!(
                                "stage {t}: qubit {q} of gate {} at {other}, expected site {site}",
                                g.id
                            )))
                        }
                    }
                }
            }
            for (q, loc) in plan.during.iter().enumerate() {
                if loc.is_site() && !gate_qubits.contains(&q) {
                    return Err(PlaceError::Invalid(format!(
                        "stage {t}: idle qubit {q} left in entanglement zone"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// One candidate solution for a stage, before committing.
struct StageSolution {
    gate_sites: Vec<(Gate2, SiteId)>,
    pre_returns: Option<Vec<Loc>>,
    during: Vec<Loc>,
    transition_cost: f64,
    reused_qubits: usize,
}

/// Scratch state reused across every `solve_stage` call of one compilation:
/// the geometry memo tables plus the assignment solver's workspace and cost
/// matrix. Steady-state stage solves are allocation-free in the solver
/// (the buffers grow to the largest stage seen, then stay).
struct StageWorkspace {
    geom: GeomCache,
    assign: AssignmentWorkspace,
    cost: CostMatrix,
    traps: TrapScratch,
    stage: StageScratch,
}

impl StageWorkspace {
    fn new(arch: &Architecture) -> Self {
        Self {
            geom: GeomCache::new(arch),
            assign: AssignmentWorkspace::new(),
            cost: CostMatrix::new(0, 0, 0.0),
            traps: TrapScratch::new(arch),
            stage: StageScratch::new(arch),
        }
    }
}

/// Dense qubit → next-stage-partner map (`usize::MAX` = none), reused across
/// stages through a touched list: the allocation-free replacement for the
/// per-stage `HashMap` the solver used to build.
#[derive(Default)]
struct RelatedMap {
    vals: Vec<usize>,
    touched: Vec<usize>,
}

impl RelatedMap {
    /// Clears previous entries and guarantees capacity for qubits `0..n`.
    fn reset(&mut self, n: usize) {
        for &q in &self.touched {
            self.vals[q] = usize::MAX;
        }
        self.touched.clear();
        if self.vals.len() < n {
            self.vals.resize(n, usize::MAX);
        }
    }

    /// Records `b` as `a`'s partner (later inserts overwrite, matching the
    /// `HashMap::insert` semantics this replaced).
    fn insert(&mut self, a: usize, b: usize) {
        if self.vals[a] == usize::MAX {
            self.touched.push(a);
        }
        self.vals[a] = b;
    }

    fn get(&self, q: usize) -> Option<usize> {
        match self.vals.get(q) {
            Some(&v) if v != usize::MAX => Some(v),
            _ => None,
        }
    }
}

/// Reusable buffers of the per-stage solver (reuse matching + gate
/// placement), so steady-state stages allocate nothing on the hot path.
struct StageScratch {
    /// Flat site index: per-zone offsets and column counts.
    site_offsets: Vec<usize>,
    site_grid_cols: Vec<usize>,
    /// Next-stage partner per qubit (lookahead + Eq. 3 anchors).
    related: RelatedMap,
    /// This-stage partner per qubit (non-reuse pre-return anchors).
    related_this: RelatedMap,
    /// Reuse-matching adjacency rows (outer and inner buffers reused).
    adj: Vec<Vec<usize>>,
    /// Site flat index → dense matrix column (`usize::MAX` = unset; reset by
    /// walking `sites` between attempts).
    site_cols: Vec<usize>,
    /// Dense column → site of the gate matching.
    sites: Vec<SiteId>,
    /// Per-gate candidate columns (outer and inner buffers reused).
    per_gate: Vec<Vec<usize>>,
    /// Per-gate window centers.
    centers: Vec<SiteId>,
    /// Site neighborhood buffer.
    neigh: Vec<SiteId>,
    /// Sites pinned by the reuse matching (flat-indexed; cleared on the
    /// *next* call by walking `pinned_touched`, so early error returns can
    /// never leave stale pins behind).
    pinned_site: Vec<bool>,
    pinned_touched: Vec<usize>,
}

impl StageScratch {
    fn new(arch: &Architecture) -> Self {
        let mut site_offsets = Vec::new();
        let mut site_grid_cols = Vec::new();
        let mut total = 0usize;
        for z in 0..arch.entanglement_zones().len() {
            let (rows, cols) = arch.site_grid(z);
            site_offsets.push(total);
            site_grid_cols.push(cols);
            total += rows * cols;
        }
        Self {
            site_offsets,
            site_grid_cols,
            related: RelatedMap::default(),
            related_this: RelatedMap::default(),
            adj: Vec::new(),
            site_cols: vec![usize::MAX; total],
            sites: Vec::new(),
            per_gate: Vec::new(),
            centers: Vec::new(),
            neigh: Vec::new(),
            pinned_site: vec![false; total],
            pinned_touched: Vec::new(),
        }
    }
}

/// Per-call scratch of the Eq. 3 return matching, built on the shared
/// generation-stamped trap tables in [`zac_arch::trap`] (lifted out of this
/// module in the scheduler-core refactor so `zac-schedule`'s emission loop
/// uses the same implementation): one array load per candidate-trap probe
/// instead of three hashes, and `next_generation` clears all tables in O(1).
struct TrapScratch {
    /// Dense `Loc → flat` indexer (shared layout with the scheduler).
    index: TrapIndex,
    /// Traps occupied by a non-returning storage resident this generation.
    occupied: TrapSet,
    /// Traps reserved (a stayer's or returner's home) this generation.
    reserved: TrapSet,
    /// Candidate-column dedup: trap → assigned dense column.
    col_index: TrapMap<usize>,
    /// Per-qubit candidate dedup for the windowed engine (anchor windows
    /// overlap, unlike the exhaustive bounding box).
    seen: TrapSet,
    /// Per-qubit candidate buffer (reused across qubits and calls).
    cands: Vec<Loc>,
    /// Dense column → trap table of the return matching (reused per call).
    ret_traps: Vec<Loc>,
    /// Per-returner sparse cost rows (outer and inner buffers reused).
    rows: Vec<Vec<(usize, f64)>>,
    /// Per-returner home-column indices (reused per call).
    home_cols: Vec<Option<usize>>,
    /// Per-qubit "is returning" flags (cleared after each use).
    flags: Vec<bool>,
}

impl TrapScratch {
    fn new(arch: &Architecture) -> Self {
        let index = TrapIndex::new(arch);
        let n = index.len();
        Self {
            index,
            occupied: TrapSet::new(n),
            reserved: TrapSet::new(n),
            col_index: TrapMap::new(n),
            seen: TrapSet::new(n),
            cands: Vec::new(),
            ret_traps: Vec::new(),
            rows: Vec::new(),
            home_cols: Vec::new(),
            flags: Vec::new(),
        }
    }

    /// Starts a fresh generation (constant-time clear of all tables).
    fn next_generation(&mut self) {
        self.occupied.clear();
        self.reserved.clear();
        self.col_index.clear();
    }
}

/// Plans placement for the whole circuit with the engine selected in
/// `cfg.engine` (see [`crate::Placer`]).
///
/// # Errors
///
/// * [`PlaceError::StorageFull`] if the qubits don't fit in storage.
/// * [`PlaceError::TooManyGates`] if a stage has more gates than sites.
pub fn plan_placement(
    arch: &Architecture,
    staged: &StagedCircuit,
    cfg: &PlacementConfig,
) -> Result<PlacementPlan, PlaceError> {
    plan_placement_cached(arch, staged, cfg, None)
}

/// [`plan_placement`] with an optional [`InitialPlacementCache`]: the SA
/// initial placement — which depends only on the zone geometry and the
/// circuit, never on AOD count — is computed once per (geometry, circuit,
/// SA-config, engine) key and shared across callers (e.g. the fig14
/// multi-AOD sweep arms). Results are bit-identical with and without the
/// cache.
///
/// # Errors
///
/// Same as [`plan_placement`].
pub fn plan_placement_cached(
    arch: &Architecture,
    staged: &StagedCircuit,
    cfg: &PlacementConfig,
    cache: Option<&InitialPlacementCache>,
) -> Result<PlacementPlan, PlaceError> {
    cfg.engine.placer().plan_cached(arch, staged, cfg, cache)
}

/// Shared planning loop behind both engines: `window` is `None` for the
/// exhaustive search (whose output is bit-identity locked) and carries the
/// [`WindowPolicy`] for the windowed search.
pub(crate) fn plan_with_window(
    arch: &Architecture,
    staged: &StagedCircuit,
    cfg: &PlacementConfig,
    cache: Option<&InitialPlacementCache>,
    window: Option<WindowPolicy>,
) -> Result<PlacementPlan, PlaceError> {
    let _span = zac_telemetry::span!("place.plan", &staged.name);
    let initial = if cfg.use_sa {
        match cache {
            Some(cache) => cache.get_or_compute(arch, staged, cfg)?,
            None => crate::initial::sa_for_engine(arch, staged, cfg)?,
        }
    } else {
        crate::initial::trivial_initial_placement(arch, staged.num_qubits)?
    };

    let mut ws = StageWorkspace::new(arch);
    let mut current = initial.clone();
    let mut home = initial.clone();
    let mut prev_gates: Vec<(Gate2, SiteId)> = Vec::new();
    let mut plans = Vec::with_capacity(staged.stages.len());

    for (t, stage) in staged.stages.iter().enumerate() {
        let next_gates = staged.stages.get(t + 1).map(|s| s.gates.as_slice());
        let plain = solve_stage(
            arch,
            &mut ws,
            &current,
            &home,
            &prev_gates,
            &stage.gates,
            next_gates,
            cfg,
            window,
            false,
        )?;
        let (solution, used_reuse) = if cfg.reuse && !prev_gates.is_empty() {
            let reuse = solve_stage(
                arch,
                &mut ws,
                &current,
                &home,
                &prev_gates,
                &stage.gates,
                next_gates,
                cfg,
                window,
                true,
            )?;
            if reuse.transition_cost <= plain.transition_cost {
                (reuse, true)
            } else {
                (plain, false)
            }
        } else {
            (plain, false)
        };

        if let Some(pre) = &solution.pre_returns {
            for (q, loc) in pre.iter().enumerate() {
                if loc.is_storage() {
                    home[q] = *loc;
                }
            }
        }
        for (q, loc) in solution.during.iter().enumerate() {
            if loc.is_storage() {
                home[q] = *loc;
            }
        }
        current = solution.during.clone();
        prev_gates = solution.gate_sites.clone();
        plans.push(StagePlan {
            gate_sites: solution.gate_sites,
            pre_returns: solution.pre_returns,
            during: solution.during,
            used_reuse,
            reused_qubits: solution.reused_qubits,
        });
    }

    let plan = PlacementPlan { initial, stages: plans };
    debug_assert!(plan.validate(arch, staged).is_ok());
    Ok(plan)
}

/// All sites within Chebyshev radius `delta` of the per-zone projection of
/// point `p` (the δ-expanded neighborhood Ω_near of the paper), filled into
/// the reusable `out` buffer.
fn neighborhood_sites_into(
    arch: &Architecture,
    center: SiteId,
    delta: usize,
    out: &mut Vec<SiteId>,
) {
    out.clear();
    for z in 0..arch.entanglement_zones().len() {
        let (rows, cols) = arch.site_grid(z);
        if z == center.zone {
            let r0 = center.row.saturating_sub(delta);
            let r1 = (center.row + delta).min(rows - 1);
            let c0 = center.col.saturating_sub(delta);
            let c1 = (center.col + delta).min(cols - 1);
            for r in r0..=r1 {
                for c in c0..=c1 {
                    out.push(SiteId::new(z, r, c));
                }
            }
        } else if delta > 0 {
            // Other zones join the candidate pool once expansion starts, so
            // multi-zone architectures can spill over.
            let scaled = delta.min(rows.max(cols));
            for r in 0..rows.min(scaled * 2) {
                for c in 0..cols.min(scaled * 2) {
                    out.push(SiteId::new(z, r, c));
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn solve_stage(
    arch: &Architecture,
    ws: &mut StageWorkspace,
    current: &[Loc],
    home: &[Loc],
    prev_gates: &[(Gate2, SiteId)],
    gates: &[Gate2],
    next_gates: Option<&[Gate2]>,
    cfg: &PlacementConfig,
    window: Option<WindowPolicy>,
    use_reuse: bool,
) -> Result<StageSolution, PlaceError> {
    // Split borrows: the memo tables are read-only while the solver scratch
    // is mutated.
    let StageWorkspace { geom, assign: assign_ws, cost: cost_buf, traps: trap_scratch, stage } = ws;
    let StageScratch {
        site_offsets,
        site_grid_cols,
        related,
        related_this,
        adj,
        site_cols,
        sites,
        per_gate,
        centers,
        neigh,
        pinned_site,
        pinned_touched,
    } = stage;
    let site_flat = |s: SiteId| site_offsets[s.zone] + s.row * site_grid_cols[s.zone] + s.col;
    for &f in pinned_touched.iter() {
        pinned_site[f] = false;
    }
    pinned_touched.clear();
    let n = current.len();

    // Related qubit in the next stage (for lookahead and Eq. 3).
    related.reset(n);
    if let Some(ng) = next_gates {
        for g in ng {
            related.insert(g.a, g.b);
            related.insert(g.b, g.a);
        }
    }

    // Without reuse, the paper's pipeline returns *every* zone resident to
    // storage before placing this stage's gates (the non-reuse round trip).
    // The "related qubit" for these returns is the partner in THIS stage.
    let pre_returns: Option<Vec<Loc>> = if !use_reuse {
        let residents: Vec<usize> = (0..n).filter(|&q| current[q].is_site()).collect();
        if residents.is_empty() {
            None
        } else {
            let mut snapshot = current.to_vec();
            if cfg.dynamic {
                related_this.reset(n);
                for g in gates {
                    related_this.insert(g.a, g.b);
                    related_this.insert(g.b, g.a);
                }
                place_returns(
                    arch,
                    geom,
                    assign_ws,
                    cost_buf,
                    trap_scratch,
                    &mut snapshot,
                    current,
                    home,
                    &residents,
                    related_this,
                    cfg,
                    window,
                )?;
            } else {
                for &q in &residents {
                    snapshot[q] = home[q];
                }
            }
            Some(snapshot)
        }
    } else {
        None
    };
    // All placement decisions below see the post-return configuration.
    let working: Vec<Loc> = pre_returns.clone().unwrap_or_else(|| current.to_vec());
    let geom = &*geom;
    let pos = |q: usize| -> Point { geom.position(working[q]) };

    // ---- 1. reuse matching --------------------------------------------
    // Dense per-gate tables (gate indices are 0..gates.len()): cheaper than
    // hash maps on this per-stage hot path.
    let mut pinned: Vec<Option<SiteId>> = vec![None; gates.len()];
    let mut reused_qubits_of: Vec<Vec<usize>> = vec![Vec::new(); gates.len()];
    if use_reuse && !prev_gates.is_empty() {
        if adj.len() < prev_gates.len() {
            adj.resize_with(prev_gates.len(), Vec::new);
        }
        for ((pg, _), row) in prev_gates.iter().zip(adj.iter_mut()) {
            row.clear();
            row.extend(
                gates
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.touches(pg.a) || g.touches(pg.b))
                    .map(|(i, _)| i),
            );
        }
        let matching = max_bipartite_matching(&adj[..prev_gates.len()], gates.len());
        for (pi, m) in matching.iter().enumerate() {
            if let Some(gi) = m {
                let (pg, site) = &prev_gates[pi];
                let g = &gates[*gi];
                let shared: Vec<usize> =
                    [g.a, g.b].into_iter().filter(|&q| pg.touches(q)).collect();
                if !shared.is_empty() {
                    pinned[*gi] = Some(*site);
                    reused_qubits_of[*gi] = shared;
                }
            }
        }
    }
    let reused_qubits: usize = reused_qubits_of.iter().map(Vec::len).sum();

    // ---- 2. gate placement for unpinned gates --------------------------
    let unpinned: Vec<usize> = (0..gates.len()).filter(|&i| pinned[i].is_none()).collect();
    for s in pinned.iter().filter_map(|s| *s) {
        let f = site_flat(s);
        pinned_site[f] = true;
        pinned_touched.push(f);
    }
    let total_sites = arch.num_sites();
    if gates.len() > total_sites {
        return Err(PlaceError::TooManyGates { gates: gates.len(), sites: total_sites });
    }

    let mut assignment: Vec<Option<SiteId>> = pinned.clone();
    if !unpinned.is_empty() {
        centers.clear();
        centers.extend(unpinned.iter().map(|&gi| {
            let g = &gates[gi];
            nearest_gate_site(geom, pos(g.a), pos(g.b))
        }));
        let max_dim = arch
            .entanglement_zones()
            .iter()
            .enumerate()
            .map(|(z, _)| {
                let (r, c) = arch.site_grid(z);
                r.max(c)
            })
            .max()
            .unwrap_or(1);
        let mut delta = match window {
            None => cfg.window_expansion.max(1),
            Some(w) => w.min_width.max(1),
        };
        if per_gate.len() < unpinned.len() {
            per_gate.resize_with(unpinned.len(), Vec::new);
        }
        loop {
            // Collect the candidate-site union (dense site → column map,
            // reset by walking the previous attempt's column list).
            for &s in sites.iter() {
                site_cols[site_flat(s)] = usize::MAX;
            }
            sites.clear();
            for (row, center) in centers.iter().enumerate() {
                neighborhood_sites_into(arch, *center, delta, neigh);
                let cols = &mut per_gate[row];
                cols.clear();
                for &s in neigh.iter() {
                    let f = site_flat(s);
                    if pinned_site[f] {
                        continue;
                    }
                    let idx = if site_cols[f] != usize::MAX {
                        site_cols[f]
                    } else {
                        site_cols[f] = sites.len();
                        sites.push(s);
                        sites.len() - 1
                    };
                    cols.push(idx);
                }
            }
            if sites.len() >= unpinned.len() {
                cost_buf.reset(unpinned.len(), sites.len(), f64::INFINITY);
                let mut lower_bound = 0.0;
                for (row, &gi) in unpinned.iter().enumerate() {
                    let g = &gates[gi];
                    let mut row_min = f64::INFINITY;
                    for &col in &per_gate[row] {
                        let site = sites[col];
                        let mut c = gate_cost(geom, pos(g.a), pos(g.b), site);
                        // Lookahead (Sec. V-B.2): if this gate is reused by
                        // g'(q, q'') next stage, add the cost of moving q''
                        // to this site.
                        for q in [g.a, g.b] {
                            if let Some(q2) = related.get(q) {
                                if !gates[gi].touches(q2) {
                                    c += qubit_to_site_cost(geom, pos(q2), site);
                                    break;
                                }
                            }
                        }
                        row_min = row_min.min(c);
                        cost_buf.set(row, col, c);
                    }
                    if row_min.is_finite() {
                        lower_bound += row_min;
                    }
                }
                metrics::PLACE_ASSIGNMENT_SOLVES.incr();
                metrics::PLACE_ASSIGNMENT_MOVERS.observe(unpinned.len() as u64);
                match assign_ws.solve(cost_buf) {
                    Ok(total) => {
                        // Windowed engine: re-solve with a wider window when
                        // conflicts pushed the matching past the quality
                        // guard (unless the window already covers the grid).
                        let breach = window.is_some_and(|w| w.violates_guard(total, lower_bound));
                        if breach {
                            metrics::PLACE_WINDOW_GUARD_BREACHES.incr();
                        }
                        let grow = delta <= max_dim && breach;
                        if !grow {
                            for (row, &gi) in unpinned.iter().enumerate() {
                                assignment[gi] = Some(sites[assign_ws.assignment()[row]]);
                            }
                            break;
                        }
                    }
                    Err(AssignmentError::Infeasible | AssignmentError::MoreRowsThanColumns) => {}
                    Err(e) => return Err(PlaceError::Invalid(format!("gate matching: {e}"))),
                }
            }
            if delta > max_dim * 2 {
                return Err(PlaceError::TooManyGates { gates: gates.len(), sites: total_sites });
            }
            if window.is_some() {
                metrics::PLACE_WINDOW_GROWS.incr();
            }
            delta *= 2;
        }
    }

    // ---- 3. build `during`: gate qubits to site slots ------------------
    let mut during = working.clone();
    for (gi, g) in gates.iter().enumerate() {
        let site = assignment[gi].expect("every gate assigned a site");
        let cap = arch.site_capacity(site.zone);
        // Reused qubits keep their slot.
        let mut taken: Vec<usize> = Vec::new();
        let reused_list = &reused_qubits_of[gi];
        let reused = (!reused_list.is_empty()).then_some(reused_list);
        for &q in [g.a, g.b].iter() {
            if let Some(list) = reused {
                if list.contains(&q) {
                    if let Loc::Site { slot, .. } = working[q] {
                        during[q] =
                            Loc::Site { zone: site.zone, row: site.row, col: site.col, slot };
                        taken.push(slot);
                        continue;
                    }
                }
            }
        }
        // Remaining qubits: order by current x for deterministic slots.
        let mut rest: Vec<usize> =
            [g.a, g.b].into_iter().filter(|&q| !reused.is_some_and(|l| l.contains(&q))).collect();
        rest.sort_by(|&x, &y| pos(x).x.total_cmp(&pos(y).x).then(x.cmp(&y)));
        let mut next_slot = 0usize;
        for q in rest {
            while taken.contains(&next_slot) {
                next_slot += 1;
            }
            if next_slot >= cap {
                return Err(PlaceError::Invalid(format!(
                    "site {site} slot overflow for gate {}",
                    g.id
                )));
            }
            during[q] =
                Loc::Site { zone: site.zone, row: site.row, col: site.col, slot: next_slot };
            taken.push(next_slot);
        }
    }

    // ---- 4. return idle zone qubits to storage --------------------------
    let mut is_gate_qubit = vec![false; n];
    for g in gates {
        is_gate_qubit[g.a] = true;
        is_gate_qubit[g.b] = true;
    }
    let returning: Vec<usize> =
        (0..n).filter(|&q| working[q].is_site() && !is_gate_qubit[q]).collect();

    if !returning.is_empty() {
        if cfg.dynamic {
            place_returns(
                arch,
                geom,
                assign_ws,
                cost_buf,
                trap_scratch,
                &mut during,
                &working,
                home,
                &returning,
                related,
                cfg,
                window,
            )?;
        } else {
            for &q in &returning {
                during[q] = home[q];
            }
        }
    }

    // ---- 5. transition cost ---------------------------------------------
    let return_leg: f64 = (0..n)
        .filter(|&q| working[q] != current[q])
        .map(|q| geom.position(working[q]).distance(geom.position(current[q])).sqrt())
        .sum();
    let fetch_leg: f64 = (0..n)
        .filter(|&q| during[q] != working[q])
        .map(|q| geom.position(during[q]).distance(geom.position(working[q])).sqrt())
        .sum();
    let transition_cost = return_leg + fetch_leg;

    let gate_sites: Vec<(Gate2, SiteId)> = gates
        .iter()
        .enumerate()
        .map(|(gi, g)| (*g, assignment[gi].expect("every gate assigned a site")))
        .collect();

    Ok(StageSolution { gate_sites, pre_returns, during, transition_cost, reused_qubits })
}

/// Matchings smaller than this stay exhaustive even under the windowed
/// engine: a tiny matching is cheap to solve anyway, and it is the most
/// window-sensitive case — with one or two movers the best trap often lies
/// just outside a small window, and the in-window lower bound cannot see it,
/// so the quality guard never fires.
const WINDOW_MIN_MOVERS: usize = 4;

/// Eq. 3: assign returning qubits to candidate storage traps by min-weight
/// full matching (solved in the shared workspace, allocation-free in steady
/// state). Under a [`WindowPolicy`] (and at least [`WINDOW_MIN_MOVERS`]
/// returners) the candidate pool is the union of rectangular windows around
/// each qubit's anchor traps, regrown (×2) and re-solved only when the
/// matching is infeasible or breaches the quality guard.
#[allow(clippy::too_many_arguments)]
fn place_returns(
    arch: &Architecture,
    geom: &GeomCache,
    assign_ws: &mut AssignmentWorkspace,
    cost_buf: &mut CostMatrix,
    scratch: &mut TrapScratch,
    during: &mut [Loc],
    current: &[Loc],
    home: &[Loc],
    returning: &[usize],
    related: &RelatedMap,
    cfg: &PlacementConfig,
    window: Option<WindowPolicy>,
) -> Result<(), PlaceError> {
    let n = during.len();
    scratch.next_generation();
    if scratch.flags.len() < n {
        scratch.flags.resize(n, false);
    }
    for &q in returning {
        scratch.flags[q] = true;
    }
    // Storage occupancy after gate fetches: qubits whose `during` is storage.
    for (q, &loc) in during.iter().enumerate() {
        if !scratch.flags[q] && loc.is_storage() {
            let idx = scratch.index.flat(loc);
            scratch.occupied.insert(idx);
        }
    }
    // Homes of qubits staying in the zone stay reserved; homes of returning
    // qubits are private to their owner.
    for q in 0..n {
        if during[q].is_site() || scratch.flags[q] {
            let idx = scratch.index.flat(home[q]);
            scratch.reserved.insert(idx);
        }
    }
    for &q in returning {
        scratch.flags[q] = false;
    }

    // Single-returner fast path: a 1×C matching is an argmin scan. The JV
    // solver scans the columns in order and moves to a later column on cost
    // ties (its tie-break favors unmatched columns), so `<=` reproduces its
    // choice exactly — bit-identical to solving the 1×C matrix.
    if let [q] = *returning {
        let q_pos = geom.position(current[q]);
        let related_pos = related.get(q).map(|q2| geom.position(current[q2]));
        return_candidates(arch, geom, scratch, q_pos, related_pos, home[q], cfg.neighbor_k);
        let mut best = f64::INFINITY;
        let mut best_trap = None;
        for &trap in &scratch.cands {
            let trap_pos = geom.position(trap);
            let mut c = trap_pos.distance(q_pos).sqrt();
            if let Some(rp) = related_pos {
                c += cfg.lookahead_alpha * trap_pos.distance(rp).sqrt();
            }
            if c <= best {
                best = c;
                best_trap = Some(trap);
            }
        }
        during[q] = best_trap.expect("own home is always a finite-cost candidate");
        return Ok(());
    }

    // A window this wide covers every storage zone from any anchor, so the
    // growth loop below always terminates in the exhaustive regime.
    let full_width = (0..arch.storage_zones().len())
        .map(|z| {
            let (rows, cols) = arch.storage_grid(z);
            rows.max(cols)
        })
        .max()
        .unwrap_or(1);
    let window = window.filter(|_| returning.len() >= WINDOW_MIN_MOVERS);
    let mut width = window.map(|w| w.min_width.max(1));

    if scratch.rows.len() < returning.len() {
        scratch.rows.resize_with(returning.len(), Vec::new);
    }
    loop {
        // Collect candidates per qubit (fresh per attempt: a wider window
        // re-derives the dense column numbering from scratch).
        scratch.col_index.clear();
        scratch.ret_traps.clear();
        scratch.home_cols.clear();
        let mut lower_bound = 0.0;
        for (r, &q) in returning.iter().enumerate() {
            let q_pos = geom.position(current[q]);
            let related_pos = related.get(q).map(|q2| geom.position(current[q2]));
            match (window, width) {
                (Some(w), Some(half_rows)) => {
                    let (hr, hc) = w.half_extent(half_rows);
                    windowed_return_candidates(
                        arch,
                        geom,
                        scratch,
                        q_pos,
                        related_pos,
                        home[q],
                        hr,
                        hc,
                    )
                }
                _ => return_candidates(
                    arch,
                    geom,
                    scratch,
                    q_pos,
                    related_pos,
                    home[q],
                    cfg.neighbor_k,
                ),
            }
            let row = &mut scratch.rows[r];
            row.clear();
            let mut row_min = f64::INFINITY;
            for &trap in &scratch.cands {
                let flat = scratch.index.flat(trap);
                let idx = match scratch.col_index.get(flat) {
                    Some(idx) => idx,
                    None => {
                        scratch.col_index.set(flat, scratch.ret_traps.len());
                        scratch.ret_traps.push(trap);
                        scratch.ret_traps.len() - 1
                    }
                };
                let trap_pos = geom.position(trap);
                let mut c = trap_pos.distance(q_pos).sqrt();
                if let Some(rp) = related_pos {
                    c += cfg.lookahead_alpha * trap_pos.distance(rp).sqrt();
                }
                row_min = row_min.min(c);
                row.push((idx, c));
            }
            if row_min.is_finite() {
                lower_bound += row_min;
            }
            let hf = scratch.index.flat(home[q]);
            scratch.home_cols.push(scratch.col_index.get(hf));
        }

        cost_buf.reset(returning.len(), scratch.ret_traps.len(), f64::INFINITY);
        for (r, row) in scratch.rows[..returning.len()].iter().enumerate() {
            for &(c, v) in row {
                cost_buf.set(r, c, v);
            }
        }
        // Private homes: forbid other qubits from taking a returner's home.
        for (r, _) in returning.iter().enumerate() {
            if let Some(ci) = scratch.home_cols[r] {
                for r2 in 0..returning.len() {
                    if r2 != r {
                        cost_buf.set(r2, ci, f64::INFINITY);
                    }
                }
            }
        }

        let can_grow = width.is_some_and(|w| w < full_width);
        metrics::PLACE_ASSIGNMENT_SOLVES.incr();
        metrics::PLACE_ASSIGNMENT_MOVERS.observe(returning.len() as u64);
        match assign_ws.solve(cost_buf) {
            Ok(total) => {
                let breach = window.is_some_and(|w| w.violates_guard(total, lower_bound));
                if breach {
                    metrics::PLACE_WINDOW_GUARD_BREACHES.incr();
                }
                let grow = can_grow && breach;
                if !grow {
                    for (r, &q) in returning.iter().enumerate() {
                        during[q] = scratch.ret_traps[assign_ws.assignment()[r]];
                    }
                    return Ok(());
                }
            }
            Err(AssignmentError::Infeasible | AssignmentError::MoreRowsThanColumns) if can_grow => {
            }
            Err(e) => return Err(PlaceError::Invalid(format!("return matching: {e}"))),
        }
        if window.is_some() {
            metrics::PLACE_WINDOW_GROWS.incr();
        }
        width = width.map(|w| (w * 2).min(full_width));
    }
}

/// Candidate storage traps for a returning qubit (paper Sec. V-B.3): the
/// bounding box over (a) its home trap, (b) the k-neighborhood of the
/// nearest trap to its current site, and (c) the nearest trap to its related
/// qubit — restricted to empty, unreserved traps (its own home always
/// included). Fills `scratch.cands`; occupancy/reservation checks go
/// through the generation-stamped tables.
fn return_candidates(
    arch: &Architecture,
    geom: &GeomCache,
    scratch: &mut TrapScratch,
    q_pos: Point,
    related_pos: Option<Point>,
    home: Loc,
    k: usize,
) {
    let mut anchor_traps: Vec<Loc> = vec![home];
    let nearest = geom.nearest_storage_trap(q_pos);
    anchor_traps.push(nearest);
    if let Loc::Storage { zone, row, col } = nearest {
        let (rows, cols) = arch.storage_grid(zone);
        for i in 1..=k {
            if col + i < cols {
                anchor_traps.push(Loc::Storage { zone, row, col: col + i });
            }
            if col >= i {
                anchor_traps.push(Loc::Storage { zone, row, col: col - i });
            }
            if row + i < rows {
                anchor_traps.push(Loc::Storage { zone, row: row + i, col });
            }
            if row >= i {
                anchor_traps.push(Loc::Storage { zone, row: row - i, col });
            }
        }
    }
    if let Some(rp) = related_pos {
        anchor_traps.push(geom.nearest_storage_trap(rp));
    }

    // Bounding box per storage zone (anchors may span zones).
    scratch.cands.clear();
    for z in 0..arch.storage_zones().len() {
        let zone_anchors: Vec<(usize, usize)> = anchor_traps
            .iter()
            .filter_map(|l| match *l {
                Loc::Storage { zone, row, col } if zone == z => Some((row, col)),
                _ => None,
            })
            .collect();
        if zone_anchors.is_empty() {
            continue;
        }
        let r0 = zone_anchors.iter().map(|a| a.0).min().unwrap();
        let r1 = zone_anchors.iter().map(|a| a.0).max().unwrap();
        let c0 = zone_anchors.iter().map(|a| a.1).min().unwrap();
        let c1 = zone_anchors.iter().map(|a| a.1).max().unwrap();
        for row in r0..=r1 {
            for col in c0..=c1 {
                let trap = Loc::Storage { zone: z, row, col };
                let flat = scratch.index.flat(trap);
                let free = !scratch.occupied.contains(flat) && !scratch.reserved.contains(flat);
                if trap == home || free {
                    scratch.cands.push(trap);
                }
            }
        }
    }
    if !scratch.cands.contains(&home) {
        scratch.cands.push(home);
    }
    cap_candidates(geom, &mut scratch.cands, q_pos, home);
}

/// Caps a candidate set to the [`CANDIDATE_CAP`] traps nearest `q_pos`
/// (the qubit's home always kept).
const CANDIDATE_CAP: usize = 400;
fn cap_candidates(geom: &GeomCache, cands: &mut Vec<Loc>, q_pos: Point, home: Loc) {
    if cands.len() > CANDIDATE_CAP {
        cands.sort_by(|a, b| {
            geom.position(*a).distance(q_pos).total_cmp(&geom.position(*b).distance(q_pos))
        });
        cands.truncate(CANDIDATE_CAP);
        if !cands.contains(&home) {
            cands.push(home);
        }
    }
}

/// Windowed-engine replacement for [`return_candidates`]: instead of the
/// full bounding box over the anchors (which can span most of the storage
/// grid when a qubit's home lies far from its current position), each anchor
/// — the home trap, the nearest trap to the qubit, and the nearest trap to
/// its related next-stage partner — contributes only the traps within a
/// `half_rows × half_cols` rectangle (wide and flat under the default
/// aspect, matching the cheap same-row direction of the movement model).
/// Overlapping windows are deduplicated through the generation-stamped
/// `seen` table; the same free/reserved filtering and private-home rule
/// apply as in the exhaustive path.
#[allow(clippy::too_many_arguments)]
fn windowed_return_candidates(
    arch: &Architecture,
    geom: &GeomCache,
    scratch: &mut TrapScratch,
    q_pos: Point,
    related_pos: Option<Point>,
    home: Loc,
    half_rows: usize,
    half_cols: usize,
) {
    scratch.cands.clear();
    scratch.seen.clear();
    let anchors = [
        Some(home),
        Some(geom.nearest_storage_trap(q_pos)),
        related_pos.map(|rp| geom.nearest_storage_trap(rp)),
    ];
    for anchor in anchors.into_iter().flatten() {
        let Loc::Storage { zone, row, col } = anchor else { continue };
        let (rows, cols) = arch.storage_grid(zone);
        let r0 = row.saturating_sub(half_rows);
        let r1 = (row + half_rows).min(rows - 1);
        let c0 = col.saturating_sub(half_cols);
        let c1 = (col + half_cols).min(cols - 1);
        for r in r0..=r1 {
            for c in c0..=c1 {
                let trap = Loc::Storage { zone, row: r, col: c };
                let flat = scratch.index.flat(trap);
                if scratch.seen.contains(flat) {
                    continue;
                }
                scratch.seen.insert(flat);
                let free = !scratch.occupied.contains(flat) && !scratch.reserved.contains(flat);
                if trap == home || free {
                    scratch.cands.push(trap);
                }
            }
        }
    }
    cap_candidates(geom, &mut scratch.cands, q_pos, home);
}

#[cfg(test)]
mod tests {
    use super::*;
    use zac_circuit::{bench_circuits, preprocess, Circuit};

    fn arch() -> Architecture {
        Architecture::reference()
    }

    fn cfg(reuse: bool) -> PlacementConfig {
        PlacementConfig {
            use_sa: false,
            dynamic: true,
            reuse,
            sa_iterations: 200,
            seed: 1,
            window_expansion: 2,
            neighbor_k: 1,
            lookahead_alpha: 0.1,
            engine: crate::PlacementEngine::Exhaustive,
        }
    }

    #[test]
    fn fig4_running_example_plans_two_stages() {
        let mut c = Circuit::new("fig4", 6);
        c.cz(0, 1).cz(3, 4).cz(1, 2).cz(3, 5).cz(0, 4);
        let staged = preprocess(&c);
        let arch = arch();
        let plan = plan_placement(&arch, &staged, &cfg(true)).unwrap();
        plan.validate(&arch, &staged).unwrap();
        assert_eq!(plan.stages.len(), 2);
        // All five qubits of stage 2 are reusable in the paper's example:
        // matching pairs (g0,g2),(g1,g3) or similar → at least 2 reuses.
        assert!(plan.stages[1].reused_qubits >= 2 || !plan.stages[1].used_reuse);
    }

    #[test]
    fn plan_validates_for_suite_circuits() {
        let arch = arch();
        for circ in [bench_circuits::ghz(10), bench_circuits::ising(12), bench_circuits::qft(6)] {
            let staged = preprocess(&circ);
            for reuse in [false, true] {
                let plan = plan_placement(&arch, &staged, &cfg(reuse)).unwrap();
                plan.validate(&arch, &staged)
                    .unwrap_or_else(|e| panic!("{} reuse={reuse}: {e}", circ.name()));
            }
        }
    }

    #[test]
    fn reuse_keeps_chain_qubit_in_zone() {
        // GHZ chain: q_{t+1} participates in stages t and t+1 — with reuse
        // it should stay in the zone between them.
        let arch = arch();
        let staged = preprocess(&bench_circuits::ghz(8));
        let plan = plan_placement(&arch, &staged, &cfg(true)).unwrap();
        assert!(plan.total_reused_qubits() > 0, "chain circuit must reuse");
    }

    #[test]
    fn no_reuse_config_never_reuses() {
        let arch = arch();
        let staged = preprocess(&bench_circuits::ghz(8));
        let plan = plan_placement(&arch, &staged, &cfg(false)).unwrap();
        assert_eq!(plan.total_reused_qubits(), 0);
    }

    #[test]
    fn static_mode_returns_home() {
        let arch = arch();
        let staged = preprocess(&bench_circuits::ghz(6));
        let mut c = cfg(false);
        c.dynamic = false;
        let plan = plan_placement(&arch, &staged, &c).unwrap();
        plan.validate(&arch, &staged).unwrap();
        // After any stage, a qubit in storage must sit at its initial trap.
        for stage in &plan.stages {
            for (q, loc) in stage.during.iter().enumerate() {
                if loc.is_storage() {
                    assert_eq!(*loc, plan.initial[q], "static placement moved qubit {q}");
                }
            }
        }
    }

    #[test]
    fn idle_qubits_never_in_zone() {
        let arch = arch();
        let staged = preprocess(&bench_circuits::bv(10, 9));
        let plan = plan_placement(&arch, &staged, &cfg(true)).unwrap();
        for (t, stage) in plan.stages.iter().enumerate() {
            let gate_qubits: HashSet<usize> =
                staged.stages[t].gates.iter().flat_map(|g| [g.a, g.b]).collect();
            for (q, loc) in stage.during.iter().enumerate() {
                if !gate_qubits.contains(&q) {
                    assert!(loc.is_storage(), "stage {t}: idle qubit {q} at {loc}");
                }
            }
        }
    }

    #[test]
    fn too_many_gates_detected() {
        // Monolithic 2x2 = 4 sites; a stage with 5 parallel gates cannot fit.
        let arch = Architecture::monolithic(2, 2);
        let mut c = Circuit::new("wide", 10);
        for i in 0..5 {
            c.cz(2 * i, 2 * i + 1);
        }
        let staged = preprocess(&c);
        // Monolithic has no storage; use a zoned arch with a tiny zone.
        let _ = arch;
        let small = small_zoned(2, 2);
        let err = plan_placement(&small, &staged, &cfg(false)).unwrap_err();
        assert!(matches!(err, PlaceError::TooManyGates { .. }), "{err:?}");
    }

    fn small_zoned(rows: usize, cols: usize) -> Architecture {
        use zac_arch::{AodArray, Point, SlmArray, Zone};
        let storage = Zone::new(
            0,
            Point::new(0.0, 0.0),
            (100.0, 40.0),
            vec![SlmArray::new(0, (3.0, 3.0), 30, 10, Point::new(0.0, 0.0))],
        );
        let width = (cols - 1).max(1) as f64 * 12.0 + 2.0;
        let height = (rows - 1).max(1) as f64 * 10.0;
        let ent = Zone::new(
            0,
            Point::new(0.0, 50.0),
            (width, height.max(1.0)),
            vec![
                SlmArray::new(1, (12.0, 10.0), cols, rows, Point::new(0.0, 50.0)),
                SlmArray::new(2, (12.0, 10.0), cols, rows, Point::new(2.0, 50.0)),
            ],
        );
        Architecture::new(
            "small",
            vec![AodArray::new(0, 2.0, 50, 50)],
            vec![storage],
            vec![ent],
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn ising_parallel_stage_fits_reference_zone() {
        let arch = arch();
        let staged = preprocess(&bench_circuits::ising(42));
        let plan = plan_placement(&arch, &staged, &cfg(true)).unwrap();
        plan.validate(&arch, &staged).unwrap();
        // First Rydberg stage hosts 21 parallel gates.
        assert_eq!(plan.stages[0].gate_sites.len(), 21);
        let sites: HashSet<SiteId> = plan.stages[0].gate_sites.iter().map(|(_, s)| *s).collect();
        assert_eq!(sites.len(), 21, "gates at distinct sites");
    }

    #[test]
    fn multi_zone_architecture_is_usable() {
        let arch = Architecture::arch2_two_zones();
        let staged = preprocess(&bench_circuits::ising(20));
        let plan = plan_placement(&arch, &staged, &cfg(true)).unwrap();
        plan.validate(&arch, &staged).unwrap();
    }

    #[test]
    fn reuse_reduces_transition_distance_on_ghz() {
        let arch = arch();
        let staged = preprocess(&bench_circuits::ghz(12));
        let with = plan_placement(&arch, &staged, &cfg(true)).unwrap();
        let without = plan_placement(&arch, &staged, &cfg(false)).unwrap();
        let dist = |plan: &PlacementPlan| -> f64 {
            let mut cur = plan.initial.clone();
            let mut total = 0.0;
            for s in &plan.stages {
                for (q, loc) in cur.iter().enumerate() {
                    total += arch.position(*loc).distance(arch.position(s.during[q]));
                }
                cur = s.during.clone();
            }
            total
        };
        assert!(
            dist(&with) < dist(&without),
            "reuse {} !< no-reuse {}",
            dist(&with),
            dist(&without)
        );
    }
}
