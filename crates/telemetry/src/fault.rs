//! Deterministic fault injection behind named fault points.
//!
//! Production code marks every spot where the outside world can fail with
//! [`fault_point!`](crate::fault_point): disk reads and writes in the cache,
//! the compile call in the serve executor, the session writer. Each point
//! compiles to one relaxed atomic load; while no plan is armed the check
//! returns `None` without locking or allocating, so fault points are free to
//! leave in release builds (the alloc-free telemetry test covers the
//! disarmed path, and the workspace bit-identity suites double as the
//! golden-digest guard that arming-off changes nothing).
//!
//! A [`FaultPlan`] arms the points. Plans come from the `ZAC_FAULTS`
//! environment variable (consulted once, at the first [`hit`]) or
//! programmatically via [`arm`]; the spec grammar is
//!
//! ```text
//! ZAC_FAULTS=<seed>:<point>=<kind>[@<rate>][,<point>=<kind>[@<rate>]...]
//! ```
//!
//! with kinds `io` (return an injected [`std::io::Error`]), `panic`
//! (panic at the point), and `delay<ms>` (sleep for `<ms>` milliseconds,
//! then pass). `rate` is a probability in `[0, 1]` (default `1`), drawn
//! **deterministically**: the n-th hit of a rule fires iff
//! `fnv64(seed, point, rule, n)` maps below the rate, so a given seed
//! replays the exact same fault sequence on every run.
//!
//! Example: `ZAC_FAULTS=7:cache.disk.write=io@0.5,serve.exec.compile=delay5`
//! fails half of all disk-cache writes and slows every compile by 5 ms,
//! reproducibly under seed 7.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

// Tri-state mirroring `crate::STATE`: the environment is consulted exactly
// once, and `arm`/`disarm` override it at any time.
const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
static PLAN: Mutex<Option<std::sync::Arc<FaultPlan>>> = Mutex::new(None);

/// Total faults actually injected (fired, not just evaluated), independent
/// of the telemetry recorder so soak tests can assert on it while metrics
/// stay disabled. The gated `fault.injected` counter mirrors it.
static INJECTED: AtomicU64 = AtomicU64::new(0);

/// What an armed rule does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Return an injected `std::io::Error` from the fault point.
    Io,
    /// Panic at the fault point.
    Panic,
    /// Sleep for this many milliseconds, then let the operation proceed.
    Delay(u64),
}

#[derive(Debug)]
struct Rule {
    point: String,
    kind: FaultKind,
    /// Firing probability in `[0, 1]`.
    rate: f64,
    /// Hits seen so far (the deterministic draw's sequence number).
    hits: AtomicU64,
}

/// A seeded, named set of fault rules. Parse one with [`FaultPlan::parse`]
/// and activate it with [`arm`].
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
}

impl FaultPlan {
    /// Parses a `<seed>:<point>=<kind>[@<rate>],...` spec (the `ZAC_FAULTS`
    /// grammar, documented at the module level).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed component.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (seed, rules_spec) = spec
            .split_once(':')
            .ok_or_else(|| format!("fault spec `{spec}` is missing the `<seed>:` prefix"))?;
        let seed: u64 =
            seed.trim().parse().map_err(|_| format!("fault seed `{seed}` is not a u64"))?;
        let mut rules = Vec::new();
        for part in rules_spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (point, action) = part
                .split_once('=')
                .ok_or_else(|| format!("fault rule `{part}` is missing `=<kind>`"))?;
            let (kind_spec, rate) = match action.split_once('@') {
                Some((kind, rate)) => {
                    let rate: f64 =
                        rate.parse().map_err(|_| format!("fault rate `{rate}` is not a number"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(format!("fault rate `{rate}` is outside [0, 1]"));
                    }
                    (kind, rate)
                }
                None => (action, 1.0),
            };
            let kind = match kind_spec {
                "io" => FaultKind::Io,
                "panic" => FaultKind::Panic,
                delay if delay.starts_with("delay") => {
                    let ms = delay["delay".len()..]
                        .parse()
                        .map_err(|_| format!("fault delay `{delay}` needs `delay<ms>`"))?;
                    FaultKind::Delay(ms)
                }
                other => {
                    return Err(format!(
                        "unknown fault kind `{other}` (expected `io`, `panic`, or `delay<ms>`)"
                    ))
                }
            };
            rules.push(Rule {
                point: point.trim().to_string(),
                kind,
                rate,
                hits: AtomicU64::new(0),
            });
        }
        if rules.is_empty() {
            return Err(format!("fault spec `{spec}` declares no rules"));
        }
        Ok(Self { seed, rules })
    }

    /// Evaluates one hit of `point`: the fired kind, or `None` to pass.
    fn draw(&self, point: &str) -> Option<FaultKind> {
        for (index, rule) in self.rules.iter().enumerate() {
            if rule.point != point {
                continue;
            }
            let n = rule.hits.fetch_add(1, Ordering::Relaxed);
            if unit_draw(self.seed, point, index as u64, n) < rule.rate {
                return Some(rule.kind);
            }
        }
        None
    }
}

/// FNV-1a over the draw coordinates, folded to a uniform draw in `[0, 1)`.
/// Pure function of (seed, point, rule, hit index): replayable by seed.
fn unit_draw(seed: u64, point: &str, rule: u64, n: u64) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Part separator so ("ab", "c") and ("a", "bc") diverge.
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(&seed.to_le_bytes());
    eat(point.as_bytes());
    eat(&rule.to_le_bytes());
    eat(&n.to_le_bytes());
    // Top 53 bits → [0, 1) with full double precision.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Arms `plan`: every [`hit`] from now on consults it. Replaces any
/// previously armed plan (its hit counters reset with it).
pub fn arm(plan: FaultPlan) {
    let mut slot = PLAN.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *slot = Some(std::sync::Arc::new(plan));
    STATE.store(STATE_ON, Ordering::Relaxed);
}

/// Disarms fault injection: every [`hit`] returns `None` again.
pub fn disarm() {
    let mut slot = PLAN.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *slot = None;
    STATE.store(STATE_OFF, Ordering::Relaxed);
}

/// Whether a plan is currently armed.
pub fn armed() -> bool {
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// Faults fired so far in this process (always counted, recorder or not).
pub fn injected() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// Evaluates the fault point `point`.
///
/// Disarmed (the default), this is one relaxed atomic load returning
/// `None` — no lock, no allocation. Armed, the plan's matching rules draw
/// deterministically: a `delay` sleeps then passes, a `panic` panics here,
/// and `io` returns `Some(error)` for the caller to propagate as if the
/// underlying operation had failed.
#[inline]
pub fn hit(point: &'static str) -> Option<std::io::Error> {
    match STATE.load(Ordering::Relaxed) {
        STATE_OFF => None,
        STATE_ON => hit_slow(point),
        _ => {
            init_from_env();
            hit(point)
        }
    }
}

#[cold]
fn init_from_env() {
    let target = match std::env::var("ZAC_FAULTS") {
        Ok(spec) if !spec.is_empty() => match FaultPlan::parse(&spec) {
            Ok(plan) => {
                let mut slot = PLAN.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                if slot.is_none() {
                    *slot = Some(std::sync::Arc::new(plan));
                }
                STATE_ON
            }
            Err(e) => {
                eprintln!("zac-telemetry: ignoring invalid ZAC_FAULTS: {e}");
                STATE_OFF
            }
        },
        _ => STATE_OFF,
    };
    // Only transition out of UNINIT: a concurrent arm()/disarm() wins.
    let _ = STATE.compare_exchange(STATE_UNINIT, target, Ordering::Relaxed, Ordering::Relaxed);
}

#[cold]
fn hit_slow(point: &'static str) -> Option<std::io::Error> {
    let plan = {
        let slot = PLAN.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        slot.clone()
    }?;
    let kind = plan.draw(point)?;
    INJECTED.fetch_add(1, Ordering::Relaxed);
    crate::metrics::FAULT_INJECTED.incr();
    match kind {
        FaultKind::Io => Some(std::io::Error::other(format!("injected fault at {point}"))),
        FaultKind::Delay(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            None
        }
        FaultKind::Panic => panic!("injected panic at fault point {point}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Fault state is process-global and tests in one binary run in
    // parallel: every test that arms must hold the gate.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn specs_parse_and_reject_malformed_components() {
        let plan = FaultPlan::parse("7:cache.disk.write=io@0.5,serve.exec.compile=delay5").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.rules.len(), 2);
        assert_eq!(plan.rules[0].kind, FaultKind::Io);
        assert_eq!(plan.rules[0].rate, 0.5);
        assert_eq!(plan.rules[1].kind, FaultKind::Delay(5));
        assert_eq!(plan.rules[1].rate, 1.0);

        for bad in [
            "no-seed-prefix",
            "x:a=io",
            "1:a",
            "1:a=explode",
            "1:a=io@nope",
            "1:a=io@1.5",
            "1:a=delayxx",
            "1:",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn draws_are_deterministic_per_seed_and_respect_rates() {
        let sequence = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::parse(&format!("{seed}:p=io@0.5")).unwrap();
            (0..64).map(|_| plan.draw("p").is_some()).collect()
        };
        assert_eq!(sequence(7), sequence(7), "same seed replays the same faults");
        assert_ne!(sequence(7), sequence(8), "different seeds diverge");
        let fired = sequence(7).iter().filter(|&&f| f).count();
        assert!((16..=48).contains(&fired), "rate 0.5 fires about half: {fired}/64");

        let always = FaultPlan::parse("1:p=io").unwrap();
        assert!((0..32).all(|_| always.draw("p").is_some()), "rate 1 always fires");
        let never = FaultPlan::parse("1:p=io@0").unwrap();
        assert!((0..32).all(|_| never.draw("p").is_none()), "rate 0 never fires");
        assert!(always.draw("other.point").is_none(), "unmatched points pass");
    }

    #[test]
    fn arming_gates_hits_and_disarming_restores_the_fast_path() {
        let _gate = GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        disarm();
        assert!(!armed());
        assert!(hit("fault.test.point").is_none());

        arm(FaultPlan::parse("3:fault.test.point=io").unwrap());
        assert!(armed());
        let before = injected();
        let err = hit("fault.test.point").expect("armed io rule fires");
        assert!(err.to_string().contains("fault.test.point"));
        assert!(injected() > before, "fired faults are counted");
        assert!(hit("fault.other.point").is_none(), "unmatched points still pass");

        disarm();
        assert!(hit("fault.test.point").is_none());
    }

    #[test]
    fn injected_panics_carry_the_point_name() {
        let _gate = GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        arm(FaultPlan::parse("3:fault.panic.point=panic").unwrap());
        let panicked = std::panic::catch_unwind(|| hit("fault.panic.point"));
        disarm();
        let payload = panicked.expect_err("panic rule panics");
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("fault.panic.point"), "{message}");
    }
}
