//! Cooperative cancellation for long compiles.
//!
//! A watchdog (or any other supervisor) holds a [`CancelToken`] and flips it
//! when a deadline passes; the worker thread [`install`](CancelToken::install)s
//! the token for the duration of one compile, and the expensive inner loops
//! (the SA anneal, the scheduler emit loop) poll [`cancelled`] every few
//! dozen iterations. A positive poll unwinds as an explicit
//! `Cancelled` error through the normal `Result` path — no thread is ever
//! killed, and no partial output escapes.
//!
//! The disarmed fast path is one relaxed load of a global counter of
//! installed tokens: when nothing in the process uses cancellation (every
//! direct CLI/bench compile), [`cancelled`] is `false` without touching
//! thread-local storage, so the polls are free to leave in the hot loops
//! and compiler output stays bit-identical.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of currently installed scopes across all threads. Zero means
/// [`cancelled`] can answer `false` from a single relaxed load.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static CURRENT: RefCell<Option<Arc<AtomicBool>>> = const { RefCell::new(None) };
}

/// A shared cancellation flag: cloned freely, flipped once, polled cheaply.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; takes effect at the next poll.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Installs this token as the current thread's cancellation flag until
    /// the returned scope drops. Scopes nest: dropping restores whatever
    /// was installed before.
    pub fn install(&self) -> CancelScope {
        let previous = CURRENT.with(|c| c.replace(Some(Arc::clone(&self.0))));
        ACTIVE.fetch_add(1, Ordering::Relaxed);
        CancelScope { previous }
    }
}

/// Guard returned by [`CancelToken::install`]; restores the previous
/// thread-local flag (usually none) on drop.
pub struct CancelScope {
    previous: Option<Arc<AtomicBool>>,
}

impl Drop for CancelScope {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.previous.take());
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Whether the current thread's installed token (if any) has been
/// cancelled. With no scopes installed anywhere in the process this is one
/// relaxed load; inside a scope it adds a thread-local read.
#[inline]
pub fn cancelled() -> bool {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return false;
    }
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(|flag| flag.load(Ordering::Relaxed)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polls_see_the_installed_token_and_scopes_restore() {
        assert!(!cancelled(), "no scope installed");
        let token = CancelToken::new();
        {
            let _scope = token.install();
            assert!(!cancelled(), "installed but not yet cancelled");
            token.cancel();
            assert!(token.is_cancelled());
            assert!(cancelled(), "the installed token is polled");

            // Nested scope shadows, drop restores.
            let inner = CancelToken::new();
            {
                let _inner = inner.install();
                assert!(!cancelled(), "inner scope shadows the cancelled outer token");
            }
            assert!(cancelled(), "outer token visible again after the inner scope");
        }
        assert!(!cancelled(), "scope dropped: back to the fast path");
    }

    #[test]
    fn cancellation_crosses_threads_through_the_clone() {
        let token = CancelToken::new();
        let remote = token.clone();
        let flipper = std::thread::spawn(move || remote.cancel());
        flipper.join().expect("flipper thread");
        let _scope = token.install();
        assert!(cancelled(), "a clone cancelled on another thread is observed here");
    }
}
