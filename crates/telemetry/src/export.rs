//! Chrome-trace-format span export.
//!
//! Emits the JSON object format understood by `chrome://tracing` and
//! Perfetto (<https://ui.perfetto.dev>): one complete (`"ph":"X"`) event per
//! span, timestamps and durations in microseconds. The viewers rebuild the
//! span tree from per-thread `ts`/`dur` containment, which matches how the
//! recorder nests guards; the recorded parent name is also attached under
//! `args` for tooling that wants it explicit.

use crate::metrics::push_json_str;
use crate::SpanRecord;

/// Renders drained spans (from [`crate::take_spans`]) as a Chrome trace.
///
/// The output is a complete, self-contained JSON document; write it to a
/// `.json` file and load it in `chrome://tracing` or Perfetto.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_str(&mut out, span.name);
        out.push_str(",\"cat\":\"zac\",\"ph\":\"X\",\"ts\":");
        push_micros(&mut out, span.start_ns);
        out.push_str(",\"dur\":");
        push_micros(&mut out, span.dur_ns);
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&span.tid.to_string());
        out.push_str(",\"args\":{");
        let mut first = true;
        if let Some(label) = &span.label {
            out.push_str("\"label\":");
            push_json_str(&mut out, label);
            first = false;
        }
        if let Some(parent) = span.parent {
            if !first {
                out.push(',');
            }
            out.push_str("\"parent\":");
            push_json_str(&mut out, parent);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Nanoseconds rendered as a decimal microsecond value (`1234` → `1.234`),
/// avoiding float formatting entirely.
fn push_micros(out: &mut String, ns: u64) {
    out.push_str(&(ns / 1_000).to_string());
    let frac = ns % 1_000;
    if frac != 0 {
        out.push('.');
        out.push_str(&format!("{frac:03}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_json_has_one_complete_event_per_span() {
        let spans = vec![
            SpanRecord {
                name: "core.compile",
                label: Some("ghz\"n4".to_owned()),
                start_ns: 1_500,
                dur_ns: 2_000_000,
                tid: 1,
                parent: None,
            },
            SpanRecord {
                name: "core.place",
                label: None,
                start_ns: 2_000,
                dur_ns: 1_000_000,
                tid: 1,
                parent: Some("core.compile"),
            },
        ];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2000"));
        assert!(json.contains("\"label\":\"ghz\\\"n4\""));
        assert!(json.contains("\"parent\":\"core.compile\""));
    }

    #[test]
    fn empty_trace_is_still_valid() {
        assert_eq!(chrome_trace_json(&[]), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
    }
}
