//! Dependency-free observability for the ZAC compile pipeline.
//!
//! Three pieces, all process-global and safe to call from any thread:
//!
//! * **Spans** — [`span!`] opens a hierarchical [`SpanGuard`] that records
//!   start/duration/parent into a per-thread buffer; [`take_spans`] merges
//!   and drains every buffer. Disabled spans are inert: no allocation, no
//!   lock, one relaxed atomic load.
//! * **Metrics** — [`metrics`] declares every counter/gauge/histogram in the
//!   workspace as a static with a `<crate>.<subsystem>.<name>` name;
//!   [`MetricsSnapshot::capture`] reads them all and serializes to a stable
//!   JSON schema.
//! * **Exporters** — [`chrome_trace_json`] renders drained spans in Chrome
//!   trace format (load in `chrome://tracing` or <https://ui.perfetto.dev>);
//!   [`MetricsSnapshot::to_json`] is the metrics dump.
//! * **Redaction** — [`redact`]/[`Redacted`] mask circuit labels and file
//!   paths on log surfaces (`[redacted:xxxxxxxx]`, stable per label) when
//!   `ZAC_REDACT=1` or [`set_redaction`] turns it on.
//! * **Fault injection** — [`fault_point!`] marks failure-capable sites;
//!   a seeded [`fault::FaultPlan`] (env `ZAC_FAULTS=seed:spec`) injects IO
//!   errors, panics, and delays deterministically. Disarmed, every point is
//!   one relaxed load.
//! * **Cancellation** — [`cancel::CancelToken`] + [`cancel::cancelled`]
//!   give watchdogs a cooperative way to stop runaway compiles.
//!
//! Recording is off unless `ZAC_TELEMETRY` is set to a non-empty value other
//! than `0` (checked once, at the first [`enabled`] query), or a test/tool
//! flips it programmatically with [`set_enabled`]. Instrumentation never
//! changes compiler output — the recorder only observes; a bit-identity test
//! in the facade crate locks that invariant.
//!
//! Building with the `noop` cargo feature compiles the recorder out
//! entirely: [`enabled`] folds to `false` at compile time and the optimizer
//! deletes every guard and counter behind it.

pub mod cancel;
mod export;
pub mod fault;
pub mod metrics;
pub mod redact;
mod span;

pub use cancel::CancelToken;
pub use export::chrome_trace_json;
pub use fault::FaultPlan;
pub use metrics::MetricsSnapshot;
pub use redact::{redact, redaction_enabled, set_redaction, Redacted};
pub use span::{take_spans, SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicU8, Ordering};

// Tri-state so the environment is consulted exactly once: 0 = uninitialized,
// 1 = disabled, 2 = enabled.
const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Whether the recorder is currently capturing spans and metrics.
///
/// The first call reads `ZAC_TELEMETRY` from the environment; after that the
/// check is a single relaxed atomic load, so it is cheap enough for hot
/// paths. [`set_enabled`] overrides the environment at any time.
#[inline]
pub fn enabled() -> bool {
    if cfg!(feature = "noop") {
        return false;
    }
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("ZAC_TELEMETRY").is_ok_and(|v| !v.is_empty() && v != "0");
    let target = if on { STATE_ON } else { STATE_OFF };
    // Only transition out of UNINIT: a concurrent set_enabled() wins.
    let _ = STATE.compare_exchange(STATE_UNINIT, target, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// Programmatically enables or disables recording, overriding the
/// environment. Used by tests and tools that need deterministic control; a
/// `noop` build ignores it.
pub fn set_enabled(on: bool) {
    if cfg!(feature = "noop") {
        return;
    }
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Opens a [`SpanGuard`] that records a span until it goes out of scope.
///
/// `span!("core.place")` records an unlabeled span; the two-argument form
/// `span!("core.place", &circuit_name)` attaches a label (the label
/// expression is evaluated either way, but only copied to the heap when the
/// recorder is enabled).
///
/// ```
/// let _guard = zac_telemetry::span!("doc.example");
/// // ... timed work ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
    ($name:expr, $label:expr) => {
        $crate::SpanGuard::enter_labeled($name, $label)
    };
}

/// Evaluates the named fault point (see [`fault`]).
///
/// Expands to [`fault::hit`]: `None` passes (and is the only possible
/// answer while no plan is armed — one relaxed load, no allocation);
/// `Some(io::Error)` is an injected failure for the caller to propagate.
/// Armed `delay` rules sleep inside the call, `panic` rules panic there.
///
/// ```
/// if let Some(e) = zac_telemetry::fault_point!("doc.example.write") {
///     let _: std::io::Error = e; // propagate as the real failure would
/// }
/// ```
#[macro_export]
macro_rules! fault_point {
    ($name:expr) => {
        $crate::fault::hit($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_enabled_round_trips() {
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
