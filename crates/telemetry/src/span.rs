//! Hierarchical spans with per-thread buffers.
//!
//! Each recording thread owns a buffer of finished [`SpanRecord`]s plus a
//! stack of open span names (the stack gives each record its parent). The
//! buffers are registered in a process-global list the first time a thread
//! records, and [`take_spans`] drains them all — so the hot path touches
//! only thread-local state plus one uncontended mutex per finished span.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name from the taxonomy (e.g. `"place.sa_anneal"`).
    pub name: &'static str,
    /// Optional dynamic label, typically the circuit name.
    pub label: Option<String>,
    /// Start time in nanoseconds since the process telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Recorder-assigned thread id (sequential from 1, not the OS tid).
    pub tid: u32,
    /// Name of the innermost span open on the same thread when this one
    /// closed, if any.
    pub parent: Option<&'static str>,
}

type SharedBuf = Arc<Mutex<Vec<SpanRecord>>>;

static REGISTRY: Mutex<Vec<SharedBuf>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

struct LocalBuf {
    buf: SharedBuf,
    stack: Vec<&'static str>,
    tid: u32,
}

thread_local! {
    static LOCAL: RefCell<Option<LocalBuf>> = const { RefCell::new(None) };
}

fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// RAII guard created by [`crate::span!`]. Records a [`SpanRecord`] on drop
/// when the recorder was enabled at entry; otherwise completely inert.
///
/// Guards are meant to be scoped (dropped in LIFO order on the thread that
/// created them); a guard dropped on another thread is silently discarded
/// rather than corrupting that thread's span stack.
#[must_use = "a span measures the scope it is alive in"]
pub struct SpanGuard {
    name: &'static str,
    label: Option<String>,
    start_ns: u64,
    active: bool,
}

impl SpanGuard {
    /// Opens an unlabeled span (no-op while the recorder is disabled).
    #[inline]
    pub fn enter(name: &'static str) -> Self {
        if !crate::enabled() {
            return Self { name, label: None, start_ns: 0, active: false };
        }
        Self::enter_active(name, None)
    }

    /// Opens a span labeled with `label` (copied only when recording).
    #[inline]
    pub fn enter_labeled(name: &'static str, label: &str) -> Self {
        if !crate::enabled() {
            return Self { name, label: None, start_ns: 0, active: false };
        }
        Self::enter_active(name, Some(label.to_owned()))
    }

    #[cold]
    fn enter_active(name: &'static str, label: Option<String>) -> Self {
        let start_ns = now_ns();
        let entered = LOCAL
            .try_with(|local| {
                let mut local = local.borrow_mut();
                let buf = local.get_or_insert_with(|| {
                    let buf: SharedBuf = Arc::new(Mutex::new(Vec::new()));
                    REGISTRY.lock().unwrap().push(Arc::clone(&buf));
                    LocalBuf {
                        buf,
                        stack: Vec::new(),
                        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                    }
                });
                buf.stack.push(name);
            })
            .is_ok();
        Self { name, label, start_ns, active: entered }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        let name = self.name;
        let label = self.label.take();
        let start_ns = self.start_ns;
        // try_with: thread-local storage may already be gone during thread
        // teardown; losing the span beats aborting the process.
        let _ = LOCAL.try_with(|local| {
            let mut local = local.borrow_mut();
            let Some(buf) = local.as_mut() else {
                return; // guard moved to a thread that never recorded
            };
            // The matching name sits on top unless the guard was dropped on
            // a different recording thread; only pop what we pushed.
            if buf.stack.last() == Some(&name) {
                buf.stack.pop();
            } else {
                return;
            }
            let parent = buf.stack.last().copied();
            buf.buf.lock().unwrap().push(SpanRecord {
                name,
                label,
                start_ns,
                dur_ns,
                tid: buf.tid,
                parent,
            });
        });
    }
}

/// Drains every thread's finished spans, merged and sorted by start time.
///
/// Open spans are not included — they are recorded when their guard drops.
/// Calling this concurrently with recording is safe; each span lands in
/// exactly one drain.
pub fn take_spans() -> Vec<SpanRecord> {
    let mut out = Vec::new();
    {
        let registry = REGISTRY.lock().unwrap();
        for buf in registry.iter() {
            out.append(&mut buf.lock().unwrap());
        }
    }
    out.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(a.tid.cmp(&b.tid)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Serialize tests that toggle the global recorder.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _gate = GATE.lock().unwrap();
        crate::set_enabled(false);
        let _ = take_spans();
        {
            let _a = crate::span!("test.outer");
            let _b = crate::span!("test.inner", "label");
        }
        assert!(take_spans().is_empty());
    }

    #[test]
    fn nesting_is_captured_via_parents() {
        let _gate = GATE.lock().unwrap();
        crate::set_enabled(true);
        let _ = take_spans();
        {
            let _a = crate::span!("test.outer");
            {
                let _b = crate::span!("test.mid", "c1");
                let _c = crate::span!("test.leaf");
            }
        }
        crate::set_enabled(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 3);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("test.outer").parent, None);
        assert_eq!(by_name("test.mid").parent, Some("test.outer"));
        assert_eq!(by_name("test.mid").label.as_deref(), Some("c1"));
        assert_eq!(by_name("test.leaf").parent, Some("test.mid"));
        // Children are contained in their parent's [start, start+dur].
        let outer = by_name("test.outer");
        let leaf = by_name("test.leaf");
        assert!(leaf.start_ns >= outer.start_ns);
        assert!(leaf.start_ns + leaf.dur_ns <= outer.start_ns + outer.dur_ns);
        assert!(take_spans().is_empty(), "drain must consume the buffers");
    }

    #[test]
    fn spans_from_other_threads_are_merged() {
        let _gate = GATE.lock().unwrap();
        crate::set_enabled(true);
        let _ = take_spans();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let _s = crate::span!("test.worker");
                });
            }
        });
        crate::set_enabled(false);
        let spans = take_spans();
        let workers: Vec<_> = spans.iter().filter(|s| s.name == "test.worker").collect();
        assert_eq!(workers.len(), 2);
        assert_ne!(workers[0].tid, workers[1].tid, "threads get distinct tids");
    }
}
