//! Label redaction for safe logging.
//!
//! Circuit names and file paths can carry customer-identifying information
//! (proprietary algorithm names, home-directory paths), so a deployment
//! that ships service logs off-box needs a way to mask them without losing
//! the ability to correlate lines about the *same* circuit. When redaction
//! is on, [`redact`] replaces a label with `[redacted:xxxxxxxx]`, where the
//! tag is a stable FNV-1a digest of the original — equal labels redact to
//! equal tags, so "which request" survives while "which circuit" does not.
//!
//! Redaction is off unless `ZAC_REDACT` is set to a non-empty value other
//! than `0` (checked once, at the first [`redaction_enabled`] query), or a
//! test/tool flips it with [`set_redaction`] — the same tri-state idiom as
//! the recorder's `enabled`/`set_enabled` pair. Redaction applies to *log
//! surfaces* (service logs, span labels); protocol payloads keep real names
//! because the client sent them in the first place.

use std::borrow::Cow;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Whether labels are currently being masked.
///
/// The first call reads `ZAC_REDACT` from the environment; after that the
/// check is a single relaxed atomic load. [`set_redaction`] overrides the
/// environment at any time.
#[inline]
pub fn redaction_enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("ZAC_REDACT").is_ok_and(|v| !v.is_empty() && v != "0");
    let target = if on { STATE_ON } else { STATE_OFF };
    // Only transition out of UNINIT: a concurrent set_redaction() wins.
    let _ = STATE.compare_exchange(STATE_UNINIT, target, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// Programmatically enables or disables redaction, overriding the
/// environment. Used by tests and tools that need deterministic control.
pub fn set_redaction(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Masks `label` when redaction is on; passes it through untouched (and
/// unallocated) when off.
///
/// The mask is `[redacted:xxxxxxxx]` with a stable 32-bit FNV-1a tag of the
/// original bytes, so equal labels stay correlatable across log lines and
/// runs without revealing the label itself.
pub fn redact(label: &str) -> Cow<'_, str> {
    if !redaction_enabled() {
        return Cow::Borrowed(label);
    }
    Cow::Owned(format!("[redacted:{:08x}]", fnv1a_32(label.as_bytes())))
}

/// A label that redacts itself at `Display` time — defer the decision to
/// when the log line is actually rendered:
///
/// ```
/// use zac_telemetry::Redacted;
/// let line = format!("compiled {}", Redacted("ghz_20"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Redacted<'a>(pub &'a str);

impl fmt::Display for Redacted<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&redact(self.0))
    }
}

fn fnv1a_32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redaction_masks_stably_and_passes_through_when_off() {
        set_redaction(false);
        assert_eq!(redact("qaoa_secret_ansatz"), "qaoa_secret_ansatz");
        assert!(matches!(redact("x"), Cow::Borrowed(_)), "off path must not allocate");

        set_redaction(true);
        let a = redact("qaoa_secret_ansatz").into_owned();
        assert!(a.starts_with("[redacted:") && a.ends_with(']'), "{a}");
        assert!(!a.contains("qaoa"), "original label must not leak: {a}");
        // Stable: equal labels correlate; distinct labels separate.
        assert_eq!(redact("qaoa_secret_ansatz"), a);
        assert_ne!(redact("/home/alice/circuits/f.qasm"), a);
        // Display wrapper renders the same mask.
        assert_eq!(format!("{}", Redacted("qaoa_secret_ansatz")), a);
        set_redaction(false);
        assert_eq!(format!("{}", Redacted("plain")), "plain");
    }
}
