//! Process-global metrics registry.
//!
//! Every metric in the workspace is declared here as a static, named
//! `<crate>.<subsystem>.<name>`, so the registry is closed and a snapshot
//! can enumerate it without any runtime registration machinery. Updates are
//! relaxed atomics; while the recorder is disabled every update is skipped
//! behind one relaxed load (and a `noop` build deletes it outright). Hot
//! loops (the SA inner loop, the readiness re-check loop) batch into plain
//! locals and flush once per phase, so even enabled runs pay no per-move
//! atomics.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotonic event counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter (used only for the statics below).
    pub const fn new(name: &'static str) -> Self {
        Self { name, value: AtomicU64::new(0) }
    }

    /// Metric name (`<crate>.<subsystem>.<name>`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` events (dropped while the recorder is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() && n != 0 {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Instantaneous signed level (e.g. resident cache entries).
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
}

impl Gauge {
    pub const fn new(name: &'static str) -> Self {
        Self { name, value: AtomicI64::new(0) }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Moves the level by `delta` (dropped while the recorder is disabled).
    #[inline]
    pub fn add(&self, delta: i64) {
        if crate::enabled() && delta != 0 {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Maximum number of finite bucket bounds a histogram may declare.
const MAX_BOUNDS: usize = 8;

/// Histogram over `u64` observations with static bucket upper bounds.
///
/// Bucket `i` counts observations `v <= bounds[i]`; one implicit overflow
/// bucket catches the rest.
pub struct Histogram {
    name: &'static str,
    bounds: &'static [u64],
    buckets: [AtomicU64; MAX_BOUNDS + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    pub const fn new(name: &'static str, bounds: &'static [u64]) -> Self {
        assert!(bounds.len() <= MAX_BOUNDS, "too many histogram buckets");
        Self {
            name,
            bounds,
            buckets: [const { AtomicU64::new(0) }; MAX_BOUNDS + 1],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one observation (dropped while the recorder is disabled).
    #[inline]
    pub fn observe(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        let idx = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

/// A counter broken down over a fixed set of integer-indexed slots (e.g.
/// per-shard cache hits).
pub struct CounterFamily<const N: usize> {
    name: &'static str,
    label: &'static str,
    slots: [AtomicU64; N],
}

impl<const N: usize> CounterFamily<N> {
    pub const fn new(name: &'static str, label: &'static str) -> Self {
        Self { name, label, slots: [const { AtomicU64::new(0) }; N] }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` events to slot `index` (dropped while disabled; out-of-range
    /// indices are also dropped rather than panicking in release paths).
    #[inline]
    pub fn add(&self, index: usize, n: u64) {
        if crate::enabled() && n != 0 {
            if let Some(slot) = self.slots.get(index) {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// All slot values in index order.
    pub fn values(&self) -> Vec<u64> {
        self.slots.iter().map(|s| s.load(Ordering::Relaxed)).collect()
    }

    /// Sum across slots.
    pub fn total(&self) -> u64 {
        self.slots.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    fn reset(&self) {
        for s in &self.slots {
            s.store(0, Ordering::Relaxed);
        }
    }
}

// --- the registry -----------------------------------------------------------
// Shard count must match `zac_cache::lru::SHARDS`; the cache crate has a
// compile-time assertion tying the two together.

/// Cache shard fan-out mirrored by the per-shard counter families.
pub const CACHE_SHARDS: usize = 16;

/// `zac-core`: staged compilations run through `Zac::compile_staged`.
pub static CORE_COMPILES: Counter = Counter::new("core.pipeline.compiles");

/// `zac-circuit`: QASM statements parsed (post statement-splitting).
pub static QASM_STATEMENTS: Counter = Counter::new("circuit.qasm.statements_parsed");

/// `zac-place`: SA proposals accepted / rejected, and incremental-cost full
/// re-summations (the drift guard in `IncrementalCost`).
pub static PLACE_SA_ACCEPTED: Counter = Counter::new("place.sa.moves_accepted");
pub static PLACE_SA_REJECTED: Counter = Counter::new("place.sa.moves_rejected");
pub static PLACE_SA_RESYNCS: Counter = Counter::new("place.sa.cost_resyncs");

/// `zac-place`: rectangular-assignment solves (gate placement + Eq. 3
/// returns, both engines) and the size of each solve.
pub static PLACE_ASSIGNMENT_SOLVES: Counter = Counter::new("place.assignment.solves");
pub static PLACE_ASSIGNMENT_MOVERS: Histogram =
    Histogram::new("place.assignment.movers", &[1, 2, 4, 8, 16, 32, 64, 128]);

/// `zac-place`: windowed-engine window growth and quality-guard breaches.
pub static PLACE_WINDOW_GROWS: Counter = Counter::new("place.window.grows");
pub static PLACE_WINDOW_GUARD_BREACHES: Counter = Counter::new("place.window.guard_breaches");

/// `zac-schedule`: rearrangement jobs emitted and event-driven readiness
/// re-examinations (dirty-set rechecks after each commit).
pub static SCHEDULE_JOBS_EMITTED: Counter = Counter::new("schedule.emit.jobs_emitted");
pub static SCHEDULE_READINESS_REEXAMS: Counter = Counter::new("schedule.emit.readiness_reexams");

/// `zac-cache`: compile-cache outcomes, plus per-shard LRU breakdowns and
/// the resident-entry level across all in-process caches.
pub static CACHE_HITS: Counter = Counter::new("cache.lookup.hits");
pub static CACHE_DISK_HITS: Counter = Counter::new("cache.lookup.disk_hits");
pub static CACHE_MISSES: Counter = Counter::new("cache.lookup.misses");
pub static CACHE_INSERTIONS: Counter = Counter::new("cache.lookup.insertions");
pub static CACHE_EVICTIONS: Counter = Counter::new("cache.lru.evictions");
pub static CACHE_RESIDENT: Gauge = Gauge::new("cache.lru.resident");
pub static CACHE_SHARD_HITS: CounterFamily<CACHE_SHARDS> =
    CounterFamily::new("cache.lru.shard_hits", "shard");
pub static CACHE_SHARD_MISSES: CounterFamily<CACHE_SHARDS> =
    CounterFamily::new("cache.lru.shard_misses", "shard");
pub static CACHE_SHARD_EVICTIONS: CounterFamily<CACHE_SHARDS> =
    CounterFamily::new("cache.lru.shard_evictions", "shard");

/// `zac-serve`: request/entry lifecycle counters, queue depth, and
/// end-to-end request latency.
pub static SERVE_REQUESTS_SUBMITTED: Counter = Counter::new("serve.request.submitted");
pub static SERVE_REQUESTS_COMPLETED: Counter = Counter::new("serve.request.completed");
pub static SERVE_REQUESTS_REJECTED: Counter = Counter::new("serve.request.rejected");
pub static SERVE_ENTRIES_OK: Counter = Counter::new("serve.entry.ok");
pub static SERVE_ENTRIES_REJECTED: Counter = Counter::new("serve.entry.rejected");
pub static SERVE_ENTRIES_FAILED: Counter = Counter::new("serve.entry.failed");
pub static SERVE_QUEUE_DEPTH: Gauge = Gauge::new("serve.queue.depth");
pub static SERVE_REQUEST_LATENCY_MS: Histogram =
    Histogram::new("serve.request.latency_ms", &[1, 5, 25, 100, 500, 2_000, 10_000, 60_000]);

/// `zac-serve`: resilience — worker respawns after a panic, circuit-breaker
/// transitions and rejections, and queued entries shed under overload.
pub static SERVE_WORKER_RESPAWNS: Counter = Counter::new("serve.worker.respawns");
pub static SERVE_BREAKER_OPENED: Counter = Counter::new("serve.breaker.opened");
pub static SERVE_BREAKER_REJECTED: Counter = Counter::new("serve.breaker.rejected");
pub static SERVE_BREAKER_HALF_OPEN_PROBES: Counter = Counter::new("serve.breaker.half_open_probes");
pub static SERVE_QUEUE_SHED: Counter = Counter::new("serve.queue.shed");

/// `zac-cache`: crash-safety — corrupt disk entries quarantined,
/// transient write errors retried, and failing read syscalls (which
/// degrade to clean misses) counted.
pub static CACHE_DISK_QUARANTINED: Counter = Counter::new("cache.disk.quarantined");
pub static CACHE_DISK_RETRIES: Counter = Counter::new("cache.disk.retries");
pub static CACHE_DISK_READ_ERRORS: Counter = Counter::new("cache.disk.read_errors");

/// `zac-cache`: the segment-log disk tier — records appended, active
/// segments sealed, garbage records dropped by compaction, and bytes of
/// torn tails / damaged spans recovered past at open or refresh. The gauge
/// tracks live index entries across every open store in the process.
pub static CACHE_SEGMENT_APPENDS: Counter = Counter::new("cache.segment.appends");
pub static CACHE_SEGMENT_SEALS: Counter = Counter::new("cache.segment.seals");
pub static CACHE_SEGMENT_COMPACTED_RECORDS: Counter =
    Counter::new("cache.segment.compacted_records");
pub static CACHE_SEGMENT_RECOVERED_BYTES: Counter = Counter::new("cache.segment.recovered_bytes");
pub static CACHE_SEGMENT_INDEX_ENTRIES: Gauge = Gauge::new("cache.segment.index_entries");

/// `zac-telemetry`: faults actually injected by an armed [`crate::fault`]
/// plan (the always-on mirror is [`crate::fault::injected`]).
pub static FAULT_INJECTED: Counter = Counter::new("fault.injected");

static COUNTERS: &[&Counter] = &[
    &CORE_COMPILES,
    &QASM_STATEMENTS,
    &PLACE_SA_ACCEPTED,
    &PLACE_SA_REJECTED,
    &PLACE_SA_RESYNCS,
    &PLACE_ASSIGNMENT_SOLVES,
    &PLACE_WINDOW_GROWS,
    &PLACE_WINDOW_GUARD_BREACHES,
    &SCHEDULE_JOBS_EMITTED,
    &SCHEDULE_READINESS_REEXAMS,
    &CACHE_HITS,
    &CACHE_DISK_HITS,
    &CACHE_MISSES,
    &CACHE_INSERTIONS,
    &CACHE_EVICTIONS,
    &SERVE_REQUESTS_SUBMITTED,
    &SERVE_REQUESTS_COMPLETED,
    &SERVE_REQUESTS_REJECTED,
    &SERVE_ENTRIES_OK,
    &SERVE_ENTRIES_REJECTED,
    &SERVE_ENTRIES_FAILED,
    &SERVE_WORKER_RESPAWNS,
    &SERVE_BREAKER_OPENED,
    &SERVE_BREAKER_REJECTED,
    &SERVE_BREAKER_HALF_OPEN_PROBES,
    &SERVE_QUEUE_SHED,
    &CACHE_DISK_QUARANTINED,
    &CACHE_DISK_RETRIES,
    &CACHE_DISK_READ_ERRORS,
    &CACHE_SEGMENT_APPENDS,
    &CACHE_SEGMENT_SEALS,
    &CACHE_SEGMENT_COMPACTED_RECORDS,
    &CACHE_SEGMENT_RECOVERED_BYTES,
    &FAULT_INJECTED,
];
static GAUGES: &[&Gauge] = &[&CACHE_RESIDENT, &SERVE_QUEUE_DEPTH, &CACHE_SEGMENT_INDEX_ENTRIES];
static HISTOGRAMS: &[&Histogram] = &[&PLACE_ASSIGNMENT_MOVERS, &SERVE_REQUEST_LATENCY_MS];
static FAMILIES: &[&CounterFamily<CACHE_SHARDS>] =
    &[&CACHE_SHARD_HITS, &CACHE_SHARD_MISSES, &CACHE_SHARD_EVICTIONS];

/// Resets every metric to zero. Meant for single-process tools (benches)
/// that want run-scoped totals; concurrent updates may interleave with the
/// reset.
pub fn reset() {
    for c in COUNTERS {
        c.reset();
    }
    for g in GAUGES {
        g.reset();
    }
    for h in HISTOGRAMS {
        h.reset();
    }
    for f in FAMILIES {
        f.reset();
    }
}

// --- snapshots --------------------------------------------------------------

/// Version tag of the snapshot JSON schema emitted by
/// [`MetricsSnapshot::to_json`].
pub const SNAPSHOT_FORMAT_VERSION: u64 = 1;

/// Point-in-time copy of a histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub name: &'static str,
    pub bounds: Vec<u64>,
    /// One count per bound, plus the trailing overflow bucket.
    pub buckets: Vec<u64>,
    pub sum: u64,
    pub count: u64,
}

/// Point-in-time copy of a counter family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilySnapshot {
    pub name: &'static str,
    /// What the slot index means (e.g. `"shard"`).
    pub label: &'static str,
    pub values: Vec<u64>,
}

/// Point-in-time copy of the whole registry, sorted by metric name.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(&'static str, u64)>,
    pub gauges: Vec<(&'static str, i64)>,
    pub histograms: Vec<HistogramSnapshot>,
    pub families: Vec<FamilySnapshot>,
}

impl MetricsSnapshot {
    /// Reads every metric (relaxed; values from concurrent updates may be
    /// slightly torn across metrics, never within one).
    pub fn capture() -> Self {
        let mut counters: Vec<_> = COUNTERS.iter().map(|c| (c.name, c.get())).collect();
        counters.sort_by_key(|&(name, _)| name);
        let mut gauges: Vec<_> = GAUGES.iter().map(|g| (g.name, g.get())).collect();
        gauges.sort_by_key(|&(name, _)| name);
        let mut histograms: Vec<_> = HISTOGRAMS
            .iter()
            .map(|h| HistogramSnapshot {
                name: h.name,
                bounds: h.bounds.to_vec(),
                buckets: h.buckets[..=h.bounds.len()]
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
                sum: h.sum.load(Ordering::Relaxed),
                count: h.count.load(Ordering::Relaxed),
            })
            .collect();
        histograms.sort_by_key(|h| h.name);
        let mut families: Vec<_> = FAMILIES
            .iter()
            .map(|f| FamilySnapshot { name: f.name, label: f.label, values: f.values() })
            .collect();
        families.sort_by_key(|f| f.name);
        Self { counters, gauges, histograms, families }
    }

    /// The increase of every monotonic metric since `earlier` (counters,
    /// histogram buckets, families subtract; gauges keep their current
    /// level, since levels are not monotonic).
    pub fn delta_since(&self, earlier: &Self) -> Self {
        let prev_counter =
            |name: &str| earlier.counters.iter().find(|&&(n, _)| n == name).map_or(0, |&(_, v)| v);
        let counters =
            self.counters.iter().map(|&(n, v)| (n, v.saturating_sub(prev_counter(n)))).collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                let prev = earlier.histograms.iter().find(|p| p.name == h.name);
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| {
                        b.saturating_sub(prev.and_then(|p| p.buckets.get(i)).copied().unwrap_or(0))
                    })
                    .collect();
                HistogramSnapshot {
                    name: h.name,
                    bounds: h.bounds.clone(),
                    buckets,
                    sum: h.sum.saturating_sub(prev.map_or(0, |p| p.sum)),
                    count: h.count.saturating_sub(prev.map_or(0, |p| p.count)),
                }
            })
            .collect();
        let families = self
            .families
            .iter()
            .map(|f| {
                let prev = earlier.families.iter().find(|p| p.name == f.name);
                let values = f
                    .values
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        v.saturating_sub(prev.and_then(|p| p.values.get(i)).copied().unwrap_or(0))
                    })
                    .collect();
                FamilySnapshot { name: f.name, label: f.label, values }
            })
            .collect();
        Self { counters, gauges: self.gauges.clone(), histograms, families }
    }

    /// Value of the named counter, or 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|&&(n, _)| n == name).map_or(0, |&(_, v)| v)
    }

    /// Sum over all counters whose name starts with `prefix` (handy for
    /// asserting that a whole subsystem reported activity).
    pub fn counter_sum_with_prefix(&self, prefix: &str) -> u64 {
        self.counters.iter().filter(|(n, _)| n.starts_with(prefix)).map(|&(_, v)| v).sum()
    }

    /// Serializes to the stable snapshot schema (see DESIGN.md §8):
    ///
    /// ```json
    /// {
    ///   "version": 1,
    ///   "counters": {"<name>": <u64>, ...},
    ///   "gauges": {"<name>": <i64>, ...},
    ///   "histograms": {"<name>": {"bounds": [...], "buckets": [...],
    ///                              "sum": <u64>, "count": <u64>}, ...},
    ///   "families": {"<name>": {"label": "<slot meaning>",
    ///                            "values": [...]}, ...}
    /// }
    /// ```
    ///
    /// Keys are sorted, so equal snapshots serialize byte-identically.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"version\":");
        out.push_str(&SNAPSHOT_FORMAT_VERSION.to_string());
        out.push_str(",\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, h.name);
            out.push_str(":{\"bounds\":");
            push_u64_array(&mut out, &h.bounds);
            out.push_str(",\"buckets\":");
            push_u64_array(&mut out, &h.buckets);
            out.push_str(",\"sum\":");
            out.push_str(&h.sum.to_string());
            out.push_str(",\"count\":");
            out.push_str(&h.count.to_string());
            out.push('}');
        }
        out.push_str("},\"families\":{");
        for (i, f) in self.families.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, f.name);
            out.push_str(":{\"label\":");
            push_json_str(&mut out, f.label);
            out.push_str(",\"values\":");
            push_u64_array(&mut out, &f.values);
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

fn push_u64_array(out: &mut String, values: &[u64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_metrics_stay_zero() {
        let _gate = GATE.lock().unwrap();
        crate::set_enabled(false);
        let before = CORE_COMPILES.get();
        CORE_COMPILES.incr();
        CACHE_RESIDENT.add(5);
        PLACE_ASSIGNMENT_MOVERS.observe(3);
        CACHE_SHARD_HITS.add(0, 7);
        assert_eq!(CORE_COMPILES.get(), before);
    }

    #[test]
    fn enabled_metrics_accumulate_and_delta() {
        let _gate = GATE.lock().unwrap();
        crate::set_enabled(true);
        let before = MetricsSnapshot::capture();
        PLACE_SA_ACCEPTED.add(3);
        PLACE_SA_REJECTED.incr();
        PLACE_ASSIGNMENT_MOVERS.observe(2);
        PLACE_ASSIGNMENT_MOVERS.observe(500); // overflow bucket
        CACHE_SHARD_HITS.add(2, 4);
        CACHE_SHARD_HITS.add(999, 1); // out of range: dropped
        let delta = MetricsSnapshot::capture().delta_since(&before);
        crate::set_enabled(false);
        assert_eq!(delta.counter("place.sa.moves_accepted"), 3);
        assert_eq!(delta.counter("place.sa.moves_rejected"), 1);
        assert_eq!(delta.counter_sum_with_prefix("place.sa."), 4);
        let h = delta.histograms.iter().find(|h| h.name == "place.assignment.movers").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 502);
        assert_eq!(h.buckets.len(), h.bounds.len() + 1);
        assert_eq!(*h.buckets.last().unwrap(), 1, "500 lands in overflow");
        let f = delta.families.iter().find(|f| f.name == "cache.lru.shard_hits").unwrap();
        assert_eq!(f.values.len(), CACHE_SHARDS);
        assert_eq!(f.values[2], 4);
        assert_eq!(f.values.iter().sum::<u64>(), 4);
    }

    #[test]
    fn snapshot_json_is_stable_and_escaped() {
        let _gate = GATE.lock().unwrap();
        crate::set_enabled(false);
        let snap = MetricsSnapshot::capture();
        let a = snap.to_json();
        let b = snap.to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"version\":1,\"counters\":{"));
        assert!(a.contains("\"histograms\""));
        assert!(a.contains("\"families\""));
        // The segment-tier metrics are part of the registered schema: every
        // snapshot carries them even at zero.
        for name in [
            "cache.segment.appends",
            "cache.segment.seals",
            "cache.segment.compacted_records",
            "cache.segment.recovered_bytes",
            "cache.segment.index_entries",
        ] {
            assert!(a.contains(&format!("\"{name}\"")), "snapshot lacks {name}: {a}");
        }
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }
}
