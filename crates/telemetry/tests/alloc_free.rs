//! Overhead guard: a disabled recorder is allocation-free.
//!
//! Every compile hot path carries `span!` guards and counter updates, so the
//! disabled state must cost nothing beyond one relaxed atomic load — in
//! particular, **zero heap allocations**. A counting global allocator makes
//! the claim checkable instead of asserted; a companion check confirms the
//! enabled path actually records (so the guard is not vacuous).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use zac_telemetry::metrics;

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// One iteration of a compile-loop-shaped instrumentation mix: nested
/// labeled spans plus every metric kind.
fn instrumented_work(round: u64, label: &str) {
    let _outer = zac_telemetry::span!("test.compile", label);
    {
        let _place = zac_telemetry::span!("test.place");
        metrics::PLACE_SA_ACCEPTED.add(round);
        metrics::PLACE_SA_REJECTED.incr();
        metrics::PLACE_ASSIGNMENT_MOVERS.observe(round % 97);
    }
    let _schedule = zac_telemetry::span!("test.schedule", label);
    metrics::SCHEDULE_JOBS_EMITTED.add(3);
    metrics::CACHE_SHARD_HITS.add((round % 16) as usize, 1);
    metrics::CACHE_RESIDENT.add(1);
    // The resilience fast paths ride the same hot loops: a disarmed fault
    // point and an uninstalled cancellation poll must both be free.
    assert!(zac_telemetry::fault_point!("test.alloc_free.point").is_none());
    assert!(!zac_telemetry::cancel::cancelled());
}

// One test with ordered phases: the recorder state is process-global, so
// parallel #[test] functions toggling it would race each other.
#[test]
fn disabled_recorder_is_allocation_free_and_enabled_recorder_records() {
    zac_telemetry::set_enabled(false);
    let label = String::from("ising_n42");

    // Warm-up (lets lazy statics like the env gate settle).
    instrumented_work(0, &label);

    for round in 1..=1_000u64 {
        let before = allocations();
        instrumented_work(round, &label);
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "round {round}: disabled telemetry allocated on the hot path"
        );
    }
    assert!(zac_telemetry::take_spans().is_empty());
    assert_eq!(metrics::SCHEDULE_JOBS_EMITTED.get(), 0);

    // The guard above is only meaningful if the same mix records when the
    // recorder is on.
    zac_telemetry::set_enabled(true);
    instrumented_work(5, "ghz_n4");
    zac_telemetry::set_enabled(false);

    let spans = zac_telemetry::take_spans();
    assert!(spans.iter().any(|s| s.name == "test.compile"));
    assert!(spans.iter().any(|s| s.name == "test.place" && s.parent == Some("test.compile")));
    assert_eq!(metrics::SCHEDULE_JOBS_EMITTED.get(), 3);
    assert_eq!(metrics::PLACE_ASSIGNMENT_MOVERS.count(), 1);
}
