//! The [`Architecture`] type: a validated zoned neutral-atom machine layout.

use crate::geometry::Point;
use crate::model::{AodArray, Loc, SiteId, SlmArray, Zone, ZoneKind};
use std::fmt;

/// Validation error for an architecture description.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchError {
    /// The architecture has no AOD array, so no qubit can ever move.
    NoAod,
    /// An entanglement zone has fewer than one SLM array.
    EntanglementZoneWithoutSlm {
        /// Index of the offending zone.
        zone: usize,
    },
    /// The SLM arrays of an entanglement zone disagree on grid shape, so
    /// Rydberg sites cannot be formed by zipping them.
    MismatchedSiteGrids {
        /// Index of the offending zone.
        zone: usize,
    },
    /// An SLM array extends beyond its zone's boundary.
    SlmOutsideZone {
        /// Kind of the zone.
        kind: ZoneKind,
        /// Index of the zone within its kind.
        zone: usize,
        /// The offending SLM id.
        slm_id: usize,
    },
    /// Two zones overlap.
    OverlappingZones {
        /// Kind and index of the first zone.
        first: (ZoneKind, usize),
        /// Kind and index of the second zone.
        second: (ZoneKind, usize),
    },
    /// Two SLM arrays share an id.
    DuplicateSlmId {
        /// The repeated id.
        slm_id: usize,
    },
    /// A referenced location does not exist in this architecture.
    InvalidLoc {
        /// The offending location.
        loc: Loc,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoAod => write!(f, "architecture has no AOD array"),
            Self::EntanglementZoneWithoutSlm { zone } => {
                write!(f, "entanglement zone {zone} has no SLM array")
            }
            Self::MismatchedSiteGrids { zone } => {
                write!(f, "entanglement zone {zone} has SLM arrays with different grid shapes")
            }
            Self::SlmOutsideZone { kind, zone, slm_id } => {
                write!(f, "SLM {slm_id} extends outside {kind} zone {zone}")
            }
            Self::OverlappingZones { first, second } => {
                write!(f, "{} zone {} overlaps {} zone {}", first.0, first.1, second.0, second.1)
            }
            Self::DuplicateSlmId { slm_id } => write!(f, "duplicate SLM id {slm_id}"),
            Self::InvalidLoc { loc } => write!(f, "invalid location {loc}"),
        }
    }
}

impl std::error::Error for ArchError {}

/// A complete zoned architecture: AOD arrays plus storage, entanglement and
/// readout zones (paper Sec. III, Fig. 3).
///
/// Construct with [`Architecture::new`] (validated) or use a preset such as
/// [`Architecture::reference`].
///
/// # Example
///
/// ```
/// use zac_arch::Architecture;
/// let arch = Architecture::reference();
/// assert_eq!(arch.num_sites(), 7 * 20);
/// assert_eq!(arch.storage_capacity(), 100 * 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Architecture {
    name: String,
    aods: Vec<AodArray>,
    storage_zones: Vec<Zone>,
    entanglement_zones: Vec<Zone>,
    readout_zones: Vec<Zone>,
}

impl Architecture {
    /// Creates and validates an architecture.
    ///
    /// # Errors
    ///
    /// Returns an [`ArchError`] if the layout is inconsistent: no AOD, an
    /// entanglement zone without SLMs or with mismatched site grids, SLMs
    /// outside their zone, overlapping zones, or duplicate SLM ids.
    pub fn new(
        name: impl Into<String>,
        aods: Vec<AodArray>,
        storage_zones: Vec<Zone>,
        entanglement_zones: Vec<Zone>,
        readout_zones: Vec<Zone>,
    ) -> Result<Self, ArchError> {
        let arch =
            Self { name: name.into(), aods, storage_zones, entanglement_zones, readout_zones };
        arch.validate()?;
        Ok(arch)
    }

    fn validate(&self) -> Result<(), ArchError> {
        if self.aods.is_empty() {
            return Err(ArchError::NoAod);
        }
        // Entanglement zones must host at least one SLM and consistent grids.
        for (i, z) in self.entanglement_zones.iter().enumerate() {
            if z.slms.is_empty() {
                return Err(ArchError::EntanglementZoneWithoutSlm { zone: i });
            }
            let shape = (z.slms[0].num_row, z.slms[0].num_col);
            if z.slms.iter().any(|s| (s.num_row, s.num_col) != shape) {
                return Err(ArchError::MismatchedSiteGrids { zone: i });
            }
        }
        // SLMs inside zones.
        let zone_lists = [
            (ZoneKind::Storage, &self.storage_zones),
            (ZoneKind::Entanglement, &self.entanglement_zones),
            (ZoneKind::Readout, &self.readout_zones),
        ];
        for (kind, zones) in zone_lists {
            for (i, z) in zones.iter().enumerate() {
                let zb = z.bounds();
                for slm in &z.slms {
                    let b = slm.bounds();
                    let corner = Point::new(b.origin.x + b.width, b.origin.y + b.height);
                    if !zb.contains(b.origin) || !zb.contains(corner) {
                        return Err(ArchError::SlmOutsideZone {
                            kind,
                            zone: i,
                            slm_id: slm.slm_id,
                        });
                    }
                }
            }
        }
        // No overlapping zones.
        let mut all: Vec<(ZoneKind, usize, &Zone)> = Vec::new();
        for (kind, zones) in [
            (ZoneKind::Storage, &self.storage_zones),
            (ZoneKind::Entanglement, &self.entanglement_zones),
            (ZoneKind::Readout, &self.readout_zones),
        ] {
            for (i, z) in zones.iter().enumerate() {
                all.push((kind, i, z));
            }
        }
        for a in 0..all.len() {
            for b in (a + 1)..all.len() {
                if all[a].2.bounds().intersects(&all[b].2.bounds()) {
                    return Err(ArchError::OverlappingZones {
                        first: (all[a].0, all[a].1),
                        second: (all[b].0, all[b].1),
                    });
                }
            }
        }
        // Unique SLM ids.
        let mut ids = std::collections::HashSet::new();
        for (_, _, z) in &all {
            for slm in &z.slms {
                if !ids.insert(slm.slm_id) {
                    return Err(ArchError::DuplicateSlmId { slm_id: slm.slm_id });
                }
            }
        }
        Ok(())
    }

    /// The architecture's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The AOD arrays.
    pub fn aods(&self) -> &[AodArray] {
        &self.aods
    }

    /// The storage zones.
    pub fn storage_zones(&self) -> &[Zone] {
        &self.storage_zones
    }

    /// The entanglement zones.
    pub fn entanglement_zones(&self) -> &[Zone] {
        &self.entanglement_zones
    }

    /// The readout zones.
    pub fn readout_zones(&self) -> &[Zone] {
        &self.readout_zones
    }

    /// Returns a copy with `n` identical AODs (clones of the first).
    ///
    /// Used by the multi-AOD experiments (paper Sec. VII-G).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_num_aods(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one AOD is required");
        let proto = self.aods[0].clone();
        self.aods = (0..n).map(|i| AodArray { aod_id: i, ..proto.clone() }).collect();
        self
    }

    // ---- Rydberg sites -------------------------------------------------

    /// Number of traps per Rydberg site in entanglement zone `zone`
    /// (= number of SLM arrays in the zone; the reference architecture has 2).
    pub fn site_capacity(&self, zone: usize) -> usize {
        self.entanglement_zones[zone].slms.len()
    }

    /// `(rows, cols)` of the site grid of entanglement zone `zone`.
    pub fn site_grid(&self, zone: usize) -> (usize, usize) {
        let slm = &self.entanglement_zones[zone].slms[0];
        (slm.num_row, slm.num_col)
    }

    /// Total number of Rydberg sites across all entanglement zones.
    pub fn num_sites(&self) -> usize {
        (0..self.entanglement_zones.len())
            .map(|z| {
                let (r, c) = self.site_grid(z);
                r * c
            })
            .sum()
    }

    /// Iterates over every Rydberg site of the architecture.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        (0..self.entanglement_zones.len()).flat_map(move |z| {
            let (rows, cols) = self.site_grid(z);
            (0..rows).flat_map(move |r| (0..cols).map(move |c| SiteId::new(z, r, c)))
        })
    }

    /// Reference position of a site: its slot-0 (left) trap, per the paper's
    /// convention ("we use the left trap in a Rydberg site as its reference
    /// location").
    ///
    /// # Panics
    ///
    /// Panics if the site does not exist.
    pub fn site_position(&self, site: SiteId) -> Point {
        self.entanglement_zones[site.zone].slms[0].trap_position(site.row, site.col)
    }

    /// The Rydberg site whose reference position is nearest to `p`.
    ///
    /// # Panics
    ///
    /// Panics if the architecture has no entanglement zone.
    pub fn nearest_site(&self, p: Point) -> SiteId {
        let mut best = None;
        for (z, zone) in self.entanglement_zones.iter().enumerate() {
            let slm = &zone.slms[0];
            let (row, col) = slm.nearest_trap(p);
            let cand = SiteId::new(z, row, col);
            let d = self.site_position(cand).distance(p);
            match best {
                None => best = Some((cand, d)),
                Some((_, bd)) if d < bd => best = Some((cand, d)),
                _ => {}
            }
        }
        best.expect("no entanglement zone").0
    }

    /// The site "in the middle" of two sites, used as a gate's nearest site
    /// `ω_near` (paper Sec. V-A): row `⌊(r+r')/2⌋`, col `⌊(c+c')/2⌋`.
    ///
    /// If the two sites live in different zones, the first site's zone wins
    /// (the middle is then computed within that zone).
    pub fn middle_site(&self, a: SiteId, b: SiteId) -> SiteId {
        SiteId::middle(a, b)
    }

    // ---- Storage traps -------------------------------------------------

    /// Total number of storage traps across all storage zones (SLM 0 each).
    pub fn storage_capacity(&self) -> usize {
        self.storage_zones.iter().flat_map(|z| z.slms.first()).map(SlmArray::num_traps).sum()
    }

    /// `(rows, cols)` of the trap grid of storage zone `zone`.
    pub fn storage_grid(&self, zone: usize) -> (usize, usize) {
        let slm = &self.storage_zones[zone].slms[0];
        (slm.num_row, slm.num_col)
    }

    /// The storage trap nearest to `p`, as a [`Loc::Storage`].
    ///
    /// # Panics
    ///
    /// Panics if the architecture has no storage zone.
    pub fn nearest_storage_trap(&self, p: Point) -> Loc {
        let mut best = None;
        for (z, zone) in self.storage_zones.iter().enumerate() {
            let slm = &zone.slms[0];
            let (row, col) = slm.nearest_trap(p);
            let cand = Loc::Storage { zone: z, row, col };
            let d = self.position(cand).distance(p);
            match best {
                None => best = Some((cand, d)),
                Some((_, bd)) if d < bd => best = Some((cand, d)),
                _ => {}
            }
        }
        best.expect("no storage zone").0
    }

    // ---- Locations -----------------------------------------------------

    /// The physical position of a location.
    ///
    /// # Panics
    ///
    /// Panics if the location does not exist in this architecture.
    pub fn position(&self, loc: Loc) -> Point {
        match loc {
            Loc::Storage { zone, row, col } => {
                self.storage_zones[zone].slms[0].trap_position(row, col)
            }
            Loc::Site { zone, row, col, slot } => {
                self.entanglement_zones[zone].slms[slot].trap_position(row, col)
            }
        }
    }

    /// Checks that a location exists.
    ///
    /// # Errors
    ///
    /// [`ArchError::InvalidLoc`] if any index is out of range.
    pub fn check_loc(&self, loc: Loc) -> Result<(), ArchError> {
        let ok = match loc {
            Loc::Storage { zone, row, col } => self
                .storage_zones
                .get(zone)
                .and_then(|z| z.slms.first())
                .is_some_and(|s| row < s.num_row && col < s.num_col),
            Loc::Site { zone, row, col, slot } => self
                .entanglement_zones
                .get(zone)
                .and_then(|z| z.slms.get(slot))
                .is_some_and(|s| row < s.num_row && col < s.num_col),
        };
        if ok {
            Ok(())
        } else {
            Err(ArchError::InvalidLoc { loc })
        }
    }

    /// Translates a location to its `(slm_id, row, col)` triple, the
    /// addressing ZAIR's `qloc` uses.
    ///
    /// # Panics
    ///
    /// Panics if the location does not exist.
    pub fn loc_to_slm(&self, loc: Loc) -> (usize, usize, usize) {
        match loc {
            Loc::Storage { zone, row, col } => (self.storage_zones[zone].slms[0].slm_id, row, col),
            Loc::Site { zone, row, col, slot } => {
                (self.entanglement_zones[zone].slms[slot].slm_id, row, col)
            }
        }
    }

    /// Translates an `(slm_id, row, col)` triple back to a [`Loc`].
    ///
    /// Returns `None` if no SLM with that id exists or indices are out of
    /// range.
    pub fn slm_to_loc(&self, slm_id: usize, row: usize, col: usize) -> Option<Loc> {
        for (z, zone) in self.storage_zones.iter().enumerate() {
            for slm in &zone.slms {
                if slm.slm_id == slm_id {
                    return (row < slm.num_row && col < slm.num_col).then_some(Loc::Storage {
                        zone: z,
                        row,
                        col,
                    });
                }
            }
        }
        for (z, zone) in self.entanglement_zones.iter().enumerate() {
            for (slot, slm) in zone.slms.iter().enumerate() {
                if slm.slm_id == slm_id {
                    return (row < slm.num_row && col < slm.num_col).then_some(Loc::Site {
                        zone: z,
                        row,
                        col,
                        slot,
                    });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_architecture_is_valid() {
        let arch = Architecture::reference();
        assert_eq!(arch.aods().len(), 1);
        assert_eq!(arch.num_sites(), 140);
        assert_eq!(arch.site_capacity(0), 2);
        assert_eq!(arch.storage_capacity(), 10_000);
    }

    #[test]
    fn reference_geometry_matches_paper() {
        // Paper Sec. III: entanglement SLMs at offsets (35,307) and (37,307),
        // x sep = 12, y sep = 10; storage sep = 3.
        let arch = Architecture::reference();
        let w00 = arch.site_position(SiteId::new(0, 0, 0));
        assert_eq!(w00, Point::new(35.0, 307.0));
        let right = arch.position(Loc::Site { zone: 0, row: 0, col: 0, slot: 1 });
        assert_eq!(right, Point::new(37.0, 307.0));
        let w12 = arch.site_position(SiteId::new(0, 1, 2));
        assert_eq!(w12, Point::new(35.0 + 24.0, 317.0));
        let s = arch.position(Loc::Storage { zone: 0, row: 99, col: 1 });
        assert_eq!(s, Point::new(3.0, 297.0));
    }

    #[test]
    fn no_aod_rejected() {
        let err = Architecture::new("x", vec![], vec![], vec![], vec![]).unwrap_err();
        assert_eq!(err, ArchError::NoAod);
    }

    #[test]
    fn mismatched_site_grids_rejected() {
        let aod = AodArray::new(0, 2.0, 10, 10);
        let z = Zone::new(
            0,
            Point::new(0.0, 0.0),
            (100.0, 100.0),
            vec![
                SlmArray::new(0, (12.0, 10.0), 5, 5, Point::new(0.0, 0.0)),
                SlmArray::new(1, (12.0, 10.0), 5, 4, Point::new(2.0, 0.0)),
            ],
        );
        let err = Architecture::new("x", vec![aod], vec![], vec![z], vec![]).unwrap_err();
        assert_eq!(err, ArchError::MismatchedSiteGrids { zone: 0 });
    }

    #[test]
    fn slm_outside_zone_rejected() {
        let aod = AodArray::new(0, 2.0, 10, 10);
        let z = Zone::new(
            0,
            Point::new(0.0, 0.0),
            (10.0, 10.0),
            vec![SlmArray::new(0, (3.0, 3.0), 10, 10, Point::new(0.0, 0.0))],
        );
        let err = Architecture::new("x", vec![aod], vec![z], vec![], vec![]).unwrap_err();
        assert!(matches!(err, ArchError::SlmOutsideZone { .. }));
    }

    #[test]
    fn overlapping_zones_rejected() {
        let aod = AodArray::new(0, 2.0, 10, 10);
        let mk = |id| Zone::new(id, Point::new(0.0, 0.0), (10.0, 10.0), vec![]);
        let err =
            Architecture::new("x", vec![aod], vec![mk(0), mk(1)], vec![], vec![]).unwrap_err();
        assert!(matches!(err, ArchError::OverlappingZones { .. }));
    }

    #[test]
    fn duplicate_slm_id_rejected() {
        let aod = AodArray::new(0, 2.0, 10, 10);
        let s = Zone::new(
            0,
            Point::new(0.0, 0.0),
            (30.0, 30.0),
            vec![SlmArray::new(5, (3.0, 3.0), 5, 5, Point::new(0.0, 0.0))],
        );
        let e = Zone::new(
            0,
            Point::new(0.0, 50.0),
            (30.0, 30.0),
            vec![SlmArray::new(5, (12.0, 10.0), 3, 3, Point::new(0.0, 50.0))],
        );
        let err = Architecture::new("x", vec![aod], vec![s], vec![e], vec![]).unwrap_err();
        assert_eq!(err, ArchError::DuplicateSlmId { slm_id: 5 });
    }

    #[test]
    fn nearest_site_and_trap() {
        let arch = Architecture::reference();
        // A point right at w(0,0) maps to site (0,0).
        let s = arch.nearest_site(Point::new(35.0, 307.0));
        assert_eq!(s, SiteId::new(0, 0, 0));
        // A point near the top of storage maps to a row-99 trap.
        let t = arch.nearest_storage_trap(Point::new(3.0, 297.0));
        assert_eq!(t, Loc::Storage { zone: 0, row: 99, col: 1 });
    }

    #[test]
    fn middle_site_formula() {
        let arch = Architecture::reference();
        let a = SiteId::new(0, 0, 0);
        let b = SiteId::new(0, 1, 3);
        assert_eq!(arch.middle_site(a, b), SiteId::new(0, 0, 1));
        // paper example: nearest sites rows 0,0 cols 0,1 → site (0,0).
        let c = SiteId::new(0, 0, 1);
        assert_eq!(arch.middle_site(a, c), SiteId::new(0, 0, 0));
    }

    #[test]
    fn loc_slm_roundtrip() {
        let arch = Architecture::reference();
        for loc in [
            Loc::Storage { zone: 0, row: 99, col: 13 },
            Loc::Site { zone: 0, row: 1, col: 2, slot: 1 },
            Loc::Site { zone: 0, row: 0, col: 0, slot: 0 },
        ] {
            let (id, r, c) = arch.loc_to_slm(loc);
            assert_eq!(arch.slm_to_loc(id, r, c), Some(loc));
        }
        assert_eq!(arch.slm_to_loc(42, 0, 0), None);
    }

    #[test]
    fn check_loc_bounds() {
        let arch = Architecture::reference();
        assert!(arch.check_loc(Loc::Storage { zone: 0, row: 99, col: 99 }).is_ok());
        assert!(arch.check_loc(Loc::Storage { zone: 0, row: 100, col: 0 }).is_err());
        assert!(arch.check_loc(Loc::Site { zone: 0, row: 6, col: 19, slot: 1 }).is_ok());
        assert!(arch.check_loc(Loc::Site { zone: 0, row: 7, col: 0, slot: 0 }).is_err());
        assert!(arch.check_loc(Loc::Site { zone: 0, row: 0, col: 0, slot: 2 }).is_err());
    }

    #[test]
    fn with_num_aods() {
        let arch = Architecture::reference().with_num_aods(4);
        assert_eq!(arch.aods().len(), 4);
        assert_eq!(arch.aods()[3].aod_id, 3);
    }

    #[test]
    fn sites_iterator_covers_grid() {
        let arch = Architecture::reference();
        let sites: Vec<SiteId> = arch.sites().collect();
        assert_eq!(sites.len(), 140);
        assert!(sites.contains(&SiteId::new(0, 6, 19)));
    }
}
