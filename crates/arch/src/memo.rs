//! Geometry memoization: dense per-[`Loc`] lookup tables over a static
//! architecture.
//!
//! The placement hot loops (`initial_placement_cost`, the SA inner loop,
//! `solve_stage`) resolve locations to physical positions millions of times
//! over a geometry that never changes within one compilation. [`GeomCache`]
//! precomputes every trap position once per [`Architecture`] so the hot
//! callers do a single array load instead of re-deriving
//! `offset + index · sep` through two levels of `Vec` indirection.
//!
//! The [`Geometry`] trait abstracts over the two providers: the
//! [`Architecture`] itself (always correct, no setup cost) and the cache.
//! Every method of the cache is **bit-identical** to the corresponding
//! `Architecture` method — the tables store the very values the formulas
//! produce, and the nearest-site/trap searches replicate the same iteration
//! order and comparisons (locked by the exhaustive tests below).

use crate::architecture::Architecture;
use crate::geometry::Point;
use crate::model::{Loc, SiteId, SlmArray};

/// Position provider for placement cost evaluation: implemented by
/// [`Architecture`] (formula per call) and [`GeomCache`] (table lookup).
pub trait Geometry {
    /// The physical position of a location.
    ///
    /// # Panics
    ///
    /// Panics if the location does not exist in the architecture.
    fn position(&self, loc: Loc) -> Point;

    /// Reference position of a Rydberg site (its slot-0 trap).
    ///
    /// # Panics
    ///
    /// Panics if the site does not exist.
    fn site_position(&self, site: SiteId) -> Point;

    /// The Rydberg site whose reference position is nearest to `p`.
    ///
    /// # Panics
    ///
    /// Panics if the architecture has no entanglement zone.
    fn nearest_site(&self, p: Point) -> SiteId;

    /// The storage trap nearest to `p`.
    ///
    /// # Panics
    ///
    /// Panics if the architecture has no storage zone.
    fn nearest_storage_trap(&self, p: Point) -> Loc;

    /// The site "in the middle" of two sites (paper Sec. V-A).
    fn middle_site(&self, a: SiteId, b: SiteId) -> SiteId;
}

impl Geometry for Architecture {
    fn position(&self, loc: Loc) -> Point {
        Architecture::position(self, loc)
    }

    fn site_position(&self, site: SiteId) -> Point {
        Architecture::site_position(self, site)
    }

    fn nearest_site(&self, p: Point) -> SiteId {
        Architecture::nearest_site(self, p)
    }

    fn nearest_storage_trap(&self, p: Point) -> Loc {
        Architecture::nearest_storage_trap(self, p)
    }

    fn middle_site(&self, a: SiteId, b: SiteId) -> SiteId {
        Architecture::middle_site(self, a, b)
    }
}

/// One SLM grid with every trap position precomputed (row-major).
///
/// Embeds the [`SlmArray`] it was built from: positions are cached values of
/// `SlmArray::trap_position` and nearest-trap lookups *delegate* to
/// `SlmArray::nearest_trap`, so the formulas cannot drift out of sync.
#[derive(Debug, Clone)]
struct GridTable {
    slm: SlmArray,
    pos: Vec<Point>,
}

impl GridTable {
    fn new(slm: &SlmArray) -> Self {
        let mut pos = Vec::with_capacity(slm.num_traps());
        for row in 0..slm.num_row {
            for col in 0..slm.num_col {
                pos.push(slm.trap_position(row, col));
            }
        }
        Self { slm: slm.clone(), pos }
    }

    #[inline]
    fn at(&self, row: usize, col: usize) -> Point {
        debug_assert!(row < self.slm.num_row && col < self.slm.num_col);
        self.pos[row * self.slm.num_col + col]
    }

    #[inline]
    fn nearest_trap(&self, p: Point) -> (usize, usize) {
        self.slm.nearest_trap(p)
    }
}

/// Dense position/nearest-site memo tables for one [`Architecture`].
///
/// Build once per compilation (cost: one pass over every trap) and route hot
/// callers through the [`Geometry`] impl. All methods return bit-identical
/// results to the `Architecture` originals.
///
/// # Example
///
/// ```
/// use zac_arch::{Architecture, GeomCache, Geometry, Loc};
///
/// let arch = Architecture::reference();
/// let geom = GeomCache::new(&arch);
/// let loc = Loc::Storage { zone: 0, row: 99, col: 13 };
/// assert_eq!(Geometry::position(&geom, loc), Geometry::position(&arch, loc));
/// ```
#[derive(Debug, Clone)]
pub struct GeomCache {
    storage: Vec<GridTable>,
    site_slots: Vec<Vec<GridTable>>,
}

impl GeomCache {
    /// Builds the lookup tables for `arch`.
    pub fn new(arch: &Architecture) -> Self {
        let storage = arch.storage_zones().iter().map(|z| GridTable::new(&z.slms[0])).collect();
        let site_slots = arch
            .entanglement_zones()
            .iter()
            .map(|z| z.slms.iter().map(GridTable::new).collect())
            .collect();
        Self { storage, site_slots }
    }
}

impl Geometry for GeomCache {
    #[inline]
    fn position(&self, loc: Loc) -> Point {
        match loc {
            Loc::Storage { zone, row, col } => self.storage[zone].at(row, col),
            Loc::Site { zone, row, col, slot } => self.site_slots[zone][slot].at(row, col),
        }
    }

    #[inline]
    fn site_position(&self, site: SiteId) -> Point {
        self.site_slots[site.zone][0].at(site.row, site.col)
    }

    fn nearest_site(&self, p: Point) -> SiteId {
        // Single-zone fast path: the per-zone distance is only used to
        // compare *across* zones, so with one zone the trap-grid rounding
        // alone decides (bit-identical to the general path).
        if let [slots] = self.site_slots.as_slice() {
            let (row, col) = slots[0].nearest_trap(p);
            return SiteId::new(0, row, col);
        }
        // Same zone order and strict-less comparison as
        // `Architecture::nearest_site`.
        let mut best = None;
        for (z, slots) in self.site_slots.iter().enumerate() {
            let (row, col) = slots[0].nearest_trap(p);
            let cand = SiteId::new(z, row, col);
            let d = self.site_position(cand).distance(p);
            match best {
                None => best = Some((cand, d)),
                Some((_, bd)) if d < bd => best = Some((cand, d)),
                _ => {}
            }
        }
        best.expect("no entanglement zone").0
    }

    fn nearest_storage_trap(&self, p: Point) -> Loc {
        if let [table] = self.storage.as_slice() {
            let (row, col) = table.nearest_trap(p);
            return Loc::Storage { zone: 0, row, col };
        }
        let mut best = None;
        for (z, table) in self.storage.iter().enumerate() {
            let (row, col) = table.nearest_trap(p);
            let cand = Loc::Storage { zone: z, row, col };
            let d = table.at(row, col).distance(p);
            match best {
                None => best = Some((cand, d)),
                Some((_, bd)) if d < bd => best = Some((cand, d)),
                _ => {}
            }
        }
        best.expect("no storage zone").0
    }

    fn middle_site(&self, a: SiteId, b: SiteId) -> SiteId {
        SiteId::middle(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn archs() -> Vec<Architecture> {
        vec![
            Architecture::reference(),
            Architecture::arch1_small(),
            Architecture::arch2_two_zones(),
        ]
    }

    /// Every storage trap and every site slot resolves to the exact same
    /// position through the cache (bit-equality, not tolerance).
    #[test]
    fn positions_bit_identical_everywhere() {
        for arch in archs() {
            let geom = GeomCache::new(&arch);
            for z in 0..arch.storage_zones().len() {
                let (rows, cols) = arch.storage_grid(z);
                for row in 0..rows {
                    for col in 0..cols {
                        let loc = Loc::Storage { zone: z, row, col };
                        let a = Architecture::position(&arch, loc);
                        let c = Geometry::position(&geom, loc);
                        assert_eq!(a.x.to_bits(), c.x.to_bits(), "{} {loc}", arch.name());
                        assert_eq!(a.y.to_bits(), c.y.to_bits(), "{} {loc}", arch.name());
                    }
                }
            }
            for z in 0..arch.entanglement_zones().len() {
                let (rows, cols) = arch.site_grid(z);
                for row in 0..rows {
                    for col in 0..cols {
                        let site = SiteId::new(z, row, col);
                        assert_eq!(
                            Architecture::site_position(&arch, site),
                            Geometry::site_position(&geom, site)
                        );
                        for slot in 0..arch.site_capacity(z) {
                            let loc = Loc::Site { zone: z, row, col, slot };
                            assert_eq!(
                                Architecture::position(&arch, loc),
                                Geometry::position(&geom, loc)
                            );
                        }
                    }
                }
            }
        }
    }

    /// Nearest-site/trap lookups agree with the architecture on a dense
    /// probe grid spanning every zone (including off-grid points).
    #[test]
    fn nearest_lookups_match_architecture() {
        for arch in archs() {
            let geom = GeomCache::new(&arch);
            for ix in -3..60 {
                for iy in -3..90 {
                    let p = Point::new(ix as f64 * 5.3, iy as f64 * 4.7);
                    assert_eq!(
                        Architecture::nearest_site(&arch, p),
                        Geometry::nearest_site(&geom, p),
                        "{} at {p:?}",
                        arch.name()
                    );
                    assert_eq!(
                        Architecture::nearest_storage_trap(&arch, p),
                        Geometry::nearest_storage_trap(&geom, p),
                        "{} at {p:?}",
                        arch.name()
                    );
                }
            }
        }
    }

    #[test]
    fn middle_site_matches() {
        let arch = Architecture::reference();
        let geom = GeomCache::new(&arch);
        let a = SiteId::new(0, 0, 0);
        let b = SiteId::new(0, 1, 3);
        assert_eq!(Architecture::middle_site(&arch, a, b), Geometry::middle_site(&geom, a, b));
        let other = SiteId::new(1, 2, 2);
        assert_eq!(Geometry::middle_site(&geom, a, other), a);
    }
}
