//! The paper's JSON architecture-specification format (Fig. 20).
//!
//! The ZAC artifact describes architectures in a JSON document with zone,
//! SLM and AOD entries plus hardware operation parameters. This module parses
//! and emits that exact format (including the artifact's misspelled keys
//! `site_seperation` and `dimenstion`, which are accepted as aliases).

use crate::architecture::{ArchError, Architecture};
use crate::geometry::Point;
use crate::model::{AodArray, SlmArray, Zone};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Operation durations (µs) as carried in the spec file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecDurations {
    /// Rydberg (CZ) gate duration.
    pub rydberg: f64,
    /// 1Q gate duration.
    #[serde(rename = "1qGate")]
    pub one_q_gate: f64,
    /// Atom transfer (pickup or drop-off) duration.
    pub atom_transfer: f64,
}

/// Operation fidelities as carried in the spec file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecFidelities {
    /// 2Q (CZ) gate fidelity.
    pub two_qubit_gate: f64,
    /// 1Q gate fidelity.
    pub single_qubit_gate: f64,
    /// Atom transfer fidelity.
    pub atom_transfer: f64,
}

/// Qubit coherence spec (`T` is T2, in µs, matching the artifact's 1.5e6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecQubit {
    /// Coherence time T2 in µs.
    #[serde(rename = "T")]
    pub t2_us: f64,
}

/// A number that may appear as a scalar or an `[x, y]` pair in the spec.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum ScalarOrPair {
    /// Single value used for both axes.
    Scalar(f64),
    /// Distinct x/y values.
    Pair(f64, f64),
}

impl ScalarOrPair {
    /// The `(x, y)` pair this value denotes.
    pub fn as_pair(self) -> (f64, f64) {
        match self {
            Self::Scalar(v) => (v, v),
            Self::Pair(x, y) => (x, y),
        }
    }
}

/// SLM entry in the spec format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecSlm {
    /// Global SLM id.
    pub id: usize,
    /// Trap separation; the artifact spells the key `site_seperation`.
    #[serde(rename = "site_seperation", alias = "site_separation")]
    pub site_separation: ScalarOrPair,
    /// Number of rows.
    pub r: usize,
    /// Number of columns.
    pub c: usize,
    /// Bottom-left trap position.
    pub location: (f64, f64),
}

/// Zone entry in the spec format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecZone {
    /// Zone id.
    pub zone_id: usize,
    /// SLM arrays inside the zone.
    #[serde(default)]
    pub slms: Vec<SpecSlm>,
    /// Bottom-left corner of the zone.
    pub offset: (f64, f64),
    /// Width/height; the artifact sometimes spells the key `dimenstion`.
    #[serde(rename = "dimension", alias = "dimenstion")]
    pub dimension: (f64, f64),
}

/// AOD entry in the spec format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecAod {
    /// AOD id.
    pub id: usize,
    /// Minimum row/column separation.
    #[serde(rename = "site_seperation", alias = "site_separation")]
    pub site_separation: ScalarOrPair,
    /// Row capacity.
    pub r: usize,
    /// Column capacity.
    pub c: usize,
}

/// The full architecture specification document (paper Fig. 20).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchSpec {
    /// Architecture name.
    pub name: String,
    /// Operation durations, if present.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub operation_duration: Option<SpecDurations>,
    /// Operation fidelities, if present.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub operation_fidelity: Option<SpecFidelities>,
    /// Qubit coherence spec, if present.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub qubit_spec: Option<SpecQubit>,
    /// Storage zones.
    #[serde(default)]
    pub storage_zones: Vec<SpecZone>,
    /// Entanglement zones.
    #[serde(default)]
    pub entanglement_zones: Vec<SpecZone>,
    /// Readout zones.
    #[serde(default)]
    pub readout_zones: Vec<SpecZone>,
    /// AOD arrays.
    pub aods: Vec<SpecAod>,
    /// Overall architecture extent `[[x0,y0],[x1,y1]]`, informational.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub arch_range: Option<Vec<(f64, f64)>>,
    /// Rydberg-laser coverage ranges, informational.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub rydberg_range: Option<Vec<Vec<(f64, f64)>>>,
}

/// Error parsing or validating a spec document.
#[derive(Debug)]
pub enum SpecError {
    /// The JSON was malformed.
    Json(serde_json::Error),
    /// The described architecture failed validation.
    Arch(ArchError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Json(e) => write!(f, "malformed architecture spec: {e}"),
            Self::Arch(e) => write!(f, "invalid architecture: {e}"),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Json(e) => Some(e),
            Self::Arch(e) => Some(e),
        }
    }
}

impl From<serde_json::Error> for SpecError {
    fn from(e: serde_json::Error) -> Self {
        Self::Json(e)
    }
}

impl From<ArchError> for SpecError {
    fn from(e: ArchError) -> Self {
        Self::Arch(e)
    }
}

fn zone_from_spec(spec: &SpecZone) -> Zone {
    let slms = spec
        .slms
        .iter()
        .map(|s| {
            SlmArray::new(
                s.id,
                s.site_separation.as_pair(),
                s.c,
                s.r,
                Point::new(s.location.0, s.location.1),
            )
        })
        .collect();
    Zone::new(
        spec.zone_id,
        Point::new(spec.offset.0, spec.offset.1),
        spec.dimension,
        slms,
    )
}

fn zone_to_spec(zone: &Zone) -> SpecZone {
    SpecZone {
        zone_id: zone.zone_id,
        slms: zone
            .slms
            .iter()
            .map(|s| SpecSlm {
                id: s.slm_id,
                site_separation: ScalarOrPair::Pair(s.sep.0, s.sep.1),
                r: s.num_row,
                c: s.num_col,
                location: (s.offset.x, s.offset.y),
            })
            .collect(),
        offset: (zone.offset.x, zone.offset.y),
        dimension: zone.dimension,
    }
}

impl ArchSpec {
    /// Parses a spec document from JSON.
    ///
    /// # Errors
    ///
    /// [`SpecError::Json`] on malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, SpecError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Serializes the spec document to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialization cannot fail")
    }

    /// Builds the validated [`Architecture`] this spec describes.
    ///
    /// # Errors
    ///
    /// [`SpecError::Arch`] if the layout is inconsistent.
    pub fn build(&self) -> Result<Architecture, SpecError> {
        let aods = self
            .aods
            .iter()
            .map(|a| AodArray::new(a.id, a.site_separation.as_pair().0, a.c, a.r))
            .collect();
        Ok(Architecture::new(
            self.name.clone(),
            aods,
            self.storage_zones.iter().map(zone_from_spec).collect(),
            self.entanglement_zones.iter().map(zone_from_spec).collect(),
            self.readout_zones.iter().map(zone_from_spec).collect(),
        )?)
    }

    /// Builds a spec document from an [`Architecture`] (without hardware
    /// parameters; attach them with the public fields if needed).
    pub fn from_architecture(arch: &Architecture) -> Self {
        Self {
            name: arch.name().to_owned(),
            operation_duration: None,
            operation_fidelity: None,
            qubit_spec: None,
            storage_zones: arch.storage_zones().iter().map(zone_to_spec).collect(),
            entanglement_zones: arch.entanglement_zones().iter().map(zone_to_spec).collect(),
            readout_zones: arch.readout_zones().iter().map(zone_to_spec).collect(),
            aods: arch
                .aods()
                .iter()
                .map(|a| SpecAod {
                    id: a.aod_id,
                    site_separation: ScalarOrPair::Scalar(a.min_sep),
                    r: a.max_num_row,
                    c: a.max_num_col,
                })
                .collect(),
            arch_range: None,
            rydberg_range: None,
        }
    }
}

impl Architecture {
    /// Parses an architecture from the paper's JSON spec format (Fig. 20).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] on malformed JSON or inconsistent layout.
    ///
    /// # Example
    ///
    /// ```
    /// use zac_arch::Architecture;
    /// let json = zac_arch::spec::ArchSpec::from_architecture(
    ///     &Architecture::reference()).to_json();
    /// let arch = Architecture::from_spec_json(&json)?;
    /// assert_eq!(arch.num_sites(), 140);
    /// # Ok::<(), zac_arch::spec::SpecError>(())
    /// ```
    pub fn from_spec_json(json: &str) -> Result<Self, SpecError> {
        ArchSpec::from_json(json)?.build()
    }

    /// Serializes this architecture in the paper's JSON spec format.
    pub fn to_spec_json(&self) -> String {
        ArchSpec::from_architecture(self).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact document of paper Fig. 20 (with the artifact's typos).
    const PAPER_SPEC: &str = r#"{
      "name": "full_compute_store_architecture",
      "operation_duration": {"rydberg": 0.36, "1qGate": 52, "atom_transfer": 15},
      "operation_fidelity": {"two_qubit_gate": 0.995, "single_qubit_gate": 0.9997, "atom_transfer": 0.999},
      "qubit_spec": {"T": 1.5e6},
      "storage_zones": [{
        "zone_id": 0,
        "slms": [{"id": 0, "site_seperation": [3, 3], "r": 100, "c": 100, "location": [0, 0]}],
        "offset": [0, 0],
        "dimenstion": [300, 300]
      }],
      "entanglement_zones": [{
        "zone_id": 0,
        "slms": [
          {"id": 1, "site_seperation": [12, 10], "r": 7, "c": 20, "location": [35, 307]},
          {"id": 2, "site_seperation": [12, 10], "r": 7, "c": 20, "location": [37, 307]}
        ],
        "offset": [35, 307],
        "dimension": [240, 70]
      }],
      "aods": [{"id": 0, "site_seperation": 2, "r": 100, "c": 100}],
      "arch_range": [[0, 0], [297, 402]],
      "rydberg_range": [[[5, 305], [292, 402]]]
    }"#;

    #[test]
    fn parses_paper_fig20_spec() {
        let arch = Architecture::from_spec_json(PAPER_SPEC).unwrap();
        assert_eq!(arch.name(), "full_compute_store_architecture");
        assert_eq!(arch.num_sites(), 140);
        assert_eq!(arch.storage_capacity(), 10_000);
        assert_eq!(arch.aods().len(), 1);
        assert_eq!(arch.aods()[0].min_sep, 2.0);
    }

    #[test]
    fn paper_spec_matches_reference_preset() {
        let from_spec = Architecture::from_spec_json(PAPER_SPEC).unwrap();
        let reference = Architecture::reference();
        // Zones and AODs coincide; the preset adds a readout zone.
        assert_eq!(from_spec.storage_zones(), reference.storage_zones());
        assert_eq!(from_spec.entanglement_zones(), reference.entanglement_zones());
        assert_eq!(from_spec.aods(), reference.aods());
    }

    #[test]
    fn spec_carries_operation_parameters() {
        let spec = ArchSpec::from_json(PAPER_SPEC).unwrap();
        let dur = spec.operation_duration.unwrap();
        assert_eq!(dur.rydberg, 0.36);
        assert_eq!(dur.one_q_gate, 52.0);
        assert_eq!(dur.atom_transfer, 15.0);
        let fid = spec.operation_fidelity.unwrap();
        assert_eq!(fid.two_qubit_gate, 0.995);
        assert_eq!(spec.qubit_spec.unwrap().t2_us, 1.5e6);
    }

    #[test]
    fn roundtrip_through_spec_json() {
        for arch in [
            Architecture::reference(),
            Architecture::monolithic(10, 10),
            Architecture::arch2_two_zones(),
        ] {
            let json = arch.to_spec_json();
            let back = Architecture::from_spec_json(&json).unwrap();
            assert_eq!(arch, back);
        }
    }

    #[test]
    fn malformed_json_is_reported() {
        let err = Architecture::from_spec_json("{not json").unwrap_err();
        assert!(matches!(err, SpecError::Json(_)));
        assert!(err.to_string().contains("malformed"));
    }

    #[test]
    fn invalid_layout_is_reported() {
        // No AODs → validation error.
        let json = r#"{"name": "x", "aods": []}"#;
        let err = Architecture::from_spec_json(json).unwrap_err();
        assert!(matches!(err, SpecError::Arch(ArchError::NoAod)));
    }

    #[test]
    fn scalar_or_pair_forms() {
        assert_eq!(ScalarOrPair::Scalar(2.0).as_pair(), (2.0, 2.0));
        assert_eq!(ScalarOrPair::Pair(3.0, 4.0).as_pair(), (3.0, 4.0));
    }
}
