//! The paper's JSON architecture-specification format (Fig. 20).
//!
//! The ZAC artifact describes architectures in a JSON document with zone,
//! SLM and AOD entries plus hardware operation parameters. This module parses
//! and emits that exact format (including the artifact's misspelled keys
//! `site_seperation` and `dimenstion`, which are accepted as aliases).

use crate::architecture::{ArchError, Architecture};
use crate::geometry::Point;
use crate::model::{AodArray, SlmArray, Zone};
use std::fmt;

/// Operation durations (µs) as carried in the spec file.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecDurations {
    /// Rydberg (CZ) gate duration.
    pub rydberg: f64,
    /// 1Q gate duration.
    pub one_q_gate: f64,
    /// Atom transfer (pickup or drop-off) duration.
    pub atom_transfer: f64,
}

/// Operation fidelities as carried in the spec file.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecFidelities {
    /// 2Q (CZ) gate fidelity.
    pub two_qubit_gate: f64,
    /// 1Q gate fidelity.
    pub single_qubit_gate: f64,
    /// Atom transfer fidelity.
    pub atom_transfer: f64,
}

/// Qubit coherence spec (`T` is T2, in µs, matching the artifact's 1.5e6).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecQubit {
    /// Coherence time T2 in µs.
    pub t2_us: f64,
}

/// A number that may appear as a scalar or an `[x, y]` pair in the spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalarOrPair {
    /// Single value used for both axes.
    Scalar(f64),
    /// Distinct x/y values.
    Pair(f64, f64),
}

impl ScalarOrPair {
    /// The `(x, y)` pair this value denotes.
    pub fn as_pair(self) -> (f64, f64) {
        match self {
            Self::Scalar(v) => (v, v),
            Self::Pair(x, y) => (x, y),
        }
    }
}

/// SLM entry in the spec format.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecSlm {
    /// Global SLM id.
    pub id: usize,
    /// Trap separation; the artifact spells the key `site_seperation`.
    pub site_separation: ScalarOrPair,
    /// Number of rows.
    pub r: usize,
    /// Number of columns.
    pub c: usize,
    /// Bottom-left trap position.
    pub location: (f64, f64),
}

/// Zone entry in the spec format.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecZone {
    /// Zone id.
    pub zone_id: usize,
    /// SLM arrays inside the zone.
    pub slms: Vec<SpecSlm>,
    /// Bottom-left corner of the zone.
    pub offset: (f64, f64),
    /// Width/height; the artifact sometimes spells the key `dimenstion`.
    pub dimension: (f64, f64),
}

/// AOD entry in the spec format.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecAod {
    /// AOD id.
    pub id: usize,
    /// Minimum row/column separation.
    pub site_separation: ScalarOrPair,
    /// Row capacity.
    pub r: usize,
    /// Column capacity.
    pub c: usize,
}

/// The full architecture specification document (paper Fig. 20).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchSpec {
    /// Architecture name.
    pub name: String,
    /// Operation durations, if present.
    pub operation_duration: Option<SpecDurations>,
    /// Operation fidelities, if present.
    pub operation_fidelity: Option<SpecFidelities>,
    /// Qubit coherence spec, if present.
    pub qubit_spec: Option<SpecQubit>,
    /// Storage zones.
    pub storage_zones: Vec<SpecZone>,
    /// Entanglement zones.
    pub entanglement_zones: Vec<SpecZone>,
    /// Readout zones.
    pub readout_zones: Vec<SpecZone>,
    /// AOD arrays.
    pub aods: Vec<SpecAod>,
    /// Overall architecture extent `[[x0,y0],[x1,y1]]`, informational.
    pub arch_range: Option<Vec<(f64, f64)>>,
    /// Rydberg-laser coverage ranges, informational.
    pub rydberg_range: Option<Vec<Vec<(f64, f64)>>>,
}

/// Error parsing or validating a spec document.
#[derive(Debug)]
pub enum SpecError {
    /// The JSON was malformed.
    Json(serde_json::Error),
    /// The described architecture failed validation.
    Arch(ArchError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Json(e) => write!(f, "malformed architecture spec: {e}"),
            Self::Arch(e) => write!(f, "invalid architecture: {e}"),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Json(e) => Some(e),
            Self::Arch(e) => Some(e),
        }
    }
}

impl From<serde_json::Error> for SpecError {
    fn from(e: serde_json::Error) -> Self {
        Self::Json(e)
    }
}

impl From<ArchError> for SpecError {
    fn from(e: ArchError) -> Self {
        Self::Arch(e)
    }
}

fn zone_from_spec(spec: &SpecZone) -> Zone {
    let slms = spec
        .slms
        .iter()
        .map(|s| {
            SlmArray::new(
                s.id,
                s.site_separation.as_pair(),
                s.c,
                s.r,
                Point::new(s.location.0, s.location.1),
            )
        })
        .collect();
    Zone::new(spec.zone_id, Point::new(spec.offset.0, spec.offset.1), spec.dimension, slms)
}

fn zone_to_spec(zone: &Zone) -> SpecZone {
    SpecZone {
        zone_id: zone.zone_id,
        slms: zone
            .slms
            .iter()
            .map(|s| SpecSlm {
                id: s.slm_id,
                site_separation: ScalarOrPair::Pair(s.sep.0, s.sep.1),
                r: s.num_row,
                c: s.num_col,
                location: (s.offset.x, s.offset.y),
            })
            .collect(),
        offset: (zone.offset.x, zone.offset.y),
        dimension: zone.dimension,
    }
}

impl ArchSpec {
    /// Parses a spec document from JSON.
    ///
    /// # Errors
    ///
    /// [`SpecError::Json`] on malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, SpecError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Serializes the spec document to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialization cannot fail")
    }

    /// Builds the validated [`Architecture`] this spec describes.
    ///
    /// # Errors
    ///
    /// [`SpecError::Arch`] if the layout is inconsistent.
    pub fn build(&self) -> Result<Architecture, SpecError> {
        let aods = self
            .aods
            .iter()
            .map(|a| AodArray::new(a.id, a.site_separation.as_pair().0, a.c, a.r))
            .collect();
        Ok(Architecture::new(
            self.name.clone(),
            aods,
            self.storage_zones.iter().map(zone_from_spec).collect(),
            self.entanglement_zones.iter().map(zone_from_spec).collect(),
            self.readout_zones.iter().map(zone_from_spec).collect(),
        )?)
    }

    /// Builds a spec document from an [`Architecture`] (without hardware
    /// parameters; attach them with the public fields if needed).
    pub fn from_architecture(arch: &Architecture) -> Self {
        Self {
            name: arch.name().to_owned(),
            operation_duration: None,
            operation_fidelity: None,
            qubit_spec: None,
            storage_zones: arch.storage_zones().iter().map(zone_to_spec).collect(),
            entanglement_zones: arch.entanglement_zones().iter().map(zone_to_spec).collect(),
            readout_zones: arch.readout_zones().iter().map(zone_to_spec).collect(),
            aods: arch
                .aods()
                .iter()
                .map(|a| SpecAod {
                    id: a.aod_id,
                    site_separation: ScalarOrPair::Scalar(a.min_sep),
                    r: a.max_num_row,
                    c: a.max_num_col,
                })
                .collect(),
            arch_range: None,
            rydberg_range: None,
        }
    }
}

impl Architecture {
    /// Parses an architecture from the paper's JSON spec format (Fig. 20).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] on malformed JSON or inconsistent layout.
    ///
    /// # Example
    ///
    /// ```
    /// use zac_arch::Architecture;
    /// let json = zac_arch::spec::ArchSpec::from_architecture(
    ///     &Architecture::reference()).to_json();
    /// let arch = Architecture::from_spec_json(&json)?;
    /// assert_eq!(arch.num_sites(), 140);
    /// # Ok::<(), zac_arch::spec::SpecError>(())
    /// ```
    pub fn from_spec_json(json: &str) -> Result<Self, SpecError> {
        ArchSpec::from_json(json)?.build()
    }

    /// Serializes this architecture in the paper's JSON spec format.
    pub fn to_spec_json(&self) -> String {
        ArchSpec::from_architecture(self).to_json()
    }
}

/// Hand-written JSON impls (the in-tree serde stand-in has no derive).
/// They encode the artifact's quirks explicitly: `1qGate` / `T` renames,
/// the misspelled `site_seperation` / `dimenstion` keys (accepted as
/// aliases, emitted in the artifact's spelling), defaulted zone lists, and
/// optional sections omitted when absent.
mod json {
    use super::*;
    use serde::{DeError, Deserialize, ObjectView, Serialize, Value};

    serde::impl_serde_struct!(SpecDurations {
        rydberg,
        one_q_gate => "1qGate",
        atom_transfer,
    });

    serde::impl_serde_struct!(SpecFidelities { two_qubit_gate, single_qubit_gate, atom_transfer });

    serde::impl_serde_struct!(SpecQubit { t2_us => "T" });

    impl Serialize for ScalarOrPair {
        fn to_value(&self) -> Value {
            match *self {
                ScalarOrPair::Scalar(v) => v.to_value(),
                ScalarOrPair::Pair(x, y) => (x, y).to_value(),
            }
        }
    }

    impl Deserialize for ScalarOrPair {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            // Untagged: a bare number is a scalar, an [x, y] array a pair.
            if let Some(x) = v.as_f64() {
                return Ok(ScalarOrPair::Scalar(x));
            }
            let (x, y) = <(f64, f64)>::from_value(v)
                .map_err(|_| DeError::msg("expected number or [x, y] pair"))?;
            Ok(ScalarOrPair::Pair(x, y))
        }
    }

    impl Serialize for SpecSlm {
        fn to_value(&self) -> Value {
            Value::object()
                .with("id", self.id.to_value())
                .with("site_seperation", self.site_separation.to_value())
                .with("r", self.r.to_value())
                .with("c", self.c.to_value())
                .with("location", self.location.to_value())
        }
    }

    impl Deserialize for SpecSlm {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            let obj = ObjectView::new(v)?;
            Ok(Self {
                id: obj.field("id")?,
                site_separation: obj.field_alias("site_seperation", "site_separation")?,
                r: obj.field("r")?,
                c: obj.field("c")?,
                location: obj.field("location")?,
            })
        }
    }

    impl Serialize for SpecZone {
        fn to_value(&self) -> Value {
            Value::object()
                .with("zone_id", self.zone_id.to_value())
                .with("slms", self.slms.to_value())
                .with("offset", self.offset.to_value())
                .with("dimension", self.dimension.to_value())
        }
    }

    impl Deserialize for SpecZone {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            let obj = ObjectView::new(v)?;
            Ok(Self {
                zone_id: obj.field("zone_id")?,
                slms: obj.field_or_default("slms")?,
                offset: obj.field("offset")?,
                dimension: obj.field_alias("dimension", "dimenstion")?,
            })
        }
    }

    impl Serialize for SpecAod {
        fn to_value(&self) -> Value {
            Value::object()
                .with("id", self.id.to_value())
                .with("site_seperation", self.site_separation.to_value())
                .with("r", self.r.to_value())
                .with("c", self.c.to_value())
        }
    }

    impl Deserialize for SpecAod {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            let obj = ObjectView::new(v)?;
            Ok(Self {
                id: obj.field("id")?,
                site_separation: obj.field_alias("site_seperation", "site_separation")?,
                r: obj.field("r")?,
                c: obj.field("c")?,
            })
        }
    }

    impl Serialize for ArchSpec {
        fn to_value(&self) -> Value {
            let mut v = Value::object().with("name", self.name.to_value());
            if let Some(d) = &self.operation_duration {
                v = v.with("operation_duration", d.to_value());
            }
            if let Some(f) = &self.operation_fidelity {
                v = v.with("operation_fidelity", f.to_value());
            }
            if let Some(q) = &self.qubit_spec {
                v = v.with("qubit_spec", q.to_value());
            }
            v = v
                .with("storage_zones", self.storage_zones.to_value())
                .with("entanglement_zones", self.entanglement_zones.to_value())
                .with("readout_zones", self.readout_zones.to_value())
                .with("aods", self.aods.to_value());
            if let Some(r) = &self.arch_range {
                v = v.with("arch_range", r.to_value());
            }
            if let Some(r) = &self.rydberg_range {
                v = v.with("rydberg_range", r.to_value());
            }
            v
        }
    }

    impl Deserialize for ArchSpec {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            let obj = ObjectView::new(v)?;
            Ok(Self {
                name: obj.field("name")?,
                operation_duration: obj.opt_field("operation_duration")?,
                operation_fidelity: obj.opt_field("operation_fidelity")?,
                qubit_spec: obj.opt_field("qubit_spec")?,
                storage_zones: obj.field_or_default("storage_zones")?,
                entanglement_zones: obj.field_or_default("entanglement_zones")?,
                readout_zones: obj.field_or_default("readout_zones")?,
                aods: obj.field("aods")?,
                arch_range: obj.opt_field("arch_range")?,
                rydberg_range: obj.opt_field("rydberg_range")?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact document of paper Fig. 20 (with the artifact's typos).
    const PAPER_SPEC: &str = r#"{
      "name": "full_compute_store_architecture",
      "operation_duration": {"rydberg": 0.36, "1qGate": 52, "atom_transfer": 15},
      "operation_fidelity": {"two_qubit_gate": 0.995, "single_qubit_gate": 0.9997, "atom_transfer": 0.999},
      "qubit_spec": {"T": 1.5e6},
      "storage_zones": [{
        "zone_id": 0,
        "slms": [{"id": 0, "site_seperation": [3, 3], "r": 100, "c": 100, "location": [0, 0]}],
        "offset": [0, 0],
        "dimenstion": [300, 300]
      }],
      "entanglement_zones": [{
        "zone_id": 0,
        "slms": [
          {"id": 1, "site_seperation": [12, 10], "r": 7, "c": 20, "location": [35, 307]},
          {"id": 2, "site_seperation": [12, 10], "r": 7, "c": 20, "location": [37, 307]}
        ],
        "offset": [35, 307],
        "dimension": [240, 70]
      }],
      "aods": [{"id": 0, "site_seperation": 2, "r": 100, "c": 100}],
      "arch_range": [[0, 0], [297, 402]],
      "rydberg_range": [[[5, 305], [292, 402]]]
    }"#;

    #[test]
    fn parses_paper_fig20_spec() {
        let arch = Architecture::from_spec_json(PAPER_SPEC).unwrap();
        assert_eq!(arch.name(), "full_compute_store_architecture");
        assert_eq!(arch.num_sites(), 140);
        assert_eq!(arch.storage_capacity(), 10_000);
        assert_eq!(arch.aods().len(), 1);
        assert_eq!(arch.aods()[0].min_sep, 2.0);
    }

    #[test]
    fn paper_spec_matches_reference_preset() {
        let from_spec = Architecture::from_spec_json(PAPER_SPEC).unwrap();
        let reference = Architecture::reference();
        // Zones and AODs coincide; the preset adds a readout zone.
        assert_eq!(from_spec.storage_zones(), reference.storage_zones());
        assert_eq!(from_spec.entanglement_zones(), reference.entanglement_zones());
        assert_eq!(from_spec.aods(), reference.aods());
    }

    #[test]
    fn spec_carries_operation_parameters() {
        let spec = ArchSpec::from_json(PAPER_SPEC).unwrap();
        let dur = spec.operation_duration.unwrap();
        assert_eq!(dur.rydberg, 0.36);
        assert_eq!(dur.one_q_gate, 52.0);
        assert_eq!(dur.atom_transfer, 15.0);
        let fid = spec.operation_fidelity.unwrap();
        assert_eq!(fid.two_qubit_gate, 0.995);
        assert_eq!(spec.qubit_spec.unwrap().t2_us, 1.5e6);
    }

    #[test]
    fn roundtrip_through_spec_json() {
        for arch in [
            Architecture::reference(),
            Architecture::monolithic(10, 10),
            Architecture::arch2_two_zones(),
        ] {
            let json = arch.to_spec_json();
            let back = Architecture::from_spec_json(&json).unwrap();
            assert_eq!(arch, back);
        }
    }

    #[test]
    fn malformed_json_is_reported() {
        let err = Architecture::from_spec_json("{not json").unwrap_err();
        assert!(matches!(err, SpecError::Json(_)));
        assert!(err.to_string().contains("malformed"));
    }

    #[test]
    fn invalid_layout_is_reported() {
        // No AODs → validation error.
        let json = r#"{"name": "x", "aods": []}"#;
        let err = Architecture::from_spec_json(json).unwrap_err();
        assert!(matches!(err, SpecError::Arch(ArchError::NoAod)));
    }

    #[test]
    fn scalar_or_pair_forms() {
        assert_eq!(ScalarOrPair::Scalar(2.0).as_pair(), (2.0, 2.0));
        assert_eq!(ScalarOrPair::Pair(3.0, 4.0).as_pair(), (3.0, 4.0));
    }
}
