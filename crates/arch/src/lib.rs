//! Zoned neutral-atom architecture specification (ZAC paper, Sec. III).
//!
//! A zoned architecture is described by four entity types, mirroring the
//! paper's Fig. 3:
//!
//! * [`AodArray`] — a mobile trap grid (acousto-optic deflector);
//! * [`SlmArray`] — a fixed trap grid (spatial light modulator);
//! * [`Zone`] — a bounded region hosting SLM arrays, with a role
//!   ([`ZoneKind`]): storage, entanglement, or readout;
//! * [`Architecture`] — the validated whole: AODs + zones.
//!
//! Rydberg *sites* are formed inside entanglement zones by zipping the zone's
//! SLM arrays position-wise: the reference architecture pairs two arrays
//! offset by d_Ryd = 2 µm, so each site holds two traps ([`SiteId`],
//! [`Architecture::site_position`]).
//!
//! The [`spec`] module reads and writes the paper's JSON architecture format
//! (Fig. 20), and [`geometry`] provides the movement-time law
//! (t = √(d/a), a = 2750 m/s²) used by every timing computation downstream.
//!
//! # Example
//!
//! ```
//! use zac_arch::{Architecture, Loc};
//!
//! let arch = Architecture::reference();
//! // Qubit 13's initial trap in the paper's bv_n14 example: (slm 0, row 99, col 13).
//! let loc = Loc::Storage { zone: 0, row: 99, col: 13 };
//! let p = arch.position(loc);
//! assert_eq!((p.x, p.y), (39.0, 297.0));
//! ```

pub mod architecture;
pub mod geometry;
pub mod memo;
pub mod model;
pub mod presets;
pub mod spec;
pub mod trap;

pub use architecture::{ArchError, Architecture};
pub use geometry::{movement_time_us, Point, Rect, MOVE_ACCEL_UM_PER_US2};
pub use memo::{GeomCache, Geometry};
pub use model::{AodArray, Loc, SiteId, SlmArray, Zone, ZoneKind};
pub use trap::{TrapIndex, TrapMap, TrapSet};
