//! Core entities of the zoned-architecture specification (paper Sec. III).
//!
//! The specification has four entity types — AOD arrays, SLM arrays, zones,
//! and the architecture — mirroring Fig. 3 of the paper.

use crate::geometry::{Point, Rect};
use std::fmt;

/// An acousto-optic deflector array: a grid of mobile traps formed by the
/// intersections of activated row and column beams.
#[derive(Debug, Clone, PartialEq)]
pub struct AodArray {
    /// Index of this AOD among the architecture's AODs.
    pub aod_id: usize,
    /// Minimum separation (µm) between any two rows / any two columns.
    pub min_sep: f64,
    /// Capacity of the column component.
    pub max_num_col: usize,
    /// Capacity of the row component.
    pub max_num_row: usize,
}

impl AodArray {
    /// Creates an AOD array description.
    pub fn new(aod_id: usize, min_sep: f64, max_num_col: usize, max_num_row: usize) -> Self {
        Self { aod_id, min_sep, max_num_col, max_num_row }
    }
}

/// A spatial-light-modulator trap array: a fixed rectangular grid of traps.
#[derive(Debug, Clone, PartialEq)]
pub struct SlmArray {
    /// Global SLM identifier (unique across the whole architecture).
    pub slm_id: usize,
    /// `(x, y)` separations between neighboring traps (µm).
    pub sep: (f64, f64),
    /// Number of trap columns.
    pub num_col: usize,
    /// Number of trap rows.
    pub num_row: usize,
    /// Position of the bottom-left trap (µm).
    pub offset: Point,
}

impl SlmArray {
    /// Creates an SLM array description.
    pub fn new(
        slm_id: usize,
        sep: (f64, f64),
        num_col: usize,
        num_row: usize,
        offset: Point,
    ) -> Self {
        Self { slm_id, sep, num_col, num_row, offset }
    }

    /// Position of the trap at (`row`, `col`). Row 0 / col 0 is the
    /// bottom-left trap; rows grow in +y, columns in +x.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn trap_position(&self, row: usize, col: usize) -> Point {
        assert!(row < self.num_row && col < self.num_col, "trap ({row},{col}) out of range");
        Point::new(self.offset.x + col as f64 * self.sep.0, self.offset.y + row as f64 * self.sep.1)
    }

    /// Total number of traps.
    pub fn num_traps(&self) -> usize {
        self.num_row * self.num_col
    }

    /// The trap (row, col) nearest to `p`, by clamped rounding.
    pub fn nearest_trap(&self, p: Point) -> (usize, usize) {
        let col = if self.sep.0 > 0.0 {
            (((p.x - self.offset.x) / self.sep.0).round().max(0.0) as usize).min(self.num_col - 1)
        } else {
            0
        };
        let row = if self.sep.1 > 0.0 {
            (((p.y - self.offset.y) / self.sep.1).round().max(0.0) as usize).min(self.num_row - 1)
        } else {
            0
        };
        (row, col)
    }

    /// Bounding rectangle covered by the traps.
    pub fn bounds(&self) -> Rect {
        Rect::new(
            self.offset,
            (self.num_col.saturating_sub(1)) as f64 * self.sep.0,
            (self.num_row.saturating_sub(1)) as f64 * self.sep.1,
        )
    }
}

/// The role a zone plays in the architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZoneKind {
    /// Shields idle qubits from Rydberg excitation.
    Storage,
    /// Covered by the global Rydberg laser; hosts Rydberg sites.
    Entanglement,
    /// Qubit measurement region (kept for completeness; not scheduled into).
    Readout,
}

impl fmt::Display for ZoneKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Storage => write!(f, "storage"),
            Self::Entanglement => write!(f, "entanglement"),
            Self::Readout => write!(f, "readout"),
        }
    }
}

/// A physical region with boundaries containing zero or more SLM arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct Zone {
    /// Zone identifier (unique within its kind).
    pub zone_id: usize,
    /// Bottom-left corner of the region (µm).
    pub offset: Point,
    /// `(width, height)` of the region (µm).
    pub dimension: (f64, f64),
    /// SLM arrays inside the zone.
    pub slms: Vec<SlmArray>,
}

impl Zone {
    /// Creates a zone.
    pub fn new(zone_id: usize, offset: Point, dimension: (f64, f64), slms: Vec<SlmArray>) -> Self {
        Self { zone_id, offset, dimension, slms }
    }

    /// The zone's bounding rectangle.
    pub fn bounds(&self) -> Rect {
        Rect::new(self.offset, self.dimension.0, self.dimension.1)
    }
}

/// Identifies one Rydberg site: `zone` indexes the architecture's
/// entanglement zones; `(row, col)` index the site grid inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId {
    /// Index into [`crate::Architecture::entanglement_zones`].
    pub zone: usize,
    /// Site row inside the zone.
    pub row: usize,
    /// Site column inside the zone.
    pub col: usize,
}

impl SiteId {
    /// Creates a site id.
    pub const fn new(zone: usize, row: usize, col: usize) -> Self {
        Self { zone, row, col }
    }

    /// The site "in the middle" of two sites (paper Sec. V-A): row
    /// `⌊(r+r')/2⌋`, col `⌊(c+c')/2⌋` within `a`'s zone; if the zones
    /// differ, `a` wins. The single source of the formula — both
    /// `Architecture::middle_site` and `GeomCache::middle_site` delegate
    /// here, so the two geometry providers cannot drift apart.
    pub const fn middle(a: SiteId, b: SiteId) -> SiteId {
        if a.zone != b.zone {
            return a;
        }
        SiteId::new(a.zone, (a.row + b.row) / 2, (a.col + b.col) / 2)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ω[z{}]({},{})", self.zone, self.row, self.col)
    }
}

/// A qubit location: either a storage-zone trap or a slot of a Rydberg site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Loc {
    /// Trap (`row`, `col`) of SLM 0 in storage zone `zone`.
    Storage {
        /// Index into [`crate::Architecture::storage_zones`].
        zone: usize,
        /// Trap row.
        row: usize,
        /// Trap column.
        col: usize,
    },
    /// Slot `slot` (0 = left trap) of the Rydberg site at (`row`, `col`) of
    /// entanglement zone `zone`.
    Site {
        /// Index into [`crate::Architecture::entanglement_zones`].
        zone: usize,
        /// Site row.
        row: usize,
        /// Site column.
        col: usize,
        /// Which trap of the site (0-based; 0 is the reference/left trap).
        slot: usize,
    },
}

impl Loc {
    /// Whether this location is in a storage zone.
    pub fn is_storage(&self) -> bool {
        matches!(self, Loc::Storage { .. })
    }

    /// Whether this location is in an entanglement zone.
    pub fn is_site(&self) -> bool {
        matches!(self, Loc::Site { .. })
    }

    /// The site this location belongs to, if it is in an entanglement zone.
    pub fn site(&self) -> Option<SiteId> {
        match *self {
            Loc::Site { zone, row, col, .. } => Some(SiteId::new(zone, row, col)),
            Loc::Storage { .. } => None,
        }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Loc::Storage { zone, row, col } => write!(f, "s[z{zone}]({row},{col})"),
            Loc::Site { zone, row, col, slot } => write!(f, "ω[z{zone}]({row},{col})#{slot}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slm_trap_positions() {
        let slm = SlmArray::new(0, (3.0, 3.0), 100, 100, Point::new(0.0, 0.0));
        assert_eq!(slm.trap_position(0, 0), Point::new(0.0, 0.0));
        assert_eq!(slm.trap_position(99, 13), Point::new(39.0, 297.0));
        assert_eq!(slm.num_traps(), 10_000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slm_trap_out_of_range_panics() {
        let slm = SlmArray::new(0, (3.0, 3.0), 2, 2, Point::new(0.0, 0.0));
        slm.trap_position(2, 0);
    }

    #[test]
    fn nearest_trap_clamps() {
        let slm = SlmArray::new(0, (3.0, 3.0), 10, 10, Point::new(0.0, 0.0));
        assert_eq!(slm.nearest_trap(Point::new(-5.0, -5.0)), (0, 0));
        assert_eq!(slm.nearest_trap(Point::new(1e4, 1e4)), (9, 9));
        assert_eq!(slm.nearest_trap(Point::new(4.0, 7.9)), (3, 1));
    }

    #[test]
    fn zone_bounds() {
        let z = Zone::new(0, Point::new(35.0, 307.0), (240.0, 70.0), vec![]);
        assert!(z.bounds().contains(Point::new(100.0, 350.0)));
        assert!(!z.bounds().contains(Point::new(0.0, 0.0)));
    }

    #[test]
    fn loc_accessors() {
        let s = Loc::Storage { zone: 0, row: 1, col: 2 };
        let w = Loc::Site { zone: 0, row: 3, col: 4, slot: 1 };
        assert!(s.is_storage() && !s.is_site());
        assert!(w.is_site() && !w.is_storage());
        assert_eq!(w.site(), Some(SiteId::new(0, 3, 4)));
        assert_eq!(s.site(), None);
    }

    #[test]
    fn display_forms() {
        let s = Loc::Storage { zone: 0, row: 99, col: 1 };
        assert_eq!(s.to_string(), "s[z0](99,1)");
        assert_eq!(SiteId::new(0, 1, 2).to_string(), "ω[z0](1,2)");
    }
}
