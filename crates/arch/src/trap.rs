//! Generation-stamped dense trap tables — the shared occupancy/bookkeeping
//! substrate for the placement and scheduling hot paths.
//!
//! Both `zac-place` (the Eq. 3 return matching) and `zac-schedule` (the
//! emission loop's trap occupancy and vacate times) repeatedly answer "is
//! this trap in set S?" / "what value is attached to this trap?" for sets
//! that are rebuilt hundreds of times per compilation. `HashSet<Loc>` /
//! `HashMap<Loc, _>` answers cost a hash per probe and an allocation churn
//! per rebuild; the tables here cost one array load per probe and a
//! constant-time generation bump per rebuild:
//!
//! * [`TrapIndex`] maps every [`Loc`] of an [`Architecture`] — storage traps
//!   first (zone-major, row-major), then entanglement-site slots — to a
//!   dense `usize`.
//! * [`TrapSet`] is a membership set over those indices: `clear` bumps a
//!   generation counter instead of touching memory (the pattern PR 4
//!   introduced privately in `zac_place::dynamic`, lifted here so both
//!   crates share one implementation).
//! * [`TrapMap`] attaches a value to stamped entries, with the same O(1)
//!   clear.
//!
//! Stamps are `u32` generations; on the (astronomically rare) wrap-around
//! the tables are hard-cleared so stale stamps can never alias a live
//! generation.

use crate::architecture::Architecture;
use crate::model::Loc;

/// Dense `Loc → usize` indexer over every trap of one architecture.
///
/// Storage zones come first, each row-major, so flat indices
/// `0..num_storage_traps()` enumerate exactly the storage traps in
/// `(zone, row, col)` order — the scan order of detour-trap searches.
/// Entanglement-site slots follow, per zone and slot grid.
///
/// # Example
///
/// ```
/// use zac_arch::{Architecture, Loc, TrapIndex};
///
/// let arch = Architecture::reference();
/// let idx = TrapIndex::new(&arch);
/// let trap = Loc::Storage { zone: 0, row: 99, col: 13 };
/// assert_eq!(idx.storage_loc(idx.flat(trap)), trap);
/// ```
#[derive(Debug, Clone)]
pub struct TrapIndex {
    /// Flat offset of each storage zone's trap grid.
    storage_offsets: Vec<usize>,
    /// Column count per storage zone (row-major flattening).
    storage_cols: Vec<usize>,
    storage_total: usize,
    /// Flat offset of each entanglement zone's slot grids.
    site_offsets: Vec<usize>,
    /// (rows, cols) per entanglement zone.
    site_dims: Vec<(usize, usize)>,
    total: usize,
}

impl TrapIndex {
    /// Builds the indexer for `arch`.
    pub fn new(arch: &Architecture) -> Self {
        let mut storage_offsets = Vec::new();
        let mut storage_cols = Vec::new();
        let mut total = 0;
        for z in 0..arch.storage_zones().len() {
            let (rows, cols) = arch.storage_grid(z);
            storage_offsets.push(total);
            storage_cols.push(cols);
            total += rows * cols;
        }
        let storage_total = total;
        let mut site_offsets = Vec::new();
        let mut site_dims = Vec::new();
        for z in 0..arch.entanglement_zones().len() {
            let (rows, cols) = arch.site_grid(z);
            site_offsets.push(total);
            site_dims.push((rows, cols));
            total += rows * cols * arch.site_capacity(z);
        }
        Self { storage_offsets, storage_cols, storage_total, site_offsets, site_dims, total }
    }

    /// Total number of indexed traps (storage traps + site slots).
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the architecture has no traps at all.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of storage traps; flat indices below this value are exactly
    /// the storage traps, in `(zone, row, col)` order.
    pub fn num_storage_traps(&self) -> usize {
        self.storage_total
    }

    /// The flat index of a location.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds, via slice indexing) if the location's zone
    /// does not exist; out-of-grid rows/columns silently alias and must be
    /// validated upstream (the schedulers only index architecture-checked
    /// locations).
    #[inline]
    pub fn flat(&self, loc: Loc) -> usize {
        match loc {
            Loc::Storage { zone, row, col } => {
                self.storage_offsets[zone] + row * self.storage_cols[zone] + col
            }
            Loc::Site { zone, row, col, slot } => {
                let (rows, cols) = self.site_dims[zone];
                self.site_offsets[zone] + slot * rows * cols + row * cols + col
            }
        }
    }

    /// The storage trap at flat index `flat` (the inverse of [`flat`] over
    /// the storage range).
    ///
    /// # Panics
    ///
    /// Panics if `flat >= num_storage_traps()`.
    ///
    /// [`flat`]: TrapIndex::flat
    pub fn storage_loc(&self, flat: usize) -> Loc {
        assert!(flat < self.storage_total, "flat {flat} is not a storage trap");
        // Zones are few (1–2 in every preset); a linear scan beats a
        // binary search at these sizes.
        let zone = self
            .storage_offsets
            .iter()
            .rposition(|&off| off <= flat)
            .expect("offsets start at zero");
        let rel = flat - self.storage_offsets[zone];
        let cols = self.storage_cols[zone];
        Loc::Storage { zone, row: rel / cols, col: rel % cols }
    }
}

/// Bumps a generation counter, hard-resetting `stamps` on wrap-around so a
/// stale stamp can never equal a live generation.
fn next_generation(generation: &mut u32, stamps: &mut [u32]) {
    *generation = generation.wrapping_add(1);
    if *generation == 0 {
        stamps.iter_mut().for_each(|s| *s = 0);
        *generation = 1;
    }
}

/// A set of traps over a [`TrapIndex`]'s flat range with O(1) `clear`.
///
/// # Example
///
/// ```
/// use zac_arch::TrapSet;
///
/// let mut set = TrapSet::new(8);
/// set.insert(3);
/// assert!(set.contains(3));
/// set.remove(3);
/// assert!(!set.contains(3));
/// set.insert(5);
/// set.clear(); // O(1): no memory touched
/// assert!(!set.contains(5));
/// ```
#[derive(Debug, Clone)]
pub struct TrapSet {
    stamps: Vec<u32>,
    generation: u32,
}

impl TrapSet {
    /// An empty set over `len` flat indices.
    pub fn new(len: usize) -> Self {
        Self { stamps: vec![0; len], generation: 1 }
    }

    /// Empties the set in constant time.
    pub fn clear(&mut self) {
        next_generation(&mut self.generation, &mut self.stamps);
    }

    /// Inserts a trap.
    #[inline]
    pub fn insert(&mut self, flat: usize) {
        self.stamps[flat] = self.generation;
    }

    /// Removes a trap (a no-op if absent).
    #[inline]
    pub fn remove(&mut self, flat: usize) {
        self.stamps[flat] = 0;
    }

    /// Membership probe: one array load.
    #[inline]
    pub fn contains(&self, flat: usize) -> bool {
        self.stamps[flat] == self.generation
    }
}

/// A `flat → T` map over a [`TrapIndex`]'s range with O(1) `clear`.
///
/// # Example
///
/// ```
/// use zac_arch::TrapMap;
///
/// let mut vac: TrapMap<f64> = TrapMap::new(4);
/// vac.set(2, 17.5);
/// assert_eq!(vac.get(2), Some(17.5));
/// vac.clear();
/// assert_eq!(vac.get(2), None);
/// ```
#[derive(Debug, Clone)]
pub struct TrapMap<T> {
    stamps: Vec<u32>,
    values: Vec<T>,
    generation: u32,
}

impl<T: Copy + Default> TrapMap<T> {
    /// An empty map over `len` flat indices.
    pub fn new(len: usize) -> Self {
        Self { stamps: vec![0; len], values: vec![T::default(); len], generation: 1 }
    }

    /// Empties the map in constant time.
    pub fn clear(&mut self) {
        next_generation(&mut self.generation, &mut self.stamps);
    }

    /// Sets the value for a trap.
    #[inline]
    pub fn set(&mut self, flat: usize, value: T) {
        self.stamps[flat] = self.generation;
        self.values[flat] = value;
    }

    /// The trap's value, if set since the last `clear`.
    #[inline]
    pub fn get(&self, flat: usize) -> Option<T> {
        (self.stamps[flat] == self.generation).then(|| self.values[flat])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SiteId;

    fn archs() -> Vec<Architecture> {
        vec![
            Architecture::reference(),
            Architecture::arch1_small(),
            Architecture::arch2_two_zones(),
        ]
    }

    /// Every trap of every preset gets a unique flat index inside `len()`,
    /// and storage traps occupy exactly the leading range in scan order.
    #[test]
    fn flat_indices_are_a_bijection() {
        for arch in archs() {
            let idx = TrapIndex::new(&arch);
            let mut seen = vec![false; idx.len()];
            let mut expected_storage = 0usize;
            for z in 0..arch.storage_zones().len() {
                let (rows, cols) = arch.storage_grid(z);
                for row in 0..rows {
                    for col in 0..cols {
                        let loc = Loc::Storage { zone: z, row, col };
                        let f = idx.flat(loc);
                        assert_eq!(f, expected_storage, "{} {loc}", arch.name());
                        assert!(!seen[f]);
                        seen[f] = true;
                        assert_eq!(idx.storage_loc(f), loc);
                        expected_storage += 1;
                    }
                }
            }
            assert_eq!(expected_storage, idx.num_storage_traps());
            for z in 0..arch.entanglement_zones().len() {
                let (rows, cols) = arch.site_grid(z);
                for slot in 0..arch.site_capacity(z) {
                    for row in 0..rows {
                        for col in 0..cols {
                            let f = idx.flat(Loc::Site { zone: z, row, col, slot });
                            assert!(f >= idx.num_storage_traps() && f < idx.len());
                            assert!(!seen[f], "{} duplicate flat {f}", arch.name());
                            seen[f] = true;
                        }
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "{}: unassigned flat index", arch.name());
            // Site ids resolve through the same index as their slot-0 locs.
            let site = SiteId::new(0, 0, 0);
            let loc = Loc::Site { zone: site.zone, row: site.row, col: site.col, slot: 0 };
            assert_eq!(idx.flat(loc), idx.flat(loc));
        }
    }

    #[test]
    fn set_clear_is_complete() {
        let mut set = TrapSet::new(10);
        for f in 0..10 {
            set.insert(f);
        }
        set.clear();
        assert!((0..10).all(|f| !set.contains(f)));
        set.insert(4);
        assert!(set.contains(4));
        assert!(!set.contains(5));
    }

    #[test]
    fn map_clear_forgets_values() {
        let mut map: TrapMap<usize> = TrapMap::new(6);
        map.set(1, 42);
        map.set(5, 7);
        assert_eq!(map.get(1), Some(42));
        assert_eq!(map.get(0), None);
        map.clear();
        assert_eq!(map.get(1), None);
        map.set(1, 9);
        assert_eq!(map.get(1), Some(9));
    }

    /// The wrap-around hard reset keeps stale stamps dead: drive a set
    /// through the full u32 generation space.
    #[test]
    fn generation_wraparound_cannot_alias() {
        let mut set = TrapSet::new(2);
        set.insert(0);
        // Force the counter to the edge instead of looping 2^32 times.
        set.generation = u32::MAX;
        set.insert(1);
        set.clear(); // wraps: hard reset, generation restarts at 1
        assert!(!set.contains(0));
        assert!(!set.contains(1));
        set.insert(0);
        assert!(set.contains(0));
    }
}
