//! Preset architectures used throughout the paper's evaluation.

use crate::architecture::Architecture;
use crate::geometry::Point;
use crate::model::{AodArray, SlmArray, Zone};

impl Architecture {
    /// The reference zoned architecture of Fig. 2 / Fig. 20:
    ///
    /// * storage zone: 100×100 traps, 3 µm pitch, at the origin;
    /// * entanglement zone: 7×20 Rydberg sites (two SLM arrays offset by
    ///   d_Ryd = 2 µm; site pitch 12 µm × 10 µm) starting at (35, 307);
    /// * readout zone above the entanglement zone;
    /// * one AOD with 100×100 capacity and 2 µm minimum separation.
    ///
    /// # Example
    ///
    /// ```
    /// use zac_arch::Architecture;
    /// let arch = Architecture::reference();
    /// assert_eq!(arch.name(), "full_compute_store_architecture");
    /// ```
    pub fn reference() -> Self {
        let storage = Zone::new(
            0,
            Point::new(0.0, 0.0),
            (300.0, 300.0),
            vec![SlmArray::new(0, (3.0, 3.0), 100, 100, Point::new(0.0, 0.0))],
        );
        let entangle = Zone::new(
            0,
            Point::new(35.0, 307.0),
            (240.0, 70.0),
            vec![
                SlmArray::new(1, (12.0, 10.0), 20, 7, Point::new(35.0, 307.0)),
                SlmArray::new(2, (12.0, 10.0), 20, 7, Point::new(37.0, 307.0)),
            ],
        );
        let readout = Zone::new(0, Point::new(0.0, 387.0), (297.0, 15.0), vec![]);
        Architecture::new(
            "full_compute_store_architecture",
            vec![AodArray::new(0, 2.0, 100, 100)],
            vec![storage],
            vec![entangle],
            vec![readout],
        )
        .expect("reference architecture is valid")
    }

    /// The monolithic architecture of Sec. VII-A: a single entanglement zone
    /// with `rows×cols` Rydberg sites (default comparison uses 10×10) and one
    /// AOD; no storage zone, so every qubit is exposed to the Rydberg laser.
    ///
    /// Site geometry follows the reference entanglement zone (12 µm × 10 µm
    /// pitch, paired traps 2 µm apart).
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0 || cols == 0`.
    pub fn monolithic(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "empty monolithic grid");
        let width = (cols - 1) as f64 * 12.0 + 2.0;
        let height = (rows.max(2) - 1) as f64 * 10.0;
        let entangle = Zone::new(
            0,
            Point::new(0.0, 0.0),
            (width, height),
            vec![
                SlmArray::new(0, (12.0, 10.0), cols, rows, Point::new(0.0, 0.0)),
                SlmArray::new(1, (12.0, 10.0), cols, rows, Point::new(2.0, 0.0)),
            ],
        );
        Architecture::new(
            "monolithic_architecture",
            vec![AodArray::new(0, 2.0, rows.max(cols), rows.max(cols))],
            vec![],
            vec![entangle],
            vec![],
        )
        .expect("monolithic architecture is valid")
    }

    /// Arch1 of Sec. VII-H: a small zoned architecture with 3×40 storage
    /// traps and one entanglement zone of 6×10 sites.
    pub fn arch1_small() -> Self {
        let storage = Zone::new(
            0,
            Point::new(0.0, 0.0),
            (120.0, 7.0),
            vec![SlmArray::new(0, (3.0, 3.0), 40, 3, Point::new(0.0, 0.0))],
        );
        let entangle = Zone::new(
            0,
            Point::new(0.0, 17.0),
            (112.0, 51.0),
            vec![
                SlmArray::new(1, (12.0, 10.0), 10, 6, Point::new(0.0, 17.0)),
                SlmArray::new(2, (12.0, 10.0), 10, 6, Point::new(2.0, 17.0)),
            ],
        );
        Architecture::new(
            "arch1_single_entanglement",
            vec![AodArray::new(0, 2.0, 100, 100)],
            vec![storage],
            vec![entangle],
            vec![],
        )
        .expect("arch1 is valid")
    }

    /// Arch2 of Sec. VII-H: same storage as [`Architecture::arch1_small`]
    /// but two entanglement zones of 3×10 sites each, placed below and above
    /// the storage zone, halving the distance to the rear site rows.
    pub fn arch2_two_zones() -> Self {
        let below = Zone::new(
            0,
            Point::new(0.0, 0.0),
            (112.0, 21.0),
            vec![
                SlmArray::new(1, (12.0, 10.0), 10, 3, Point::new(0.0, 0.0)),
                SlmArray::new(2, (12.0, 10.0), 10, 3, Point::new(2.0, 0.0)),
            ],
        );
        let storage = Zone::new(
            0,
            Point::new(0.0, 31.0),
            (120.0, 7.0),
            vec![SlmArray::new(0, (3.0, 3.0), 40, 3, Point::new(0.0, 31.0))],
        );
        let above = Zone::new(
            1,
            Point::new(0.0, 48.0),
            (112.0, 21.0),
            vec![
                SlmArray::new(3, (12.0, 10.0), 10, 3, Point::new(0.0, 48.0)),
                SlmArray::new(4, (12.0, 10.0), 10, 3, Point::new(2.0, 48.0)),
            ],
        );
        Architecture::new(
            "arch2_double_entanglement",
            vec![AodArray::new(0, 2.0, 100, 100)],
            vec![storage],
            vec![below, above],
            vec![],
        )
        .expect("arch2 is valid")
    }

    /// A parameterized zoned architecture for design-space exploration:
    /// a `storage_rows×storage_cols` storage zone (3 µm pitch) below an
    /// entanglement zone with `site_rows×site_cols` Rydberg sites
    /// (12 µm × 10 µm pitch, paired traps 2 µm apart), separated by the
    /// reference 10 µm gap.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zoned_custom(
        storage_rows: usize,
        storage_cols: usize,
        site_rows: usize,
        site_cols: usize,
    ) -> Self {
        assert!(
            storage_rows > 0 && storage_cols > 0 && site_rows > 0 && site_cols > 0,
            "architecture dimensions must be positive"
        );
        let s_w = (storage_cols - 1) as f64 * 3.0;
        let s_h = (storage_rows - 1) as f64 * 3.0;
        let storage = Zone::new(
            0,
            Point::new(0.0, 0.0),
            (s_w.max(1.0), s_h.max(1.0)),
            vec![SlmArray::new(0, (3.0, 3.0), storage_cols, storage_rows, Point::new(0.0, 0.0))],
        );
        let e_y = s_h + 10.0;
        let e_w = (site_cols - 1) as f64 * 12.0 + 2.0;
        let e_h = (site_rows - 1) as f64 * 10.0;
        let entangle = Zone::new(
            0,
            Point::new(0.0, e_y),
            (e_w.max(1.0), e_h.max(1.0)),
            vec![
                SlmArray::new(1, (12.0, 10.0), site_cols, site_rows, Point::new(0.0, e_y)),
                SlmArray::new(2, (12.0, 10.0), site_cols, site_rows, Point::new(2.0, e_y)),
            ],
        );
        let cap = storage_rows.max(storage_cols).max(site_rows.max(site_cols));
        Architecture::new(
            format!("zoned_{storage_rows}x{storage_cols}_sites_{site_rows}x{site_cols}"),
            vec![AodArray::new(0, 2.0, cap, cap)],
            vec![storage],
            vec![entangle],
            vec![],
        )
        .expect("custom zoned architecture is valid")
    }

    /// The logical-level architecture for the FTQC case study (Sec. VIII):
    /// each [[8,3,2]] block occupies 2×4 physical sites, so the 7×20 physical
    /// entanglement zone supports ⌊7/2⌋ × ⌊20/4⌋ = 3×5 logical sites, and the
    /// storage zone holds logical blocks at a 12 µm × 6 µm pitch.
    pub fn ftqc_logical() -> Self {
        // Storage: 128 blocks fit in 8 rows × 16 cols with margin.
        let storage = Zone::new(
            0,
            Point::new(0.0, 0.0),
            (300.0, 96.0),
            vec![SlmArray::new(0, (12.0, 6.0), 25, 16, Point::new(0.0, 0.0))],
        );
        // Logical sites: pitch = 4 physical cols (48 µm) × 2 physical rows (20 µm).
        let entangle = Zone::new(
            0,
            Point::new(35.0, 106.0),
            (240.0, 60.0),
            vec![
                SlmArray::new(1, (48.0, 20.0), 5, 3, Point::new(35.0, 106.0)),
                SlmArray::new(2, (48.0, 20.0), 5, 3, Point::new(37.0, 106.0)),
            ],
        );
        Architecture::new(
            "ftqc_logical_architecture",
            vec![AodArray::new(0, 2.0, 100, 100)],
            vec![storage],
            vec![entangle],
            vec![],
        )
        .expect("ftqc logical architecture is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SiteId;

    #[test]
    fn monolithic_10x10() {
        let arch = Architecture::monolithic(10, 10);
        assert_eq!(arch.num_sites(), 100);
        assert!(arch.storage_zones().is_empty());
    }

    #[test]
    #[should_panic(expected = "empty monolithic grid")]
    fn monolithic_zero_panics() {
        Architecture::monolithic(0, 10);
    }

    #[test]
    fn arch1_shape() {
        let arch = Architecture::arch1_small();
        assert_eq!(arch.num_sites(), 60);
        assert_eq!(arch.storage_grid(0), (3, 40));
    }

    #[test]
    fn arch2_has_two_zones_of_30_sites() {
        let arch = Architecture::arch2_two_zones();
        assert_eq!(arch.entanglement_zones().len(), 2);
        assert_eq!(arch.num_sites(), 60);
        // Same number of sites as arch1, per the paper's fair comparison.
        assert_eq!(arch.num_sites(), Architecture::arch1_small().num_sites());
    }

    #[test]
    fn arch2_reduces_rear_row_distance() {
        // The farthest site row from storage should be closer on arch2.
        let a1 = Architecture::arch1_small();
        let a2 = Architecture::arch2_two_zones();
        let storage_top = a1.position(crate::Loc::Storage { zone: 0, row: 2, col: 20 });
        let far1 = a1.site_position(SiteId::new(0, 5, 5)).distance(storage_top);
        let storage_mid = a2.position(crate::Loc::Storage { zone: 0, row: 1, col: 20 });
        let far2a = a2.site_position(SiteId::new(0, 0, 5)).distance(storage_mid);
        let far2b = a2.site_position(SiteId::new(1, 2, 5)).distance(storage_mid);
        assert!(far2a.max(far2b) < far1);
    }

    #[test]
    fn zoned_custom_shapes() {
        let arch = Architecture::zoned_custom(5, 30, 4, 8);
        assert_eq!(arch.storage_grid(0), (5, 30));
        assert_eq!(arch.site_grid(0), (4, 8));
        assert_eq!(arch.num_sites(), 32);
        // Zone separation is the reference 10 µm.
        let top_storage = arch.position(crate::Loc::Storage { zone: 0, row: 4, col: 0 });
        let bottom_site = arch.site_position(SiteId::new(0, 0, 0));
        assert!((bottom_site.y - top_storage.y - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zoned_custom_rejects_zero() {
        Architecture::zoned_custom(0, 10, 2, 2);
    }

    #[test]
    fn ftqc_logical_shape() {
        let arch = Architecture::ftqc_logical();
        assert_eq!(arch.site_grid(0), (3, 5));
        assert!(arch.storage_capacity() >= 128);
    }
}
