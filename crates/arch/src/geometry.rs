//! Planar geometry and the atom-movement timing law.
//!
//! All distances are micrometres (µm) and all times are microseconds (µs),
//! matching the units the ZAC paper uses throughout.

/// Movement acceleration constant: the paper uses `d/t² = 2750 m/s²`
/// (Bluvstein et al. 2022), which is `2.75e-3 µm/µs²`.
pub const MOVE_ACCEL_UM_PER_US2: f64 = 2.75e-3;

/// Time (µs) to move an atom a distance `d_um` (µm) at the paper's speed law.
///
/// `t = sqrt(d / a)`: moving 10 µm (one zone separation) takes ≈ 60.3 µs.
///
/// # Example
///
/// ```
/// use zac_arch::geometry::movement_time_us;
/// let t = movement_time_us(10.0);
/// assert!((t - 60.3).abs() < 0.1);
/// assert_eq!(movement_time_us(0.0), 0.0);
/// ```
pub fn movement_time_us(d_um: f64) -> f64 {
    debug_assert!(d_um >= 0.0, "negative distance");
    (d_um / MOVE_ACCEL_UM_PER_US2).sqrt()
}

/// A point in the machine plane (µm).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate (µm).
    pub x: f64,
    /// Vertical coordinate (µm).
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other` (µm).
    ///
    /// # Example
    ///
    /// ```
    /// use zac_arch::geometry::Point;
    /// let d = Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0));
    /// assert_eq!(d, 5.0);
    /// ```
    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Movement time (µs) from `self` to `other` under the paper's speed law.
    pub fn move_time(self, other: Point) -> f64 {
        movement_time_us(self.distance(other))
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Self { x, y }
    }
}

/// An axis-aligned rectangle: `origin` is the bottom-left corner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Bottom-left corner.
    pub origin: Point,
    /// Width (x extent, µm).
    pub width: f64,
    /// Height (y extent, µm).
    pub height: f64,
}

impl Rect {
    /// Creates a rectangle from its bottom-left corner and dimensions.
    pub const fn new(origin: Point, width: f64, height: f64) -> Self {
        Self { origin, width, height }
    }

    /// Whether `p` lies inside (boundary inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.origin.x
            && p.x <= self.origin.x + self.width
            && p.y >= self.origin.y
            && p.y <= self.origin.y + self.height
    }

    /// Whether two rectangles overlap with positive area.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.origin.x < other.origin.x + other.width
            && other.origin.x < self.origin.x + self.width
            && self.origin.y < other.origin.y + other.height
            && other.origin.y < self.origin.y + self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movement_time_matches_paper_layer_duration() {
        // Perfect-placement layer: 2*T_tran + sqrt(d_sep / a) with d_sep = 10um.
        let t = movement_time_us(10.0);
        assert!((t - 60.302).abs() < 1e-2, "got {t}");
    }

    #[test]
    fn movement_time_is_monotone() {
        let mut prev = 0.0;
        for d in [0.0, 1.0, 2.0, 10.0, 100.0, 500.0] {
            let t = movement_time_us(d);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn movement_time_sqrt_scaling() {
        // 4x distance → 2x time.
        let t1 = movement_time_us(25.0);
        let t4 = movement_time_us(100.0);
        assert!((t4 / t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn point_distance_symmetric() {
        let a = Point::new(1.0, 9.0);
        let b = Point::new(13.0, 19.0);
        assert_eq!(a.distance(b), b.distance(a));
        // Example from the paper (Sec. V-A): d(w00, s3,4) = 16.40.
        let w00 = Point::new(0.0, 19.0);
        let s34 = Point::new(13.0, 9.0);
        assert!((w00.distance(s34) - 16.401).abs() < 1e-2);
    }

    #[test]
    fn rect_contains_boundary() {
        let r = Rect::new(Point::new(0.0, 0.0), 10.0, 5.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(10.0, 5.0)));
        assert!(!r.contains(Point::new(10.1, 5.0)));
    }

    #[test]
    fn rect_intersection() {
        let a = Rect::new(Point::new(0.0, 0.0), 10.0, 10.0);
        let b = Rect::new(Point::new(5.0, 5.0), 10.0, 10.0);
        let c = Rect::new(Point::new(10.0, 0.0), 5.0, 5.0); // touching edge only
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn triangle_inequality(ax in -1e3..1e3f64, ay in -1e3..1e3f64,
                                   bx in -1e3..1e3f64, by in -1e3..1e3f64,
                                   cx in -1e3..1e3f64, cy in -1e3..1e3f64) {
                let a = Point::new(ax, ay);
                let b = Point::new(bx, by);
                let c = Point::new(cx, cy);
                prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
            }

            #[test]
            fn move_time_nonnegative(d in 0.0..1e6f64) {
                prop_assert!(movement_time_us(d) >= 0.0);
            }
        }
    }
}
