//! Steady-state allocation test for workspace-backed job planning.
//!
//! The scheduler plans every candidate rearrangement job while bundling a
//! transition's moves — hundreds of small [`JobBuilder::plan`] calls per
//! compilation, most of which never materialize a job (deadlock dissolution
//! discards and re-plans bundles). With the builder's buffers warmed, every
//! later `plan` must perform **zero** heap allocations; a counting global
//! allocator makes the claim checkable instead of asserted (the same
//! technique as `zac-graph/tests/alloc_free.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use zac_arch::{Architecture, Loc};
use zac_zair::machine::{JobBuilder, MoveSpec};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A fetch bundle of `k` order-preserving storage→site moves (row-major
/// monotone, so they always form one valid job).
fn fetch_bundle(out: &mut Vec<MoveSpec>, k: usize, row: usize) {
    out.clear();
    for i in 0..k {
        out.push(MoveSpec::new(
            i,
            Loc::Storage { zone: 0, row, col: 3 * i },
            Loc::Site { zone: 0, row: 0, col: i, slot: 0 },
        ));
    }
}

#[test]
fn steady_state_plans_do_not_allocate() {
    let arch = Architecture::reference();
    let mut builder = JobBuilder::new();
    let mut moves: Vec<MoveSpec> = Vec::with_capacity(16);

    // Warm-up: grow every buffer to the largest shape in the mix, including
    // a multi-row job (parking simulation buffers). Row order must be
    // preserved: storage row 98 sits below row 99, so its target site row
    // must also sit below (site rows grow upward from the storage zone).
    moves.clear();
    for i in 0..8 {
        moves.push(MoveSpec::new(
            i,
            Loc::Storage { zone: 0, row: 99, col: 3 * i },
            Loc::Site { zone: 0, row: 1, col: i, slot: 0 },
        ));
    }
    moves.push(MoveSpec::new(
        8,
        Loc::Storage { zone: 0, row: 98, col: 0 },
        Loc::Site { zone: 0, row: 0, col: 0, slot: 0 },
    ));
    builder.plan(&arch, &moves, 15.0).expect("warm-up bundle is a valid job");

    for round in 0..60usize {
        let k = 1 + round % 8;
        fetch_bundle(&mut moves, k, 99 - (round % 3));
        let before = allocations();
        let timing = builder.plan(&arch, &moves, 15.0).expect("valid bundle");
        let after = allocations();
        assert!(timing.total() > 0.0);
        assert_eq!(after - before, 0, "round {round} (k={k}): plan allocated in steady state");
    }
}

/// The planned timing always matches the materialized job's anatomy.
#[test]
fn plan_matches_build_timing() {
    let arch = Architecture::reference();
    let mut builder = JobBuilder::new();
    let mut moves: Vec<MoveSpec> = Vec::new();
    for k in 1..=6 {
        fetch_bundle(&mut moves, k, 99);
        let timing = builder.plan(&arch, &moves, 15.0).unwrap();
        let job = builder.build(&arch, &moves, 15.0).unwrap();
        assert_eq!(timing.pick_duration.to_bits(), job.pick_duration.to_bits());
        assert_eq!(timing.move_duration.to_bits(), job.move_duration.to_bits());
        assert_eq!(timing.drop_duration.to_bits(), job.drop_duration.to_bits());
        assert_eq!(timing.total().to_bits(), (job.end_time - job.begin_time).to_bits());
        // And the builder path is exactly the free function.
        assert_eq!(job, zac_zair::build_job(&arch, &moves, 15.0).unwrap());
    }
}
