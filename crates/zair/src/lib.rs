//! ZAIR — the zoned-architecture intermediate representation (paper Sec. IX).
//!
//! ZAIR sits between the compiler and machine-level control: four instruction
//! types ([`Instruction`]) — `init`, `1qGate`, `rydberg` and `rearrangeJob` —
//! where each rearrangement job abstracts one AOD's pickup → transport →
//! drop-off cycle and expands to machine-level [`AodInst`]s
//! (`activate` / `move` / `deactivate`, including parking moves).
//!
//! * [`machine::build_job`] constructs a job from a set of compatible qubit
//!   movements, generating its machine-level expansion and timing anatomy.
//! * [`Program::analyze`] is a validating interpreter: it tracks every
//!   qubit's location through the instruction stream, rejects inconsistent
//!   programs, and extracts the execution summary ([`Analysis`]) consumed by
//!   the fidelity model — gate counts, transfer counts, idle-qubit Rydberg
//!   excitations and per-qubit busy time.
//!
//! # Example
//!
//! ```
//! use zac_arch::{Architecture, Loc};
//! use zac_zair::{machine::{build_job, MoveSpec}, Instruction, Program, QubitLoc};
//!
//! let arch = Architecture::reference();
//! let s = Loc::Storage { zone: 0, row: 99, col: 0 };
//! let w = Loc::Site { zone: 0, row: 0, col: 0, slot: 0 };
//!
//! let mut p = Program::new("demo", arch.name(), 1);
//! let (slm, r, c) = arch.loc_to_slm(s);
//! p.instructions.push(Instruction::Init { init_locs: vec![QubitLoc::new(0, slm, r, c)] });
//! p.instructions.push(Instruction::RearrangeJob(build_job(
//!     &arch, &[MoveSpec::new(0, s, w)], 15.0)?));
//! let analysis = p.analyze(&arch).expect("valid program");
//! assert_eq!(analysis.n_tran, 2);
//! # Ok::<(), zac_zair::machine::JobError>(())
//! ```

pub mod inst;
pub mod machine;
pub mod program;
pub mod render;
pub mod verify;

pub use inst::{AodInst, Instruction, QubitLoc, RearrangeJob, U3Application};
pub use machine::{
    build_job, moves_compatible, shift_job, JobBuilder, JobError, JobTiming, MoveSpec,
};
pub use program::{Analysis, Program, ZairError, ZairStats};
pub use verify::VerifyError;
