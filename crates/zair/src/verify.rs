//! Semantic verification: does a compiled program implement its circuit?
//!
//! [`Program::analyze`] checks *physical* consistency (locations, occupancy,
//! timing) and counts gates — but a program could pair the wrong qubits and
//! still pass. This module closes that gap: it replays the program, derives
//! which qubit pairs interact at every Rydberg exposure, and checks them
//! against the staged circuit's dependency structure — every gate executes
//! exactly once, and never before a predecessor gate of either operand.

use crate::inst::Instruction;
use crate::program::Program;
use std::collections::HashMap;
use std::fmt;
use zac_arch::{Architecture, Loc};
use zac_circuit::StagedCircuit;

/// Verification failure.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// An exposure paired two qubits with no pending gate between them.
    UnexpectedInteraction {
        /// The paired qubits.
        qubits: (usize, usize),
        /// Index of the offending instruction.
        instruction: usize,
    },
    /// A gate executed before one of its dependencies.
    DependencyViolation {
        /// The gate that ran early (id from the staged circuit).
        gate_id: usize,
        /// The unfinished predecessor.
        blocked_by: usize,
    },
    /// A gate between the paired qubits executed twice.
    DuplicateExecution {
        /// The paired qubits.
        qubits: (usize, usize),
    },
    /// Gates left unexecuted at the end of the program.
    MissingGates {
        /// Ids of the unexecuted gates.
        gate_ids: Vec<usize>,
    },
    /// The program failed physical validation first.
    InvalidProgram(String),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedInteraction { qubits: (a, b), instruction } => {
                write!(f, "exposure {instruction} pairs qubits {a},{b} with no pending gate")
            }
            Self::DependencyViolation { gate_id, blocked_by } => {
                write!(f, "gate {gate_id} executed before its predecessor {blocked_by}")
            }
            Self::DuplicateExecution { qubits: (a, b) } => {
                write!(f, "gate between {a},{b} executed twice")
            }
            Self::MissingGates { gate_ids } => {
                write!(f, "{} gates never executed (first: {:?})", gate_ids.len(), gate_ids.first())
            }
            Self::InvalidProgram(e) => write!(f, "physically invalid program: {e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl Program {
    /// Verifies that this program implements `staged` on `arch`: every CZ of
    /// the staged circuit executes exactly once, in dependency order, and no
    /// exposure pairs qubits that have no gate scheduled.
    ///
    /// # Errors
    ///
    /// The first [`VerifyError`] encountered.
    pub fn verify_against(
        &self,
        arch: &Architecture,
        staged: &StagedCircuit,
    ) -> Result<(), VerifyError> {
        self.analyze(arch).map_err(|e| VerifyError::InvalidProgram(e.to_string()))?;

        // Per-qubit gate queues in stage order: a gate may fire only when it
        // is at the front of both operands' queues.
        let mut queue_of: HashMap<usize, Vec<usize>> = HashMap::new(); // qubit → gate ids
        let mut gate_pair: HashMap<usize, (usize, usize)> = HashMap::new();
        for (_, g) in staged.gates_with_stage() {
            queue_of.entry(g.a).or_default().push(g.id);
            queue_of.entry(g.b).or_default().push(g.id);
            gate_pair.insert(g.id, (g.a, g.b));
        }
        let mut next_idx: HashMap<usize, usize> = HashMap::new(); // qubit → queue cursor
        let mut executed: HashMap<usize, bool> = gate_pair.keys().map(|&id| (id, false)).collect();

        // Replay locations.
        let mut loc_of: Vec<Option<Loc>> = vec![None; self.num_qubits];
        for (idx, inst) in self.instructions.iter().enumerate() {
            match inst {
                Instruction::Init { init_locs } => {
                    for ql in init_locs {
                        loc_of[ql.qubit] = arch.slm_to_loc(ql.slm_id, ql.row, ql.col);
                    }
                }
                Instruction::RearrangeJob(job) => {
                    for (_, eql) in job.moves() {
                        loc_of[eql.qubit] = arch.slm_to_loc(eql.slm_id, eql.row, eql.col);
                    }
                }
                Instruction::Rydberg { zone_id, .. } => {
                    // Pairs = complete sites in the exposed zone.
                    let mut by_site: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
                    for (q, loc) in loc_of.iter().enumerate() {
                        if let Some(Loc::Site { zone, row, col, .. }) = loc {
                            if zone == zone_id {
                                by_site.entry((*row, *col)).or_default().push(q);
                            }
                        }
                    }
                    for (_, qs) in by_site {
                        if qs.len() < 2 {
                            continue;
                        }
                        let (a, b) = (qs[0].min(qs[1]), qs[0].max(qs[1]));
                        // The gate must be at the front of both queues.
                        let front = |q: usize| -> Option<usize> {
                            let cur = *next_idx.get(&q).unwrap_or(&0);
                            queue_of.get(&q).and_then(|v| v.get(cur)).copied()
                        };
                        let (fa, fb) = (front(a), front(b));
                        // The first still-pending gate between (a, b), if any.
                        let pending_ab: Option<usize> = {
                            let cur = *next_idx.get(&a).unwrap_or(&0);
                            queue_of
                                .get(&a)
                                .map(|v| &v[cur.min(v.len())..])
                                .unwrap_or(&[])
                                .iter()
                                .copied()
                                .find(|id| gate_pair[id] == (a, b))
                        };
                        match (fa, fb, pending_ab) {
                            (Some(ga), Some(gb), Some(g)) if ga == g && gb == g => {
                                if executed[&g] {
                                    return Err(VerifyError::DuplicateExecution { qubits: (a, b) });
                                }
                                executed.insert(g, true);
                                *next_idx.entry(a).or_insert(0) += 1;
                                *next_idx.entry(b).or_insert(0) += 1;
                            }
                            (fa, fb, Some(g)) => {
                                // A gate between (a, b) exists but one operand
                                // still owes an earlier gate.
                                let blocked_by =
                                    fa.into_iter().chain(fb).find(|&f| f != g).unwrap_or(g);
                                return Err(VerifyError::DependencyViolation {
                                    gate_id: g,
                                    blocked_by,
                                });
                            }
                            _ => {
                                return Err(VerifyError::UnexpectedInteraction {
                                    qubits: (a, b),
                                    instruction: idx,
                                })
                            }
                        }
                    }
                }
                Instruction::OneQGate { .. } => {}
            }
        }

        let missing: Vec<usize> = {
            let mut m: Vec<usize> =
                executed.iter().filter(|(_, &done)| !done).map(|(&id, _)| id).collect();
            m.sort_unstable();
            m
        };
        if !missing.is_empty() {
            return Err(VerifyError::MissingGates { gate_ids: missing });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::QubitLoc;
    use crate::machine::{build_job, shift_job, MoveSpec};

    fn arch() -> Architecture {
        Architecture::reference()
    }

    fn qloc(arch: &Architecture, q: usize, loc: Loc) -> QubitLoc {
        let (slm, r, c) = arch.loc_to_slm(loc);
        QubitLoc::new(q, slm, r, c)
    }

    /// Staged circuit: CZ(0,1) then CZ(1,2).
    fn staged() -> StagedCircuit {
        let mut c = zac_circuit::Circuit::new("v", 3);
        c.cz(0, 1).cz(1, 2);
        zac_circuit::preprocess(&c)
    }

    fn storage(col: usize) -> Loc {
        Loc::Storage { zone: 0, row: 99, col }
    }

    fn site(col: usize, slot: usize) -> Loc {
        Loc::Site { zone: 0, row: 0, col, slot }
    }

    /// Hand-builds a program executing the two gates in order.
    fn good_program(arch: &Architecture) -> Program {
        let mut p = Program::new("v", arch.name(), 3);
        p.instructions.push(Instruction::Init {
            init_locs: (0..3).map(|q| qloc(arch, q, storage(q))).collect(),
        });
        let mut t = 0.0;
        let emit = |p: &mut Program, moves: &[MoveSpec], t: &mut f64| {
            let mut job = build_job(arch, moves, 15.0).unwrap();
            shift_job(&mut job, *t);
            *t = job.end_time;
            p.instructions.push(Instruction::RearrangeJob(job));
        };
        emit(
            &mut p,
            &[MoveSpec::new(0, storage(0), site(0, 0)), MoveSpec::new(1, storage(1), site(0, 1))],
            &mut t,
        );
        p.instructions.push(Instruction::Rydberg { zone_id: 0, begin_time: t, end_time: t + 0.36 });
        t += 0.36;
        emit(&mut p, &[MoveSpec::new(0, site(0, 0), storage(0))], &mut t);
        emit(&mut p, &[MoveSpec::new(2, storage(2), site(0, 0))], &mut t);
        p.instructions.push(Instruction::Rydberg { zone_id: 0, begin_time: t, end_time: t + 0.36 });
        p
    }

    #[test]
    fn correct_program_verifies() {
        let arch = arch();
        good_program(&arch).verify_against(&arch, &staged()).unwrap();
    }

    #[test]
    fn wrong_pair_detected() {
        let arch = arch();
        // Pair (0,2) first: no gate exists between 0 and 2.
        let mut p = Program::new("v", arch.name(), 3);
        p.instructions.push(Instruction::Init {
            init_locs: (0..3).map(|q| qloc(&arch, q, storage(q))).collect(),
        });
        let job = build_job(
            &arch,
            &[MoveSpec::new(0, storage(0), site(0, 0)), MoveSpec::new(2, storage(2), site(0, 1))],
            15.0,
        )
        .unwrap();
        p.instructions.push(Instruction::RearrangeJob(job));
        p.instructions.push(Instruction::Rydberg {
            zone_id: 0,
            begin_time: 200.0,
            end_time: 200.36,
        });
        let err = p.verify_against(&arch, &staged()).unwrap_err();
        assert!(matches!(err, VerifyError::UnexpectedInteraction { qubits: (0, 2), .. }), "{err}");
    }

    #[test]
    fn dependency_violation_detected() {
        let arch = arch();
        // Execute CZ(1,2) before CZ(0,1): qubit 1's queue starts with gate 0.
        let mut p = Program::new("v", arch.name(), 3);
        p.instructions.push(Instruction::Init {
            init_locs: (0..3).map(|q| qloc(&arch, q, storage(q))).collect(),
        });
        let job = build_job(
            &arch,
            &[MoveSpec::new(1, storage(1), site(0, 0)), MoveSpec::new(2, storage(2), site(0, 1))],
            15.0,
        )
        .unwrap();
        p.instructions.push(Instruction::RearrangeJob(job));
        p.instructions.push(Instruction::Rydberg {
            zone_id: 0,
            begin_time: 200.0,
            end_time: 200.36,
        });
        let err = p.verify_against(&arch, &staged()).unwrap_err();
        assert!(matches!(err, VerifyError::DependencyViolation { .. }), "{err}");
    }

    #[test]
    fn missing_gates_detected() {
        let arch = arch();
        let mut p = good_program(&arch);
        // Drop the final exposure: gate 1 never runs.
        p.instructions.pop();
        let err = p.verify_against(&arch, &staged()).unwrap_err();
        assert_eq!(err, VerifyError::MissingGates { gate_ids: vec![1] });
    }

    #[test]
    fn invalid_program_reported() {
        let arch = arch();
        let p = Program::new("v", arch.name(), 3); // no init
        let err = p.verify_against(&arch, &staged()).unwrap_err();
        assert!(matches!(err, VerifyError::InvalidProgram(_)));
    }
}
