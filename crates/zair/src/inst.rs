//! ZAIR instruction types (paper Sec. IX, Fig. 17).

/// Locates qubit `qubit` at (`row`, `col`) of SLM array `slm_id` — the
/// paper's `qloc` 4-tuple `(q, a, r, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QubitLoc {
    /// Qubit id.
    pub qubit: usize,
    /// SLM array id.
    pub slm_id: usize,
    /// Trap row within the SLM.
    pub row: usize,
    /// Trap column within the SLM.
    pub col: usize,
}

impl QubitLoc {
    /// Creates a qloc.
    pub const fn new(qubit: usize, slm_id: usize, row: usize, col: usize) -> Self {
        Self { qubit, slm_id, row, col }
    }
}

/// One U3 application inside a `1qGate` instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct U3Application {
    /// θ parameter.
    pub theta: f64,
    /// φ parameter.
    pub phi: f64,
    /// λ parameter.
    pub lambda: f64,
    /// Where the target qubit sits.
    pub loc: QubitLoc,
}

/// Machine-level AOD instructions inside a rearrangement job (Fig. 17b).
#[derive(Debug, Clone, PartialEq)]
pub enum AodInst {
    /// Turn on AOD rows/columns at the given coordinates, picking up the
    /// atoms at the resulting intersections.
    Activate {
        /// Activated row ids.
        row_id: Vec<usize>,
        /// y coordinate of each activated row (µm).
        row_y: Vec<f64>,
        /// Activated column ids.
        col_id: Vec<usize>,
        /// x coordinate of each activated column (µm).
        col_x: Vec<f64>,
    },
    /// Turn off AOD rows/columns, dropping atoms into the SLM traps beneath.
    Deactivate {
        /// Deactivated row ids.
        row_id: Vec<usize>,
        /// Deactivated column ids.
        col_id: Vec<usize>,
    },
    /// Continuously move activated rows/columns.
    Move {
        /// Moved row ids.
        row_id: Vec<usize>,
        /// Starting y of each row.
        row_y_begin: Vec<f64>,
        /// Final y of each row.
        row_y_end: Vec<f64>,
        /// Moved column ids.
        col_id: Vec<usize>,
        /// Starting x of each column.
        col_x_begin: Vec<f64>,
        /// Final x of each column.
        col_x_end: Vec<f64>,
    },
}

impl AodInst {
    /// Whether this is a parking move (small shift during pickup) rather
    /// than a zone-crossing transport move.
    pub fn is_move(&self) -> bool {
        matches!(self, AodInst::Move { .. })
    }
}

/// A rearrangement job: one AOD picks up a set of qubits, transports them in
/// parallel, and drops them off (Fig. 17a).
#[derive(Debug, Clone, PartialEq)]
pub struct RearrangeJob {
    /// The AOD executing the job (set during scheduling).
    pub aod_id: usize,
    /// Starting qlocs, grouped by AOD row (outer = row, inner = columns).
    pub begin_locs: Vec<Vec<QubitLoc>>,
    /// Ending qlocs, same shape as `begin_locs`.
    pub end_locs: Vec<Vec<QubitLoc>>,
    /// Machine-level expansion.
    pub insts: Vec<AodInst>,
    /// Job start time (µs).
    pub begin_time: f64,
    /// Job end time (µs).
    pub end_time: f64,
    /// Duration of the pickup phase (µs).
    pub pick_duration: f64,
    /// Duration of the transport phase (µs).
    pub move_duration: f64,
    /// Duration of the drop-off phase (µs).
    pub drop_duration: f64,
}

impl RearrangeJob {
    /// Number of qubits moved by the job.
    pub fn num_qubits(&self) -> usize {
        self.begin_locs.iter().map(Vec::len).sum()
    }

    /// Flattened (begin, end) pairs.
    pub fn moves(&self) -> impl Iterator<Item = (&QubitLoc, &QubitLoc)> + '_ {
        self.begin_locs.iter().flatten().zip(self.end_locs.iter().flatten())
    }

    /// Absolute end time of the pickup phase.
    pub fn pick_end(&self) -> f64 {
        self.begin_time + self.pick_duration
    }

    /// Absolute end time of the transport phase.
    pub fn move_end(&self) -> f64 {
        self.begin_time + self.pick_duration + self.move_duration
    }
}

/// A ZAIR instruction (Fig. 17a).
#[derive(Debug, Clone, PartialEq)]
pub enum Instruction {
    /// Initial qubit locations; must appear exactly once, first.
    Init {
        /// Initial location of every qubit.
        init_locs: Vec<QubitLoc>,
    },
    /// A group of U3 gates executed sequentially (one Raman laser).
    OneQGate {
        /// The gates, in execution order.
        gates: Vec<U3Application>,
        /// Start time (µs).
        begin_time: f64,
        /// End time (µs).
        end_time: f64,
    },
    /// A global Rydberg exposure of one entanglement zone: every complete
    /// site pair in the zone performs a CZ; lone qubits suffer excitation.
    Rydberg {
        /// Which entanglement zone is exposed.
        zone_id: usize,
        /// Start time (µs).
        begin_time: f64,
        /// End time (µs).
        end_time: f64,
    },
    /// A rearrangement job.
    RearrangeJob(RearrangeJob),
}

impl Instruction {
    /// The instruction's start time (µs); `Init` is 0.
    pub fn begin_time(&self) -> f64 {
        match self {
            Instruction::Init { .. } => 0.0,
            Instruction::OneQGate { begin_time, .. } | Instruction::Rydberg { begin_time, .. } => {
                *begin_time
            }
            Instruction::RearrangeJob(j) => j.begin_time,
        }
    }

    /// The instruction's end time (µs); `Init` is 0.
    pub fn end_time(&self) -> f64 {
        match self {
            Instruction::Init { .. } => 0.0,
            Instruction::OneQGate { end_time, .. } | Instruction::Rydberg { end_time, .. } => {
                *end_time
            }
            Instruction::RearrangeJob(j) => j.end_time,
        }
    }

    /// Short type name matching the paper's JSON `type` field.
    pub fn kind(&self) -> &'static str {
        match self {
            Instruction::Init { .. } => "init",
            Instruction::OneQGate { .. } => "1qGate",
            Instruction::Rydberg { .. } => "rydberg",
            Instruction::RearrangeJob(_) => "rearrangeJob",
        }
    }
}

/// Hand-written JSON impls (the in-tree serde stand-in has no derive),
/// matching the paper's Fig. 17/19 format: enums are internally tagged with
/// a camelCase `type` field, and `OneQGate` serializes as `1qGate`.
mod json {
    use super::*;
    use serde::{DeError, Deserialize, ObjectView, Serialize, Value};

    serde::impl_serde_struct!(QubitLoc { qubit, slm_id, row, col });

    serde::impl_serde_struct!(U3Application { theta, phi, lambda, loc });

    serde::impl_serde_struct!(RearrangeJob {
        aod_id,
        begin_locs,
        end_locs,
        insts,
        begin_time,
        end_time,
        pick_duration,
        move_duration,
        drop_duration,
    });

    impl Serialize for AodInst {
        fn to_value(&self) -> Value {
            match self {
                AodInst::Activate { row_id, row_y, col_id, col_x } => Value::object()
                    .with("row_id", row_id.to_value())
                    .with("row_y", row_y.to_value())
                    .with("col_id", col_id.to_value())
                    .with("col_x", col_x.to_value())
                    .with_tag_first("type", "activate"),
                AodInst::Deactivate { row_id, col_id } => Value::object()
                    .with("row_id", row_id.to_value())
                    .with("col_id", col_id.to_value())
                    .with_tag_first("type", "deactivate"),
                AodInst::Move {
                    row_id,
                    row_y_begin,
                    row_y_end,
                    col_id,
                    col_x_begin,
                    col_x_end,
                } => Value::object()
                    .with("row_id", row_id.to_value())
                    .with("row_y_begin", row_y_begin.to_value())
                    .with("row_y_end", row_y_end.to_value())
                    .with("col_id", col_id.to_value())
                    .with("col_x_begin", col_x_begin.to_value())
                    .with("col_x_end", col_x_end.to_value())
                    .with_tag_first("type", "move"),
            }
        }
    }

    impl Deserialize for AodInst {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            let obj = ObjectView::new(v)?;
            match obj.tag("type")? {
                "activate" => Ok(AodInst::Activate {
                    row_id: obj.field("row_id")?,
                    row_y: obj.field("row_y")?,
                    col_id: obj.field("col_id")?,
                    col_x: obj.field("col_x")?,
                }),
                "deactivate" => Ok(AodInst::Deactivate {
                    row_id: obj.field("row_id")?,
                    col_id: obj.field("col_id")?,
                }),
                "move" => Ok(AodInst::Move {
                    row_id: obj.field("row_id")?,
                    row_y_begin: obj.field("row_y_begin")?,
                    row_y_end: obj.field("row_y_end")?,
                    col_id: obj.field("col_id")?,
                    col_x_begin: obj.field("col_x_begin")?,
                    col_x_end: obj.field("col_x_end")?,
                }),
                other => Err(DeError::msg(format!("unknown AOD instruction type `{other}`"))),
            }
        }
    }

    impl Serialize for Instruction {
        fn to_value(&self) -> Value {
            match self {
                Instruction::Init { init_locs } => Value::object()
                    .with("init_locs", init_locs.to_value())
                    .with_tag_first("type", "init"),
                Instruction::OneQGate { gates, begin_time, end_time } => Value::object()
                    .with("gates", gates.to_value())
                    .with("begin_time", begin_time.to_value())
                    .with("end_time", end_time.to_value())
                    .with_tag_first("type", "1qGate"),
                Instruction::Rydberg { zone_id, begin_time, end_time } => Value::object()
                    .with("zone_id", zone_id.to_value())
                    .with("begin_time", begin_time.to_value())
                    .with("end_time", end_time.to_value())
                    .with_tag_first("type", "rydberg"),
                // Newtype variant under an internal tag: the job's fields
                // are inlined next to the tag, as serde does.
                Instruction::RearrangeJob(job) => {
                    job.to_value().with_tag_first("type", "rearrangeJob")
                }
            }
        }
    }

    impl Deserialize for Instruction {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            let obj = ObjectView::new(v)?;
            match obj.tag("type")? {
                "init" => Ok(Instruction::Init { init_locs: obj.field("init_locs")? }),
                "1qGate" => Ok(Instruction::OneQGate {
                    gates: obj.field("gates")?,
                    begin_time: obj.field("begin_time")?,
                    end_time: obj.field("end_time")?,
                }),
                "rydberg" => Ok(Instruction::Rydberg {
                    zone_id: obj.field("zone_id")?,
                    begin_time: obj.field("begin_time")?,
                    end_time: obj.field("end_time")?,
                }),
                "rearrangeJob" => Ok(Instruction::RearrangeJob(RearrangeJob::from_value(v)?)),
                other => Err(DeError::msg(format!("unknown instruction type `{other}`"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> RearrangeJob {
        RearrangeJob {
            aod_id: 0,
            begin_locs: vec![
                vec![QubitLoc::new(0, 0, 99, 0), QubitLoc::new(1, 0, 99, 1)],
                vec![QubitLoc::new(2, 0, 98, 0)],
            ],
            end_locs: vec![
                vec![QubitLoc::new(0, 1, 0, 2), QubitLoc::new(1, 2, 0, 2)],
                vec![QubitLoc::new(2, 1, 1, 2)],
            ],
            insts: vec![],
            begin_time: 10.0,
            end_time: 100.0,
            pick_duration: 15.0,
            move_duration: 60.0,
            drop_duration: 15.0,
        }
    }

    #[test]
    fn job_accessors() {
        let j = job();
        assert_eq!(j.num_qubits(), 3);
        assert_eq!(j.pick_end(), 25.0);
        assert_eq!(j.move_end(), 85.0);
        let moves: Vec<_> = j.moves().collect();
        assert_eq!(moves.len(), 3);
        assert_eq!(moves[2].0.qubit, 2);
    }

    #[test]
    fn instruction_kind_and_times() {
        let i = Instruction::Rydberg { zone_id: 0, begin_time: 5.0, end_time: 5.36 };
        assert_eq!(i.kind(), "rydberg");
        assert_eq!(i.begin_time(), 5.0);
        assert_eq!(i.end_time(), 5.36);
        let init = Instruction::Init { init_locs: vec![] };
        assert_eq!(init.kind(), "init");
        assert_eq!(init.end_time(), 0.0);
    }

    #[test]
    fn serde_json_uses_paper_type_tags() {
        let i = Instruction::Rydberg { zone_id: 0, begin_time: 149.16, end_time: 149.52 };
        let json = serde_json::to_string(&i).unwrap();
        assert!(json.contains("\"type\":\"rydberg\""), "{json}");
        let j = Instruction::RearrangeJob(job());
        let json = serde_json::to_string(&j).unwrap();
        assert!(json.contains("\"type\":\"rearrangeJob\""), "{json}");
        let back: Instruction = serde_json::from_str(&json).unwrap();
        assert_eq!(back, j);
    }

    #[test]
    fn aod_inst_tags() {
        let a = AodInst::Activate {
            row_id: vec![0],
            row_y: vec![297.0],
            col_id: vec![0, 1],
            col_x: vec![3.0, 39.0],
        };
        let json = serde_json::to_string(&a).unwrap();
        assert!(json.contains("\"type\":\"activate\""), "{json}");
        assert!(!a.is_move());
    }
}
