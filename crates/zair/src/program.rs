//! ZAIR programs: containers, the validating interpreter, and analysis.
//!
//! [`Program::analyze`] walks the instruction stream, tracking every qubit's
//! location, and produces the [`Analysis`] record the fidelity model consumes:
//! total duration, per-qubit busy time, gate counts, transfer counts and
//! idle-qubit Rydberg excitations. The same walk validates the program
//! (location consistency, trap occupancy, zone existence), so an analyzed
//! program is a verified program.

use crate::inst::{Instruction, QubitLoc, RearrangeJob};
use std::collections::HashMap;
use std::fmt;
use zac_arch::{Architecture, Loc};

/// A complete compiled program in ZAIR.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Name of the source circuit.
    pub circuit_name: String,
    /// Name of the target architecture.
    pub arch_name: String,
    /// Number of qubits.
    pub num_qubits: usize,
    /// The instruction stream, in issue order.
    pub instructions: Vec<Instruction>,
}

/// Validation error for a ZAIR program.
#[derive(Debug, Clone, PartialEq)]
pub enum ZairError {
    /// The first instruction must be `init` (and only the first).
    MissingOrMisplacedInit,
    /// `init` places two qubits on one trap, or a qubit twice.
    BadInit,
    /// A job starts a qubit somewhere it is not.
    LocationMismatch {
        /// The qubit.
        qubit: usize,
    },
    /// A job drops a qubit on an occupied trap.
    OccupiedTarget {
        /// The moving qubit.
        qubit: usize,
        /// The qubit already sitting there.
        occupant: usize,
    },
    /// A qloc does not exist in the architecture.
    InvalidLoc {
        /// The qubit with the bad qloc.
        qubit: usize,
    },
    /// A `rydberg` instruction names a zone that does not exist.
    UnknownZone {
        /// The offending zone id.
        zone_id: usize,
    },
    /// An instruction has `end_time < begin_time`.
    NegativeDuration,
    /// A job's `aod_id` exceeds the architecture's AOD count.
    UnknownAod {
        /// The offending AOD id.
        aod_id: usize,
    },
    /// A qubit index is out of range.
    QubitOutOfRange {
        /// The offending qubit.
        qubit: usize,
    },
}

impl fmt::Display for ZairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingOrMisplacedInit => write!(f, "program must start with exactly one init"),
            Self::BadInit => write!(f, "init places qubits inconsistently"),
            Self::LocationMismatch { qubit } => {
                write!(f, "qubit {qubit} is not at its claimed begin location")
            }
            Self::OccupiedTarget { qubit, occupant } => {
                write!(f, "qubit {qubit} dropped on a trap occupied by qubit {occupant}")
            }
            Self::InvalidLoc { qubit } => write!(f, "qubit {qubit} references an invalid trap"),
            Self::UnknownZone { zone_id } => write!(f, "unknown entanglement zone {zone_id}"),
            Self::NegativeDuration => write!(f, "instruction ends before it begins"),
            Self::UnknownAod { aod_id } => write!(f, "unknown AOD {aod_id}"),
            Self::QubitOutOfRange { qubit } => write!(f, "qubit {qubit} out of range"),
        }
    }
}

impl std::error::Error for ZairError {}

/// Execution summary extracted from a validated program; the input to the
/// fidelity model (Sec. VII-B).
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Number of qubits.
    pub num_qubits: usize,
    /// Total program duration (µs).
    pub total_duration_us: f64,
    /// Executed 1Q gates (`g1`).
    pub g1: usize,
    /// Executed 2Q gates (`g2`): complete Rydberg-site pairs per exposure.
    pub g2: usize,
    /// Idle qubits caught in an exposure without a partner (`N_exc`).
    pub n_exc: usize,
    /// Atom transfers (`N_tran`): two per qubit per rearrangement job.
    pub n_tran: usize,
    /// Per-qubit busy time (µs): gates plus transfers (movement is idle).
    pub busy_us: Vec<f64>,
    /// Number of Rydberg exposures.
    pub num_rydberg_stages: usize,
    /// Number of rearrangement jobs.
    pub num_jobs: usize,
}

impl Analysis {
    /// Per-qubit idle time: total duration minus busy time, clamped at 0.
    pub fn idle_us(&self) -> Vec<f64> {
        self.busy_us.iter().map(|b| (self.total_duration_us - b).max(0.0)).collect()
    }
}

/// Instruction-count statistics (paper Sec. IX).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZairStats {
    /// ZAIR instructions (init + 1qGate + rydberg + rearrangeJob).
    pub zair_instructions: usize,
    /// Machine-level instructions (init + 1qGate + rydberg + each AOD
    /// activate/move/deactivate inside jobs).
    pub machine_instructions: usize,
    /// Rearrangement jobs.
    pub jobs: usize,
}

impl Program {
    /// Creates an empty program (instructions added by the scheduler).
    pub fn new(
        circuit_name: impl Into<String>,
        arch_name: impl Into<String>,
        num_qubits: usize,
    ) -> Self {
        Self {
            circuit_name: circuit_name.into(),
            arch_name: arch_name.into(),
            num_qubits,
            instructions: Vec::new(),
        }
    }

    /// Total duration: the latest end time of any instruction (µs).
    pub fn total_duration_us(&self) -> f64 {
        self.instructions.iter().map(Instruction::end_time).fold(0.0, f64::max)
    }

    /// The rearrangement jobs, in issue order.
    pub fn jobs(&self) -> impl Iterator<Item = &RearrangeJob> + '_ {
        self.instructions.iter().filter_map(|i| match i {
            Instruction::RearrangeJob(j) => Some(j),
            _ => None,
        })
    }

    /// Instruction-count statistics (paper Sec. IX).
    pub fn stats(&self) -> ZairStats {
        let zair_instructions = self.instructions.len();
        let mut machine_instructions = 0;
        let mut jobs = 0;
        for i in &self.instructions {
            match i {
                Instruction::RearrangeJob(j) => {
                    jobs += 1;
                    machine_instructions += j.insts.len();
                }
                _ => machine_instructions += 1,
            }
        }
        ZairStats { zair_instructions, machine_instructions, jobs }
    }

    /// Serializes to pretty JSON in the paper's Fig. 19 style.
    ///
    /// # Errors
    ///
    /// Rejects programs carrying non-finite numbers (NaN/infinite times,
    /// angles or coordinates — always the symptom of an upstream scheduling
    /// bug): JSON cannot represent them, and emitting the `null` the format
    /// falls back to would silently corrupt the round trip.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        let value = serde_json::to_value(self);
        if !value.all_numbers_finite() {
            return Err(serde_json::Error::custom(format!(
                "program `{}` contains a non-finite time/angle/coordinate",
                self.circuit_name
            )));
        }
        serde_json::to_string_pretty(&value)
    }

    /// Parses a program from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// A stable 64-bit digest over the *entire* program content: names,
    /// qubit count, and every field of every instruction, with `f64`s hashed
    /// by IEEE-754 bit pattern. Two programs share a digest iff they are
    /// bit-identical — the scheduler's refactor-regression tests key on this
    /// (see `zac-schedule/tests/bit_identity.rs`).
    pub fn content_fingerprint(&self) -> u64 {
        let mut fp = zac_circuit::Fingerprint::new();
        fp.write_str(&self.circuit_name);
        fp.write_str(&self.arch_name);
        fp.write_usize(self.num_qubits);
        fp.write_usize(self.instructions.len());
        let write_qloc = |fp: &mut zac_circuit::Fingerprint, ql: &QubitLoc| {
            fp.write_usize(ql.qubit);
            fp.write_usize(ql.slm_id);
            fp.write_usize(ql.row);
            fp.write_usize(ql.col);
        };
        let write_ids = |fp: &mut zac_circuit::Fingerprint, ids: &[usize]| {
            fp.write_usize(ids.len());
            for &i in ids {
                fp.write_usize(i);
            }
        };
        let write_f64s = |fp: &mut zac_circuit::Fingerprint, vs: &[f64]| {
            fp.write_usize(vs.len());
            for &v in vs {
                fp.write_f64(v);
            }
        };
        for inst in &self.instructions {
            fp.write_str(inst.kind());
            match inst {
                Instruction::Init { init_locs } => {
                    fp.write_usize(init_locs.len());
                    for ql in init_locs {
                        write_qloc(&mut fp, ql);
                    }
                }
                Instruction::OneQGate { gates, begin_time, end_time } => {
                    fp.write_usize(gates.len());
                    for g in gates {
                        fp.write_f64(g.theta);
                        fp.write_f64(g.phi);
                        fp.write_f64(g.lambda);
                        write_qloc(&mut fp, &g.loc);
                    }
                    fp.write_f64(*begin_time);
                    fp.write_f64(*end_time);
                }
                Instruction::Rydberg { zone_id, begin_time, end_time } => {
                    fp.write_usize(*zone_id);
                    fp.write_f64(*begin_time);
                    fp.write_f64(*end_time);
                }
                Instruction::RearrangeJob(j) => {
                    fp.write_usize(j.aod_id);
                    for locs in [&j.begin_locs, &j.end_locs] {
                        fp.write_usize(locs.len());
                        for row in locs.iter() {
                            fp.write_usize(row.len());
                            for ql in row {
                                write_qloc(&mut fp, ql);
                            }
                        }
                    }
                    fp.write_usize(j.insts.len());
                    for ai in &j.insts {
                        match ai {
                            crate::inst::AodInst::Activate { row_id, row_y, col_id, col_x } => {
                                fp.write_u8(1);
                                write_ids(&mut fp, row_id);
                                write_f64s(&mut fp, row_y);
                                write_ids(&mut fp, col_id);
                                write_f64s(&mut fp, col_x);
                            }
                            crate::inst::AodInst::Deactivate { row_id, col_id } => {
                                fp.write_u8(2);
                                write_ids(&mut fp, row_id);
                                write_ids(&mut fp, col_id);
                            }
                            crate::inst::AodInst::Move {
                                row_id,
                                row_y_begin,
                                row_y_end,
                                col_id,
                                col_x_begin,
                                col_x_end,
                            } => {
                                fp.write_u8(3);
                                write_ids(&mut fp, row_id);
                                write_f64s(&mut fp, row_y_begin);
                                write_f64s(&mut fp, row_y_end);
                                write_ids(&mut fp, col_id);
                                write_f64s(&mut fp, col_x_begin);
                                write_f64s(&mut fp, col_x_end);
                            }
                        }
                    }
                    fp.write_f64(j.begin_time);
                    fp.write_f64(j.end_time);
                    fp.write_f64(j.pick_duration);
                    fp.write_f64(j.move_duration);
                    fp.write_f64(j.drop_duration);
                }
            }
        }
        fp.finish()
    }

    /// Validates the program against `arch` and extracts its [`Analysis`].
    ///
    /// The interpreter tracks qubit locations through every rearrangement
    /// job, checks trap occupancy and AOD/zone references, derives which
    /// site pairs perform CZs at each Rydberg exposure, and accumulates the
    /// fidelity-model counters.
    ///
    /// # Errors
    ///
    /// A [`ZairError`] naming the first violated rule.
    pub fn analyze(&self, arch: &Architecture) -> Result<Analysis, ZairError> {
        let n = self.num_qubits;
        let mut loc_of: Vec<Option<Loc>> = vec![None; n];
        let mut occupant: HashMap<Loc, usize> = HashMap::new();

        let to_loc = |ql: &QubitLoc| -> Result<Loc, ZairError> {
            arch.slm_to_loc(ql.slm_id, ql.row, ql.col)
                .ok_or(ZairError::InvalidLoc { qubit: ql.qubit })
        };

        let mut analysis = Analysis {
            num_qubits: n,
            total_duration_us: 0.0,
            g1: 0,
            g2: 0,
            n_exc: 0,
            n_tran: 0,
            busy_us: vec![0.0; n],
            num_rydberg_stages: 0,
            num_jobs: 0,
        };

        let mut iter = self.instructions.iter();
        match iter.next() {
            Some(Instruction::Init { init_locs }) => {
                for ql in init_locs {
                    if ql.qubit >= n {
                        return Err(ZairError::QubitOutOfRange { qubit: ql.qubit });
                    }
                    let loc = to_loc(ql)?;
                    if loc_of[ql.qubit].is_some() || occupant.contains_key(&loc) {
                        return Err(ZairError::BadInit);
                    }
                    loc_of[ql.qubit] = Some(loc);
                    occupant.insert(loc, ql.qubit);
                }
            }
            _ => return Err(ZairError::MissingOrMisplacedInit),
        }

        for inst in iter {
            if inst.end_time() < inst.begin_time() {
                return Err(ZairError::NegativeDuration);
            }
            analysis.total_duration_us = analysis.total_duration_us.max(inst.end_time());
            match inst {
                Instruction::Init { .. } => return Err(ZairError::MissingOrMisplacedInit),
                Instruction::OneQGate { gates, .. } => {
                    for g in gates {
                        if g.loc.qubit >= n {
                            return Err(ZairError::QubitOutOfRange { qubit: g.loc.qubit });
                        }
                        let loc = to_loc(&g.loc)?;
                        if loc_of[g.loc.qubit] != Some(loc) {
                            return Err(ZairError::LocationMismatch { qubit: g.loc.qubit });
                        }
                        analysis.g1 += 1;
                    }
                }
                Instruction::Rydberg { zone_id, begin_time, end_time } => {
                    if *zone_id >= arch.entanglement_zones().len() {
                        return Err(ZairError::UnknownZone { zone_id: *zone_id });
                    }
                    analysis.num_rydberg_stages += 1;
                    // Group zone occupants by site; pairs gate, singles excite.
                    let mut by_site: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
                    for (q, loc) in loc_of.iter().enumerate() {
                        if let Some(Loc::Site { zone, row, col, .. }) = loc {
                            if zone == zone_id {
                                by_site.entry((*row, *col)).or_default().push(q);
                            }
                        }
                    }
                    let dur = end_time - begin_time;
                    for (_, qs) in by_site {
                        if qs.len() >= 2 {
                            analysis.g2 += 1;
                            for q in qs {
                                analysis.busy_us[q] += dur;
                            }
                        } else {
                            analysis.n_exc += qs.len();
                        }
                    }
                }
                Instruction::RearrangeJob(job) => {
                    if job.aod_id >= arch.aods().len() {
                        return Err(ZairError::UnknownAod { aod_id: job.aod_id });
                    }
                    analysis.num_jobs += 1;
                    // Pick up all qubits.
                    let mut pairs: Vec<(usize, Loc)> = Vec::new();
                    for (bql, eql) in job.moves() {
                        if bql.qubit >= n {
                            return Err(ZairError::QubitOutOfRange { qubit: bql.qubit });
                        }
                        let from = to_loc(bql)?;
                        let to = to_loc(eql)?;
                        if loc_of[bql.qubit] != Some(from) {
                            return Err(ZairError::LocationMismatch { qubit: bql.qubit });
                        }
                        occupant.remove(&from);
                        pairs.push((bql.qubit, to));
                    }
                    // Drop them off.
                    for (q, to) in pairs {
                        if let Some(&other) = occupant.get(&to) {
                            return Err(ZairError::OccupiedTarget { qubit: q, occupant: other });
                        }
                        occupant.insert(to, q);
                        loc_of[q] = Some(to);
                        analysis.n_tran += 2;
                        analysis.busy_us[q] += 2.0 * 15.0_f64.min(job.pick_duration);
                    }
                }
            }
        }

        // 1Q busy time: each gate occupies its qubit for the group's
        // per-gate share (sequential execution).
        for inst in &self.instructions {
            if let Instruction::OneQGate { gates, begin_time, end_time } = inst {
                if !gates.is_empty() {
                    let per = (end_time - begin_time) / gates.len() as f64;
                    for g in gates {
                        analysis.busy_us[g.loc.qubit] += per;
                    }
                }
            }
        }

        Ok(analysis)
    }
}

/// JSON impl (the in-tree serde stand-in has no derive).
mod json {
    use super::Program;

    serde::impl_serde_struct!(Program { circuit_name, arch_name, num_qubits, instructions });
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "{} on {}: {} instructions ({} jobs), {:.1} us",
            self.circuit_name,
            self.arch_name,
            s.zair_instructions,
            s.jobs,
            self.total_duration_us()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::U3Application;
    use crate::machine::{build_job, shift_job, MoveSpec};

    fn arch() -> Architecture {
        Architecture::reference()
    }

    fn qloc(arch: &Architecture, q: usize, loc: Loc) -> QubitLoc {
        let (slm, r, c) = arch.loc_to_slm(loc);
        QubitLoc::new(q, slm, r, c)
    }

    /// A two-qubit program: init, fetch both to a site, expose, return one.
    fn sample_program(arch: &Architecture) -> Program {
        let s0 = Loc::Storage { zone: 0, row: 99, col: 0 };
        let s1 = Loc::Storage { zone: 0, row: 99, col: 1 };
        let w0 = Loc::Site { zone: 0, row: 0, col: 0, slot: 0 };
        let w1 = Loc::Site { zone: 0, row: 0, col: 0, slot: 1 };

        let mut p = Program::new("sample", arch.name(), 2);
        p.instructions
            .push(Instruction::Init { init_locs: vec![qloc(arch, 0, s0), qloc(arch, 1, s1)] });
        let mut job =
            build_job(arch, &[MoveSpec::new(0, s0, w0), MoveSpec::new(1, s1, w1)], 15.0).unwrap();
        shift_job(&mut job, 0.0);
        let t1 = job.end_time;
        p.instructions.push(Instruction::RearrangeJob(job));
        p.instructions.push(Instruction::Rydberg {
            zone_id: 0,
            begin_time: t1,
            end_time: t1 + 0.36,
        });
        let mut back = build_job(arch, &[MoveSpec::new(0, w0, s0)], 15.0).unwrap();
        shift_job(&mut back, t1 + 0.36);
        p.instructions.push(Instruction::RearrangeJob(back));
        p
    }

    #[test]
    fn analyze_counts_gates_and_transfers() {
        let arch = arch();
        let p = sample_program(&arch);
        let a = p.analyze(&arch).unwrap();
        assert_eq!(a.g2, 1);
        assert_eq!(a.g1, 0);
        assert_eq!(a.n_exc, 0);
        assert_eq!(a.n_tran, 6); // 2 qubits in, 1 qubit back
        assert_eq!(a.num_rydberg_stages, 1);
        assert_eq!(a.num_jobs, 2);
        assert!(a.total_duration_us > 140.0);
        assert!(a.busy_us[0] > a.busy_us[1], "qubit 0 moved twice");
    }

    #[test]
    fn lone_qubit_in_zone_is_excited() {
        let arch = arch();
        let mut p = sample_program(&arch);
        // Remove qubit 1's fetch: rebuild with only qubit 0 in the zone.
        let s0 = Loc::Storage { zone: 0, row: 99, col: 0 };
        let s1 = Loc::Storage { zone: 0, row: 99, col: 1 };
        let w0 = Loc::Site { zone: 0, row: 0, col: 0, slot: 0 };
        p.instructions = vec![
            Instruction::Init { init_locs: vec![qloc(&arch, 0, s0), qloc(&arch, 1, s1)] },
            {
                let job = build_job(&arch, &[MoveSpec::new(0, s0, w0)], 15.0).unwrap();
                Instruction::RearrangeJob(job)
            },
            Instruction::Rydberg { zone_id: 0, begin_time: 150.0, end_time: 150.36 },
        ];
        let a = p.analyze(&arch).unwrap();
        assert_eq!(a.g2, 0);
        assert_eq!(a.n_exc, 1);
    }

    #[test]
    fn missing_init_rejected() {
        let arch = arch();
        let p = Program::new("x", arch.name(), 1);
        assert_eq!(p.analyze(&arch).unwrap_err(), ZairError::MissingOrMisplacedInit);
    }

    #[test]
    fn double_init_rejected() {
        let arch = arch();
        let mut p = Program::new("x", arch.name(), 1);
        let s = Loc::Storage { zone: 0, row: 0, col: 0 };
        p.instructions.push(Instruction::Init { init_locs: vec![qloc(&arch, 0, s)] });
        p.instructions.push(Instruction::Init { init_locs: vec![] });
        assert_eq!(p.analyze(&arch).unwrap_err(), ZairError::MissingOrMisplacedInit);
    }

    #[test]
    fn init_collision_rejected() {
        let arch = arch();
        let mut p = Program::new("x", arch.name(), 2);
        let s = Loc::Storage { zone: 0, row: 0, col: 0 };
        p.instructions
            .push(Instruction::Init { init_locs: vec![qloc(&arch, 0, s), qloc(&arch, 1, s)] });
        assert_eq!(p.analyze(&arch).unwrap_err(), ZairError::BadInit);
    }

    #[test]
    fn location_mismatch_rejected() {
        let arch = arch();
        let s0 = Loc::Storage { zone: 0, row: 99, col: 0 };
        let s5 = Loc::Storage { zone: 0, row: 99, col: 5 };
        let w0 = Loc::Site { zone: 0, row: 0, col: 0, slot: 0 };
        let mut p = Program::new("x", arch.name(), 1);
        p.instructions.push(Instruction::Init { init_locs: vec![qloc(&arch, 0, s0)] });
        // Job claims the qubit starts at s5.
        let job = build_job(&arch, &[MoveSpec::new(0, s5, w0)], 15.0).unwrap();
        p.instructions.push(Instruction::RearrangeJob(job));
        assert_eq!(p.analyze(&arch).unwrap_err(), ZairError::LocationMismatch { qubit: 0 });
    }

    #[test]
    fn occupied_target_rejected() {
        let arch = arch();
        let s0 = Loc::Storage { zone: 0, row: 99, col: 0 };
        let s1 = Loc::Storage { zone: 0, row: 99, col: 1 };
        let mut p = Program::new("x", arch.name(), 2);
        p.instructions
            .push(Instruction::Init { init_locs: vec![qloc(&arch, 0, s0), qloc(&arch, 1, s1)] });
        let job = build_job(&arch, &[MoveSpec::new(0, s0, s1)], 15.0).unwrap();
        p.instructions.push(Instruction::RearrangeJob(job));
        assert_eq!(
            p.analyze(&arch).unwrap_err(),
            ZairError::OccupiedTarget { qubit: 0, occupant: 1 }
        );
    }

    #[test]
    fn one_q_gate_counted_and_checked() {
        let arch = arch();
        let s0 = Loc::Storage { zone: 0, row: 99, col: 0 };
        let mut p = Program::new("x", arch.name(), 1);
        p.instructions.push(Instruction::Init { init_locs: vec![qloc(&arch, 0, s0)] });
        p.instructions.push(Instruction::OneQGate {
            gates: vec![U3Application {
                theta: 1.0,
                phi: 0.0,
                lambda: 0.0,
                loc: qloc(&arch, 0, s0),
            }],
            begin_time: 0.0,
            end_time: 52.0,
        });
        let a = p.analyze(&arch).unwrap();
        assert_eq!(a.g1, 1);
        assert!((a.busy_us[0] - 52.0).abs() < 1e-9);
        assert!((a.idle_us()[0] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn stats_count_machine_instructions() {
        let arch = arch();
        let p = sample_program(&arch);
        let s = p.stats();
        assert_eq!(s.zair_instructions, 4);
        assert_eq!(s.jobs, 2);
        assert!(s.machine_instructions > s.zair_instructions);
    }

    #[test]
    fn json_roundtrip() {
        let arch = arch();
        let p = sample_program(&arch);
        let json = p.to_json().expect("serialization succeeds");
        assert!(json.contains("\"type\": \"rearrangeJob\""));
        let back = Program::from_json(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn non_finite_times_rejected_by_to_json() {
        let arch = arch();
        let mut p = sample_program(&arch);
        if let Instruction::Rydberg { end_time, .. } = &mut p.instructions[2] {
            *end_time = f64::NAN;
        } else {
            panic!("sample program shape changed");
        }
        let err = p.to_json().unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn malformed_json_rejected() {
        // Regression coverage for `from_json` error paths: syntax errors,
        // wrong top-level shape, missing fields, and bad instruction tags.
        for bad in [
            "",
            "{not json",
            "[1, 2, 3]",
            r#"{"circuit_name": "x"}"#,
            r#"{"circuit_name": "x", "arch_name": "a", "num_qubits": -3, "instructions": []}"#,
            // 1e300 has fract() == 0; must not saturate to usize::MAX.
            r#"{"circuit_name": "x", "arch_name": "a", "num_qubits": 1e300, "instructions": []}"#,
            r#"{"circuit_name": "x", "arch_name": "a", "num_qubits": 1,
                "instructions": [{"type": "warp", "zone_id": 0}]}"#,
            r#"{"circuit_name": "x", "arch_name": "a", "num_qubits": 1,
                "instructions": [{"zone_id": 0, "begin_time": 0, "end_time": 1}]}"#,
        ] {
            assert!(Program::from_json(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn unknown_zone_rejected() {
        let arch = arch();
        let s0 = Loc::Storage { zone: 0, row: 99, col: 0 };
        let mut p = Program::new("x", arch.name(), 1);
        p.instructions.push(Instruction::Init { init_locs: vec![qloc(&arch, 0, s0)] });
        p.instructions.push(Instruction::Rydberg { zone_id: 7, begin_time: 0.0, end_time: 1.0 });
        assert_eq!(p.analyze(&arch).unwrap_err(), ZairError::UnknownZone { zone_id: 7 });
    }
}
