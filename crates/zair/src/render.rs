//! ASCII rendering of zoned architectures and qubit placements.
//!
//! Debugging aid: draws each zone's trap grid with `.` for empty traps and
//! `*` for occupied ones (`#` where a Rydberg site holds a complete pair),
//! and can replay a compiled program into per-instruction placement frames.

use crate::inst::Instruction;
use crate::program::Program;
use std::collections::HashMap;
use zac_arch::{Architecture, Loc};

/// Renders a placement snapshot as ASCII art, one block per zone.
///
/// Entanglement zones draw one cell per Rydberg site: `.` empty, `*` one
/// qubit, `#` a complete pair (a gate at the next exposure). Storage zones
/// draw one cell per trap, compressing all-empty row runs.
pub fn render_placement(arch: &Architecture, locations: &[Loc]) -> String {
    let mut out = String::new();
    let mut storage_occ: HashMap<(usize, usize, usize), usize> = HashMap::new();
    let mut site_occ: HashMap<(usize, usize, usize), usize> = HashMap::new();
    for (q, loc) in locations.iter().enumerate() {
        match *loc {
            Loc::Storage { zone, row, col } => {
                storage_occ.insert((zone, row, col), q);
            }
            Loc::Site { zone, row, col, .. } => {
                *site_occ.entry((zone, row, col)).or_insert(0) += 1;
            }
        }
    }

    for (z, _) in arch.entanglement_zones().iter().enumerate() {
        let (rows, cols) = arch.site_grid(z);
        out.push_str(&format!("entanglement zone {z} ({rows}x{cols} sites):\n"));
        for r in (0..rows).rev() {
            out.push_str("  ");
            for c in 0..cols {
                let ch = match site_occ.get(&(z, r, c)) {
                    Some(&k) if k >= 2 => '#',
                    Some(_) => '*',
                    None => '.',
                };
                out.push(ch);
            }
            out.push('\n');
        }
    }
    for (z, _) in arch.storage_zones().iter().enumerate() {
        let (rows, cols) = arch.storage_grid(z);
        out.push_str(&format!("storage zone {z} ({rows}x{cols} traps):\n"));
        let mut skipped = 0usize;
        for r in (0..rows).rev() {
            let occupied_in_row = (0..cols).any(|c| storage_occ.contains_key(&(z, r, c)));
            if !occupied_in_row {
                skipped += 1;
                continue;
            }
            if skipped > 0 {
                out.push_str(&format!("  ({skipped} empty rows)\n"));
                skipped = 0;
            }
            out.push_str("  ");
            for c in 0..cols {
                out.push(if storage_occ.contains_key(&(z, r, c)) { '*' } else { '.' });
            }
            out.push('\n');
        }
        if skipped > 0 {
            out.push_str(&format!("  ({skipped} empty rows)\n"));
        }
    }
    out
}

/// A placement frame in a program replay.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Index of the instruction that produced this frame.
    pub instruction_index: usize,
    /// Instruction kind (`init` / `rearrangeJob` / ...).
    pub kind: &'static str,
    /// Time at which the frame holds (the instruction's end time, µs).
    pub time_us: f64,
    /// Location of every qubit.
    pub locations: Vec<Loc>,
}

/// Replays a program into placement frames: one after `init` and one after
/// every rearrangement job.
///
/// Returns an empty vector if the program does not start with `init` or a
/// qloc cannot be resolved (use [`Program::analyze`] for diagnostics).
pub fn replay_frames(arch: &Architecture, program: &Program) -> Vec<Frame> {
    let n = program.num_qubits;
    let mut loc_of: Vec<Option<Loc>> = vec![None; n];
    let mut frames = Vec::new();
    for (i, inst) in program.instructions.iter().enumerate() {
        match inst {
            Instruction::Init { init_locs } => {
                for ql in init_locs {
                    match arch.slm_to_loc(ql.slm_id, ql.row, ql.col) {
                        Some(loc) if ql.qubit < n => loc_of[ql.qubit] = Some(loc),
                        _ => return Vec::new(),
                    }
                }
            }
            Instruction::RearrangeJob(job) => {
                for (_, eql) in job.moves() {
                    match arch.slm_to_loc(eql.slm_id, eql.row, eql.col) {
                        Some(loc) if eql.qubit < n => loc_of[eql.qubit] = Some(loc),
                        _ => return Vec::new(),
                    }
                }
            }
            _ => continue,
        }
        if loc_of.iter().all(Option::is_some) {
            frames.push(Frame {
                instruction_index: i,
                kind: inst.kind(),
                time_us: inst.end_time(),
                locations: loc_of.iter().map(|l| l.unwrap()).collect(),
            });
        }
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_pairs_and_singles() {
        let arch = Architecture::reference();
        let locations = vec![
            Loc::Site { zone: 0, row: 6, col: 0, slot: 0 },
            Loc::Site { zone: 0, row: 6, col: 0, slot: 1 },
            Loc::Site { zone: 0, row: 6, col: 1, slot: 0 },
            Loc::Storage { zone: 0, row: 99, col: 0 },
        ];
        let art = render_placement(&arch, &locations);
        let zone_line = art.lines().nth(1).unwrap().trim();
        assert!(zone_line.starts_with("#*"), "got '{zone_line}'");
        assert!(art.contains("storage zone 0"));
        assert!(art.contains("(99 empty rows)"));
    }

    #[test]
    fn empty_placement_renders_all_dots() {
        let arch = Architecture::monolithic(2, 3);
        let art = render_placement(&arch, &[]);
        assert!(art.contains("...\n"));
    }

    #[test]
    fn replay_produces_frames_per_job() {
        use crate::inst::QubitLoc;
        use crate::machine::{build_job, MoveSpec};

        let arch = Architecture::reference();
        let s0 = Loc::Storage { zone: 0, row: 99, col: 0 };
        let w0 = Loc::Site { zone: 0, row: 0, col: 0, slot: 0 };
        let mut p = Program::new("frames", arch.name(), 1);
        let (slm, r, c) = arch.loc_to_slm(s0);
        p.instructions.push(Instruction::Init { init_locs: vec![QubitLoc::new(0, slm, r, c)] });
        p.instructions.push(Instruction::RearrangeJob(
            build_job(&arch, &[MoveSpec::new(0, s0, w0)], 15.0).unwrap(),
        ));
        let frames = replay_frames(&arch, &p);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].kind, "init");
        assert_eq!(frames[0].locations[0], s0);
        assert_eq!(frames[1].kind, "rearrangeJob");
        assert_eq!(frames[1].locations[0], w0);
    }
}
