//! Rearrangement-job construction and machine-level instruction generation.
//!
//! A job is valid for a single AOD only if the moved qubits preserve their
//! relative row/column order (AOD rows and columns are physical beams that
//! cannot cross or merge). The machine-level expansion follows the simple
//! pickup strategy of OLSQ-DPQA adopted by the paper (Sec. IX, Fig. 18):
//! activate the AOD row by row, inserting small *parking* moves between row
//! activations when already-active columns would otherwise pick up unintended
//! atoms.

use crate::inst::{AodInst, QubitLoc, RearrangeJob};
use std::fmt;
use zac_arch::{movement_time_us, Architecture, Loc, Point};

/// Distance (µm) of a parking shift during pickup.
const PARKING_SHIFT_UM: f64 = 0.5;

/// One qubit movement to be bundled into a rearrangement job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoveSpec {
    /// The qubit being moved.
    pub qubit: usize,
    /// Current location.
    pub from: Loc,
    /// Destination.
    pub to: Loc,
}

impl MoveSpec {
    /// Creates a move spec.
    pub fn new(qubit: usize, from: Loc, to: Loc) -> Self {
        Self { qubit, from, to }
    }
}

/// Error building a rearrangement job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// A job must move at least one qubit.
    Empty,
    /// The same qubit appears twice.
    DuplicateQubit {
        /// The repeated qubit.
        qubit: usize,
    },
    /// Two moves end at the same trap.
    TargetCollision {
        /// First qubit.
        q1: usize,
        /// Second qubit.
        q2: usize,
    },
    /// Two moves violate the AOD order-preservation constraint.
    Incompatible {
        /// First qubit.
        q1: usize,
        /// Second qubit.
        q2: usize,
    },
    /// A location does not exist in the architecture.
    InvalidLoc {
        /// The qubit with the bad location.
        qubit: usize,
    },
    /// The job needs more AOD rows or columns than the AOD provides.
    CapacityExceeded {
        /// Rows required.
        rows: usize,
        /// Columns required.
        cols: usize,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "rearrangement job moves no qubits"),
            Self::DuplicateQubit { qubit } => write!(f, "qubit {qubit} moved twice in one job"),
            Self::TargetCollision { q1, q2 } => {
                write!(f, "qubits {q1} and {q2} target the same trap")
            }
            Self::Incompatible { q1, q2 } => {
                write!(f, "moves of qubits {q1} and {q2} violate AOD ordering")
            }
            Self::InvalidLoc { qubit } => write!(f, "qubit {qubit} has an invalid location"),
            Self::CapacityExceeded { rows, cols } => {
                write!(f, "job needs {rows} rows x {cols} cols, exceeding the AOD capacity")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// Coordinates closer than this (µm) are the same physical AOD row/column.
/// Shared by [`moves_compatible`], [`JobBuilder`]'s row/column grouping, and
/// `zac-schedule`'s coordinate-rank conflict sweep — all three must agree on
/// one ε or the conflict graph drifts from job buildability.
pub const POS_EPS: f64 = 1e-6;

/// One axis of the order-preservation check: begin ordering of `p` vs. `q`
/// must match end ordering of `pe` vs. `qe`, with ε-equal begins requiring
/// ε-equal ends.
#[inline]
fn axis_ok(p: f64, q: f64, pe: f64, qe: f64) -> bool {
    if (p - q).abs() < POS_EPS {
        (pe - qe).abs() < POS_EPS
    } else if p < q {
        pe < qe - POS_EPS
    } else {
        pe > qe + POS_EPS
    }
}

/// Point-level compatibility of two movements `a0 → a1` and `b0 → b1`.
#[inline]
fn points_compatible(a0: Point, a1: Point, b0: Point, b1: Point) -> bool {
    axis_ok(a0.x, b0.x, a1.x, b1.x) && axis_ok(a0.y, b0.y, a1.y, b1.y)
}

/// Checks whether two movements can share one AOD (order preservation in
/// both axes: `x` order of pickups must match `x` order of drop-offs, and
/// equal coordinates must map to equal coordinates; likewise for `y`).
///
/// This is the compatibility relation used to build the movement conflict
/// graph (paper Sec. VI, following Enola).
pub fn moves_compatible(arch: &Architecture, a: &MoveSpec, b: &MoveSpec) -> bool {
    let (a0, a1) = (arch.position(a.from), arch.position(a.to));
    let (b0, b1) = (arch.position(b.from), arch.position(b.to));
    points_compatible(a0, a1, b0, b1)
}

/// Builds a rearrangement job from a set of mutually compatible moves.
///
/// The job's `begin_time` is 0; the scheduler shifts it into place with
/// [`shift_job`]. `transfer_time_us` is the atom-transfer time (15 µs for the
/// reference hardware).
///
/// # Errors
///
/// Returns a [`JobError`] if the moves are not a valid single-AOD job.
///
/// # Example
///
/// ```
/// use zac_arch::{Architecture, Loc};
/// use zac_zair::machine::{build_job, MoveSpec};
///
/// let arch = Architecture::reference();
/// let mv = MoveSpec::new(0,
///     Loc::Storage { zone: 0, row: 99, col: 1 },
///     Loc::Site { zone: 0, row: 0, col: 0, slot: 0 });
/// let job = build_job(&arch, &[mv], 15.0)?;
/// assert_eq!(job.num_qubits(), 1);
/// assert!(job.move_duration > 0.0);
/// # Ok::<(), zac_zair::machine::JobError>(())
/// ```
pub fn build_job(
    arch: &Architecture,
    moves: &[MoveSpec],
    transfer_time_us: f64,
) -> Result<RearrangeJob, JobError> {
    JobBuilder::new().build(arch, moves, transfer_time_us)
}

/// The timing anatomy of a rearrangement job, computed without
/// materializing it (see [`JobBuilder::plan`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobTiming {
    /// Duration of the pickup phase (µs): one transfer per AOD row plus
    /// parking shifts.
    pub pick_duration: f64,
    /// Duration of the transport phase (µs): the longest individual move.
    pub move_duration: f64,
    /// Duration of the drop-off phase (µs): one transfer.
    pub drop_duration: f64,
}

impl JobTiming {
    /// Total job duration (µs).
    pub fn total(&self) -> f64 {
        self.pick_duration + self.move_duration + self.drop_duration
    }
}

/// Workspace-backed job construction: validation, AOD row/column grouping,
/// parking simulation and timing run on reused buffers, so steady-state
/// [`plan`](JobBuilder::plan) calls perform **zero** heap allocations (the
/// counting-allocator test in `tests/alloc_free.rs` asserts this).
///
/// The scheduler plans every candidate job during conflict-graph bundling —
/// it only needs the [`JobTiming`] for LPT ordering and dependency
/// resolution — and materializes a [`RearrangeJob`] with
/// [`build`](JobBuilder::build) only when the job is actually emitted.
/// `build` produces output bit-identical to the free function
/// [`build_job`] (which is now a thin wrapper over a fresh builder).
///
/// # Example
///
/// ```
/// use zac_arch::{Architecture, Loc};
/// use zac_zair::machine::{JobBuilder, MoveSpec};
///
/// let arch = Architecture::reference();
/// let mv = MoveSpec::new(0,
///     Loc::Storage { zone: 0, row: 99, col: 1 },
///     Loc::Site { zone: 0, row: 0, col: 0, slot: 0 });
/// let mut builder = JobBuilder::new();
/// let timing = builder.plan(&arch, &[mv], 15.0)?;
/// let job = builder.build(&arch, &[mv], 15.0)?;
/// assert_eq!(job.end_time - job.begin_time, timing.total());
/// # Ok::<(), zac_zair::machine::JobError>(())
/// ```
#[derive(Debug, Default)]
pub struct JobBuilder {
    /// Cached (from, to) positions per move.
    begins: Vec<Point>,
    ends: Vec<Point>,
    /// Move indices sorted by begin (y, x); AOD rows are contiguous runs.
    sorted: Vec<usize>,
    /// Start offset of each row group in `sorted` (plus a final sentinel).
    row_start: Vec<usize>,
    /// Distinct begin-column x coordinates, ascending.
    col_xs: Vec<f64>,
    /// Parking-simulation scratch.
    needed: Vec<usize>,
    new_cols: Vec<usize>,
    active_cols: Vec<usize>,
    active_rows: Vec<usize>,
}

impl JobBuilder {
    /// A fresh builder (buffers grow on first use, then stay).
    pub fn new() -> Self {
        Self::default()
    }

    /// Validates `moves` as a single-AOD job and computes its row/column
    /// layout into the workspace buffers. All downstream passes read
    /// `sorted`/`row_start`/`col_xs`.
    fn layout(
        &mut self,
        arch: &Architecture,
        moves: &[MoveSpec],
        _transfer_time_us: f64,
    ) -> Result<(), JobError> {
        if moves.is_empty() {
            return Err(JobError::Empty);
        }
        // Validate locations and uniqueness (input order, as the hash-set
        // original did; the quadratic qubit scan is cheap at job sizes).
        for (i, m) in moves.iter().enumerate() {
            if moves[..i].iter().any(|p| p.qubit == m.qubit) {
                return Err(JobError::DuplicateQubit { qubit: m.qubit });
            }
            for loc in [m.from, m.to] {
                arch.check_loc(loc).map_err(|_| JobError::InvalidLoc { qubit: m.qubit })?;
            }
        }
        // Cache positions once; every later pass reads the tables.
        self.begins.clear();
        self.ends.clear();
        for m in moves {
            self.begins.push(arch.position(m.from));
            self.ends.push(arch.position(m.to));
        }
        for i in 0..moves.len() {
            for j in (i + 1)..moves.len() {
                if moves[i].to == moves[j].to {
                    return Err(JobError::TargetCollision {
                        q1: moves[i].qubit,
                        q2: moves[j].qubit,
                    });
                }
                if !points_compatible(self.begins[i], self.ends[i], self.begins[j], self.ends[j]) {
                    return Err(JobError::Incompatible { q1: moves[i].qubit, q2: moves[j].qubit });
                }
            }
        }

        // Group by begin y (AOD rows), ascending; sort each row by x. The
        // index tie-break reproduces the original stable sort exactly.
        self.sorted.clear();
        self.sorted.extend(0..moves.len());
        let begins = &self.begins;
        self.sorted.sort_unstable_by(|&a, &b| {
            begins[a]
                .y
                .total_cmp(&begins[b].y)
                .then(begins[a].x.total_cmp(&begins[b].x))
                .then(a.cmp(&b))
        });
        self.row_start.clear();
        self.row_start.push(0);
        for k in 1..self.sorted.len() {
            let rep = self.begins[self.sorted[self.row_start[self.row_start.len() - 1]]].y;
            let y = self.begins[self.sorted[k]].y;
            if (rep - y).abs() >= POS_EPS {
                self.row_start.push(k);
            }
        }
        self.row_start.push(self.sorted.len());

        // Distinct begin columns, ascending.
        self.col_xs.clear();
        self.col_xs.extend(self.begins.iter().map(|p| p.x));
        self.col_xs.sort_unstable_by(f64::total_cmp);
        self.col_xs.dedup_by(|a, b| (*a - *b).abs() < POS_EPS);

        let num_rows = self.num_rows();
        let num_cols = self.col_xs.len();
        let aod = &arch.aods()[0];
        if num_rows > aod.max_num_row || num_cols > aod.max_num_col {
            return Err(JobError::CapacityExceeded { rows: num_rows, cols: num_cols });
        }
        Ok(())
    }

    fn num_rows(&self) -> usize {
        self.row_start.len() - 1
    }

    /// The moves of row `r`, as indices into the caller's move slice.
    fn row(&self, r: usize) -> &[usize] {
        &self.sorted[self.row_start[r]..self.row_start[r + 1]]
    }

    fn col_id_of(&self, x: f64) -> usize {
        self.col_xs.iter().position(|&cx| (cx - x).abs() < POS_EPS).expect("column x registered")
    }

    /// Simulates the row-by-row pickup (Fig. 18), counting parking shifts;
    /// when `insts` is given, also emits the machine-level `activate`/
    /// parking-`move` instructions.
    fn simulate_pickup(&mut self, insts: Option<&mut Vec<AodInst>>) -> usize {
        let mut insts = insts;
        self.active_cols.clear();
        self.active_rows.clear();
        let mut num_parkings = 0usize;
        for row_id in 0..self.num_rows() {
            let y = self.begins[self.sorted[self.row_start[row_id]]].y;
            self.needed.clear();
            for k in self.row_start[row_id]..self.row_start[row_id + 1] {
                let x = self.begins[self.sorted[k]].x;
                self.needed.push(self.col_id_of(x));
            }
            self.new_cols.clear();
            self.new_cols
                .extend(self.needed.iter().copied().filter(|c| !self.active_cols.contains(c)));
            let stale_cols_exist = self.active_cols.iter().any(|c| !self.needed.contains(c));
            if !self.active_rows.is_empty() && (stale_cols_exist || !self.new_cols.is_empty()) {
                // Parking: shift already-picked rows off the SLM grid so the
                // next activation cannot capture unintended atoms (Fig. 18c).
                num_parkings += 1;
                if let Some(insts) = insts.as_deref_mut() {
                    let row_y: Vec<f64> = self
                        .active_rows
                        .iter()
                        .map(|&r| self.begins[self.sorted[self.row_start[r]]].y)
                        .collect();
                    insts.push(AodInst::Move {
                        row_id: self.active_rows.clone(),
                        row_y_begin: row_y.clone(),
                        row_y_end: row_y.iter().map(|&ry| ry + PARKING_SHIFT_UM).collect(),
                        col_id: vec![],
                        col_x_begin: vec![],
                        col_x_end: vec![],
                    });
                }
            }
            if let Some(insts) = insts.as_deref_mut() {
                let cols = if self.new_cols.is_empty() { &self.needed } else { &self.new_cols };
                insts.push(AodInst::Activate {
                    row_id: vec![row_id],
                    row_y: vec![y],
                    col_id: cols.clone(),
                    col_x: cols.iter().map(|&c| self.col_xs[c]).collect(),
                });
            }
            for &c in &self.needed {
                if !self.active_cols.contains(&c) {
                    self.active_cols.push(c);
                }
            }
            self.active_rows.push(row_id);
        }
        num_parkings
    }

    fn timing(&self, moves: &[MoveSpec], transfer_time_us: f64, num_parkings: usize) -> JobTiming {
        let pick_duration = self.num_rows() as f64 * transfer_time_us
            + num_parkings as f64 * movement_time_us(PARKING_SHIFT_UM);
        let move_duration =
            (0..moves.len()).map(|i| self.begins[i].move_time(self.ends[i])).fold(0.0, f64::max);
        JobTiming { pick_duration, move_duration, drop_duration: transfer_time_us }
    }

    /// Validates `moves` and computes the job's [`JobTiming`] without
    /// materializing it. Steady-state calls are allocation-free.
    ///
    /// # Errors
    ///
    /// The same [`JobError`]s as [`build_job`].
    pub fn plan(
        &mut self,
        arch: &Architecture,
        moves: &[MoveSpec],
        transfer_time_us: f64,
    ) -> Result<JobTiming, JobError> {
        self.layout(arch, moves, transfer_time_us)?;
        let num_parkings = self.simulate_pickup(None);
        Ok(self.timing(moves, transfer_time_us, num_parkings))
    }

    /// Builds the full [`RearrangeJob`] (machine-level expansion included),
    /// bit-identical to [`build_job`]. Only the returned job allocates; all
    /// scratch comes from the workspace.
    ///
    /// # Errors
    ///
    /// The same [`JobError`]s as [`build_job`].
    pub fn build(
        &mut self,
        arch: &Architecture,
        moves: &[MoveSpec],
        transfer_time_us: f64,
    ) -> Result<RearrangeJob, JobError> {
        self.layout(arch, moves, transfer_time_us)?;

        // --- machine-level expansion: row-by-row pickup with parking ---
        let mut insts: Vec<AodInst> = Vec::new();
        let num_parkings = self.simulate_pickup(Some(&mut insts));

        // --- transport move ---
        // Row/column targets are consistent by the compatibility check.
        let num_rows = self.num_rows();
        let num_cols = self.col_xs.len();
        let mut row_y_begin = Vec::with_capacity(num_rows);
        let mut row_y_end = Vec::with_capacity(num_rows);
        for r in 0..num_rows {
            let first = self.sorted[self.row_start[r]];
            row_y_begin.push(self.begins[first].y);
            row_y_end.push(self.ends[first].y);
        }
        let mut col_x_begin = vec![f64::NAN; num_cols];
        let mut col_x_end = vec![f64::NAN; num_cols];
        for i in 0..moves.len() {
            let c = self.col_id_of(self.begins[i].x);
            col_x_begin[c] = self.begins[i].x;
            col_x_end[c] = self.ends[i].x;
        }
        insts.push(AodInst::Move {
            row_id: (0..num_rows).collect(),
            row_y_begin,
            row_y_end,
            col_id: (0..num_cols).collect(),
            col_x_begin,
            col_x_end,
        });
        insts.push(AodInst::Deactivate {
            row_id: (0..num_rows).collect(),
            col_id: (0..num_cols).collect(),
        });

        // --- timing ---
        let timing = self.timing(moves, transfer_time_us, num_parkings);

        let to_qloc = |i: usize, loc: Loc| -> QubitLoc {
            let (slm, r, c) = arch.loc_to_slm(loc);
            QubitLoc::new(moves[i].qubit, slm, r, c)
        };
        let begin_locs: Vec<Vec<QubitLoc>> = (0..num_rows)
            .map(|r| self.row(r).iter().map(|&i| to_qloc(i, moves[i].from)).collect())
            .collect();
        let end_locs: Vec<Vec<QubitLoc>> = (0..num_rows)
            .map(|r| self.row(r).iter().map(|&i| to_qloc(i, moves[i].to)).collect())
            .collect();

        Ok(RearrangeJob {
            aod_id: 0,
            begin_locs,
            end_locs,
            insts,
            begin_time: 0.0,
            end_time: timing.total(),
            pick_duration: timing.pick_duration,
            move_duration: timing.move_duration,
            drop_duration: timing.drop_duration,
        })
    }
}

/// Moves a job's time window so it begins at `begin_time`.
pub fn shift_job(job: &mut RearrangeJob, begin_time: f64) {
    let dur = job.end_time - job.begin_time;
    job.begin_time = begin_time;
    job.end_time = begin_time + dur;
}

#[cfg(test)]
mod tests {
    use super::*;
    use zac_arch::SiteId;

    fn arch() -> Architecture {
        Architecture::reference()
    }

    fn storage(row: usize, col: usize) -> Loc {
        Loc::Storage { zone: 0, row, col }
    }

    fn site(row: usize, col: usize, slot: usize) -> Loc {
        Loc::Site { zone: 0, row, col, slot }
    }

    #[test]
    fn paper_fig19_job_timing() {
        // bv_n14 first CZ: q0 (99,1) → site(0,0) slot 0; q13 (99,13) → slot 1.
        let arch = arch();
        let moves = [
            MoveSpec::new(0, storage(99, 1), site(0, 0, 0)),
            MoveSpec::new(13, storage(99, 13), site(0, 0, 1)),
        ];
        let job = build_job(&arch, &moves, 15.0).unwrap();
        assert_eq!(job.num_qubits(), 2);
        // Longest movement: q0 travels from (3,297) to (35,307).
        let d = ((35.0f64 - 3.0).powi(2) + 10.0f64.powi(2)).sqrt();
        let expect = movement_time_us(d);
        assert!((job.move_duration - expect).abs() < 1e-9);
        // One row pickup + move + drop: 15 + ~110 + 15 ≈ 140 (paper: 140.41).
        assert!((job.end_time - (30.0 + expect)).abs() < 1e-9);
        assert!((job.end_time - 140.41).abs() < 0.5, "duration {}", job.end_time);
    }

    #[test]
    fn square_block_moves_in_one_job() {
        // Paper Fig. 2: qubits 0-3 in a 2x2 block move to sites ω(0,2), ω(1,2).
        let arch = arch();
        let moves = [
            MoveSpec::new(0, storage(0, 0), site(0, 2, 0)),
            MoveSpec::new(1, storage(0, 1), site(0, 2, 1)),
            MoveSpec::new(2, storage(1, 0), site(1, 2, 0)),
            MoveSpec::new(3, storage(1, 1), site(1, 2, 1)),
        ];
        let job = build_job(&arch, &moves, 15.0).unwrap();
        assert_eq!(job.begin_locs.len(), 2, "two AOD rows");
        assert_eq!(job.begin_locs[0].len(), 2);
        // Machine insts: activates (2 rows, maybe parking), 1 transport, 1 deactivate.
        let n_moves = job.insts.iter().filter(|i| i.is_move()).count();
        assert!(n_moves >= 1);
        assert!(matches!(job.insts.last().unwrap(), AodInst::Deactivate { .. }));
    }

    #[test]
    fn order_violation_rejected() {
        // q0 left of q1 at start but right of q1 at end → columns would cross.
        let arch = arch();
        let moves = [
            MoveSpec::new(0, storage(99, 0), site(0, 5, 0)),
            MoveSpec::new(1, storage(99, 5), site(0, 1, 0)),
        ];
        let err = build_job(&arch, &moves, 15.0).unwrap_err();
        assert!(matches!(err, JobError::Incompatible { .. }));
    }

    #[test]
    fn same_column_must_stay_same_column() {
        // Same begin x, different end x → incompatible.
        let arch = arch();
        let moves = [
            MoveSpec::new(0, storage(99, 4), site(0, 0, 0)),
            MoveSpec::new(1, storage(98, 4), site(1, 1, 0)),
        ];
        let err = build_job(&arch, &moves, 15.0).unwrap_err();
        assert!(matches!(err, JobError::Incompatible { .. }));
    }

    #[test]
    fn target_collision_rejected() {
        let arch = arch();
        let moves = [
            MoveSpec::new(0, storage(99, 0), site(0, 0, 0)),
            MoveSpec::new(1, storage(98, 0), site(0, 0, 0)),
        ];
        let err = build_job(&arch, &moves, 15.0).unwrap_err();
        assert!(matches!(err, JobError::TargetCollision { .. }));
    }

    #[test]
    fn empty_and_duplicate_rejected() {
        let arch = arch();
        assert_eq!(build_job(&arch, &[], 15.0).unwrap_err(), JobError::Empty);
        let mv = MoveSpec::new(0, storage(99, 0), site(0, 0, 0));
        let mv2 = MoveSpec::new(0, storage(98, 0), site(0, 1, 0));
        assert_eq!(
            build_job(&arch, &[mv, mv2], 15.0).unwrap_err(),
            JobError::DuplicateQubit { qubit: 0 }
        );
    }

    #[test]
    fn compatibility_is_symmetric() {
        let arch = arch();
        let a = MoveSpec::new(0, storage(99, 1), site(0, 0, 0));
        let b = MoveSpec::new(1, storage(99, 3), site(0, 0, 1));
        assert_eq!(moves_compatible(&arch, &a, &b), moves_compatible(&arch, &b, &a));
        assert!(moves_compatible(&arch, &a, &b));
    }

    #[test]
    fn shift_preserves_duration() {
        let arch = arch();
        let mv = MoveSpec::new(0, storage(99, 1), site(0, 0, 0));
        let mut job = build_job(&arch, &[mv], 15.0).unwrap();
        let dur = job.end_time - job.begin_time;
        shift_job(&mut job, 123.0);
        assert_eq!(job.begin_time, 123.0);
        assert!((job.end_time - 123.0 - dur).abs() < 1e-12);
    }

    #[test]
    fn multirow_pickup_charges_per_row_transfer() {
        let arch = arch();
        let moves = [
            MoveSpec::new(0, storage(0, 0), site(0, 2, 0)),
            MoveSpec::new(2, storage(1, 0), site(1, 2, 0)),
        ];
        let job = build_job(&arch, &moves, 15.0).unwrap();
        assert!(job.pick_duration >= 30.0, "two rows → two transfers");
    }

    #[test]
    fn site_to_site_and_site_to_storage_moves() {
        let arch = arch();
        // Reuse-style move within the entanglement zone.
        let mv = MoveSpec::new(5, site(0, 0, 1), site(0, 3, 1));
        let job = build_job(&arch, &[mv], 15.0).unwrap();
        assert!(job.move_duration > 0.0);
        // Return move.
        let mv = MoveSpec::new(5, site(0, 3, 1), storage(99, 40));
        let job = build_job(&arch, &[mv], 15.0).unwrap();
        assert!(job.move_duration > 0.0);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// Random horizontal storage→site move sets that preserve order by
        /// construction: qubit k starts at storage column `3k..3k+2` and ends
        /// at site column `k` (monotone in both axes).
        fn arb_compatible_moves() -> impl Strategy<Value = Vec<MoveSpec>> {
            (1usize..6).prop_flat_map(|k| {
                proptest::collection::vec(0usize..3, k..=k).prop_map(move |jitter| {
                    (0..k)
                        .map(|i| {
                            MoveSpec::new(
                                i,
                                Loc::Storage { zone: 0, row: 99, col: 3 * i + jitter[i] % 2 },
                                Loc::Site { zone: 0, row: 0, col: i, slot: 0 },
                            )
                        })
                        .collect()
                })
            })
        }

        proptest! {
            #[test]
            fn built_jobs_are_internally_consistent(moves in arb_compatible_moves()) {
                let arch = Architecture::reference();
                let job = build_job(&arch, &moves, 15.0).unwrap();
                // Begin/end locs pair up one-to-one with the input moves.
                prop_assert_eq!(job.num_qubits(), moves.len());
                for (b, e) in job.moves() {
                    prop_assert_eq!(b.qubit, e.qubit);
                }
                // Timing anatomy adds up.
                let total = job.pick_duration + job.move_duration + job.drop_duration;
                prop_assert!((job.end_time - job.begin_time - total).abs() < 1e-9);
                // The transport duration is the longest individual move.
                let max_t = moves
                    .iter()
                    .map(|m| arch.position(m.from).move_time(arch.position(m.to)))
                    .fold(0.0, f64::max);
                prop_assert!((job.move_duration - max_t).abs() < 1e-9);
                // Machine expansion ends with a deactivate.
                let ends_with_deactivate =
                    matches!(job.insts.last(), Some(AodInst::Deactivate { .. }));
                prop_assert!(ends_with_deactivate);
            }

            #[test]
            fn pairwise_compatibility_matches_job_buildability(
                cols in proptest::collection::vec(0usize..20, 2..5),
                ends in proptest::collection::vec(0usize..10, 2..5),
            ) {
                let arch = Architecture::reference();
                let n = cols.len().min(ends.len());
                let moves: Vec<MoveSpec> = (0..n)
                    .map(|i| MoveSpec::new(
                        i,
                        Loc::Storage { zone: 0, row: 99, col: cols[i] },
                        Loc::Site { zone: 0, row: 0, col: ends[i], slot: 0 },
                    ))
                    .collect();
                // Skip degenerate duplicates (same source or target).
                let mut srcs: Vec<_> = moves.iter().map(|m| m.from).collect();
                let mut dsts: Vec<_> = moves.iter().map(|m| m.to).collect();
                srcs.sort(); srcs.dedup(); dsts.sort(); dsts.dedup();
                prop_assume!(srcs.len() == n && dsts.len() == n);

                let all_compatible = (0..n).all(|i| {
                    ((i + 1)..n).all(|j| moves_compatible(&arch, &moves[i], &moves[j]))
                });
                let buildable = build_job(&arch, &moves, 15.0).is_ok();
                prop_assert_eq!(all_compatible, buildable);
            }
        }
    }

    #[test]
    fn nearest_site_motion_example() {
        // Middle-site reference from the paper's Fig. 5/6 geometry carries
        // over: moving toward ω(0,0) from storage row 99.
        let arch = arch();
        let s = SiteId::new(0, 0, 0);
        let p = arch.site_position(s);
        assert_eq!((p.x, p.y), (35.0, 307.0));
    }
}
