//! Rearrangement-job construction and machine-level instruction generation.
//!
//! A job is valid for a single AOD only if the moved qubits preserve their
//! relative row/column order (AOD rows and columns are physical beams that
//! cannot cross or merge). The machine-level expansion follows the simple
//! pickup strategy of OLSQ-DPQA adopted by the paper (Sec. IX, Fig. 18):
//! activate the AOD row by row, inserting small *parking* moves between row
//! activations when already-active columns would otherwise pick up unintended
//! atoms.

use crate::inst::{AodInst, QubitLoc, RearrangeJob};
use std::fmt;
use zac_arch::{movement_time_us, Architecture, Loc};

/// Distance (µm) of a parking shift during pickup.
const PARKING_SHIFT_UM: f64 = 0.5;

/// One qubit movement to be bundled into a rearrangement job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoveSpec {
    /// The qubit being moved.
    pub qubit: usize,
    /// Current location.
    pub from: Loc,
    /// Destination.
    pub to: Loc,
}

impl MoveSpec {
    /// Creates a move spec.
    pub fn new(qubit: usize, from: Loc, to: Loc) -> Self {
        Self { qubit, from, to }
    }
}

/// Error building a rearrangement job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// A job must move at least one qubit.
    Empty,
    /// The same qubit appears twice.
    DuplicateQubit {
        /// The repeated qubit.
        qubit: usize,
    },
    /// Two moves end at the same trap.
    TargetCollision {
        /// First qubit.
        q1: usize,
        /// Second qubit.
        q2: usize,
    },
    /// Two moves violate the AOD order-preservation constraint.
    Incompatible {
        /// First qubit.
        q1: usize,
        /// Second qubit.
        q2: usize,
    },
    /// A location does not exist in the architecture.
    InvalidLoc {
        /// The qubit with the bad location.
        qubit: usize,
    },
    /// The job needs more AOD rows or columns than the AOD provides.
    CapacityExceeded {
        /// Rows required.
        rows: usize,
        /// Columns required.
        cols: usize,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "rearrangement job moves no qubits"),
            Self::DuplicateQubit { qubit } => write!(f, "qubit {qubit} moved twice in one job"),
            Self::TargetCollision { q1, q2 } => {
                write!(f, "qubits {q1} and {q2} target the same trap")
            }
            Self::Incompatible { q1, q2 } => {
                write!(f, "moves of qubits {q1} and {q2} violate AOD ordering")
            }
            Self::InvalidLoc { qubit } => write!(f, "qubit {qubit} has an invalid location"),
            Self::CapacityExceeded { rows, cols } => {
                write!(f, "job needs {rows} rows x {cols} cols, exceeding the AOD capacity")
            }
        }
    }
}

impl std::error::Error for JobError {}

const POS_EPS: f64 = 1e-6;

/// Checks whether two movements can share one AOD (order preservation in
/// both axes: `x` order of pickups must match `x` order of drop-offs, and
/// equal coordinates must map to equal coordinates; likewise for `y`).
///
/// This is the compatibility relation used to build the movement conflict
/// graph (paper Sec. VI, following Enola).
pub fn moves_compatible(arch: &Architecture, a: &MoveSpec, b: &MoveSpec) -> bool {
    let (a0, a1) = (arch.position(a.from), arch.position(a.to));
    let (b0, b1) = (arch.position(b.from), arch.position(b.to));
    let axis_ok = |p: f64, q: f64, pe: f64, qe: f64| -> bool {
        if (p - q).abs() < POS_EPS {
            (pe - qe).abs() < POS_EPS
        } else if p < q {
            pe < qe - POS_EPS
        } else {
            pe > qe + POS_EPS
        }
    };
    axis_ok(a0.x, b0.x, a1.x, b1.x) && axis_ok(a0.y, b0.y, a1.y, b1.y)
}

/// Builds a rearrangement job from a set of mutually compatible moves.
///
/// The job's `begin_time` is 0; the scheduler shifts it into place with
/// [`shift_job`]. `transfer_time_us` is the atom-transfer time (15 µs for the
/// reference hardware).
///
/// # Errors
///
/// Returns a [`JobError`] if the moves are not a valid single-AOD job.
///
/// # Example
///
/// ```
/// use zac_arch::{Architecture, Loc};
/// use zac_zair::machine::{build_job, MoveSpec};
///
/// let arch = Architecture::reference();
/// let mv = MoveSpec::new(0,
///     Loc::Storage { zone: 0, row: 99, col: 1 },
///     Loc::Site { zone: 0, row: 0, col: 0, slot: 0 });
/// let job = build_job(&arch, &[mv], 15.0)?;
/// assert_eq!(job.num_qubits(), 1);
/// assert!(job.move_duration > 0.0);
/// # Ok::<(), zac_zair::machine::JobError>(())
/// ```
pub fn build_job(
    arch: &Architecture,
    moves: &[MoveSpec],
    transfer_time_us: f64,
) -> Result<RearrangeJob, JobError> {
    if moves.is_empty() {
        return Err(JobError::Empty);
    }
    // Validate locations and uniqueness.
    let mut seen = std::collections::HashSet::new();
    for m in moves {
        if !seen.insert(m.qubit) {
            return Err(JobError::DuplicateQubit { qubit: m.qubit });
        }
        for loc in [m.from, m.to] {
            arch.check_loc(loc).map_err(|_| JobError::InvalidLoc { qubit: m.qubit })?;
        }
    }
    for i in 0..moves.len() {
        for j in (i + 1)..moves.len() {
            if moves[i].to == moves[j].to {
                return Err(JobError::TargetCollision { q1: moves[i].qubit, q2: moves[j].qubit });
            }
            if !moves_compatible(arch, &moves[i], &moves[j]) {
                return Err(JobError::Incompatible { q1: moves[i].qubit, q2: moves[j].qubit });
            }
        }
    }

    // Group by begin y (AOD rows), ascending; sort each row by x.
    let mut sorted: Vec<&MoveSpec> = moves.iter().collect();
    sorted.sort_by(|a, b| {
        let pa = arch.position(a.from);
        let pb = arch.position(b.from);
        pa.y.total_cmp(&pb.y).then(pa.x.total_cmp(&pb.x))
    });
    let mut row_groups: Vec<Vec<&MoveSpec>> = Vec::new();
    for m in sorted {
        let y = arch.position(m.from).y;
        match row_groups.last() {
            Some(last) if (arch.position(last[0].from).y - y).abs() < POS_EPS => {
                row_groups.last_mut().unwrap().push(m);
            }
            _ => row_groups.push(vec![m]),
        }
    }

    // Distinct begin columns, ascending.
    let mut col_xs: Vec<f64> = moves.iter().map(|m| arch.position(m.from).x).collect();
    col_xs.sort_by(f64::total_cmp);
    col_xs.dedup_by(|a, b| (*a - *b).abs() < POS_EPS);

    let num_rows = row_groups.len();
    let num_cols = col_xs.len();
    let aod = &arch.aods()[0];
    if num_rows > aod.max_num_row || num_cols > aod.max_num_col {
        return Err(JobError::CapacityExceeded { rows: num_rows, cols: num_cols });
    }

    let col_id_of = |x: f64| -> usize {
        col_xs.iter().position(|&cx| (cx - x).abs() < POS_EPS).expect("column x registered")
    };

    // --- machine-level expansion: row-by-row pickup with parking ---
    let mut insts: Vec<AodInst> = Vec::new();
    let mut active_cols: Vec<usize> = Vec::new();
    let mut active_rows: Vec<usize> = Vec::new();
    let mut num_parkings = 0usize;
    for (row_id, group) in row_groups.iter().enumerate() {
        let y = arch.position(group[0].from).y;
        let needed: Vec<usize> = group.iter().map(|m| col_id_of(arch.position(m.from).x)).collect();
        let new_cols: Vec<usize> =
            needed.iter().copied().filter(|c| !active_cols.contains(c)).collect();
        let stale_cols_exist = active_cols.iter().any(|c| !needed.contains(c));
        if !active_rows.is_empty() && (stale_cols_exist || !new_cols.is_empty()) {
            // Parking: shift already-picked rows off the SLM grid so the next
            // activation cannot capture unintended atoms (Fig. 18c).
            insts.push(AodInst::Move {
                row_id: active_rows.clone(),
                row_y_begin: vec![f64::NAN; active_rows.len()],
                row_y_end: vec![f64::NAN; active_rows.len()],
                col_id: vec![],
                col_x_begin: vec![],
                col_x_end: vec![],
            });
            // NaN placeholders replaced below once exact y's are known; the
            // shift itself is PARKING_SHIFT_UM.
            num_parkings += 1;
            if let Some(AodInst::Move { row_id, row_y_begin, row_y_end, .. }) = insts.last_mut() {
                for (k, &r) in row_id.iter().enumerate() {
                    let ry = arch.position(row_groups[r][0].from).y;
                    row_y_begin[k] = ry;
                    row_y_end[k] = ry + PARKING_SHIFT_UM;
                }
            }
        }
        insts.push(AodInst::Activate {
            row_id: vec![row_id],
            row_y: vec![y],
            col_id: if new_cols.is_empty() { needed.clone() } else { new_cols.clone() },
            col_x: if new_cols.is_empty() {
                needed.iter().map(|&c| col_xs[c]).collect()
            } else {
                new_cols.iter().map(|&c| col_xs[c]).collect()
            },
        });
        for c in needed {
            if !active_cols.contains(&c) {
                active_cols.push(c);
            }
        }
        active_rows.push(row_id);
    }
    active_cols.sort_unstable();

    // --- transport move ---
    // Row/column targets are consistent by the compatibility check.
    let mut row_y_begin = Vec::with_capacity(num_rows);
    let mut row_y_end = Vec::with_capacity(num_rows);
    for group in &row_groups {
        row_y_begin.push(arch.position(group[0].from).y);
        row_y_end.push(arch.position(group[0].to).y);
    }
    let mut col_x_begin = vec![f64::NAN; num_cols];
    let mut col_x_end = vec![f64::NAN; num_cols];
    for m in moves {
        let c = col_id_of(arch.position(m.from).x);
        col_x_begin[c] = arch.position(m.from).x;
        col_x_end[c] = arch.position(m.to).x;
    }
    insts.push(AodInst::Move {
        row_id: (0..num_rows).collect(),
        row_y_begin: row_y_begin.clone(),
        row_y_end,
        col_id: (0..num_cols).collect(),
        col_x_begin,
        col_x_end,
    });
    insts.push(AodInst::Deactivate {
        row_id: (0..num_rows).collect(),
        col_id: (0..num_cols).collect(),
    });

    // --- timing ---
    let pick_duration = num_rows as f64 * transfer_time_us
        + num_parkings as f64 * movement_time_us(PARKING_SHIFT_UM);
    let move_duration = moves
        .iter()
        .map(|m| arch.position(m.from).move_time(arch.position(m.to)))
        .fold(0.0, f64::max);
    let drop_duration = transfer_time_us;

    let to_qloc = |m: &MoveSpec, loc: Loc| -> QubitLoc {
        let (slm, r, c) = arch.loc_to_slm(loc);
        QubitLoc::new(m.qubit, slm, r, c)
    };
    let begin_locs: Vec<Vec<QubitLoc>> =
        row_groups.iter().map(|g| g.iter().map(|m| to_qloc(m, m.from)).collect()).collect();
    let end_locs: Vec<Vec<QubitLoc>> =
        row_groups.iter().map(|g| g.iter().map(|m| to_qloc(m, m.to)).collect()).collect();

    Ok(RearrangeJob {
        aod_id: 0,
        begin_locs,
        end_locs,
        insts,
        begin_time: 0.0,
        end_time: pick_duration + move_duration + drop_duration,
        pick_duration,
        move_duration,
        drop_duration,
    })
}

/// Moves a job's time window so it begins at `begin_time`.
pub fn shift_job(job: &mut RearrangeJob, begin_time: f64) {
    let dur = job.end_time - job.begin_time;
    job.begin_time = begin_time;
    job.end_time = begin_time + dur;
}

#[cfg(test)]
mod tests {
    use super::*;
    use zac_arch::SiteId;

    fn arch() -> Architecture {
        Architecture::reference()
    }

    fn storage(row: usize, col: usize) -> Loc {
        Loc::Storage { zone: 0, row, col }
    }

    fn site(row: usize, col: usize, slot: usize) -> Loc {
        Loc::Site { zone: 0, row, col, slot }
    }

    #[test]
    fn paper_fig19_job_timing() {
        // bv_n14 first CZ: q0 (99,1) → site(0,0) slot 0; q13 (99,13) → slot 1.
        let arch = arch();
        let moves = [
            MoveSpec::new(0, storage(99, 1), site(0, 0, 0)),
            MoveSpec::new(13, storage(99, 13), site(0, 0, 1)),
        ];
        let job = build_job(&arch, &moves, 15.0).unwrap();
        assert_eq!(job.num_qubits(), 2);
        // Longest movement: q0 travels from (3,297) to (35,307).
        let d = ((35.0f64 - 3.0).powi(2) + 10.0f64.powi(2)).sqrt();
        let expect = movement_time_us(d);
        assert!((job.move_duration - expect).abs() < 1e-9);
        // One row pickup + move + drop: 15 + ~110 + 15 ≈ 140 (paper: 140.41).
        assert!((job.end_time - (30.0 + expect)).abs() < 1e-9);
        assert!((job.end_time - 140.41).abs() < 0.5, "duration {}", job.end_time);
    }

    #[test]
    fn square_block_moves_in_one_job() {
        // Paper Fig. 2: qubits 0-3 in a 2x2 block move to sites ω(0,2), ω(1,2).
        let arch = arch();
        let moves = [
            MoveSpec::new(0, storage(0, 0), site(0, 2, 0)),
            MoveSpec::new(1, storage(0, 1), site(0, 2, 1)),
            MoveSpec::new(2, storage(1, 0), site(1, 2, 0)),
            MoveSpec::new(3, storage(1, 1), site(1, 2, 1)),
        ];
        let job = build_job(&arch, &moves, 15.0).unwrap();
        assert_eq!(job.begin_locs.len(), 2, "two AOD rows");
        assert_eq!(job.begin_locs[0].len(), 2);
        // Machine insts: activates (2 rows, maybe parking), 1 transport, 1 deactivate.
        let n_moves = job.insts.iter().filter(|i| i.is_move()).count();
        assert!(n_moves >= 1);
        assert!(matches!(job.insts.last().unwrap(), AodInst::Deactivate { .. }));
    }

    #[test]
    fn order_violation_rejected() {
        // q0 left of q1 at start but right of q1 at end → columns would cross.
        let arch = arch();
        let moves = [
            MoveSpec::new(0, storage(99, 0), site(0, 5, 0)),
            MoveSpec::new(1, storage(99, 5), site(0, 1, 0)),
        ];
        let err = build_job(&arch, &moves, 15.0).unwrap_err();
        assert!(matches!(err, JobError::Incompatible { .. }));
    }

    #[test]
    fn same_column_must_stay_same_column() {
        // Same begin x, different end x → incompatible.
        let arch = arch();
        let moves = [
            MoveSpec::new(0, storage(99, 4), site(0, 0, 0)),
            MoveSpec::new(1, storage(98, 4), site(1, 1, 0)),
        ];
        let err = build_job(&arch, &moves, 15.0).unwrap_err();
        assert!(matches!(err, JobError::Incompatible { .. }));
    }

    #[test]
    fn target_collision_rejected() {
        let arch = arch();
        let moves = [
            MoveSpec::new(0, storage(99, 0), site(0, 0, 0)),
            MoveSpec::new(1, storage(98, 0), site(0, 0, 0)),
        ];
        let err = build_job(&arch, &moves, 15.0).unwrap_err();
        assert!(matches!(err, JobError::TargetCollision { .. }));
    }

    #[test]
    fn empty_and_duplicate_rejected() {
        let arch = arch();
        assert_eq!(build_job(&arch, &[], 15.0).unwrap_err(), JobError::Empty);
        let mv = MoveSpec::new(0, storage(99, 0), site(0, 0, 0));
        let mv2 = MoveSpec::new(0, storage(98, 0), site(0, 1, 0));
        assert_eq!(
            build_job(&arch, &[mv, mv2], 15.0).unwrap_err(),
            JobError::DuplicateQubit { qubit: 0 }
        );
    }

    #[test]
    fn compatibility_is_symmetric() {
        let arch = arch();
        let a = MoveSpec::new(0, storage(99, 1), site(0, 0, 0));
        let b = MoveSpec::new(1, storage(99, 3), site(0, 0, 1));
        assert_eq!(moves_compatible(&arch, &a, &b), moves_compatible(&arch, &b, &a));
        assert!(moves_compatible(&arch, &a, &b));
    }

    #[test]
    fn shift_preserves_duration() {
        let arch = arch();
        let mv = MoveSpec::new(0, storage(99, 1), site(0, 0, 0));
        let mut job = build_job(&arch, &[mv], 15.0).unwrap();
        let dur = job.end_time - job.begin_time;
        shift_job(&mut job, 123.0);
        assert_eq!(job.begin_time, 123.0);
        assert!((job.end_time - 123.0 - dur).abs() < 1e-12);
    }

    #[test]
    fn multirow_pickup_charges_per_row_transfer() {
        let arch = arch();
        let moves = [
            MoveSpec::new(0, storage(0, 0), site(0, 2, 0)),
            MoveSpec::new(2, storage(1, 0), site(1, 2, 0)),
        ];
        let job = build_job(&arch, &moves, 15.0).unwrap();
        assert!(job.pick_duration >= 30.0, "two rows → two transfers");
    }

    #[test]
    fn site_to_site_and_site_to_storage_moves() {
        let arch = arch();
        // Reuse-style move within the entanglement zone.
        let mv = MoveSpec::new(5, site(0, 0, 1), site(0, 3, 1));
        let job = build_job(&arch, &[mv], 15.0).unwrap();
        assert!(job.move_duration > 0.0);
        // Return move.
        let mv = MoveSpec::new(5, site(0, 3, 1), storage(99, 40));
        let job = build_job(&arch, &[mv], 15.0).unwrap();
        assert!(job.move_duration > 0.0);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// Random horizontal storage→site move sets that preserve order by
        /// construction: qubit k starts at storage column `3k..3k+2` and ends
        /// at site column `k` (monotone in both axes).
        fn arb_compatible_moves() -> impl Strategy<Value = Vec<MoveSpec>> {
            (1usize..6).prop_flat_map(|k| {
                proptest::collection::vec(0usize..3, k..=k).prop_map(move |jitter| {
                    (0..k)
                        .map(|i| {
                            MoveSpec::new(
                                i,
                                Loc::Storage { zone: 0, row: 99, col: 3 * i + jitter[i] % 2 },
                                Loc::Site { zone: 0, row: 0, col: i, slot: 0 },
                            )
                        })
                        .collect()
                })
            })
        }

        proptest! {
            #[test]
            fn built_jobs_are_internally_consistent(moves in arb_compatible_moves()) {
                let arch = Architecture::reference();
                let job = build_job(&arch, &moves, 15.0).unwrap();
                // Begin/end locs pair up one-to-one with the input moves.
                prop_assert_eq!(job.num_qubits(), moves.len());
                for (b, e) in job.moves() {
                    prop_assert_eq!(b.qubit, e.qubit);
                }
                // Timing anatomy adds up.
                let total = job.pick_duration + job.move_duration + job.drop_duration;
                prop_assert!((job.end_time - job.begin_time - total).abs() < 1e-9);
                // The transport duration is the longest individual move.
                let max_t = moves
                    .iter()
                    .map(|m| arch.position(m.from).move_time(arch.position(m.to)))
                    .fold(0.0, f64::max);
                prop_assert!((job.move_duration - max_t).abs() < 1e-9);
                // Machine expansion ends with a deactivate.
                let ends_with_deactivate =
                    matches!(job.insts.last(), Some(AodInst::Deactivate { .. }));
                prop_assert!(ends_with_deactivate);
            }

            #[test]
            fn pairwise_compatibility_matches_job_buildability(
                cols in proptest::collection::vec(0usize..20, 2..5),
                ends in proptest::collection::vec(0usize..10, 2..5),
            ) {
                let arch = Architecture::reference();
                let n = cols.len().min(ends.len());
                let moves: Vec<MoveSpec> = (0..n)
                    .map(|i| MoveSpec::new(
                        i,
                        Loc::Storage { zone: 0, row: 99, col: cols[i] },
                        Loc::Site { zone: 0, row: 0, col: ends[i], slot: 0 },
                    ))
                    .collect();
                // Skip degenerate duplicates (same source or target).
                let mut srcs: Vec<_> = moves.iter().map(|m| m.from).collect();
                let mut dsts: Vec<_> = moves.iter().map(|m| m.to).collect();
                srcs.sort(); srcs.dedup(); dsts.sort(); dsts.dedup();
                prop_assume!(srcs.len() == n && dsts.len() == n);

                let all_compatible = (0..n).all(|i| {
                    ((i + 1)..n).all(|j| moves_compatible(&arch, &moves[i], &moves[j]))
                });
                let buildable = build_job(&arch, &moves, 15.0).is_ok();
                prop_assert_eq!(all_compatible, buildable);
            }
        }
    }

    #[test]
    fn nearest_site_motion_example() {
        // Middle-site reference from the paper's Fig. 5/6 geometry carries
        // over: moving toward ω(0,0) from storage row 99.
        let arch = arch();
        let s = SiteId::new(0, 0, 0);
        let p = arch.site_position(s);
        assert_eq!((p.x, p.y), (35.0, 307.0));
    }
}
