//! Steady-state allocation test for the scheduler's job-construction stage.
//!
//! With a warmed [`ScheduleWorkspace`], building a transition's pending jobs
//! — leg splitting, the coordinate-rank conflict sweep, MIS partitioning and
//! job planning — must perform **zero** heap allocations: every buffer
//! (including the `PendingJob` shells) is pooled in the workspace. A
//! counting global allocator makes the claim checkable instead of asserted
//! (the acceptance criterion of the scheduler-core refactor; same technique
//! as `zac-graph/tests/alloc_free.rs`).
//!
//! Emission is excluded by design: it materializes the output `Program`,
//! whose instructions are owned allocations by definition.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use zac_arch::{Architecture, Loc, SiteId};
use zac_circuit::Gate2;
use zac_place::StagePlan;
use zac_schedule::internals::{build_transition_pending, drain_pending, prepare_workspace};
use zac_schedule::{ScheduleConfig, ScheduleWorkspace};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A synthetic transition: `k` gate fetches into sites (two moves each) and
/// `r` returns to storage, phase-shifted by `salt` so rounds differ.
fn stage_plan(n: usize, k: usize, salt: usize) -> StagePlan {
    let mut during: Vec<Loc> =
        (0..n).map(|q| Loc::Storage { zone: 0, row: 99 - (q / 30), col: (q % 30) * 2 }).collect();
    let mut gate_sites = Vec::new();
    for g in 0..k {
        let (a, b) = (2 * g, 2 * g + 1);
        let col = (g + salt) % 10;
        during[a] = Loc::Site { zone: 0, row: 0, col, slot: 0 };
        during[b] = Loc::Site { zone: 0, row: 0, col, slot: 1 };
        gate_sites.push((Gate2 { id: g, a, b }, SiteId::new(0, 0, col)));
    }
    StagePlan { gate_sites, pre_returns: None, during, used_reuse: false, reused_qubits: 0 }
}

#[test]
fn steady_state_job_construction_does_not_allocate() {
    let arch = Architecture::reference();
    let cfg = ScheduleConfig::default();
    let n = 24;
    let initial: Vec<Loc> =
        (0..n).map(|q| Loc::Storage { zone: 0, row: 99 - (q / 30), col: (q % 30) * 2 }).collect();
    let mut ws = ScheduleWorkspace::new();
    prepare_workspace(&mut ws, &arch, &initial, 2);

    // Warm-up: one full period of the shape mix (k and the column pattern
    // both repeat with period 10), growing every buffer and enough pooled
    // job shells for the conflict-heaviest transition.
    for round in 0..10usize {
        build_transition_pending(&arch, &cfg, &mut ws, &stage_plan(n, 1 + round % 10, round))
            .unwrap();
        assert!(drain_pending(&mut ws) > 0);
    }

    for round in 10..50usize {
        let plan = stage_plan(n, 1 + round % 10, round);
        let before = allocations();
        build_transition_pending(&arch, &cfg, &mut ws, &plan).unwrap();
        let jobs = drain_pending(&mut ws);
        let after = allocations();
        assert!(jobs > 0, "round {round} built no jobs");
        assert_eq!(after - before, 0, "round {round}: job construction allocated in steady state");
    }
}

/// Pool reuse never changes what gets planned: durations repeat exactly for
/// a repeated transition.
#[test]
fn pooled_construction_is_deterministic() {
    let arch = Architecture::reference();
    let cfg = ScheduleConfig::default();
    let n = 24;
    let initial: Vec<Loc> =
        (0..n).map(|q| Loc::Storage { zone: 0, row: 99 - (q / 30), col: (q % 30) * 2 }).collect();
    let mut ws = ScheduleWorkspace::new();
    prepare_workspace(&mut ws, &arch, &initial, 1);
    let plan = stage_plan(n, 6, 3);
    build_transition_pending(&arch, &cfg, &mut ws, &plan).unwrap();
    let first = zac_schedule::internals::pending_durations(&ws);
    drain_pending(&mut ws);
    for _ in 0..5 {
        build_transition_pending(&arch, &cfg, &mut ws, &plan).unwrap();
        assert_eq!(zac_schedule::internals::pending_durations(&ws), first);
        drain_pending(&mut ws);
    }
    assert!(!first.is_empty());
}
