//! Suite-wide scheduler invariants: for every paper circuit × AOD count,
//! the emitted program must
//!
//! 1. pass `verify_against` (it implements the circuit: every 2Q gate fires
//!    at a site holding exactly its two qubits, in stage order);
//! 2. pass `analyze` with zero idle-qubit excitations (zoned shielding);
//! 3. never overlap a Rydberg exposure with a drop into an entanglement
//!    zone — an atom released mid-exposure would be excited (this
//!    generalizes the old single-circuit
//!    `rydberg_never_fires_during_a_zone_drop` unit test to the whole
//!    suite and all AOD counts).
//!
//! SA is disabled (it only changes the initial placement, not scheduler
//! behavior) so the 17 × 3 matrix stays fast in debug CI runs.

use zac_arch::Architecture;
use zac_circuit::{bench_circuits, preprocess};
use zac_place::{plan_placement, PlacementConfig};
use zac_schedule::{schedule_with_workspace, ScheduleConfig, ScheduleWorkspace};
use zac_zair::{Instruction, Program};

fn place_cfg() -> PlacementConfig {
    PlacementConfig { use_sa: false, ..PlacementConfig::default() }
}

/// No Rydberg exposure may overlap any job's drop phase into the zone.
fn assert_no_drop_during_exposure(arch: &Architecture, p: &Program, label: &str) {
    let rydbergs: Vec<(f64, f64)> = p
        .instructions
        .iter()
        .filter_map(|i| match i {
            Instruction::Rydberg { begin_time, end_time, .. } => Some((*begin_time, *end_time)),
            _ => None,
        })
        .collect();
    for job in p.jobs() {
        let drops_in_zone = job
            .moves()
            .any(|(_, e)| arch.slm_to_loc(e.slm_id, e.row, e.col).is_some_and(|l| l.is_site()));
        if !drops_in_zone {
            continue;
        }
        let drop_start = job.move_end();
        let drop_end = job.end_time;
        for (rb, re) in &rydbergs {
            assert!(
                drop_end <= *rb + 1e-9 || drop_start >= *re - 1e-9,
                "{label}: drop [{drop_start}, {drop_end}] overlaps exposure [{rb}, {re}]"
            );
        }
    }
}

#[test]
fn all_suite_programs_verify_across_aod_counts() {
    let cfg = ScheduleConfig::default();
    let mut ws = ScheduleWorkspace::new();
    for entry in bench_circuits::paper_suite() {
        let staged = preprocess(&entry.circuit);
        for aods in [1usize, 2, 4] {
            let arch = Architecture::reference().with_num_aods(aods);
            let num_sites = arch.num_sites();
            let split;
            let staged = if staged.max_parallelism() > num_sites && num_sites > 0 {
                split = staged.with_max_stage_width(num_sites);
                &split
            } else {
                &staged
            };
            let label = format!("{} ({aods} AODs)", staged.name);
            let plan = plan_placement(&arch, staged, &place_cfg())
                .unwrap_or_else(|e| panic!("{label}: placement failed: {e}"));
            let program = schedule_with_workspace(&arch, staged, &plan, &cfg, &mut ws)
                .unwrap_or_else(|e| panic!("{label}: scheduling failed: {e}"));

            program
                .verify_against(&arch, staged)
                .unwrap_or_else(|e| panic!("{label}: verify_against failed: {e}"));
            let analysis = program
                .analyze(&arch)
                .unwrap_or_else(|e| panic!("{label}: analyze rejected the program: {e}"));
            assert_eq!(analysis.n_exc, 0, "{label}: idle qubit caught in an exposure");
            assert_eq!(analysis.g2, staged.num_2q_gates(), "{label}: 2Q gate count");
            assert!(analysis.total_duration_us > 0.0, "{label}");
            assert_no_drop_during_exposure(&arch, &program, &label);
        }
    }
}
