//! Scheduler bit-identity regression: the emitted [`Program`] for every
//! (circuit, architecture, seed) combination must match a committed golden
//! digest captured from the pre-refactor scheduler.
//!
//! The digests ([`Program::content_fingerprint`]) cover *every* field of
//! every instruction — begin/end times, machine-level AOD expansions, qlocs —
//! so any behavioral drift in job construction, dependency resolution or the
//! emission loop fails loudly, while pure restructurings pass.
//!
//! The matrix is the paper's 17-circuit suite plus the bundled QASM corpus
//! (`tests/corpus/`), on the reference and two-zone (`arch2`) geometries,
//! with two SA seeds. The always-on test covers a fast subset so `cargo
//! test` stays quick in debug builds; the full matrix runs under
//! `--ignored` (CI runs it in release mode).
//!
//! Regenerate `tests/golden/schedule_digests.txt` with
//! `ZAC_SCHEDULE_GOLDEN_REGEN=1 cargo test -p zac-schedule --release --test
//! bit_identity -- --ignored` — only legitimate, reviewed output changes may
//! do so.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use zac_arch::Architecture;
use zac_circuit::{bench_circuits, preprocess, qasm::parse_qasm, StagedCircuit};
use zac_place::{plan_placement, PlacementConfig, PlacementEngine};
use zac_schedule::{schedule, ScheduleConfig};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/schedule_digests.txt");
const CORPUS_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus");
const SEEDS: [u64; 2] = [0x5AC, 7];

/// Reduced SA budget: seeds still steer the placement (exercising distinct
/// rearrangement patterns) while the matrix stays fast enough for CI.
const SA_ITERATIONS: usize = 60;

/// Circuits small enough for the always-on debug-mode subset.
const FAST_QUBIT_CAP: usize = 31;

fn place_cfg(seed: u64) -> PlacementConfig {
    // The goldens were captured from the exhaustive search; pin the engine so
    // the matrix stays meaningful under `ZAC_PLACER=windowed` runs.
    PlacementConfig {
        sa_iterations: SA_ITERATIONS,
        seed,
        engine: PlacementEngine::Exhaustive,
        ..PlacementConfig::default()
    }
}

fn archs() -> Vec<Architecture> {
    vec![Architecture::reference(), Architecture::arch2_two_zones()]
}

fn suite() -> Vec<StagedCircuit> {
    let mut circuits: Vec<StagedCircuit> =
        bench_circuits::paper_suite().iter().map(|e| preprocess(&e.circuit)).collect();
    let mut entries: Vec<_> = std::fs::read_dir(CORPUS_DIR)
        .expect("bundled corpus directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "qasm"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).expect("readable corpus file");
        let circuit = parse_qasm(&src, &name).expect("bundled corpus file parses");
        circuits.push(preprocess(&circuit));
    }
    circuits
}

/// One cell of the golden matrix: the digest of the scheduled program, or a
/// stable skip marker when the circuit does not fit the architecture.
fn digest_of(arch: &Architecture, staged: &StagedCircuit, seed: u64) -> String {
    // Mirror `Zac::compile_staged`: stages wider than the site count split.
    let num_sites = arch.num_sites();
    let split;
    let staged = if staged.max_parallelism() > num_sites && num_sites > 0 {
        split = staged.with_max_stage_width(num_sites);
        &split
    } else {
        staged
    };
    let plan = match plan_placement(arch, staged, &place_cfg(seed)) {
        Ok(plan) => plan,
        Err(_) => return "skip".to_owned(),
    };
    let program = schedule(arch, staged, &plan, &ScheduleConfig::default())
        .unwrap_or_else(|e| panic!("{} on {}: {e}", staged.name, arch.name()));
    format!("{:016x}", program.content_fingerprint())
}

fn golden_key(circuit: &str, arch: &str, seed: u64) -> String {
    format!("{circuit}\t{arch}\t{seed}")
}

fn load_goldens() -> BTreeMap<String, String> {
    let text = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden digests committed at tests/golden/schedule_digests.txt");
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (key, digest) = l.rsplit_once('\t').expect("golden line: key\\tdigest");
            (key.to_owned(), digest.to_owned())
        })
        .collect()
}

fn run_matrix(fast_only: bool) {
    let regen = std::env::var("ZAC_SCHEDULE_GOLDEN_REGEN").is_ok_and(|v| v == "1");
    if regen && fast_only {
        // Regeneration must cover the whole matrix; only the ignored entry
        // point does that.
        return;
    }
    let goldens = if regen { BTreeMap::new() } else { load_goldens() };
    let mut out = String::from(
        "# Scheduler output digests (Program::content_fingerprint), one per\n\
         # (circuit, architecture, seed). Captured from the pre-refactor\n\
         # scheduler; regenerate only for reviewed output changes:\n\
         # ZAC_SCHEDULE_GOLDEN_REGEN=1 cargo test -p zac-schedule --release \
         --test bit_identity -- --ignored\n",
    );
    let mut mismatches = Vec::new();
    for staged in suite() {
        if fast_only && staged.num_qubits > FAST_QUBIT_CAP {
            continue;
        }
        for arch in archs() {
            for seed in SEEDS {
                let key = golden_key(&staged.name, arch.name(), seed);
                let digest = digest_of(&arch, &staged, seed);
                writeln!(out, "{key}\t{digest}").unwrap();
                if !regen {
                    match goldens.get(&key) {
                        Some(expect) if *expect == digest => {}
                        Some(expect) => {
                            mismatches.push(format!("{key}: expected {expect}, got {digest}"))
                        }
                        None => mismatches.push(format!("{key}: missing from golden file")),
                    }
                }
            }
        }
    }
    if regen {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, out).unwrap();
        println!("regenerated {GOLDEN_PATH}");
        return;
    }
    assert!(
        mismatches.is_empty(),
        "scheduler output drifted from the pre-refactor goldens:\n{}",
        mismatches.join("\n")
    );
}

/// Fast subset (small suite circuits + corpus, both geometries, both seeds):
/// always on, keeps `cargo test` honest in debug builds.
#[test]
fn scheduler_output_matches_goldens_fast_subset() {
    run_matrix(true);
}

/// The full 17-circuit suite + corpus matrix; run in release mode
/// (`cargo test -p zac-schedule --release --test bit_identity -- --ignored`,
/// wired into CI).
#[test]
#[ignore = "full matrix is release-mode CI work; the fast subset always runs"]
fn scheduler_output_matches_goldens_full_matrix() {
    run_matrix(false);
}
