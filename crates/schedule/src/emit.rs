//! The event-driven LPT emission loop (paper Sec. VI).
//!
//! The pre-refactor loop rescanned *every* pending job on *every* iteration
//! — rebuilding a `HashSet<Loc>` of sources per job per scan — to find the
//! ready set, an O(jobs² · moves) pattern that dominated scheduling time on
//! wide circuits. The loop here is event-driven:
//!
//! * readiness is **cached** per job (`ws.ready`) and kept current by an
//!   indexed recheck: executing a job only re-examines the jobs registered
//!   against its released source traps, its newly occupied target traps,
//!   and its moved qubits (`ws.target_jobs` / `ws.jobs_by_qubit`) — exactly
//!   the jobs whose readiness inputs changed;
//! * trap occupancy and vacate times live in generation-stamped dense
//!   tables ([`zac_arch::TrapSet`] / [`zac_arch::TrapMap`]) instead of
//!   `HashSet`/`HashMap<Loc, _>`;
//! * each iteration's winner scan reads one cached bool + one `f64` per
//!   pending job.
//!
//! Selection semantics are **bit-identical** to the rescan loop (same
//! `swap_remove` position dynamics, same last-max LPT tie-break, same
//! first-min AOD pick), locked by the golden digests in
//! `tests/bit_identity.rs`.
//!
//! Deadlocks (no pending job has all targets free) dissolve a multi-move
//! job into singles, or detour a single blocked move through a free storage
//! trap found by a rotating-cursor scan over the workspace's dense trap
//! table — the pre-refactor implementation cloned the whole occupancy set
//! and rescanned every storage trap from the origin on every deadlock.

use crate::deps::job_begin_time;
use crate::jobs::{plan_pending, PendingJob};
use crate::workspace::{GeoTables, ScheduleWorkspace};
use crate::{ScheduleConfig, ScheduleError};
use zac_arch::{Architecture, Loc, TrapSet};
use zac_circuit::U3Op;
use zac_zair::{shift_job, Instruction, JobBuilder, MoveSpec, Program, QubitLoc, U3Application};

/// A job is ready when every qubit is actually at its claimed source
/// (orders the round-trip legs) and all target traps are free (own sources
/// excluded: the job picks everything up before dropping).
fn is_ready(job: &PendingJob, current: &[Loc], occupied: &TrapSet) -> bool {
    job.moves.iter().enumerate().all(|(k, m)| {
        current[m.qubit] == m.from
            && (job.own_source[k] || !occupied.contains(job.to_flat[k] as usize))
    })
}

/// Registers `job` (at position `pos`) in the qubit and target-trap indexes.
fn register(
    pos: usize,
    job: &PendingJob,
    jobs_by_qubit: &mut [Vec<u32>],
    target_jobs: &mut [Vec<u32>],
    touched_qubits: &mut Vec<u32>,
    touched_targets: &mut Vec<u32>,
) {
    for (k, m) in job.moves.iter().enumerate() {
        let ql = &mut jobs_by_qubit[m.qubit];
        if ql.is_empty() {
            touched_qubits.push(m.qubit as u32);
        }
        ql.push(pos as u32);
        let tl = &mut target_jobs[job.to_flat[k] as usize];
        if tl.is_empty() {
            touched_targets.push(job.to_flat[k]);
        }
        tl.push(pos as u32);
    }
}

/// Removes `job`'s entries (value `pos`) from the indexes.
fn unregister(
    pos: usize,
    job: &PendingJob,
    jobs_by_qubit: &mut [Vec<u32>],
    target_jobs: &mut [Vec<u32>],
) {
    let pos = pos as u32;
    for (k, m) in job.moves.iter().enumerate() {
        let ql = &mut jobs_by_qubit[m.qubit];
        let at = ql.iter().position(|&x| x == pos).expect("registered qubit entry");
        ql.swap_remove(at);
        let tl = &mut target_jobs[job.to_flat[k] as usize];
        let at = tl.iter().position(|&x| x == pos).expect("registered target entry");
        tl.swap_remove(at);
    }
}

/// Rewrites `job`'s index entries from position `old` to `new` (the job a
/// `swap_remove` moved into the vacated slot).
fn reposition(
    old: usize,
    new: usize,
    job: &PendingJob,
    jobs_by_qubit: &mut [Vec<u32>],
    target_jobs: &mut [Vec<u32>],
) {
    let (old, new) = (old as u32, new as u32);
    for (k, m) in job.moves.iter().enumerate() {
        let ql = &mut jobs_by_qubit[m.qubit];
        let at = ql.iter().position(|&x| x == old).expect("registered qubit entry");
        ql[at] = new;
        let tl = &mut target_jobs[job.to_flat[k] as usize];
        let at = tl.iter().position(|&x| x == old).expect("registered target entry");
        tl[at] = new;
    }
}

/// Emits every pending job of one transition into `program`, returning the
/// transition's end time (at least `last_rydberg_end`).
///
/// # Errors
///
/// [`ScheduleError::NoDetourTrap`] if a movement cycle cannot be broken, or
/// [`ScheduleError::Job`] if a job cannot be realized.
pub(crate) fn emit_transition(
    arch: &Architecture,
    cfg: &ScheduleConfig,
    ws: &mut ScheduleWorkspace,
    program: &mut Program,
    last_rydberg_end: f64,
) -> Result<f64, ScheduleError> {
    // Reset the per-transition index state (O(touched), not O(traps)).
    ws.clear_registrations();
    let ScheduleWorkspace {
        geo,
        current,
        avail,
        aod_avail,
        pending,
        ready,
        jobs_by_qubit,
        target_jobs,
        touched_targets,
        touched_qubits,
        dirty,
        builder,
        job_pool,
        detour_cursor,
        ..
    } = ws;
    let geo = geo.as_mut().expect("workspace prepared");

    // Register this transition's jobs.
    for (pos, job) in pending.iter().enumerate() {
        register(pos, job, jobs_by_qubit, target_jobs, touched_qubits, touched_targets);
    }

    // Trap occupancy for emission ordering (execute-when-free) and vacate
    // times, in dense generation-stamped tables.
    geo.occupied.clear();
    for &loc in current.iter() {
        geo.occupied.insert(geo.index.flat(loc));
    }
    geo.vacated.clear();

    ready.clear();
    for job in pending.iter() {
        ready.push(is_ready(job, current, &geo.occupied));
    }

    let mut transition_end = last_rydberg_end;
    // Telemetry batched in locals; one flush per transition keeps the
    // emission loop free of atomics (counts are dropped on the error paths,
    // which abort the compile anyway).
    let (mut jobs_emitted, mut readiness_reexams) = (0u64, 0u64);
    let mut rounds = 0u64;
    while !pending.is_empty() {
        // Cooperative cancellation: a watchdog-fired token aborts the
        // emission cleanly instead of holding the worker past its deadline.
        rounds += 1;
        if rounds & 63 == 0 && zac_telemetry::cancel::cancelled() {
            return Err(ScheduleError::Cancelled);
        }
        // LPT: among ready jobs take the longest; the ascending scan with a
        // `≥` update reproduces `max_by`'s last-max tie-break exactly.
        let mut winner: Option<usize> = None;
        for i in 0..pending.len() {
            if !ready[i] {
                continue;
            }
            winner = match winner {
                Some(b)
                    if pending[i].spec_duration.total_cmp(&pending[b].spec_duration).is_lt() =>
                {
                    Some(b)
                }
                _ => Some(i),
            };
        }
        let Some(i) = winner else {
            // Deadlock: split a multi-move job, or detour a single move
            // through a free storage trap. Only source-consistent jobs
            // (qubits actually at their claimed origins) participate.
            resolve_deadlock(
                arch,
                cfg,
                geo,
                current,
                pending,
                ready,
                jobs_by_qubit,
                target_jobs,
                touched_qubits,
                touched_targets,
                builder,
                job_pool,
                detour_cursor,
            )?;
            continue;
        };

        let p = pending.swap_remove(i);
        ready.swap_remove(i);
        unregister(i, &p, jobs_by_qubit, target_jobs);
        if i < pending.len() {
            reposition(pending.len(), i, &pending[i], jobs_by_qubit, target_jobs);
        }

        // Assign the earliest-available AOD (first-min, as `min_by`).
        let (aod_id, _) = aod_avail
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("at least one AOD");
        let begin = job_begin_time(&p, aod_avail[aod_id], avail, &geo.vacated, last_rydberg_end);
        let mut job = builder.build(arch, &p.moves, cfg.t_tran_us)?;
        job.aod_id = aod_id;
        shift_job(&mut job, begin);

        for (k, m) in p.moves.iter().enumerate() {
            geo.vacated.set(p.from_flat[k] as usize, job.pick_end());
            avail[m.qubit] = job.end_time;
            current[m.qubit] = m.to;
            geo.occupied.remove(p.from_flat[k] as usize);
        }
        for &t in &p.to_flat {
            geo.occupied.insert(t as usize);
        }
        aod_avail[aod_id] = job.end_time;
        transition_end = transition_end.max(job.end_time);
        program.instructions.push(Instruction::RearrangeJob(job));
        jobs_emitted += 1;

        // Event-driven recheck: only jobs registered against the released
        // sources, the newly occupied targets, or the moved qubits can have
        // changed readiness.
        dirty.clear();
        for (k, m) in p.moves.iter().enumerate() {
            dirty.extend_from_slice(&target_jobs[p.from_flat[k] as usize]);
            dirty.extend_from_slice(&target_jobs[p.to_flat[k] as usize]);
            dirty.extend_from_slice(&jobs_by_qubit[m.qubit]);
        }
        readiness_reexams += dirty.len() as u64;
        for &pos in dirty.iter() {
            ready[pos as usize] = is_ready(&pending[pos as usize], current, &geo.occupied);
        }

        let mut p = p;
        p.recycle();
        job_pool.push(p);
    }
    zac_telemetry::metrics::SCHEDULE_JOBS_EMITTED.add(jobs_emitted);
    zac_telemetry::metrics::SCHEDULE_READINESS_REEXAMS.add(readiness_reexams);
    Ok(transition_end)
}

/// Resolves an emission deadlock: no pending job has all targets free.
///
/// Multi-move jobs are dissolved into single-move jobs; a deadlocked single
/// move is detoured through a free storage trap (two jobs), which always
/// makes progress because storage is far larger than the moving set.
#[allow(clippy::too_many_arguments)]
fn resolve_deadlock(
    arch: &Architecture,
    cfg: &ScheduleConfig,
    geo: &mut GeoTables,
    current: &[Loc],
    pending: &mut Vec<PendingJob>,
    ready: &mut Vec<bool>,
    jobs_by_qubit: &mut [Vec<u32>],
    target_jobs: &mut [Vec<u32>],
    touched_qubits: &mut Vec<u32>,
    touched_targets: &mut Vec<u32>,
    builder: &mut JobBuilder,
    job_pool: &mut Vec<PendingJob>,
    detour_cursor: &mut usize,
) -> Result<(), ScheduleError> {
    let take = |i: usize,
                pending: &mut Vec<PendingJob>,
                ready: &mut Vec<bool>,
                jobs_by_qubit: &mut [Vec<u32>],
                target_jobs: &mut [Vec<u32>]|
     -> PendingJob {
        let p = pending.swap_remove(i);
        ready.swap_remove(i);
        unregister(i, &p, jobs_by_qubit, target_jobs);
        if i < pending.len() {
            reposition(pending.len(), i, &pending[i], jobs_by_qubit, target_jobs);
        }
        p
    };
    let push_single = |spec: MoveSpec,
                       geo: &mut GeoTables,
                       pending: &mut Vec<PendingJob>,
                       ready: &mut Vec<bool>,
                       jobs_by_qubit: &mut [Vec<u32>],
                       target_jobs: &mut [Vec<u32>],
                       touched_qubits: &mut Vec<u32>,
                       touched_targets: &mut Vec<u32>,
                       builder: &mut JobBuilder,
                       job_pool: &mut Vec<PendingJob>|
     -> Result<(), ScheduleError> {
        let mut job = job_pool.pop().unwrap_or_default();
        job.recycle();
        job.moves.push(spec);
        plan_pending(arch, cfg, builder, geo, &mut job)?;
        let pos = pending.len();
        ready.push(is_ready(&job, current, &geo.occupied));
        register(pos, &job, jobs_by_qubit, target_jobs, touched_qubits, touched_targets);
        pending.push(job);
        Ok(())
    };

    // Prefer dissolving a blocked multi-move job.
    if let Some(i) = pending.iter().position(|p| p.moves.len() > 1 && p.source_consistent(current))
    {
        let p = take(i, pending, ready, jobs_by_qubit, target_jobs);
        for k in 0..p.moves.len() {
            push_single(
                p.moves[k],
                geo,
                pending,
                ready,
                jobs_by_qubit,
                target_jobs,
                touched_qubits,
                touched_targets,
                builder,
                job_pool,
            )?;
        }
        let mut p = p;
        p.recycle();
        job_pool.push(p);
        return Ok(());
    }
    // All singles: detour the first occupancy-blocked, source-consistent one.
    let i = pending
        .iter()
        .position(|p| {
            p.source_consistent(current)
                && (0..p.moves.len()).any(|k| geo.occupied.contains(p.to_flat[k] as usize))
        })
        .expect("deadlock implies a blocked source-consistent job");
    let p = take(i, pending, ready, jobs_by_qubit, target_jobs);
    let m = p.moves[0];
    let temp = free_storage_trap(geo, pending, detour_cursor).ok_or(ScheduleError::NoDetourTrap)?;
    for spec in [MoveSpec::new(m.qubit, m.from, temp), MoveSpec::new(m.qubit, temp, m.to)] {
        push_single(
            spec,
            geo,
            pending,
            ready,
            jobs_by_qubit,
            target_jobs,
            touched_qubits,
            touched_targets,
            builder,
            job_pool,
        )?;
    }
    let mut p = p;
    p.recycle();
    job_pool.push(p);
    Ok(())
}

/// Finds a storage trap neither occupied nor used as a pending endpoint.
///
/// The scan walks the dense storage-trap range of the workspace's
/// [`zac_arch::TrapIndex`] from a rotating cursor (wrapping), so repeated
/// detours within one schedule spread across storage instead of rescanning
/// — and re-colliding on — the same leading traps. The pre-refactor
/// implementation cloned the entire occupancy `HashSet` and walked every
/// storage trap from the origin on every call.
fn free_storage_trap(
    geo: &mut GeoTables,
    pending: &[PendingJob],
    cursor: &mut usize,
) -> Option<Loc> {
    geo.detour_used.clear();
    for p in pending {
        for k in 0..p.moves.len() {
            geo.detour_used.insert(p.from_flat[k] as usize);
            geo.detour_used.insert(p.to_flat[k] as usize);
        }
    }
    let n = geo.index.num_storage_traps();
    for step in 0..n {
        let f = (*cursor + step) % n;
        if !geo.occupied.contains(f) && !geo.detour_used.contains(f) {
            *cursor = (f + 1) % n;
            return Some(geo.index.storage_loc(f));
        }
    }
    None
}

/// Emits one sequential 1Q-gate group; returns its end time (or 0 if empty).
pub(crate) fn emit_one_q_group(
    program: &mut Program,
    ops: &[U3Op],
    current: &[Loc],
    avail: &mut [f64],
    cfg: &ScheduleConfig,
    qloc: &impl Fn(usize, Loc) -> QubitLoc,
) -> f64 {
    if ops.is_empty() {
        return 0.0;
    }
    let begin = ops.iter().map(|op| avail[op.qubit]).fold(0.0, f64::max);
    let end = begin + cfg.t_1q_us * ops.len() as f64;
    for op in ops {
        avail[op.qubit] = end;
    }
    program.instructions.push(Instruction::OneQGate {
        gates: ops
            .iter()
            .map(|op| U3Application {
                theta: op.theta,
                phi: op.phi,
                lambda: op.lambda,
                loc: qloc(op.qubit, current[op.qubit]),
            })
            .collect(),
        begin_time: begin,
        end_time: end,
    });
    end
}
