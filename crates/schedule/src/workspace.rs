//! The scheduler's reusable workspace.
//!
//! One [`ScheduleWorkspace`] serves every transition of a schedule and — via
//! [`crate::schedule_with_workspace`] — every `compile()` call of a
//! [`zac_core`-level] compiler instance: all job-construction, dependency
//! and emission scratch lives here, grown once to the largest transition
//! seen and then reused. Steady-state job construction performs zero heap
//! allocations (asserted by `tests/alloc_free.rs`); the emission loop only
//! allocates the output [`zac_zair::Program`] itself.
//!
//! The architecture-dependent tables (the dense [`TrapIndex`] over every
//! trap plus the occupancy/vacate/detour tables built on it) are keyed by a
//! full geometry signature and rebuilt only when the workspace is handed a
//! different architecture.
//!
//! [`zac_core`-level]: crate::schedule_with_workspace

use crate::jobs::PendingJob;
use zac_arch::{Architecture, Loc, TrapIndex, TrapMap, TrapSet};
use zac_circuit::Fingerprint;
use zac_graph::MisWorkspace;
use zac_zair::{JobBuilder, MoveSpec};

/// Architecture-dependent tables, rebuilt only when the geometry changes.
pub(crate) struct GeoTables {
    /// Geometry signature the tables were built for.
    pub sig: u64,
    /// Dense `Loc → flat` indexer over storage traps and site slots.
    pub index: TrapIndex,
    /// Trap occupancy during emission (execute-when-free ordering).
    pub occupied: TrapSet,
    /// Vacate time per trap: pick-end of the job that empties it.
    pub vacated: TrapMap<f64>,
    /// Scratch for detour-trap search: pending-job endpoints.
    pub detour_used: TrapSet,
    /// Scratch for per-job own-source marking.
    pub sources: TrapSet,
}

/// Reusable scratch for the whole scheduling pipeline; see the module docs.
///
/// Create once ([`ScheduleWorkspace::new`]) and pass to
/// [`crate::schedule_with_workspace`] as often as desired — the workspace
/// never influences results (locked by the bit-identity suite), only
/// allocation behavior.
#[derive(Default)]
pub struct ScheduleWorkspace {
    pub(crate) geo: Option<GeoTables>,

    // ---- per-schedule state (reused buffers) ----
    /// Current location of every qubit.
    pub(crate) current: Vec<Loc>,
    /// Per-qubit earliest next instruction time (qubit dependencies).
    pub(crate) avail: Vec<f64>,
    /// Per-AOD earliest availability (LPT load balancing).
    pub(crate) aod_avail: Vec<f64>,

    // ---- job construction ----
    /// Leg scratch: the `from` snapshot of the leg under construction.
    pub(crate) from_snapshot: Vec<Loc>,
    /// Leg scratch: the moves of the leg under construction.
    pub(crate) leg: Vec<MoveSpec>,
    /// Phase split of a leg: returns-to-storage, fetches-into-zones.
    pub(crate) phase_moves: [Vec<MoveSpec>; 2],
    /// Coordinate-rank scratch for the sorted conflict sweep.
    pub(crate) rank_keys: Vec<(f64, u32)>,
    /// Begin-x/begin-y/end-x/end-y ranks per phase move.
    pub(crate) ranks: [Vec<u32>; 4],
    /// Conflict-graph partitioner.
    pub(crate) mis: MisWorkspace,
    /// MIS output sets (inner vectors pooled by the workspace).
    pub(crate) mis_sets: Vec<Vec<usize>>,
    /// Rearrangement-job planner (validation, layout, timing).
    pub(crate) builder: JobBuilder,
    /// Recycled [`PendingJob`] shells.
    pub(crate) job_pool: Vec<PendingJob>,

    // ---- emission ----
    /// Jobs awaiting emission for the current transition.
    pub(crate) pending: Vec<PendingJob>,
    /// Cached readiness per pending job (kept in lockstep with `pending`).
    pub(crate) ready: Vec<bool>,
    /// Qubit → positions of pending jobs moving it.
    pub(crate) jobs_by_qubit: Vec<Vec<u32>>,
    /// Target trap (flat) → positions of pending jobs dropping there.
    pub(crate) target_jobs: Vec<Vec<u32>>,
    /// Which `target_jobs` entries are non-empty (for O(touched) clears).
    pub(crate) touched_targets: Vec<u32>,
    /// Which `jobs_by_qubit` entries are non-empty.
    pub(crate) touched_qubits: Vec<u32>,
    /// Positions to re-examine after a job executes.
    pub(crate) dirty: Vec<u32>,
    /// Rotating start cursor of the detour-trap scan.
    pub(crate) detour_cursor: usize,
}

impl std::fmt::Debug for ScheduleWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduleWorkspace")
            .field("prepared", &self.geo.is_some())
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl ScheduleWorkspace {
    /// A fresh workspace (buffers grow on first use, then stay).
    pub fn new() -> Self {
        Self::default()
    }

    /// Readies the workspace for one schedule: (re)builds the geometry
    /// tables if `arch` changed, initializes the per-schedule state, and
    /// clears any leftovers of an aborted previous run.
    pub(crate) fn prepare(&mut self, arch: &Architecture, initial: &[Loc], num_aods: usize) {
        let sig = arch_signature(arch);
        if self.geo.as_ref().map(|g| g.sig) != Some(sig) {
            let index = TrapIndex::new(arch);
            let len = index.len();
            self.geo = Some(GeoTables {
                sig,
                index,
                occupied: TrapSet::new(len),
                vacated: TrapMap::new(len),
                detour_used: TrapSet::new(len),
                sources: TrapSet::new(len),
            });
            // The flat range changed: drop the old target lists wholesale.
            self.target_jobs.clear();
            self.target_jobs.resize_with(len, Vec::new);
            self.touched_targets.clear();
        }
        let n = initial.len();
        self.current.clear();
        self.current.extend_from_slice(initial);
        self.avail.clear();
        self.avail.resize(n, 0.0);
        self.aod_avail.clear();
        self.aod_avail.resize(num_aods, 0.0);
        if self.jobs_by_qubit.len() < n {
            self.jobs_by_qubit.resize_with(n, Vec::new);
        }
        // Aborted-run hygiene: stale registrations and pending jobs from a
        // schedule that returned an error mid-transition.
        self.clear_registrations();
        while let Some(mut p) = self.pending.pop() {
            p.recycle();
            self.job_pool.push(p);
        }
        self.ready.clear();
        self.detour_cursor = 0;
    }

    /// Empties the per-qubit and per-target job indexes in O(touched).
    pub(crate) fn clear_registrations(&mut self) {
        for &f in &self.touched_targets {
            self.target_jobs[f as usize].clear();
        }
        self.touched_targets.clear();
        for &q in &self.touched_qubits {
            self.jobs_by_qubit[q as usize].clear();
        }
        self.touched_qubits.clear();
    }
}

/// Folds the full architecture geometry (names, AODs, zones, SLM grids) into
/// a signature; the workspace rebuilds its dense tables when it changes.
fn arch_signature(arch: &Architecture) -> u64 {
    let mut fp = Fingerprint::new();
    fp.write_str(arch.name());
    fp.write_usize(arch.aods().len());
    for aod in arch.aods() {
        fp.write_usize(aod.aod_id);
        fp.write_f64(aod.min_sep);
        fp.write_usize(aod.max_num_col);
        fp.write_usize(aod.max_num_row);
    }
    for zones in [arch.storage_zones(), arch.entanglement_zones(), arch.readout_zones()] {
        fp.write_usize(zones.len());
        for zone in zones {
            fp.write_usize(zone.zone_id);
            fp.write_f64(zone.offset.x);
            fp.write_f64(zone.offset.y);
            fp.write_f64(zone.dimension.0);
            fp.write_f64(zone.dimension.1);
            fp.write_usize(zone.slms.len());
            for slm in &zone.slms {
                fp.write_usize(slm.slm_id);
                fp.write_f64(slm.sep.0);
                fp.write_f64(slm.sep.1);
                fp.write_usize(slm.num_col);
                fp.write_usize(slm.num_row);
                fp.write_f64(slm.offset.x);
                fp.write_f64(slm.offset.y);
            }
        }
    }
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_separates_architectures() {
        let a = arch_signature(&Architecture::reference());
        let b = arch_signature(&Architecture::arch2_two_zones());
        let c = arch_signature(&Architecture::arch1_small());
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        assert_eq!(a, arch_signature(&Architecture::reference()));
        // AOD count is part of the signature: the same zones with more AODs
        // rebuild the tables (aod_avail sizing happens separately anyway).
        let d = arch_signature(&Architecture::reference().with_num_aods(3));
        assert_ne!(a, d);
    }

    #[test]
    fn prepare_is_idempotent_and_rebuilds_on_arch_change() {
        let reference = Architecture::reference();
        let arch2 = Architecture::arch2_two_zones();
        let initial = vec![Loc::Storage { zone: 0, row: 0, col: 0 }];
        let mut ws = ScheduleWorkspace::new();
        ws.prepare(&reference, &initial, 1);
        let len_ref = ws.geo.as_ref().unwrap().index.len();
        ws.prepare(&reference, &initial, 2);
        assert_eq!(ws.geo.as_ref().unwrap().index.len(), len_ref);
        assert_eq!(ws.aod_avail.len(), 2);
        ws.prepare(&arch2, &initial, 1);
        assert_ne!(ws.geo.as_ref().unwrap().index.len(), len_ref);
        assert_eq!(ws.target_jobs.len(), ws.geo.as_ref().unwrap().index.len());
    }
}
