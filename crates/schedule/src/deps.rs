//! Dependency resolution for rearrangement jobs (paper Fig. 7).
//!
//! Three constraint families decide when a ready job may begin:
//!
//! * **Qubit dependencies** (Fig. 7b) — no overlap with any instruction
//!   touching the job's qubits: the job starts no earlier than each qubit's
//!   `avail` time (and its AOD's availability).
//! * **Trap dependencies** (Fig. 7a) — overlap with the job vacating a
//!   target trap *is* allowed: only the transport's end (pickup + move) must
//!   come after the vacating pickup ends, so `begin ≥ vacate − pick_move`.
//! * **Rydberg windows** — a drop into an entanglement zone must wait for
//!   the previous exposure to end (idle atoms must not be caught in a
//!   Rydberg pulse), again shifted by `pick_move` because only the drop
//!   phase matters.
//!
//! All lookups go through the workspace's dense trap tables
//! ([`zac_arch::TrapMap`]) — the pre-refactor loop probed a
//! `HashMap<Loc, f64>` per move.

use crate::jobs::PendingJob;
use zac_arch::TrapMap;

/// The earliest begin time of `job` given the current dependency state.
pub(crate) fn job_begin_time(
    job: &PendingJob,
    aod_free: f64,
    avail: &[f64],
    vacated: &TrapMap<f64>,
    last_rydberg_end: f64,
) -> f64 {
    // Qubit dependencies: no overlap with anything touching these qubits.
    let mut begin = aod_free;
    for m in &job.moves {
        begin = begin.max(avail[m.qubit]);
    }
    // Trap dependencies: our transport must end after the pickup that
    // vacates each target trap (overlap allowed, Fig. 7a).
    for (k, m) in job.moves.iter().enumerate() {
        if let Some(vac) = vacated.get(job.to_flat[k] as usize) {
            begin = begin.max(vac - job.pick_move);
        }
        // Entering an entanglement zone: the drop must come after the
        // previous exposure has ended.
        if m.to.is_site() {
            begin = begin.max(last_rydberg_end - job.pick_move);
        }
    }
    begin.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zac_arch::Loc;
    use zac_zair::MoveSpec;

    fn single_job(from: Loc, to: Loc, from_flat: u32, to_flat: u32) -> PendingJob {
        PendingJob {
            moves: vec![MoveSpec::new(0, from, to)],
            own_source: vec![false],
            from_flat: vec![from_flat],
            to_flat: vec![to_flat],
            spec_duration: 100.0,
            pick_move: 70.0,
        }
    }

    #[test]
    fn qubit_and_aod_availability_dominate() {
        let s = Loc::Storage { zone: 0, row: 0, col: 0 };
        let t = Loc::Storage { zone: 0, row: 0, col: 1 };
        let job = single_job(s, t, 0, 1);
        let vacated: TrapMap<f64> = TrapMap::new(4);
        assert_eq!(job_begin_time(&job, 5.0, &[12.0], &vacated, 0.0), 12.0);
        assert_eq!(job_begin_time(&job, 50.0, &[12.0], &vacated, 0.0), 50.0);
    }

    #[test]
    fn vacating_pickup_allows_overlap() {
        let s = Loc::Storage { zone: 0, row: 0, col: 0 };
        let t = Loc::Storage { zone: 0, row: 0, col: 1 };
        let job = single_job(s, t, 0, 1);
        let mut vacated: TrapMap<f64> = TrapMap::new(4);
        // Target vacated at t=100; transport (pick+move = 70) must end
        // after it: begin ≥ 100 − 70 = 30.
        vacated.set(1, 100.0);
        assert_eq!(job_begin_time(&job, 0.0, &[0.0], &vacated, 0.0), 30.0);
    }

    #[test]
    fn zone_drops_wait_for_rydberg_but_storage_does_not() {
        let s = Loc::Storage { zone: 0, row: 0, col: 0 };
        let site = Loc::Site { zone: 0, row: 0, col: 0, slot: 0 };
        let vacated: TrapMap<f64> = TrapMap::new(4);
        let into_zone = single_job(s, site, 0, 1);
        assert_eq!(job_begin_time(&into_zone, 0.0, &[0.0], &vacated, 200.0), 130.0);
        let within_storage = single_job(s, Loc::Storage { zone: 0, row: 0, col: 1 }, 0, 2);
        assert_eq!(job_begin_time(&within_storage, 0.0, &[0.0], &vacated, 200.0), 0.0);
    }
}
