//! Load-balancing scheduling for multi-AOD architectures (paper Sec. VI).
//!
//! The scheduler turns a placement plan's per-stage location snapshots into a
//! timed ZAIR program:
//!
//! 1. **Job generation** ([`jobs`]) — the qubit movements of each transition
//!    are split into rearrangement jobs: a conflict graph (built by a sorted
//!    coordinate-rank sweep) connects movements that violate the AOD
//!    order-preservation constraint, and maximal independent sets become
//!    jobs (Enola's strategy, which the paper adopts).
//! 2. **Dependencies** ([`deps`]) — *trap dependencies* allow a job to
//!    overlap the job vacating its target traps (the move phase only has to
//!    end after the vacating pickup ends, Fig. 7a); *qubit dependencies*
//!    forbid any overlap between instructions touching the same qubit
//!    (Fig. 7b).
//! 3. **Load balancing** ([`emit`]) — ready jobs are assigned longest-first
//!    to the earliest-available AOD (LPT), maximizing AOD utilization. The
//!    emission loop is event-driven: readiness is cached per job and only
//!    re-examined when a blocking trap or qubit is released.
//!
//! Movement cycles (qubit A's target trap is held by B and vice versa) are
//! broken by detouring one qubit through a free storage trap.
//!
//! All scratch state lives in a [`ScheduleWorkspace`] ([`workspace`]),
//! reusable across transitions and across `compile()` calls;
//! [`schedule_with_workspace`] threads one through, [`schedule`] creates a
//! fresh one per call. The workspace never affects results — outputs are
//! bit-identical either way (locked by `tests/bit_identity.rs` against
//! golden digests of the pre-refactor scheduler).

mod deps;
mod emit;
mod jobs;
mod workspace;

/// Test-only access to the job-construction pipeline for the crate's own
/// integration tests (`tests/alloc_free.rs`); **not** a stable API.
#[doc(hidden)]
pub mod internals {
    pub use crate::jobs::{build_transition_pending, PendingJob};
    use crate::workspace::ScheduleWorkspace;
    use zac_arch::{Architecture, Loc};

    /// Readies `ws` for job construction against `arch` (what
    /// `schedule_with_workspace` does before its stage loop).
    pub fn prepare_workspace(
        ws: &mut ScheduleWorkspace,
        arch: &Architecture,
        initial: &[Loc],
        num_aods: usize,
    ) {
        ws.prepare(arch, initial, num_aods);
    }

    /// Recycles every pending job back into the workspace pool, returning
    /// how many there were (emission normally consumes them).
    pub fn drain_pending(ws: &mut ScheduleWorkspace) -> usize {
        let n = ws.pending.len();
        while let Some(mut p) = ws.pending.pop() {
            p.recycle();
            ws.job_pool.push(p);
        }
        n
    }

    /// The planned durations of the pending jobs, in construction order.
    pub fn pending_durations(ws: &ScheduleWorkspace) -> Vec<f64> {
        ws.pending.iter().map(|p| p.spec_duration).collect()
    }
}

use std::fmt;
use zac_arch::{Architecture, Loc};
use zac_circuit::StagedCircuit;
use zac_place::PlacementPlan;
use zac_zair::{Instruction, JobError, Program, QubitLoc};

pub use workspace::ScheduleWorkspace;

/// Timing constants for scheduling (defaults match Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleConfig {
    /// Atom-transfer time (µs).
    pub t_tran_us: f64,
    /// Rydberg (CZ) exposure time (µs).
    pub t_ryd_us: f64,
    /// 1Q gate time (µs); gates in a group run sequentially.
    pub t_1q_us: f64,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        Self { t_tran_us: 15.0, t_ryd_us: 0.36, t_1q_us: 52.0 }
    }
}

/// Scheduling errors.
#[derive(Debug)]
pub enum ScheduleError {
    /// A rearrangement job could not be built.
    Job(JobError),
    /// No free storage trap was available for a cycle-breaking detour.
    NoDetourTrap,
    /// Plan and circuit disagree on stage count.
    PlanMismatch {
        /// Stages in the placement plan.
        plan_stages: usize,
        /// Rydberg stages in the circuit.
        circuit_stages: usize,
    },
    /// An installed [`zac_telemetry::cancel::CancelToken`] fired; the
    /// schedule was abandoned cooperatively (no partial program escapes).
    Cancelled,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Job(e) => write!(f, "job construction failed: {e}"),
            Self::NoDetourTrap => write!(f, "no free storage trap for detour"),
            Self::PlanMismatch { plan_stages, circuit_stages } => write!(
                f,
                "placement plan has {plan_stages} stages but the circuit has {circuit_stages}"
            ),
            Self::Cancelled => write!(f, "scheduling cancelled"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<JobError> for ScheduleError {
    fn from(e: JobError) -> Self {
        Self::Job(e)
    }
}

/// Schedules a placement plan into a timed ZAIR [`Program`].
///
/// Creates a fresh [`ScheduleWorkspace`] per call; callers compiling many
/// circuits should hold one workspace and use [`schedule_with_workspace`]
/// (same results, no per-call table setup).
///
/// # Errors
///
/// Returns a [`ScheduleError`] if the plan is inconsistent with the circuit
/// or a job cannot be realized.
///
/// # Example
///
/// ```
/// use zac_arch::Architecture;
/// use zac_circuit::{bench_circuits, preprocess};
/// use zac_place::{plan_placement, PlacementConfig};
/// use zac_schedule::{schedule, ScheduleConfig};
///
/// let arch = Architecture::reference();
/// let staged = preprocess(&bench_circuits::ghz(6));
/// let plan = plan_placement(&arch, &staged, &PlacementConfig::default()).unwrap();
/// let program = schedule(&arch, &staged, &plan, &ScheduleConfig::default())?;
/// program.analyze(&arch).expect("scheduler emits valid ZAIR");
/// # Ok::<(), zac_schedule::ScheduleError>(())
/// ```
pub fn schedule(
    arch: &Architecture,
    staged: &StagedCircuit,
    plan: &PlacementPlan,
    cfg: &ScheduleConfig,
) -> Result<Program, ScheduleError> {
    let mut ws = ScheduleWorkspace::new();
    schedule_with_workspace(arch, staged, plan, cfg, &mut ws)
}

/// [`schedule`] with an explicit, reusable [`ScheduleWorkspace`].
///
/// The workspace's buffers and dense trap tables are grown on first use and
/// reused across calls (geometry tables are rebuilt only when `arch`
/// changes), making steady-state job construction allocation-free. The
/// workspace carries no semantic state between calls: results are
/// bit-identical to a fresh-workspace [`schedule`].
///
/// # Errors
///
/// Same as [`schedule`].
pub fn schedule_with_workspace(
    arch: &Architecture,
    staged: &StagedCircuit,
    plan: &PlacementPlan,
    cfg: &ScheduleConfig,
    ws: &mut ScheduleWorkspace,
) -> Result<Program, ScheduleError> {
    let _span = zac_telemetry::span!("schedule.run", &staged.name);
    if plan.stages.len() != staged.stages.len() {
        return Err(ScheduleError::PlanMismatch {
            plan_stages: plan.stages.len(),
            circuit_stages: staged.stages.len(),
        });
    }
    let n = staged.num_qubits;
    let num_aods = arch.aods().len();

    let mut program = Program::new(&staged.name, arch.name(), n);
    let qloc = |q: usize, loc: Loc| -> QubitLoc {
        let (slm, r, c) = arch.loc_to_slm(loc);
        QubitLoc::new(q, slm, r, c)
    };

    program
        .instructions
        .push(Instruction::Init { init_locs: (0..n).map(|q| qloc(q, plan.initial[q])).collect() });

    ws.prepare(arch, &plan.initial, num_aods);
    let mut last_rydberg_end = 0.0f64;

    for (t, stage_plan) in plan.stages.iter().enumerate() {
        // ---- rearrangement jobs for this transition ----
        jobs::build_transition_pending(arch, cfg, ws, stage_plan)?;
        let mut transition_end =
            emit::emit_transition(arch, cfg, ws, &mut program, last_rydberg_end)?;

        // ---- 1Q gates preceding this stage's exposure ----
        let one_q_end = emit::emit_one_q_group(
            &mut program,
            &staged.stages[t].pre_1q,
            &ws.current,
            &mut ws.avail,
            cfg,
            &qloc,
        );
        transition_end = transition_end.max(one_q_end);

        // ---- Rydberg exposure ----
        let mut ryd_begin = transition_end;
        for g in &staged.stages[t].gates {
            ryd_begin = ryd_begin.max(ws.avail[g.a]).max(ws.avail[g.b]);
        }
        let ryd_end = ryd_begin + cfg.t_ryd_us;
        let mut zones: Vec<usize> = stage_plan.gate_sites.iter().map(|(_, s)| s.zone).collect();
        zones.sort_unstable();
        zones.dedup();
        for zone_id in zones {
            program.instructions.push(Instruction::Rydberg {
                zone_id,
                begin_time: ryd_begin,
                end_time: ryd_end,
            });
        }
        for g in &staged.stages[t].gates {
            ws.avail[g.a] = ryd_end;
            ws.avail[g.b] = ryd_end;
        }
        last_rydberg_end = ryd_end;
    }

    // Trailing 1Q gates.
    emit::emit_one_q_group(
        &mut program,
        &staged.trailing_1q,
        &ws.current,
        &mut ws.avail,
        cfg,
        &qloc,
    );

    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zac_circuit::{bench_circuits, preprocess, Circuit};
    use zac_place::{plan_placement, PlacementConfig};

    fn quick_cfg() -> PlacementConfig {
        PlacementConfig { sa_iterations: 200, ..PlacementConfig::default() }
    }

    fn compile(circ: &Circuit, arch: &Architecture, aods: usize) -> Program {
        let arch = arch.clone().with_num_aods(aods);
        let staged = preprocess(circ);
        let plan = plan_placement(&arch, &staged, &quick_cfg()).unwrap();
        schedule(&arch, &staged, &plan, &ScheduleConfig::default()).unwrap()
    }

    #[test]
    fn ghz_schedule_is_valid_zair() {
        let arch = Architecture::reference();
        let p = compile(&bench_circuits::ghz(8), &arch, 1);
        let a = p.analyze(&arch).unwrap();
        assert_eq!(a.g2, 7);
        assert_eq!(a.n_exc, 0, "ZAC never leaves idle qubits in the zone");
        assert_eq!(a.num_rydberg_stages, 7);
        assert!(a.total_duration_us > 0.0);
    }

    #[test]
    fn one_q_gates_are_scheduled() {
        let arch = Architecture::reference();
        let p = compile(&bench_circuits::bv(6, 5), &arch, 1);
        let a = p.analyze(&arch).unwrap();
        let staged = preprocess(&bench_circuits::bv(6, 5));
        assert_eq!(a.g1, staged.num_1q_gates());
        assert_eq!(a.g2, staged.num_2q_gates());
    }

    #[test]
    fn reuse_cuts_transfers_on_chain_circuits() {
        let arch = Architecture::reference();
        let staged = preprocess(&bench_circuits::ghz(12));
        let with_cfg = quick_cfg();
        let without_cfg = PlacementConfig { reuse: false, ..quick_cfg() };
        let cfg = ScheduleConfig::default();
        let a_with =
            schedule(&arch, &staged, &plan_placement(&arch, &staged, &with_cfg).unwrap(), &cfg)
                .unwrap()
                .analyze(&arch)
                .unwrap();
        let a_without =
            schedule(&arch, &staged, &plan_placement(&arch, &staged, &without_cfg).unwrap(), &cfg)
                .unwrap()
                .analyze(&arch)
                .unwrap();
        assert!(
            a_with.n_tran < a_without.n_tran,
            "reuse transfers {} !< no-reuse {}",
            a_with.n_tran,
            a_without.n_tran
        );
    }

    #[test]
    fn multiple_aods_never_slow_things_down() {
        let arch = Architecture::reference();
        let circ = bench_circuits::ising(16);
        let d1 = compile(&circ, &arch, 1).total_duration_us();
        let d2 = compile(&circ, &arch, 2).total_duration_us();
        let d4 = compile(&circ, &arch, 4).total_duration_us();
        assert!(d2 <= d1 + 1e-6, "2 AODs {d2} vs 1 AOD {d1}");
        assert!(d4 <= d2 + 1e-6, "4 AODs {d4} vs 2 AODs {d2}");
    }

    #[test]
    fn two_aods_help_parallel_circuits() {
        let arch = Architecture::reference();
        let circ = bench_circuits::ising(24);
        let d1 = compile(&circ, &arch, 1).total_duration_us();
        let d2 = compile(&circ, &arch, 2).total_duration_us();
        assert!(d2 < d1, "expected speedup: 1 AOD {d1}, 2 AODs {d2}");
    }

    #[test]
    fn programs_validate_on_multi_zone_arch() {
        let arch = Architecture::arch2_two_zones();
        let p = compile(&bench_circuits::ising(20), &arch, 1);
        let a = p.analyze(&arch).unwrap();
        assert_eq!(a.n_exc, 0);
        assert_eq!(a.g2, preprocess(&bench_circuits::ising(20)).num_2q_gates());
    }

    #[test]
    fn instructions_are_time_consistent() {
        let arch = Architecture::reference().with_num_aods(2);
        let p = compile(&bench_circuits::qft(6), &arch, 2);
        for inst in &p.instructions {
            assert!(inst.end_time() >= inst.begin_time());
        }
        let a = p.analyze(&arch).unwrap();
        for (q, busy) in a.busy_us.iter().enumerate() {
            assert!(
                *busy <= a.total_duration_us + 1e-6,
                "qubit {q} busy {busy} > total {}",
                a.total_duration_us
            );
        }
    }

    #[test]
    fn suite_smoke_all_programs_valid() {
        let arch = Architecture::reference();
        for circ in
            [bench_circuits::bv(14, 13), bench_circuits::wstate(10), bench_circuits::swap_test(9)]
        {
            let p = compile(&circ, &arch, 1);
            let a = p.analyze(&arch).unwrap();
            assert_eq!(a.n_exc, 0, "{}", circ.name());
            assert!(a.g2 > 0);
        }
    }

    #[test]
    fn storage_swap_cycle_resolved_by_detour() {
        // Handcraft a plan where two idle qubits exchange storage traps in
        // one transition — a cyclic trap hand-off the emission loop must
        // break with a detour through a free trap.
        use zac_arch::SiteId;
        use zac_circuit::Gate2;
        use zac_place::{PlacementPlan, StagePlan};

        let arch = Architecture::reference();
        let mut c = Circuit::new("cycle", 4);
        c.cz(0, 1).cz(0, 1);
        let staged = preprocess(&c);

        let s = |col: usize| Loc::Storage { zone: 0, row: 99, col };
        let w = |slot: usize| Loc::Site { zone: 0, row: 0, col: 0, slot };
        let site = SiteId::new(0, 0, 0);
        let g0 = Gate2 { id: 0, a: 0, b: 1 };
        let g1 = Gate2 { id: 1, a: 0, b: 1 };
        let plan = PlacementPlan {
            initial: vec![s(0), s(1), s(2), s(3)],
            stages: vec![
                StagePlan {
                    gate_sites: vec![(g0, site)],
                    pre_returns: None,
                    during: vec![w(0), w(1), s(2), s(3)],
                    used_reuse: false,
                    reused_qubits: 0,
                },
                StagePlan {
                    gate_sites: vec![(g1, site)],
                    pre_returns: None,
                    // q2 and q3 swap traps: a 2-cycle.
                    during: vec![w(0), w(1), s(3), s(2)],
                    used_reuse: true,
                    reused_qubits: 2,
                },
            ],
        };
        let program = schedule(&arch, &staged, &plan, &ScheduleConfig::default()).unwrap();
        let analysis = program.analyze(&arch).unwrap();
        // The detour adds one extra trip: 2 fetches + swap (2 moves + detour).
        assert!(analysis.num_jobs >= 3, "jobs {}", analysis.num_jobs);
        program.verify_against(&arch, &staged).unwrap();
    }

    #[test]
    fn round_trip_plans_schedule_correctly() {
        // A no-reuse plan (pre_returns set) must produce the storage round
        // trip: more transfers than the reuse plan on the same circuit.
        let arch = Architecture::reference();
        let staged = preprocess(&bench_circuits::ghz(10));
        let cfg = ScheduleConfig::default();
        let reuse_plan = plan_placement(&arch, &staged, &quick_cfg()).unwrap();
        let mut no_reuse = quick_cfg();
        no_reuse.reuse = false;
        let plain_plan = plan_placement(&arch, &staged, &no_reuse).unwrap();
        assert!(plain_plan.stages.iter().skip(1).any(|s| s.pre_returns.is_some()));
        let a_reuse = schedule(&arch, &staged, &reuse_plan, &cfg).unwrap().analyze(&arch).unwrap();
        let a_plain = schedule(&arch, &staged, &plain_plan, &cfg).unwrap().analyze(&arch).unwrap();
        assert!(a_plain.n_tran > a_reuse.n_tran);
        // Chain circuit: each stage round-trips both gate qubits (4 transfers
        // in + 4 out per stage boundary, roughly).
        assert!(a_plain.n_tran >= 4 * (staged.num_stages() - 1));
    }

    #[test]
    fn rydberg_never_fires_during_a_zone_drop() {
        let arch = Architecture::reference();
        let p = compile(&bench_circuits::ghz(6), &arch, 1);
        let rydbergs: Vec<(f64, f64)> = p
            .instructions
            .iter()
            .filter_map(|i| match i {
                Instruction::Rydberg { begin_time, end_time, .. } => Some((*begin_time, *end_time)),
                _ => None,
            })
            .collect();
        for job in p.jobs() {
            // Only drops into the entanglement zone matter.
            let drops_in_zone = job
                .moves()
                .any(|(_, e)| arch.slm_to_loc(e.slm_id, e.row, e.col).is_some_and(|l| l.is_site()));
            if !drops_in_zone {
                continue;
            }
            let drop_start = job.move_end();
            let drop_end = job.end_time;
            for (rb, re) in &rydbergs {
                assert!(
                    drop_end <= *rb + 1e-9 || drop_start >= *re - 1e-9,
                    "drop [{drop_start}, {drop_end}] overlaps exposure [{rb}, {re}]"
                );
            }
        }
    }

    /// Reusing one workspace across many compiles (and across architectures)
    /// is bit-identical to fresh workspaces.
    #[test]
    fn workspace_reuse_is_bit_identical() {
        let cfg = ScheduleConfig::default();
        let mut ws = ScheduleWorkspace::new();
        for arch in [Architecture::reference(), Architecture::arch2_two_zones()] {
            for circ in [bench_circuits::ghz(10), bench_circuits::ising(16), bench_circuits::qft(6)]
            {
                let staged = preprocess(&circ);
                let plan = plan_placement(&arch, &staged, &quick_cfg()).unwrap();
                let fresh = schedule(&arch, &staged, &plan, &cfg).unwrap();
                let reused = schedule_with_workspace(&arch, &staged, &plan, &cfg, &mut ws).unwrap();
                assert_eq!(fresh, reused, "{} on {}", staged.name, arch.name());
                assert_eq!(fresh.content_fingerprint(), reused.content_fingerprint());
            }
        }
    }

    #[test]
    fn plan_mismatch_reports_stage_counts() {
        let arch = Architecture::reference();
        let staged = preprocess(&bench_circuits::ghz(4)); // 3 stages
        let plan = PlacementPlan { initial: vec![], stages: vec![] };
        let err = schedule(&arch, &staged, &plan, &ScheduleConfig::default()).unwrap_err();
        match err {
            ScheduleError::PlanMismatch { plan_stages, circuit_stages } => {
                assert_eq!(plan_stages, 0);
                assert_eq!(circuit_stages, staged.stages.len());
            }
            other => panic!("expected PlanMismatch, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("0 stages"), "{msg}");
        assert!(msg.contains(&format!("{}", staged.stages.len())), "{msg}");
    }
}
