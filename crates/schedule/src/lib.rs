//! Load-balancing scheduling for multi-AOD architectures (paper Sec. VI).
//!
//! The scheduler turns a placement plan's per-stage location snapshots into a
//! timed ZAIR program:
//!
//! 1. **Job generation** — the qubit movements of each transition are split
//!    into rearrangement jobs: a conflict graph connects movements that
//!    violate the AOD order-preservation constraint, and maximal independent
//!    sets become jobs (Enola's strategy, which the paper adopts).
//! 2. **Dependencies** — *trap dependencies* allow a job to overlap the job
//!    vacating its target traps (the move phase only has to end after the
//!    vacating pickup ends, Fig. 7a); *qubit dependencies* forbid any overlap
//!    between instructions touching the same qubit (Fig. 7b).
//! 3. **Load balancing** — ready jobs are assigned longest-first to the
//!    earliest-available AOD (LPT), maximizing AOD utilization.
//!
//! Movement cycles (qubit A's target trap is held by B and vice versa) are
//! broken by detouring one qubit through a free storage trap.

use std::collections::HashMap;
use std::fmt;
use zac_arch::{Architecture, Loc};
use zac_circuit::{StagedCircuit, U3Op};
use zac_graph::mis::partition_into_independent_sets;
use zac_place::PlacementPlan;
use zac_zair::{
    build_job, moves_compatible, shift_job, Instruction, JobError, MoveSpec, Program, QubitLoc,
    RearrangeJob, U3Application,
};

/// Timing constants for scheduling (defaults match Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleConfig {
    /// Atom-transfer time (µs).
    pub t_tran_us: f64,
    /// Rydberg (CZ) exposure time (µs).
    pub t_ryd_us: f64,
    /// 1Q gate time (µs); gates in a group run sequentially.
    pub t_1q_us: f64,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        Self { t_tran_us: 15.0, t_ryd_us: 0.36, t_1q_us: 52.0 }
    }
}

/// Scheduling errors.
#[derive(Debug)]
pub enum ScheduleError {
    /// A rearrangement job could not be built.
    Job(JobError),
    /// No free storage trap was available for a cycle-breaking detour.
    NoDetourTrap,
    /// Plan and circuit disagree on stage count.
    PlanMismatch,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Job(e) => write!(f, "job construction failed: {e}"),
            Self::NoDetourTrap => write!(f, "no free storage trap for detour"),
            Self::PlanMismatch => write!(f, "placement plan does not match circuit"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<JobError> for ScheduleError {
    fn from(e: JobError) -> Self {
        Self::Job(e)
    }
}

/// Schedules a placement plan into a timed ZAIR [`Program`].
///
/// # Errors
///
/// Returns a [`ScheduleError`] if the plan is inconsistent with the circuit
/// or a job cannot be realized.
///
/// # Example
///
/// ```
/// use zac_arch::Architecture;
/// use zac_circuit::{bench_circuits, preprocess};
/// use zac_place::{plan_placement, PlacementConfig};
/// use zac_schedule::{schedule, ScheduleConfig};
///
/// let arch = Architecture::reference();
/// let staged = preprocess(&bench_circuits::ghz(6));
/// let plan = plan_placement(&arch, &staged, &PlacementConfig::default()).unwrap();
/// let program = schedule(&arch, &staged, &plan, &ScheduleConfig::default())?;
/// program.analyze(&arch).expect("scheduler emits valid ZAIR");
/// # Ok::<(), zac_schedule::ScheduleError>(())
/// ```
pub fn schedule(
    arch: &Architecture,
    staged: &StagedCircuit,
    plan: &PlacementPlan,
    cfg: &ScheduleConfig,
) -> Result<Program, ScheduleError> {
    if plan.stages.len() != staged.stages.len() {
        return Err(ScheduleError::PlanMismatch);
    }
    let n = staged.num_qubits;
    let num_aods = arch.aods().len();

    let mut program = Program::new(&staged.name, arch.name(), n);
    let qloc = |q: usize, loc: Loc| -> QubitLoc {
        let (slm, r, c) = arch.loc_to_slm(loc);
        QubitLoc::new(q, slm, r, c)
    };

    program
        .instructions
        .push(Instruction::Init { init_locs: (0..n).map(|q| qloc(q, plan.initial[q])).collect() });

    let mut current: Vec<Loc> = plan.initial.clone();
    let mut avail: Vec<f64> = vec![0.0; n];
    let mut aod_avail: Vec<f64> = vec![0.0; num_aods];
    let mut last_rydberg_end = 0.0f64;

    for (t, stage_plan) in plan.stages.iter().enumerate() {
        // ---- rearrangement jobs for this transition ----
        // Without reuse, the plan inserts a round trip: first return every
        // zone resident to storage, then fetch this stage's gate qubits.
        let mut legs: Vec<Vec<MoveSpec>> = Vec::new();
        let mut from = current.clone();
        if let Some(pre) = &stage_plan.pre_returns {
            legs.push(
                (0..n)
                    .filter(|&q| from[q] != pre[q])
                    .map(|q| MoveSpec::new(q, from[q], pre[q]))
                    .collect(),
            );
            from = pre.clone();
        }
        legs.push(
            (0..n)
                .filter(|&q| from[q] != stage_plan.during[q])
                .map(|q| MoveSpec::new(q, from[q], stage_plan.during[q]))
                .collect(),
        );
        let mut pending_jobs = Vec::new();
        for leg in legs {
            pending_jobs.extend(build_transition_jobs(arch, &leg, cfg)?);
        }

        let mut transition_end = last_rydberg_end;
        // Vacate time per trap: pick_end of the job that empties it.
        let mut vacated: HashMap<Loc, f64> = HashMap::new();
        // Trap occupancy for emission ordering (execute-when-free).
        let mut occupied: std::collections::HashSet<Loc> = current.iter().copied().collect();
        while !pending_jobs.is_empty() {
            // Ready = every qubit is actually at its claimed source (orders
            // the round-trip legs) and all target traps are free (own
            // sources excluded: the job picks everything up before dropping).
            let ready_idx: Vec<usize> = (0..pending_jobs.len())
                .filter(|&i| {
                    let p = &pending_jobs[i];
                    let sources: std::collections::HashSet<Loc> =
                        p.moves.iter().map(|m| m.from).collect();
                    p.moves.iter().all(|m| {
                        current[m.qubit] == m.from
                            && (!occupied.contains(&m.to) || sources.contains(&m.to))
                    })
                })
                .collect();
            if ready_idx.is_empty() {
                // Deadlock: split a multi-move job, or detour a single move
                // through a free storage trap. Only source-consistent jobs
                // (qubits actually at their claimed origins) participate.
                resolve_deadlock(arch, &occupied, &current, &mut pending_jobs, cfg)?;
                continue;
            }
            // LPT: among ready jobs take the longest, assign the earliest
            // available AOD.
            let &i = ready_idx
                .iter()
                .max_by(|&&a, &&b| {
                    pending_jobs[a].spec_duration.total_cmp(&pending_jobs[b].spec_duration)
                })
                .expect("nonempty ready set");
            let pending = pending_jobs.swap_remove(i);
            let (aod_id, _) = aod_avail
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("at least one AOD");
            let mut job = pending.job;
            job.aod_id = aod_id;

            // Qubit dependencies: no overlap with anything touching these
            // qubits (Fig. 7b).
            let mut begin = aod_avail[aod_id];
            for m in &pending.moves {
                begin = begin.max(avail[m.qubit]);
            }
            // Trap dependencies: our transport must end after the pickup
            // that vacates each target trap (overlap allowed, Fig. 7a).
            let pick_move = job.pick_duration + job.move_duration;
            for m in &pending.moves {
                if let Some(&vac) = vacated.get(&m.to) {
                    begin = begin.max(vac - pick_move);
                }
                // Entering an entanglement zone: the drop must come after
                // the previous exposure has ended.
                if m.to.is_site() {
                    begin = begin.max(last_rydberg_end - pick_move);
                }
            }
            begin = begin.max(0.0);
            shift_job(&mut job, begin);
            for m in &pending.moves {
                vacated.insert(m.from, job.pick_end());
                avail[m.qubit] = job.end_time;
                current[m.qubit] = m.to;
                occupied.remove(&m.from);
            }
            for m in &pending.moves {
                occupied.insert(m.to);
            }
            aod_avail[aod_id] = job.end_time;
            transition_end = transition_end.max(job.end_time);
            program.instructions.push(Instruction::RearrangeJob(job));
        }

        // ---- 1Q gates preceding this stage's exposure ----
        let one_q_end = emit_one_q_group(
            &mut program,
            &staged.stages[t].pre_1q,
            &current,
            &mut avail,
            cfg,
            &qloc,
        );
        transition_end = transition_end.max(one_q_end);

        // ---- Rydberg exposure ----
        let mut ryd_begin = transition_end;
        for g in &staged.stages[t].gates {
            ryd_begin = ryd_begin.max(avail[g.a]).max(avail[g.b]);
        }
        let ryd_end = ryd_begin + cfg.t_ryd_us;
        let mut zones: Vec<usize> = stage_plan.gate_sites.iter().map(|(_, s)| s.zone).collect();
        zones.sort_unstable();
        zones.dedup();
        for zone_id in zones {
            program.instructions.push(Instruction::Rydberg {
                zone_id,
                begin_time: ryd_begin,
                end_time: ryd_end,
            });
        }
        for g in &staged.stages[t].gates {
            avail[g.a] = ryd_end;
            avail[g.b] = ryd_end;
        }
        last_rydberg_end = ryd_end;
    }

    // Trailing 1Q gates.
    emit_one_q_group(&mut program, &staged.trailing_1q, &current, &mut avail, cfg, &qloc);

    Ok(program)
}

/// Emits one sequential 1Q-gate group; returns its end time (or 0 if empty).
fn emit_one_q_group(
    program: &mut Program,
    ops: &[U3Op],
    current: &[Loc],
    avail: &mut [f64],
    cfg: &ScheduleConfig,
    qloc: &impl Fn(usize, Loc) -> QubitLoc,
) -> f64 {
    if ops.is_empty() {
        return 0.0;
    }
    let begin = ops.iter().map(|op| avail[op.qubit]).fold(0.0, f64::max);
    let end = begin + cfg.t_1q_us * ops.len() as f64;
    for op in ops {
        avail[op.qubit] = end;
    }
    program.instructions.push(Instruction::OneQGate {
        gates: ops
            .iter()
            .map(|op| U3Application {
                theta: op.theta,
                phi: op.phi,
                lambda: op.lambda,
                loc: qloc(op.qubit, current[op.qubit]),
            })
            .collect(),
        begin_time: begin,
        end_time: end,
    });
    end
}

/// A job plus the moves it realizes (kept for dependency bookkeeping).
struct PendingJob {
    job: RearrangeJob,
    moves: Vec<MoveSpec>,
    spec_duration: f64,
}

/// Splits a transition's moves into AOD-compatible jobs: returns to storage
/// and fetches into zones are bundled separately (the paper's sequential
/// grouping); within each phase, maximal independent sets of the movement
/// conflict graph become jobs.
fn build_transition_jobs(
    arch: &Architecture,
    moves: &[MoveSpec],
    cfg: &ScheduleConfig,
) -> Result<Vec<PendingJob>, ScheduleError> {
    if moves.is_empty() {
        return Ok(Vec::new());
    }
    let (returns, fetches): (Vec<MoveSpec>, Vec<MoveSpec>) =
        moves.iter().partition(|m| m.to.is_storage());

    let mut jobs: Vec<PendingJob> = Vec::new();
    for phase in [returns, fetches] {
        if phase.is_empty() {
            continue;
        }
        // Conflict graph: edge when two moves cannot share one AOD.
        let adj: Vec<Vec<usize>> = (0..phase.len())
            .map(|i| {
                (0..phase.len())
                    .filter(|&j| j != i && !moves_compatible(arch, &phase[i], &phase[j]))
                    .collect()
            })
            .collect();
        let sets = partition_into_independent_sets(&adj);
        for set in sets {
            let bundle: Vec<MoveSpec> = set.iter().map(|&i| phase[i]).collect();
            jobs.push(make_pending(arch, bundle, cfg)?);
        }
    }
    Ok(jobs)
}

fn make_pending(
    arch: &Architecture,
    bundle: Vec<MoveSpec>,
    cfg: &ScheduleConfig,
) -> Result<PendingJob, ScheduleError> {
    let job = build_job(arch, &bundle, cfg.t_tran_us)?;
    let spec_duration = job.end_time - job.begin_time;
    Ok(PendingJob { job, moves: bundle, spec_duration })
}

/// Resolves an emission deadlock: no pending job has all targets free.
///
/// Multi-move jobs are dissolved into single-move jobs; a deadlocked single
/// move is detoured through a free storage trap (two jobs), which always
/// makes progress because storage is far larger than the moving set.
fn resolve_deadlock(
    arch: &Architecture,
    occupied: &std::collections::HashSet<Loc>,
    current: &[Loc],
    pending: &mut Vec<PendingJob>,
    cfg: &ScheduleConfig,
) -> Result<(), ScheduleError> {
    let source_consistent =
        |p: &PendingJob| -> bool { p.moves.iter().all(|m| current[m.qubit] == m.from) };
    // Prefer dissolving a blocked multi-move job.
    if let Some(i) = pending.iter().position(|p| p.moves.len() > 1 && source_consistent(p)) {
        let dissolved = pending.swap_remove(i);
        for m in dissolved.moves {
            pending.push(make_pending(arch, vec![m], cfg)?);
        }
        return Ok(());
    }
    // All singles: detour the first occupancy-blocked, source-consistent one.
    let i = pending
        .iter()
        .position(|p| source_consistent(p) && p.moves.iter().any(|m| occupied.contains(&m.to)))
        .expect("deadlock implies a blocked source-consistent job");
    let blocked = pending.swap_remove(i);
    let m = blocked.moves[0];
    let temp = free_storage_trap(arch, occupied, pending).ok_or(ScheduleError::NoDetourTrap)?;
    pending.push(make_pending(arch, vec![MoveSpec::new(m.qubit, m.from, temp)], cfg)?);
    pending.push(make_pending(arch, vec![MoveSpec::new(m.qubit, temp, m.to)], cfg)?);
    Ok(())
}

/// Finds a storage trap neither occupied nor used as a pending endpoint.
fn free_storage_trap(
    arch: &Architecture,
    occupied: &std::collections::HashSet<Loc>,
    pending: &[PendingJob],
) -> Option<Loc> {
    let mut used: std::collections::HashSet<Loc> = occupied.clone();
    for p in pending {
        for m in &p.moves {
            used.insert(m.from);
            used.insert(m.to);
        }
    }
    for z in 0..arch.storage_zones().len() {
        let (rows, cols) = arch.storage_grid(z);
        for row in 0..rows {
            for col in 0..cols {
                let trap = Loc::Storage { zone: z, row, col };
                if !used.contains(&trap) {
                    return Some(trap);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use zac_circuit::{bench_circuits, preprocess, Circuit};
    use zac_place::{plan_placement, PlacementConfig};

    fn quick_cfg() -> PlacementConfig {
        PlacementConfig { sa_iterations: 200, ..PlacementConfig::default() }
    }

    fn compile(circ: &Circuit, arch: &Architecture, aods: usize) -> Program {
        let arch = arch.clone().with_num_aods(aods);
        let staged = preprocess(circ);
        let plan = plan_placement(&arch, &staged, &quick_cfg()).unwrap();
        schedule(&arch, &staged, &plan, &ScheduleConfig::default()).unwrap()
    }

    #[test]
    fn ghz_schedule_is_valid_zair() {
        let arch = Architecture::reference();
        let p = compile(&bench_circuits::ghz(8), &arch, 1);
        let a = p.analyze(&arch).unwrap();
        assert_eq!(a.g2, 7);
        assert_eq!(a.n_exc, 0, "ZAC never leaves idle qubits in the zone");
        assert_eq!(a.num_rydberg_stages, 7);
        assert!(a.total_duration_us > 0.0);
    }

    #[test]
    fn one_q_gates_are_scheduled() {
        let arch = Architecture::reference();
        let p = compile(&bench_circuits::bv(6, 5), &arch, 1);
        let a = p.analyze(&arch).unwrap();
        let staged = preprocess(&bench_circuits::bv(6, 5));
        assert_eq!(a.g1, staged.num_1q_gates());
        assert_eq!(a.g2, staged.num_2q_gates());
    }

    #[test]
    fn reuse_cuts_transfers_on_chain_circuits() {
        let arch = Architecture::reference();
        let staged = preprocess(&bench_circuits::ghz(12));
        let with_cfg = quick_cfg();
        let without_cfg = PlacementConfig { reuse: false, ..quick_cfg() };
        let cfg = ScheduleConfig::default();
        let a_with =
            schedule(&arch, &staged, &plan_placement(&arch, &staged, &with_cfg).unwrap(), &cfg)
                .unwrap()
                .analyze(&arch)
                .unwrap();
        let a_without =
            schedule(&arch, &staged, &plan_placement(&arch, &staged, &without_cfg).unwrap(), &cfg)
                .unwrap()
                .analyze(&arch)
                .unwrap();
        assert!(
            a_with.n_tran < a_without.n_tran,
            "reuse transfers {} !< no-reuse {}",
            a_with.n_tran,
            a_without.n_tran
        );
    }

    #[test]
    fn multiple_aods_never_slow_things_down() {
        let arch = Architecture::reference();
        let circ = bench_circuits::ising(16);
        let d1 = compile(&circ, &arch, 1).total_duration_us();
        let d2 = compile(&circ, &arch, 2).total_duration_us();
        let d4 = compile(&circ, &arch, 4).total_duration_us();
        assert!(d2 <= d1 + 1e-6, "2 AODs {d2} vs 1 AOD {d1}");
        assert!(d4 <= d2 + 1e-6, "4 AODs {d4} vs 2 AODs {d2}");
    }

    #[test]
    fn two_aods_help_parallel_circuits() {
        let arch = Architecture::reference();
        let circ = bench_circuits::ising(24);
        let d1 = compile(&circ, &arch, 1).total_duration_us();
        let d2 = compile(&circ, &arch, 2).total_duration_us();
        assert!(d2 < d1, "expected speedup: 1 AOD {d1}, 2 AODs {d2}");
    }

    #[test]
    fn programs_validate_on_multi_zone_arch() {
        let arch = Architecture::arch2_two_zones();
        let p = compile(&bench_circuits::ising(20), &arch, 1);
        let a = p.analyze(&arch).unwrap();
        assert_eq!(a.n_exc, 0);
        assert_eq!(a.g2, preprocess(&bench_circuits::ising(20)).num_2q_gates());
    }

    #[test]
    fn instructions_are_time_consistent() {
        let arch = Architecture::reference().with_num_aods(2);
        let p = compile(&bench_circuits::qft(6), &arch, 2);
        for inst in &p.instructions {
            assert!(inst.end_time() >= inst.begin_time());
        }
        let a = p.analyze(&arch).unwrap();
        for (q, busy) in a.busy_us.iter().enumerate() {
            assert!(
                *busy <= a.total_duration_us + 1e-6,
                "qubit {q} busy {busy} > total {}",
                a.total_duration_us
            );
        }
    }

    #[test]
    fn suite_smoke_all_programs_valid() {
        let arch = Architecture::reference();
        for circ in
            [bench_circuits::bv(14, 13), bench_circuits::wstate(10), bench_circuits::swap_test(9)]
        {
            let p = compile(&circ, &arch, 1);
            let a = p.analyze(&arch).unwrap();
            assert_eq!(a.n_exc, 0, "{}", circ.name());
            assert!(a.g2 > 0);
        }
    }

    #[test]
    fn storage_swap_cycle_resolved_by_detour() {
        // Handcraft a plan where two idle qubits exchange storage traps in
        // one transition — a cyclic trap hand-off the emission loop must
        // break with a detour through a free trap.
        use zac_arch::SiteId;
        use zac_circuit::Gate2;
        use zac_place::{PlacementPlan, StagePlan};

        let arch = Architecture::reference();
        let mut c = Circuit::new("cycle", 4);
        c.cz(0, 1).cz(0, 1);
        let staged = preprocess(&c);

        let s = |col: usize| Loc::Storage { zone: 0, row: 99, col };
        let w = |slot: usize| Loc::Site { zone: 0, row: 0, col: 0, slot };
        let site = SiteId::new(0, 0, 0);
        let g0 = Gate2 { id: 0, a: 0, b: 1 };
        let g1 = Gate2 { id: 1, a: 0, b: 1 };
        let plan = PlacementPlan {
            initial: vec![s(0), s(1), s(2), s(3)],
            stages: vec![
                StagePlan {
                    gate_sites: vec![(g0, site)],
                    pre_returns: None,
                    during: vec![w(0), w(1), s(2), s(3)],
                    used_reuse: false,
                    reused_qubits: 0,
                },
                StagePlan {
                    gate_sites: vec![(g1, site)],
                    pre_returns: None,
                    // q2 and q3 swap traps: a 2-cycle.
                    during: vec![w(0), w(1), s(3), s(2)],
                    used_reuse: true,
                    reused_qubits: 2,
                },
            ],
        };
        let program = schedule(&arch, &staged, &plan, &ScheduleConfig::default()).unwrap();
        let analysis = program.analyze(&arch).unwrap();
        // The detour adds one extra trip: 2 fetches + swap (2 moves + detour).
        assert!(analysis.num_jobs >= 3, "jobs {}", analysis.num_jobs);
        program.verify_against(&arch, &staged).unwrap();
    }

    #[test]
    fn round_trip_plans_schedule_correctly() {
        // A no-reuse plan (pre_returns set) must produce the storage round
        // trip: more transfers than the reuse plan on the same circuit.
        let arch = Architecture::reference();
        let staged = preprocess(&bench_circuits::ghz(10));
        let cfg = ScheduleConfig::default();
        let reuse_plan = plan_placement(&arch, &staged, &quick_cfg()).unwrap();
        let mut no_reuse = quick_cfg();
        no_reuse.reuse = false;
        let plain_plan = plan_placement(&arch, &staged, &no_reuse).unwrap();
        assert!(plain_plan.stages.iter().skip(1).any(|s| s.pre_returns.is_some()));
        let a_reuse = schedule(&arch, &staged, &reuse_plan, &cfg).unwrap().analyze(&arch).unwrap();
        let a_plain = schedule(&arch, &staged, &plain_plan, &cfg).unwrap().analyze(&arch).unwrap();
        assert!(a_plain.n_tran > a_reuse.n_tran);
        // Chain circuit: each stage round-trips both gate qubits (4 transfers
        // in + 4 out per stage boundary, roughly).
        assert!(a_plain.n_tran >= 4 * (staged.num_stages() - 1));
    }

    #[test]
    fn rydberg_never_fires_during_a_zone_drop() {
        let arch = Architecture::reference();
        let p = compile(&bench_circuits::ghz(6), &arch, 1);
        let rydbergs: Vec<(f64, f64)> = p
            .instructions
            .iter()
            .filter_map(|i| match i {
                Instruction::Rydberg { begin_time, end_time, .. } => Some((*begin_time, *end_time)),
                _ => None,
            })
            .collect();
        for job in p.jobs() {
            // Only drops into the entanglement zone matter.
            let drops_in_zone = job
                .moves()
                .any(|(_, e)| arch.slm_to_loc(e.slm_id, e.row, e.col).is_some_and(|l| l.is_site()));
            if !drops_in_zone {
                continue;
            }
            let drop_start = job.move_end();
            let drop_end = job.end_time;
            for (rb, re) in &rydbergs {
                assert!(
                    drop_end <= *rb + 1e-9 || drop_start >= *re - 1e-9,
                    "drop [{drop_start}, {drop_end}] overlaps exposure [{rb}, {re}]"
                );
            }
        }
    }
}
