//! Transition-leg splitting, movement conflict graphs and MIS bundling —
//! the job-construction stage of the scheduler (paper Sec. VI).
//!
//! A transition's qubit movements are split into legs (the non-reuse round
//! trip first returns every zone resident to storage), each leg into two
//! sequential phases (returns to storage, fetches into zones — the paper's
//! grouping), and each phase into AOD-compatible bundles: maximal
//! independent sets of the movement conflict graph, exactly as Enola does.
//!
//! The conflict graph is built with a **sorted coordinate-rank sweep**
//! instead of the old `O(m²)` pairwise [`moves_compatible`] probes: each
//! phase's begin/end x/y coordinates are sorted once and collapsed to dense
//! integer ranks (ε-equal coordinates share a rank), after which a pair
//! conflicts iff its begin-rank ordering differs from its end-rank ordering
//! on either axis — two integer comparisons per pair instead of four
//! position resolutions plus float ε-logic, with the edge set provably
//! unchanged (locked by the unit test below and the bit-identity suite).
//!
//! Jobs are *planned*, not materialized: a [`PendingJob`] carries the moves
//! plus the [`zac_zair::JobTiming`] the emission loop needs for LPT ordering
//! and trap dependencies; the full [`zac_zair::RearrangeJob`] (machine-level
//! expansion included) is built only when the job is actually emitted. All
//! buffers — including the `PendingJob` shells themselves — come from the
//! [`ScheduleWorkspace`], so steady-state job construction is
//! allocation-free (`tests/alloc_free.rs`).
//!
//! [`moves_compatible`]: zac_zair::moves_compatible

use crate::workspace::ScheduleWorkspace;
use crate::{ScheduleConfig, ScheduleError};
use zac_arch::{Architecture, Loc};
use zac_place::StagePlan;
use zac_zair::machine::POS_EPS;
use zac_zair::MoveSpec;

/// A planned rearrangement job awaiting emission.
#[derive(Debug, Default)]
pub struct PendingJob {
    /// The moves the job realizes, in bundle order.
    pub moves: Vec<MoveSpec>,
    /// Per-move: does the target trap double as one of this job's own
    /// sources? (The job picks everything up before dropping, so such
    /// targets never block readiness.) Precomputed once — the old emission
    /// loop rebuilt a `HashSet<Loc>` of sources per job per iteration.
    pub own_source: Vec<bool>,
    /// Flat trap index of every move's source.
    pub from_flat: Vec<u32>,
    /// Flat trap index of every move's target.
    pub to_flat: Vec<u32>,
    /// Total planned duration (LPT priority).
    pub spec_duration: f64,
    /// Pickup + transport duration (trap-dependency resolution, Fig. 7a).
    pub pick_move: f64,
}

impl PendingJob {
    /// Clears the buffers for reuse from the pool.
    pub(crate) fn recycle(&mut self) {
        self.moves.clear();
        self.own_source.clear();
        self.from_flat.clear();
        self.to_flat.clear();
        self.spec_duration = 0.0;
        self.pick_move = 0.0;
    }

    /// Every moved qubit still sits at its claimed origin.
    pub(crate) fn source_consistent(&self, current: &[Loc]) -> bool {
        self.moves.iter().all(|m| current[m.qubit] == m.from)
    }
}

/// Builds all pending jobs of one transition from the plan's location
/// snapshots: the optional pre-return leg, then the fetch leg, appended to
/// `ws.pending` in emission-candidate order.
///
/// # Errors
///
/// [`ScheduleError::Job`] if a bundle cannot be realized as a job.
pub fn build_transition_pending(
    arch: &Architecture,
    cfg: &ScheduleConfig,
    ws: &mut ScheduleWorkspace,
    stage_plan: &StagePlan,
) -> Result<(), ScheduleError> {
    let n = ws.current.len();
    // Without reuse, the plan inserts a round trip: first return every zone
    // resident to storage, then fetch this stage's gate qubits.
    ws.from_snapshot.clear();
    ws.from_snapshot.extend_from_slice(&ws.current);
    if let Some(pre) = &stage_plan.pre_returns {
        ws.leg.clear();
        for (q, &to) in pre.iter().enumerate().take(n) {
            if ws.from_snapshot[q] != to {
                ws.leg.push(MoveSpec::new(q, ws.from_snapshot[q], to));
            }
        }
        build_leg_jobs(arch, cfg, ws)?;
        ws.from_snapshot.clear();
        ws.from_snapshot.extend_from_slice(pre);
    }
    ws.leg.clear();
    for (q, &to) in stage_plan.during.iter().enumerate().take(n) {
        if ws.from_snapshot[q] != to {
            ws.leg.push(MoveSpec::new(q, ws.from_snapshot[q], to));
        }
    }
    build_leg_jobs(arch, cfg, ws)
}

/// Splits one leg (`ws.leg`) into pending jobs: the returns-then-fetches
/// phase split, a conflict graph per phase, and one job per MIS.
fn build_leg_jobs(
    arch: &Architecture,
    cfg: &ScheduleConfig,
    ws: &mut ScheduleWorkspace,
) -> Result<(), ScheduleError> {
    if ws.leg.is_empty() {
        return Ok(());
    }
    // Returns to storage and fetches into zones are bundled separately (the
    // paper's sequential grouping), preserving leg order within each phase.
    let [returns, fetches] = &mut ws.phase_moves;
    returns.clear();
    fetches.clear();
    for &m in &ws.leg {
        if m.to.is_storage() {
            returns.push(m);
        } else {
            fetches.push(m);
        }
    }

    for phase_idx in 0..2 {
        if ws.phase_moves[phase_idx].is_empty() {
            continue;
        }
        let m = ws.phase_moves[phase_idx].len();

        // --- sorted coordinate-rank sweep ---
        compute_phase_ranks(arch, &ws.phase_moves[phase_idx], &mut ws.rank_keys, &mut ws.ranks);

        // --- conflict edges from integer rank comparisons ---
        ws.mis.reset(m);
        for i in 0..m {
            for j in (i + 1)..m {
                if !ranks_compatible(&ws.ranks, i, j) {
                    ws.mis.add_edge(i, j);
                }
            }
        }

        // --- one job per maximal independent set ---
        let rounds = ws.mis.partition_into(&mut ws.mis_sets);
        for set_idx in 0..rounds {
            let mut job = ws.job_pool.pop().unwrap_or_default();
            job.recycle();
            for &mi in &ws.mis_sets[set_idx] {
                job.moves.push(ws.phase_moves[phase_idx][mi]);
            }
            let geo = ws.geo.as_mut().expect("workspace prepared");
            match plan_pending(arch, cfg, &mut ws.builder, geo, &mut job) {
                Ok(()) => ws.pending.push(job),
                Err(e) => {
                    job.recycle();
                    ws.job_pool.push(job);
                    return Err(e);
                }
            }
        }
    }
    Ok(())
}

/// Ranks the four coordinate roles (begin-x, begin-y, end-x, end-y) of one
/// phase's moves independently: values are sorted once and ε-equal
/// coordinates (the same physical AOD row/column) collapse to one dense
/// integer rank. `ranks` receives `[bx, by, ex, ey]`, indexed by move.
pub(crate) fn compute_phase_ranks(
    arch: &Architecture,
    phase: &[MoveSpec],
    rank_keys: &mut Vec<(f64, u32)>,
    ranks: &mut [Vec<u32>; 4],
) {
    let m = phase.len();
    for (role, out) in ranks.iter_mut().enumerate() {
        rank_keys.clear();
        for (i, mv) in phase.iter().enumerate() {
            let p = if role < 2 { arch.position(mv.from) } else { arch.position(mv.to) };
            let v = if role % 2 == 0 { p.x } else { p.y };
            rank_keys.push((v, i as u32));
        }
        rank_keys.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out.clear();
        out.resize(m, 0);
        let mut rank = 0u32;
        let mut cluster_rep = f64::NAN;
        for &(v, i) in rank_keys.iter() {
            if cluster_rep.is_nan() || (v - cluster_rep).abs() >= POS_EPS {
                if !cluster_rep.is_nan() {
                    rank += 1;
                }
                cluster_rep = v;
            }
            out[i as usize] = rank;
        }
    }
}

/// Rank-space compatibility: begin ordering matches end ordering on both
/// axes — the integer form of [`zac_zair::moves_compatible`]'s ε-probe
/// (trap grids separate distinct coordinates by far more than ε, so rank
/// equality is exactly ε-equality).
#[inline]
pub(crate) fn ranks_compatible(ranks: &[Vec<u32>; 4], i: usize, j: usize) -> bool {
    let [bx, by, ex, ey] = ranks;
    bx[i].cmp(&bx[j]) == ex[i].cmp(&ex[j]) && by[i].cmp(&by[j]) == ey[i].cmp(&ey[j])
}

/// Plans `job` (timing + dependency tables) from its `moves`. Takes the
/// workspace parts it needs individually, so the emission loop — which
/// holds field borrows across the whole workspace — can call it too.
pub(crate) fn plan_pending(
    arch: &Architecture,
    cfg: &ScheduleConfig,
    builder: &mut zac_zair::JobBuilder,
    geo: &mut crate::workspace::GeoTables,
    job: &mut PendingJob,
) -> Result<(), ScheduleError> {
    let timing = builder.plan(arch, &job.moves, cfg.t_tran_us)?;
    job.spec_duration = timing.total();
    job.pick_move = timing.pick_duration + timing.move_duration;
    geo.sources.clear();
    job.from_flat.clear();
    job.to_flat.clear();
    for m in &job.moves {
        let f = geo.index.flat(m.from);
        job.from_flat.push(f as u32);
        geo.sources.insert(f);
    }
    job.own_source.clear();
    for m in &job.moves {
        let t = geo.index.flat(m.to);
        job.to_flat.push(t as u32);
        job.own_source.push(geo.sources.contains(t));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use zac_zair::moves_compatible;

    /// Exhaustive rank-vs-probe agreement over a dense family of realistic
    /// move sets: every storage/site endpoint mix, shared rows and columns,
    /// and order inversions on both axes.
    #[test]
    fn rank_sweep_matches_pairwise_probes() {
        let arch = Architecture::reference();
        let s = |row: usize, col: usize| Loc::Storage { zone: 0, row, col };
        let w = |row: usize, col: usize, slot: usize| Loc::Site { zone: 0, row, col, slot };
        let move_sets: Vec<Vec<MoveSpec>> = vec![
            vec![
                MoveSpec::new(0, s(99, 0), w(0, 0, 0)),
                MoveSpec::new(1, s(99, 5), w(0, 1, 0)),
                MoveSpec::new(2, s(99, 9), w(0, 0, 1)), // x inversion vs 1
                MoveSpec::new(3, s(98, 0), w(1, 0, 0)),
                MoveSpec::new(4, s(98, 4), w(0, 3, 0)), // y inversion vs 3
                MoveSpec::new(5, s(97, 7), w(2, 2, 1)),
            ],
            vec![
                MoveSpec::new(0, w(0, 0, 0), s(99, 0)),
                MoveSpec::new(1, w(0, 0, 1), s(99, 40)), // same site, far column
                MoveSpec::new(2, w(1, 2, 0), s(98, 2)),
                MoveSpec::new(3, w(3, 1, 1), s(99, 1)),
                MoveSpec::new(4, s(97, 2), s(96, 2)), // same-column vertical
                MoveSpec::new(5, s(97, 8), s(97, 20)), // same-row horizontal
            ],
            // Same begin column diverging (incompatible) and converging ends.
            vec![
                MoveSpec::new(0, s(99, 4), w(0, 0, 0)),
                MoveSpec::new(1, s(98, 4), w(1, 1, 0)),
                MoveSpec::new(2, s(97, 4), w(2, 1, 1)),
            ],
        ];
        let mut keys = Vec::new();
        let mut ranks: [Vec<u32>; 4] = Default::default();
        for (si, moves) in move_sets.iter().enumerate() {
            compute_phase_ranks(&arch, moves, &mut keys, &mut ranks);
            for i in 0..moves.len() {
                for j in 0..moves.len() {
                    if i == j {
                        continue;
                    }
                    assert_eq!(
                        moves_compatible(&arch, &moves[i], &moves[j]),
                        ranks_compatible(&ranks, i, j),
                        "set {si}, pair ({i}, {j})"
                    );
                }
            }
        }
    }

    /// The bundles the sweep + MIS produce are mutually compatible move
    /// sets that exactly cover the leg.
    #[test]
    fn bundles_cover_leg_with_compatible_moves() {
        let arch = Architecture::reference();
        let cfg = ScheduleConfig::default();
        let s = |row: usize, col: usize| Loc::Storage { zone: 0, row, col };
        let w = |row: usize, col: usize, slot: usize| Loc::Site { zone: 0, row, col, slot };
        let moves = vec![
            MoveSpec::new(0, s(99, 0), w(0, 0, 0)),
            MoveSpec::new(1, s(99, 5), w(0, 1, 0)),
            MoveSpec::new(2, s(99, 9), w(0, 0, 1)),
            MoveSpec::new(3, s(98, 0), w(1, 0, 0)),
            MoveSpec::new(4, s(98, 4), w(0, 3, 0)),
            MoveSpec::new(5, w(3, 3, 0), s(97, 7)),
        ];
        let mut ws = ScheduleWorkspace::new();
        let initial: Vec<Loc> = (0..6).map(|q| s(90, q)).collect();
        ws.prepare(&arch, &initial, 1);
        ws.leg.clear();
        ws.leg.extend_from_slice(&moves);
        build_leg_jobs(&arch, &cfg, &mut ws).unwrap();

        let mut covered = 0;
        for p in &ws.pending {
            covered += p.moves.len();
            for i in 0..p.moves.len() {
                for j in (i + 1)..p.moves.len() {
                    assert!(
                        moves_compatible(&arch, &p.moves[i], &p.moves[j]),
                        "bundle pair must be compatible"
                    );
                }
            }
            assert!(p.spec_duration > 0.0);
            assert_eq!(p.moves.len(), p.own_source.len());
        }
        assert_eq!(covered, moves.len());
        // Returns (move 5) bundle separately from fetches.
        assert!(ws.pending.iter().any(|p| p.moves.iter().all(|m| m.to.is_storage())));
    }
}
