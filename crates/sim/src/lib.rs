//! Dense state-vector simulator.
//!
//! The paper relies on Qiskit to resynthesize circuits into the {CZ, U3}
//! hardware gate set; this workspace implements that preprocessing itself
//! (`zac-circuit`), and this crate provides the verification substrate: a
//! small dense simulator used by the test-suite to prove that preprocessing
//! preserves every circuit's unitary action up to global phase.
//!
//! Supports up to ~20 qubits comfortably (state is `2^n` complex amplitudes).
//!
//! # Example
//!
//! ```
//! use zac_circuit::Circuit;
//! use zac_sim::StateVector;
//!
//! let mut bell = Circuit::new("bell", 2);
//! bell.h(0).cx(0, 1);
//! let state = StateVector::run(&bell);
//! // |00> and |11> each with probability 1/2.
//! assert!((state.probability(0b00) - 0.5).abs() < 1e-12);
//! assert!((state.probability(0b11) - 0.5).abs() < 1e-12);
//! ```

use zac_circuit::complex::{Mat2, C64};
use zac_circuit::gate::{u3_matrix, Gate, TwoQKind};
use zac_circuit::stages::StagedCircuit;
use zac_circuit::Circuit;

/// A normalized quantum state over `n` qubits.
///
/// Qubit 0 is the least-significant bit of the basis-state index.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// The all-zeros computational basis state |0…0⟩.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > 26` (state would exceed memory limits).
    pub fn zero(num_qubits: usize) -> Self {
        assert!(num_qubits <= 26, "state vector too large ({num_qubits} qubits)");
        let mut amps = vec![C64::ZERO; 1 << num_qubits];
        amps[0] = C64::ONE;
        Self { num_qubits, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The amplitude of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n`.
    pub fn amplitude(&self, index: usize) -> C64 {
        self.amps[index]
    }

    /// The probability of measuring basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Applies a 2×2 unitary to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_1q(&mut self, u: Mat2, q: usize) {
        assert!(q < self.num_qubits, "qubit {q} out of range");
        let bit = 1usize << q;
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let j = i | bit;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = u.m[0][0] * a0 + u.m[0][1] * a1;
                self.amps[j] = u.m[1][0] * a0 + u.m[1][1] * a1;
            }
        }
    }

    /// Applies CZ to qubits `a`, `b`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or equal.
    pub fn apply_cz(&mut self, a: usize, b: usize) {
        assert!(a < self.num_qubits && b < self.num_qubits && a != b, "bad CZ operands");
        let mask = (1usize << a) | (1usize << b);
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if i & mask == mask {
                *amp = -*amp;
            }
        }
    }

    /// Applies CX with control `c` and target `t`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or equal.
    pub fn apply_cx(&mut self, c: usize, t: usize) {
        assert!(c < self.num_qubits && t < self.num_qubits && c != t, "bad CX operands");
        let cbit = 1usize << c;
        let tbit = 1usize << t;
        for i in 0..self.amps.len() {
            if i & cbit != 0 && i & tbit == 0 {
                let j = i | tbit;
                self.amps.swap(i, j);
            }
        }
    }

    /// Applies a full controlled-phase of angle `theta`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or equal.
    pub fn apply_cp(&mut self, theta: f64, a: usize, b: usize) {
        assert!(a < self.num_qubits && b < self.num_qubits && a != b, "bad CP operands");
        let mask = (1usize << a) | (1usize << b);
        let ph = C64::cis(theta);
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if i & mask == mask {
                *amp = *amp * ph;
            }
        }
    }

    /// Applies SWAP.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or equal.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        assert!(a < self.num_qubits && b < self.num_qubits && a != b, "bad SWAP operands");
        let abit = 1usize << a;
        let bbit = 1usize << b;
        for i in 0..self.amps.len() {
            if i & abit != 0 && i & bbit == 0 {
                let j = (i & !abit) | bbit;
                self.amps.swap(i, j);
            }
        }
    }

    /// Applies one input-language gate.
    pub fn apply_gate(&mut self, gate: &Gate) {
        match *gate {
            Gate::OneQ { gate, qubit } => self.apply_1q(gate.matrix(), qubit),
            Gate::TwoQ { kind, a, b } => match kind {
                TwoQKind::Cx => self.apply_cx(a, b),
                TwoQKind::Cz => self.apply_cz(a, b),
                TwoQKind::Cp(t) => self.apply_cp(t, a, b),
                TwoQKind::Swap => self.apply_swap(a, b),
            },
        }
    }

    /// Runs an input circuit from |0…0⟩.
    pub fn run(circuit: &Circuit) -> Self {
        let mut sv = Self::zero(circuit.num_qubits());
        for g in circuit.gates() {
            sv.apply_gate(g);
        }
        sv
    }

    /// Runs a preprocessed (staged) circuit from |0…0⟩.
    pub fn run_staged(staged: &StagedCircuit) -> Self {
        let mut sv = Self::zero(staged.num_qubits);
        for stage in &staged.stages {
            for op in &stage.pre_1q {
                sv.apply_1q(u3_matrix(op.theta, op.phi, op.lambda), op.qubit);
            }
            for g in &stage.gates {
                sv.apply_cz(g.a, g.b);
            }
        }
        for op in &staged.trailing_1q {
            sv.apply_1q(u3_matrix(op.theta, op.phi, op.lambda), op.qubit);
        }
        sv
    }

    /// `|⟨self|other⟩|`: 1.0 iff the states are equal up to global phase.
    ///
    /// # Panics
    ///
    /// Panics if qubit counts differ.
    pub fn overlap(&self, other: &StateVector) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit count mismatch");
        let mut acc = C64::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc = acc + a.conj() * *b;
        }
        acc.norm()
    }

    /// Whether two states are equal up to global phase within `tol`.
    pub fn approx_eq_up_to_phase(&self, other: &StateVector, tol: f64) -> bool {
        (self.overlap(other) - 1.0).abs() < tol
    }

    /// Total probability (should be 1 for any valid evolution).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }
}

/// Convenience: checks that preprocessing preserved the circuit semantics.
///
/// Runs both the original and the staged circuit on |0…0⟩ **and** on a probe
/// product state (so phase-only differences are caught too), returning true
/// when both final states agree up to global phase.
pub fn preprocessing_preserves_semantics(circuit: &Circuit, staged: &StagedCircuit) -> bool {
    let a0 = StateVector::run(circuit);
    let b0 = StateVector::run_staged(staged);
    if !a0.approx_eq_up_to_phase(&b0, 1e-6) {
        return false;
    }
    // Probe: prepend a layer of distinct rotations to break symmetry.
    let mut probe = Circuit::new("probe", circuit.num_qubits());
    for q in 0..circuit.num_qubits() {
        probe.ry(0.37 + 0.11 * q as f64, q).rz(0.23 * (q + 1) as f64, q);
    }
    let mut a = StateVector::zero(circuit.num_qubits());
    for g in probe.gates() {
        a.apply_gate(g);
    }
    let mut b = a.clone();
    for g in circuit.gates() {
        a.apply_gate(g);
    }
    for stage in &staged.stages {
        for op in &stage.pre_1q {
            b.apply_1q(u3_matrix(op.theta, op.phi, op.lambda), op.qubit);
        }
        for g in &stage.gates {
            b.apply_cz(g.a, g.b);
        }
    }
    for op in &staged.trailing_1q {
        b.apply_1q(u3_matrix(op.theta, op.phi, op.lambda), op.qubit);
    }
    a.approx_eq_up_to_phase(&b, 1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zac_circuit::preprocess::preprocess;

    #[test]
    fn zero_state() {
        let sv = StateVector::zero(3);
        assert_eq!(sv.probability(0), 1.0);
        assert_eq!(sv.num_qubits(), 3);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_flips() {
        let mut c = Circuit::new("x", 1);
        c.x(0);
        let sv = StateVector::run(&c);
        assert!((sv.probability(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state() {
        let mut c = Circuit::new("bell", 2);
        c.h(0).cx(0, 1);
        let sv = StateVector::run(&c);
        assert!((sv.probability(0) - 0.5).abs() < 1e-12);
        assert!((sv.probability(3) - 0.5).abs() < 1e-12);
        assert!(sv.probability(1) < 1e-12);
    }

    #[test]
    fn cz_phase() {
        let mut c = Circuit::new("cz", 2);
        c.x(0).x(1);
        let mut sv = StateVector::run(&c);
        sv.apply_cz(0, 1);
        assert!((sv.amplitude(3).re + 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_exchanges() {
        let mut c = Circuit::new("swap", 2);
        c.x(0).swap(0, 1);
        let sv = StateVector::run(&c);
        assert!((sv.probability(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cp_equals_its_decomposition() {
        let mut direct = Circuit::new("d", 2);
        direct.h(0).h(1).cp(0.9, 0, 1);
        let staged = preprocess(&direct);
        assert!(preprocessing_preserves_semantics(&direct, &staged));
    }

    #[test]
    fn toffoli_decomposition_is_exact() {
        // Check CCX decomposition on all 8 basis states via probe trick.
        let mut c = Circuit::new("ccx", 3);
        c.ccx_decomposed(0, 1, 2);
        let staged = preprocess(&c);
        assert!(preprocessing_preserves_semantics(&c, &staged));
        // And functionally: |110> -> |111>.
        let mut load = Circuit::new("l", 3);
        load.x(0).x(1).ccx_decomposed(0, 1, 2);
        let sv = StateVector::run(&load);
        assert!((sv.probability(0b111) - 1.0).abs() < 1e-9);
        // |100> unchanged.
        let mut load2 = Circuit::new("l2", 3);
        load2.x(0).ccx_decomposed(0, 1, 2);
        let sv2 = StateVector::run(&load2);
        assert!((sv2.probability(0b001) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cswap_decomposition_swaps_when_control_set() {
        let mut c = Circuit::new("cswap", 3);
        c.x(0).x(1).cswap_decomposed(0, 1, 2);
        let sv = StateVector::run(&c);
        assert!((sv.probability(0b101) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ghz_preprocessing_preserved() {
        let c = zac_circuit::bench_circuits::ghz(6);
        let staged = preprocess(&c);
        assert!(preprocessing_preserves_semantics(&c, &staged));
        let sv = StateVector::run_staged(&staged);
        assert!((sv.probability(0) - 0.5).abs() < 1e-9);
        assert!((sv.probability(0b111111) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn qft_preprocessing_preserved() {
        let c = zac_circuit::bench_circuits::qft(5);
        let staged = preprocess(&c);
        assert!(preprocessing_preserves_semantics(&c, &staged));
    }

    #[test]
    fn bv_recovers_secret() {
        // BV measures the secret string on the data qubits.
        let c = zac_circuit::bench_circuits::bv(5, 2);
        let staged = preprocess(&c);
        assert!(preprocessing_preserves_semantics(&c, &staged));
        let sv = StateVector::run(&c);
        // Find the basis state with max probability, mask off the ancilla.
        let (best, _) =
            (0..32).map(|i| (i, sv.probability(i))).max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        let secret = best & 0b1111;
        assert_eq!(secret.count_ones(), 2, "secret {secret:04b}");
    }

    #[test]
    fn wstate_is_single_excitation_superposition() {
        let c = zac_circuit::bench_circuits::wstate(4);
        let sv = StateVector::run(&c);
        let mut single = 0.0;
        for i in 0..16usize {
            if i.count_ones() == 1 {
                single += sv.probability(i);
            }
        }
        assert!((single - 1.0).abs() < 1e-9, "W state mass on single-excitation: {single}");
        // Equal amplitudes.
        for q in 0..4 {
            assert!((sv.probability(1 << q) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn apply_1q_out_of_range_panics() {
        let mut sv = StateVector::zero(1);
        sv.apply_1q(Mat2::IDENTITY, 1);
    }

    #[test]
    fn norm_preserved_by_random_circuit() {
        let c = zac_circuit::bench_circuits::swap_test(7);
        let sv = StateVector::run(&c);
        assert!((sv.norm() - 1.0).abs() < 1e-9);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_circuit() -> impl Strategy<Value = Circuit> {
            (2usize..5).prop_flat_map(|n| {
                let gate = prop_oneof![
                    (0..n, -3.0..3.0f64).prop_map(|(q, t)| (0usize, q, 0usize, t)),
                    (0..n).prop_map(|q| (1usize, q, 0usize, 0.0)),
                    (0..n, 0..n).prop_map(|(a, b)| (2usize, a, b, 0.0)),
                    (0..n, 0..n, -3.0..3.0f64).prop_map(|(a, b, t)| (3usize, a, b, t)),
                    (0..n, 0..n).prop_map(|(a, b)| (4usize, a, b, 0.0)),
                ];
                proptest::collection::vec(gate, 0..15).prop_map(move |ops| {
                    let mut c = Circuit::new("rand", n);
                    for (k, a, b, t) in ops {
                        match k {
                            0 => {
                                c.rz(t, a).h(a);
                            }
                            1 => {
                                c.t(a);
                            }
                            2 if a != b => {
                                c.cx(a, b);
                            }
                            3 if a != b => {
                                c.cp(t, a, b);
                            }
                            4 if a != b => {
                                c.swap(a, b);
                            }
                            _ => {}
                        }
                    }
                    c
                })
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn preprocessing_always_preserves_semantics(c in arb_circuit()) {
                let staged = preprocess(&c);
                prop_assert!(preprocessing_preserves_semantics(&c, &staged));
            }

            #[test]
            fn evolution_is_norm_preserving(c in arb_circuit()) {
                let sv = StateVector::run(&c);
                prop_assert!((sv.norm() - 1.0).abs() < 1e-9);
            }
        }
    }
}
