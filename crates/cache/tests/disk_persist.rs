//! Disk round-trip determinism, designed to run twice against one
//! persisted cache directory (CI runs it cold then warm; see
//! `.github/workflows/ci.yml`):
//!
//! * **cold pass** — the directory is empty, every cell compiles and is
//!   persisted as JSON;
//! * **warm pass** — every cell is served from the files the cold pass
//!   wrote (asserted via `from_cache` whenever the entry pre-existed).
//!
//! In both passes each served output is compared field-by-field — summary,
//! report, counts, ZAIR program JSON — against a fresh, uncached compile,
//! proving the disk JSON round trip reproduces `CompileOutput` exactly.
//!
//! The directory comes from `ZAC_CACHE_DIR` when set (the CI step points it
//! at a temp dir shared by both passes) and falls back to a per-target
//! scratch directory locally, where the second local run exercises the warm
//! path the same way.

use std::path::PathBuf;
use zac_arch::Architecture;
use zac_cache::{CacheKey, CachedCompiler, CompileCache};
use zac_circuit::{bench_circuits, preprocess};
use zac_core::{Compiler, Zac};

fn persist_dir() -> PathBuf {
    std::env::var_os("ZAC_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("zac-cache-persist"))
}

#[test]
fn disk_round_trip_reproduces_outputs_cold_and_warm() {
    let dir = persist_dir();
    let cache = CompileCache::with_disk(64, &dir).expect("cache dir creates");
    let cached = CachedCompiler::new(Zac::new(Architecture::reference()), cache.clone());

    for circuit in [bench_circuits::ghz(10), bench_circuits::bv(8, 7)] {
        let staged = preprocess(&circuit);
        let key = CacheKey::compute(&Zac::new(Architecture::reference()), &staged);
        // "Pre-existing" means a *loadable* entry: a file left by an older
        // disk-format version is legitimately a miss, not a warm hit. The
        // probing get() also warms the in-memory layer, which is exactly
        // what serving the entry means.
        let preexisting = cache.get(key).is_some();

        let served = cached.compile(&staged).expect("compiles");
        assert_eq!(
            served.from_cache, preexisting,
            "{}: pre-existing entries must be served from disk, fresh cells compiled",
            staged.name
        );

        // Reference: a fresh compile that never touches the cache. The
        // compilers are deterministic, so any divergence can only come
        // from the JSON round trip.
        let fresh =
            Compiler::compile(&Zac::new(Architecture::reference()), &staged).expect("compiles");
        assert_eq!(served.summary, fresh.summary, "{}", staged.name);
        assert_eq!(served.report, fresh.report, "{}", staged.name);
        assert_eq!(served.counts, fresh.counts, "{}", staged.name);
        assert_eq!(
            served.program.as_ref().map(|p| p.to_json().unwrap()),
            fresh.program.as_ref().map(|p| p.to_json().unwrap()),
            "{}: ZAIR program JSON must round-trip bit-identically",
            staged.name
        );

        // And the persisted file itself re-serves the same output.
        let reread = cache.get(key).expect("entry resident after compile");
        assert_eq!(reread.summary, fresh.summary);
        assert_eq!(reread.report, fresh.report);
        assert_eq!(reread.compile_time, served.compile_time, "original compile time persisted");
    }

    let stats = cache.stats();
    println!(
        "disk_persist: dir={} hits={} disk_hits={} misses={} disk_writes={}",
        dir.display(),
        stats.hits,
        stats.disk_hits,
        stats.misses,
        stats.disk_writes
    );
    assert_eq!(stats.disk_errors, 0);
}

/// Upgrade path: a directory populated by the legacy per-file layer opens
/// *warm* under the segment tier — every legacy entry serves without
/// recompilation (migrate-on-read appends it to the log), and once
/// migrated, the entry survives on the log alone.
#[test]
fn legacy_per_file_store_opens_warm_under_segment_tier() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("zac-cache-legacy-upgrade");
    std::fs::remove_dir_all(&dir).ok();
    let zac = || Zac::new(Architecture::reference());
    let circuits = [bench_circuits::ghz(9), bench_circuits::bv(8, 7)];

    // An "old deployment": the per-file JSON layer writes the entries.
    let mut keys = Vec::new();
    {
        let old = CompileCache::with_disk(64, &dir).expect("cache dir creates");
        let cached = CachedCompiler::new(zac(), old);
        for circuit in &circuits {
            let staged = preprocess(circuit);
            cached.compile(&staged).expect("compiles");
            keys.push((CacheKey::compute(&zac(), &staged), staged));
        }
    }

    // The upgraded service opens the same directory with the segment tier:
    // every legacy cell is a warm hit, nothing recompiles.
    {
        let upgraded = CompileCache::with_segment_store(64, &dir).expect("segment tier opens");
        for (key, staged) in &keys {
            let served = upgraded.get(*key).expect("legacy entry serves under the segment tier");
            let fresh = Compiler::compile(&zac(), staged).expect("compiles");
            assert_eq!(served.summary, fresh.summary, "{}", staged.name);
            assert_eq!(served.report, fresh.report, "{}", staged.name);
            assert!(served.from_cache, "{}: served, not recompiled", staged.name);
        }
        let seg = upgraded.segment_stats().expect("segment stats");
        assert_eq!(seg.migrated as usize, keys.len(), "every legacy entry migrated: {seg:?}");
    } // clean close seals the migrated records into the log

    // The migrated records now live on the log: remove the legacy files
    // and the entries still serve.
    for entry in std::fs::read_dir(&dir).unwrap().filter_map(Result::ok) {
        if entry.file_name().to_string_lossy().ends_with(".json") {
            std::fs::remove_file(entry.path()).unwrap();
        }
    }
    let log_only = CompileCache::with_segment_store(64, &dir).expect("segment tier reopens");
    for (key, staged) in &keys {
        assert!(log_only.get(*key).is_some(), "{}: survives on the log alone", staged.name);
    }
    assert_eq!(log_only.segment_stats().expect("stats").migrated, 0, "nothing left to migrate");

    std::fs::remove_dir_all(&dir).ok();
}
