//! Disk round-trip determinism, designed to run twice against one
//! persisted cache directory (CI runs it cold then warm; see
//! `.github/workflows/ci.yml`):
//!
//! * **cold pass** — the directory is empty, every cell compiles and is
//!   persisted as JSON;
//! * **warm pass** — every cell is served from the files the cold pass
//!   wrote (asserted via `from_cache` whenever the entry pre-existed).
//!
//! In both passes each served output is compared field-by-field — summary,
//! report, counts, ZAIR program JSON — against a fresh, uncached compile,
//! proving the disk JSON round trip reproduces `CompileOutput` exactly.
//!
//! The directory comes from `ZAC_CACHE_DIR` when set (the CI step points it
//! at a temp dir shared by both passes) and falls back to a per-target
//! scratch directory locally, where the second local run exercises the warm
//! path the same way.

use std::path::PathBuf;
use zac_arch::Architecture;
use zac_cache::{CacheKey, CachedCompiler, CompileCache};
use zac_circuit::{bench_circuits, preprocess};
use zac_core::{Compiler, Zac};

fn persist_dir() -> PathBuf {
    std::env::var_os("ZAC_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("zac-cache-persist"))
}

#[test]
fn disk_round_trip_reproduces_outputs_cold_and_warm() {
    let dir = persist_dir();
    let cache = CompileCache::with_disk(64, &dir).expect("cache dir creates");
    let cached = CachedCompiler::new(Zac::new(Architecture::reference()), cache.clone());

    for circuit in [bench_circuits::ghz(10), bench_circuits::bv(8, 7)] {
        let staged = preprocess(&circuit);
        let key = CacheKey::compute(&Zac::new(Architecture::reference()), &staged);
        // "Pre-existing" means a *loadable* entry: a file left by an older
        // disk-format version is legitimately a miss, not a warm hit. The
        // probing get() also warms the in-memory layer, which is exactly
        // what serving the entry means.
        let preexisting = cache.get(key).is_some();

        let served = cached.compile(&staged).expect("compiles");
        assert_eq!(
            served.from_cache, preexisting,
            "{}: pre-existing entries must be served from disk, fresh cells compiled",
            staged.name
        );

        // Reference: a fresh compile that never touches the cache. The
        // compilers are deterministic, so any divergence can only come
        // from the JSON round trip.
        let fresh =
            Compiler::compile(&Zac::new(Architecture::reference()), &staged).expect("compiles");
        assert_eq!(served.summary, fresh.summary, "{}", staged.name);
        assert_eq!(served.report, fresh.report, "{}", staged.name);
        assert_eq!(served.counts, fresh.counts, "{}", staged.name);
        assert_eq!(
            served.program.as_ref().map(|p| p.to_json().unwrap()),
            fresh.program.as_ref().map(|p| p.to_json().unwrap()),
            "{}: ZAIR program JSON must round-trip bit-identically",
            staged.name
        );

        // And the persisted file itself re-serves the same output.
        let reread = cache.get(key).expect("entry resident after compile");
        assert_eq!(reread.summary, fresh.summary);
        assert_eq!(reread.report, fresh.report);
        assert_eq!(reread.compile_time, served.compile_time, "original compile time persisted");
    }

    let stats = cache.stats();
    println!(
        "disk_persist: dir={} hits={} disk_hits={} misses={} disk_writes={}",
        dir.display(),
        stats.hits,
        stats.disk_hits,
        stats.misses,
        stats.disk_writes
    );
    assert_eq!(stats.disk_errors, 0);
}
