//! Property tests for the cache-key fingerprints.
//!
//! The cache's correctness rests on three properties, all exercised here:
//! fingerprints are *stable* (same content → same digest, every time),
//! *sensitive* (any gate, stage, name or config change → different digest),
//! and *collision-free in practice* (every circuit of the generated paper
//! suite, and every compiler of the default lineup, is pairwise distinct).

use proptest::prelude::*;
use zac_arch::Architecture;
use zac_baselines::{Atomique, Enola, Nalac, Sc};
use zac_cache::CacheKey;
use zac_circuit::{bench_circuits, preprocess, Circuit, StagedCircuit};
use zac_core::{Compiler, Zac, ZacConfig};

/// A random but valid circuit: `nq` qubits, CZs from the pair list (self
/// pairs skipped), an Rz sprinkled per pair to vary the 1Q structure.
fn build_circuit(nq: usize, pairs: &[(usize, usize, f64)]) -> Circuit {
    let mut c = Circuit::new("prop", nq);
    for &(a, b, angle) in pairs {
        let (a, b) = (a % nq, b % nq);
        if a != b {
            c.cz(a, b);
        }
        c.rz(angle, a);
    }
    c
}

fn staged(nq: usize, pairs: &[(usize, usize, f64)]) -> StagedCircuit {
    preprocess(&build_circuit(nq, pairs))
}

proptest! {
    /// Stability: re-preprocessing and re-hashing identical content always
    /// reproduces the digest (this is what makes disk entries reusable
    /// across processes).
    #[test]
    fn fingerprint_stable_across_runs(
        nq in 2usize..12,
        pairs in proptest::collection::vec((0usize..12, 0usize..12, -3.0..3.0f64), 0..24),
    ) {
        let a = staged(nq, &pairs);
        let b = staged(nq, &pairs);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }

    /// Sensitivity: appending one gate, renaming, or widening the register
    /// all change the digest.
    #[test]
    fn fingerprint_changes_with_any_circuit_edit(
        nq in 2usize..12,
        pairs in proptest::collection::vec((0usize..12, 0usize..12, -3.0..3.0f64), 1..24),
        extra in (0usize..12, 0usize..12),
    ) {
        let base = staged(nq, &pairs);

        let mut grown = build_circuit(nq, &pairs);
        let (a, b) = (extra.0 % nq, extra.1 % nq);
        if a != b {
            grown.cz(a, b);
            prop_assert!(base.fingerprint() != preprocess(&grown).fingerprint());
        }

        let mut renamed = base.clone();
        renamed.name.push('x');
        prop_assert!(base.fingerprint() != renamed.fingerprint());

        let mut widened = base.clone();
        widened.num_qubits += 1;
        prop_assert!(base.fingerprint() != widened.fingerprint());
    }

    /// Sensitivity on the compiler half: every placement-config field,
    /// the placement-engine choice (and each windowed-engine parameter),
    /// and every hardware parameter feeds the compiler fingerprint. The
    /// engine is pinned on both sides so the test is meaningful under
    /// `ZAC_PLACER=windowed` runs too.
    #[test]
    fn compiler_fingerprint_changes_with_any_config_field(
        field in 0usize..13,
        nudge in 1u64..1000,
    ) {
        use zac_place::{PlacementEngine, WindowedPlacer};
        let mut base = ZacConfig::full();
        base.placement.engine = PlacementEngine::Exhaustive;
        let reference = Zac::with_config(Architecture::reference(), base.clone());
        let mut config = base;
        let p = &mut config.placement;
        let windowed = |w: WindowedPlacer| PlacementEngine::Windowed(w);
        match field {
            0 => p.use_sa = !p.use_sa,
            1 => p.dynamic = !p.dynamic,
            2 => p.reuse = !p.reuse,
            3 => p.sa_iterations += nudge as usize,
            4 => p.seed ^= nudge,
            5 => p.window_expansion += nudge as usize,
            6 => p.neighbor_k += nudge as usize,
            7 => p.lookahead_alpha += nudge as f64 * 1e-6,
            8 => p.engine = PlacementEngine::windowed(),
            9 => p.engine = windowed(WindowedPlacer {
                window_min_width: 1 + nudge as usize,
                ..WindowedPlacer::default()
            }),
            10 => p.engine = windowed(WindowedPlacer {
                window_ratio: 0.5 + nudge as f64 * 1e-6,
                ..WindowedPlacer::default()
            }),
            11 => p.engine = windowed(WindowedPlacer {
                quality_factor: 1.5 + nudge as f64 * 1e-6,
                ..WindowedPlacer::default()
            }),
            _ => config.params.f_2q -= nudge as f64 * 1e-9,
        }
        let tweaked = Zac::with_config(Architecture::reference(), config);
        prop_assert!(reference.fingerprint() != tweaked.fingerprint());
    }
}

/// No collisions across the generated benchmark suite: all 17 staged
/// circuits of the paper's evaluation are pairwise distinct, so a shared
/// cache can never serve one suite circuit's output for another.
#[test]
fn paper_suite_fingerprints_pairwise_distinct() {
    let suite: Vec<StagedCircuit> =
        bench_circuits::paper_suite().iter().map(|e| preprocess(&e.circuit)).collect();
    assert_eq!(suite.len(), 17);
    for i in 0..suite.len() {
        for j in (i + 1)..suite.len() {
            assert_ne!(
                suite[i].fingerprint(),
                suite[j].fingerprint(),
                "{} and {} collide",
                suite[i].name,
                suite[j].name
            );
        }
    }
}

/// No collisions across the full suite × default-lineup key matrix: 17
/// circuits × 6 compilers = 102 distinct cache keys.
#[test]
fn suite_by_lineup_cache_keys_pairwise_distinct() {
    let suite: Vec<StagedCircuit> =
        bench_circuits::paper_suite().iter().map(|e| preprocess(&e.circuit)).collect();
    let compilers: Vec<Box<dyn Compiler>> = vec![
        Box::new(Sc::heron()),
        Box::new(Sc::grid()),
        Box::new(Atomique::default()),
        Box::new(Enola::default()),
        Box::new(Nalac::default()),
        Box::new(Zac::new(Architecture::reference())),
    ];
    let mut keys = Vec::new();
    for staged in &suite {
        for compiler in &compilers {
            keys.push(CacheKey::compute(&**compiler, staged));
        }
    }
    let mut unique: Vec<_> = keys.clone();
    unique.sort_by_key(|k| (k.circuit, k.compiler));
    unique.dedup();
    assert_eq!(unique.len(), keys.len(), "cache keys collide in the default sweep");
}
