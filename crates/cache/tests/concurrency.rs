//! Concurrent `CompileCache` hammering — the serving workload's shape.
//!
//! `zac-serve` shares one cache across a worker pool, so N threads racing
//! get/put on overlapping keys is the *normal* regime, not an edge case.
//! These tests lock the three invariants that regime depends on:
//!
//! * counters sum consistently — every lookup is exactly one of hit,
//!   disk hit, or miss, no matter how the threads interleave;
//! * the atomic write-then-rename path never publishes a torn disk
//!   envelope, even with many writers racing on one directory;
//! * a warm second wave over a populated cache is 100% hits;
//! * two segment stores sharing one directory (the multi-service
//!   topology) serve each other's writes without torn reads.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use zac_cache::{CacheKey, CompileCache};
use zac_core::CompileOutput;
use zac_fidelity::{evaluate_neutral_atom, ExecutionSummary, NeutralAtomParams};

const THREADS: usize = 8;
const KEYS: usize = 24;
const ROUNDS: usize = 4;

fn temp_cache_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "zac-cache-conc-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn key(i: usize) -> CacheKey {
    CacheKey { circuit: 0x5eed_0000 + i as u64, compiler: 0xc0_ffee }
}

/// A small deterministic output whose identity is recoverable from `i`.
fn output(i: usize) -> CompileOutput {
    let summary = ExecutionSummary {
        name: format!("conc-{i}"),
        num_qubits: 2,
        duration_us: 10.0 + i as f64,
        g1: i,
        g2: 1,
        n_exc: 0,
        n_tran: 2,
        idle_us: vec![1.0, 2.5],
    };
    let report = evaluate_neutral_atom(&summary, &NeutralAtomParams::reference());
    CompileOutput::new(summary, report, Duration::from_micros(321), None)
        .with_phases(Duration::from_micros(200), Duration::from_micros(121))
}

/// Spawns `THREADS` threads, each sweeping all keys `ROUNDS` times with the
/// serving pattern (get → on miss, "compile" and put). Returns how many
/// misses the threads observed.
fn hammer(cache: &CompileCache) -> usize {
    let observed_misses = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = cache.clone();
            let observed_misses = Arc::clone(&observed_misses);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    for j in 0..KEYS {
                        // Stagger the sweep per thread so the interleaving
                        // actually overlaps distinct keys.
                        let i = (j + t * 3 + round) % KEYS;
                        match cache.get(key(i)) {
                            Some(out) => {
                                assert_eq!(out.summary.name, format!("conc-{i}"));
                                assert_eq!(out.counts.g1, i);
                            }
                            None => {
                                observed_misses.fetch_add(1, Ordering::Relaxed);
                                cache.put(key(i), &output(i));
                            }
                        }
                    }
                }
            });
        }
    });
    observed_misses.load(Ordering::Relaxed)
}

fn assert_counters_consistent(cache: &CompileCache, observed_misses: usize) {
    let stats = cache.stats();
    assert_eq!(
        stats.lookups(),
        stats.hits + stats.disk_hits + stats.misses,
        "every lookup is exactly one of hit / disk hit / miss: {stats:?}"
    );
    assert_eq!(
        stats.lookups() as usize,
        THREADS * ROUNDS * KEYS,
        "no lookup lost or double-counted: {stats:?}"
    );
    assert_eq!(
        stats.misses as usize, observed_misses,
        "the cache's miss counter matches what the threads observed: {stats:?}"
    );
    assert!(
        stats.misses as usize >= KEYS,
        "each key misses at least once on a cold cache: {stats:?}"
    );
    assert_eq!(stats.disk_errors, 0, "{stats:?}");
}

#[test]
fn concurrent_memory_cache_counters_sum_consistently() {
    let cache = CompileCache::in_memory(KEYS);
    let observed = hammer(&cache);
    assert_counters_consistent(&cache, observed);
    assert_eq!(cache.stats().resident, KEYS, "all keys resident afterwards");
}

#[test]
fn concurrent_disk_cache_is_consistent_and_untorn() {
    let dir = temp_cache_dir("hammer");
    // Memory capacity below the key count forces evictions mid-hammer, so
    // the disk path serves hits while writers are still racing renames.
    let cache = CompileCache::with_disk(KEYS / 3, &dir).unwrap();
    let observed = hammer(&cache);
    assert_counters_consistent(&cache, observed);

    // No torn envelopes: every entry file is complete, parseable JSON that
    // embeds a loadable CompileOutput, and no temp files leaked.
    let mut entries = 0;
    for file in std::fs::read_dir(&dir).unwrap().filter_map(Result::ok) {
        let name = file.file_name().to_string_lossy().into_owned();
        assert!(!name.contains(".tmp"), "leaked temp file {name}");
        assert!(name.ends_with(".json"), "stray file {name}");
        entries += 1;
        let text = std::fs::read_to_string(file.path()).unwrap();
        let value: serde::Value = serde_json::from_str(&text).expect("untorn JSON");
        let obj = serde::ObjectView::new(&value).unwrap();
        let embedded: CompileOutput = obj.field("output").expect("loadable embedded output");
        assert!(embedded.summary.name.starts_with("conc-"), "{}", embedded.summary.name);
    }
    assert_eq!(entries, KEYS, "one entry file per key");

    // Warm second wave through a *fresh* cache over the same directory —
    // empty memory, so every hit is a disk hit — must be 100% hits.
    let warm = CompileCache::with_disk(KEYS, &dir).unwrap();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let warm = warm.clone();
            scope.spawn(move || {
                for i in 0..KEYS {
                    let out = warm.get(key(i)).expect("warm wave never misses");
                    assert_eq!(out.summary.name, format!("conc-{i}"));
                    assert!(out.from_cache);
                }
            });
        }
    });
    let stats = warm.stats();
    assert_eq!(stats.misses, 0, "{stats:?}");
    assert!((stats.hit_rate() - 1.0).abs() < f64::EPSILON, "{stats:?}");
    assert_eq!(stats.lookups() as usize, THREADS * KEYS, "{stats:?}");
    assert!(stats.disk_hits >= KEYS as u64, "first touch of each key comes from disk: {stats:?}");

    std::fs::remove_dir_all(&dir).ok();
}

/// Eight threads hammering two segment stores that share one directory —
/// the shape of two `zac-serve` processes on one `ZAC_CACHE_DIR`, run
/// in-process so the thread interleaving is as hostile as the scheduler
/// allows. Each store only sees half the puts firsthand; the warm wave
/// proves the other half arrives through the shared log, untorn.
#[test]
fn concurrent_segment_stores_share_one_directory() {
    let dir = temp_cache_dir("segment-shared");
    // Memory capacity below the key count forces evictions mid-hammer, so
    // cross-store reads exercise the log, not just each store's LRU.
    let stores = [
        CompileCache::with_segment_store(KEYS / 3, &dir).unwrap(),
        CompileCache::with_segment_store(KEYS / 3, &dir).unwrap(),
    ];
    let observed_misses = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = stores[t % stores.len()].clone();
            let observed_misses = Arc::clone(&observed_misses);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    for j in 0..KEYS {
                        let i = (j + t * 3 + round) % KEYS;
                        match cache.get(key(i)) {
                            Some(out) => {
                                assert_eq!(out.summary.name, format!("conc-{i}"));
                                assert_eq!(out.counts.g1, i);
                            }
                            None => {
                                observed_misses.fetch_add(1, Ordering::Relaxed);
                                cache.put(key(i), &output(i));
                            }
                        }
                    }
                }
            });
        }
    });
    let mut lookups = 0;
    let mut misses = 0;
    for store in &stores {
        let stats = store.stats();
        assert_eq!(
            stats.lookups(),
            stats.hits + stats.disk_hits + stats.misses,
            "per-store counter identity: {stats:?}"
        );
        assert_eq!(stats.disk_errors, 0, "{stats:?}");
        assert_eq!(stats.quarantined, 0, "shared appends never tear: {stats:?}");
        lookups += stats.lookups() as usize;
        misses += stats.misses as usize;
    }
    assert_eq!(lookups, THREADS * ROUNDS * KEYS, "no lookup lost or double-counted");
    assert_eq!(misses, observed_misses.load(Ordering::Relaxed));
    drop(stores); // clean close seals both stores' active segments

    // A third "process" over the same directory starts fully warm: every
    // key serves from the shared log regardless of which store wrote it.
    let warm = CompileCache::with_segment_store(KEYS, &dir).unwrap();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let warm = warm.clone();
            scope.spawn(move || {
                for i in 0..KEYS {
                    let out = warm.get(key(i)).expect("warm wave never misses");
                    assert_eq!(out.summary.name, format!("conc-{i}"));
                    assert!(out.from_cache);
                }
            });
        }
    });
    let stats = warm.stats();
    assert_eq!(stats.misses, 0, "{stats:?}");
    assert!((stats.hit_rate() - 1.0).abs() < f64::EPSILON, "{stats:?}");
    let seg = warm.segment_stats().expect("segment-backed cache reports stats");
    assert_eq!(seg.index_entries, KEYS, "one live record per key after supersession: {seg:?}");

    std::fs::remove_dir_all(&dir).ok();
}

/// The fault-injecting writer: overwrites `key(i)`'s entry file with one of
/// the three corruption shapes a crashed or interrupted writer leaves
/// behind — a *torn* write (a valid prefix of the real envelope, cut
/// mid-JSON), a *truncated* file (zero bytes), or *garbage* (bytes that
/// were never JSON).
fn corrupt_entry(dir: &Path, i: usize) {
    let path = dir.join(format!("{}.json", key(i).file_stem()));
    let intact = std::fs::read_to_string(&path).expect("entry exists before corruption");
    let corrupted: Vec<u8> = match i % 3 {
        0 => intact.as_bytes()[..intact.len() / 2].to_vec(),
        1 => Vec::new(),
        _ => b"\x00\xffnot json at all\x7f".to_vec(),
    };
    std::fs::write(&path, corrupted).expect("fault-injecting writer");
}

#[test]
fn corrupted_disk_entries_quarantine_then_recompile_cleanly() {
    const CORRUPT: usize = 6;
    let dir = temp_cache_dir("corrupt");
    {
        let cache = CompileCache::with_disk(KEYS, &dir).unwrap();
        for i in 0..KEYS {
            cache.put(key(i), &output(i));
        }
    }
    for i in 0..CORRUPT {
        corrupt_entry(&dir, i);
    }
    // Crashed-writer debris on top: recovery must sweep it at open.
    std::fs::write(dir.join("deadbeef.json.tmp.999"), b"partial").unwrap();

    let cache = CompileCache::with_disk(KEYS, &dir).unwrap();
    let recovery = cache.recovery_report().expect("disk-backed cache has a recovery report");
    assert_eq!(recovery.tmp_removed, 1, "orphaned temp file swept: {recovery:?}");
    assert_eq!(recovery.quarantined, 0, "nothing quarantined before any lookup: {recovery:?}");

    // First wave: corrupt entries are clean misses (quarantined, not
    // errors); intact entries still hit from disk.
    for i in 0..KEYS {
        match cache.get(key(i)) {
            None => assert!(i < CORRUPT, "intact key {i} must hit"),
            Some(out) => {
                assert!(i >= CORRUPT, "corrupt key {i} must miss");
                assert_eq!(out.counts.g1, i);
            }
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.quarantined, CORRUPT as u64, "{stats:?}");
    assert_eq!(stats.disk_errors, 0, "corruption is quarantine, not an error: {stats:?}");
    assert_eq!(stats.misses, CORRUPT as u64, "{stats:?}");
    assert_eq!(
        stats.lookups(),
        stats.hits + stats.disk_hits + stats.misses,
        "counter identity holds through quarantining: {stats:?}"
    );
    for i in 0..CORRUPT {
        let q = dir.join(format!("{}.quarantine", key(i).file_stem()));
        assert!(q.exists(), "corrupt bytes kept for inspection at {q:?}");
    }

    // Recompile the quarantined keys: the slots are free again and the
    // rewritten entries serve hits.
    for i in 0..CORRUPT {
        cache.put(key(i), &output(i));
    }
    // A fresh cache (empty memory) over the repaired directory, hammered
    // concurrently: counters stay consistent and nothing re-quarantines.
    // Every key is back on disk, so the hammer never misses at all.
    let repaired = CompileCache::with_disk(KEYS / 3, &dir).unwrap();
    let observed = hammer(&repaired);
    let stats = repaired.stats();
    assert_eq!(observed, 0, "the repaired directory serves everything: {stats:?}");
    assert_eq!(
        stats.lookups(),
        stats.hits + stats.disk_hits + stats.misses,
        "counter identity holds over the repaired directory: {stats:?}"
    );
    assert_eq!(stats.lookups() as usize, THREADS * ROUNDS * KEYS, "{stats:?}");
    assert_eq!(stats.quarantined, 0, "repaired entries are intact: {stats:?}");
    assert_eq!(stats.disk_errors, 0, "{stats:?}");

    // The quarantine files survive for post-mortem until an operator (or a
    // fresh open's recovery report) deals with them.
    let reopened = CompileCache::with_disk(KEYS, &dir).unwrap();
    let recovery = reopened.recovery_report().expect("recovery report");
    assert_eq!(recovery.quarantined, CORRUPT, "{recovery:?}");

    std::fs::remove_dir_all(&dir).ok();
}
