//! Crash-safety tests for the segment-log tier: seeded fault plans on
//! `cache.disk.write` simulate crashes torn mid-record, mid-seal and
//! mid-compaction, and every reopen must land on a consistent index — the
//! tail record dropped, never a read error, never a torn payload served.
//!
//! Fault plans are **process-global**, which is why these tests live in
//! their own binary (a plan armed here can never leak into the
//! `concurrency` suite) and serialize on [`GATE`] within it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use zac_cache::disk::LoadOutcome;
use zac_cache::segment::{SegmentConfig, SegmentStore};
use zac_cache::{CacheKey, CompileCache};
use zac_core::CompileOutput;
use zac_fidelity::{evaluate_neutral_atom, ExecutionSummary, NeutralAtomParams};
use zac_telemetry::{fault, FaultPlan};

static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "zac-seg-crash-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn key(i: usize) -> CacheKey {
    CacheKey { circuit: 0x5e9_0000 + i as u64, compiler: 0xc4a5 }
}

fn output(i: usize) -> CompileOutput {
    let summary = ExecutionSummary {
        name: format!("crash-{i}"),
        num_qubits: 2,
        duration_us: 10.0 + i as f64,
        g1: i,
        g2: 1,
        n_exc: 0,
        n_tran: 2,
        idle_us: vec![1.0, 2.5],
    };
    let report = evaluate_neutral_atom(&summary, &NeutralAtomParams::reference());
    CompileOutput::new(summary, report, Duration::from_micros(321), None)
        .with_phases(Duration::from_micros(200), Duration::from_micros(121))
}

/// Simulates "the writing process died": renames this process's active
/// segments to a dead writer's token so a reopening store adopts them as
/// orphans (a live process's own segments are never adopted).
fn orphan_actives(dir: &Path) {
    let me = format!("p{}-", std::process::id());
    for entry in std::fs::read_dir(dir).expect("read store dir").filter_map(Result::ok) {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".active.log") && name.contains(&me) {
            let dead = name.replace(&me, "p999999999-");
            std::fs::rename(entry.path(), dir.join(dead)).expect("rename to dead writer");
        }
    }
}

/// Every key must classify as a clean `Hit` or `Miss` after recovery —
/// `ReadError`/`Quarantined` would mean the reopened index points at
/// damaged bytes. Returns the hit set.
fn assert_never_read_errors(store: &SegmentStore, n: usize) -> Vec<usize> {
    let mut hits = Vec::new();
    for i in 0..n {
        match store.load_classified(key(i)) {
            LoadOutcome::Hit(out) => {
                assert_eq!(out.counts.g1, i, "recovered payload belongs to key {i}");
                hits.push(i);
            }
            LoadOutcome::Miss => {}
            other => panic!("key {i} classified as {other:?} after recovery"),
        }
    }
    hits
}

/// A crash that tears the final record: the reopening store must truncate
/// to the last valid record boundary and serve everything before it.
#[test]
fn torn_tail_truncates_to_last_valid_record() {
    let _gate = gate();
    const N: usize = 8;
    let dir = temp_dir("torn-tail");
    {
        let cache = CompileCache::with_segment_store(N, &dir).unwrap();
        for i in 0..N {
            cache.put(key(i), &output(i));
        }
        assert_eq!(cache.segment_stats().unwrap().appends, N as u64);
        // "Crash": no clean close, so the active segment is never sealed.
        std::mem::forget(cache);
    }
    // Tear the tail: chop bytes off the last record, then hand the file to
    // a dead writer so the next opener adopts it.
    let active = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.file_name().to_string_lossy().ends_with(".active.log"))
        .expect("an unsealed active segment survives the crash");
    let len = active.metadata().unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(active.path()).unwrap();
    file.set_len(len - 10).unwrap();
    drop(file);
    orphan_actives(&dir);

    let cache = CompileCache::with_segment_store(N, &dir).unwrap();
    let stats = cache.segment_stats().unwrap();
    assert!(stats.recovered_bytes > 0, "the torn span was measured and truncated: {stats:?}");
    assert_eq!(stats.index_entries, N - 1, "every record but the torn tail indexed: {stats:?}");
    for i in 0..N - 1 {
        let out = cache.get(key(i)).unwrap_or_else(|| panic!("key {i} survives the torn tail"));
        assert_eq!(out.counts.g1, i);
    }
    assert!(cache.get(key(N - 1)).is_none(), "the torn record is a clean miss");
    let cs = cache.stats();
    assert_eq!((cs.disk_errors, cs.quarantined), (0, 0), "never a read error: {cs:?}");

    std::fs::remove_dir_all(&dir).ok();
}

/// Seeded panic faults on `cache.disk.write` crash appends mid-record and
/// mid-seal (with `seal_bytes: 1` every append also seals). Whatever the
/// interleaving, the reopened store serves every completed append and
/// classifies nothing as a read error.
#[test]
fn mid_write_and_mid_seal_crashes_recover_consistently() {
    let _gate = gate();
    const N: usize = 40;
    let dir = temp_dir("mid-seal");
    let config = SegmentConfig { seal_bytes: 1, ..SegmentConfig::default() };
    let store = SegmentStore::open_with(&dir, config).unwrap();

    fault::arm(FaultPlan::parse("12:cache.disk.write=panic@0.3").expect("plan parses"));
    let mut completed = Vec::new();
    let mut crashed = Vec::new();
    for i in 0..N {
        match catch_unwind(AssertUnwindSafe(|| store.append(key(i), &output(i)))) {
            Ok(Ok(_)) => completed.push(i),
            Ok(Err(e)) => panic!("io error from a panic-only plan: {e}"),
            Err(_) => crashed.push(i),
        }
    }
    fault::disarm();
    assert!(!completed.is_empty() && !crashed.is_empty(), "the seed exercises both outcomes");
    std::mem::forget(store); // crash: no clean close
    orphan_actives(&dir);

    let store = SegmentStore::open_with(&dir, config).unwrap();
    let hits = assert_never_read_errors(&store, N);
    for &i in &completed {
        assert!(hits.contains(&i), "completed append {i} must survive the crash");
    }
    // A "crashed" append that still reads back hit the fault point *after*
    // its record was durable — that is precisely the mid-seal crash, so the
    // seeded plan must have produced at least one.
    assert!(
        crashed.iter().any(|i| hits.contains(i)),
        "the seed must land at least one crash between write and seal: crashed {crashed:?}, hits {hits:?}"
    );
    assert_eq!(store.stats().index_entries, hits.len());

    std::fs::remove_dir_all(&dir).ok();
}

/// A crash mid-compaction (panic while writing the replacement segment)
/// leaves only swept-on-open debris: the next open discards the partial
/// `.compacting` file, compacts for real, and serves the latest values.
#[test]
fn mid_compaction_crash_leaves_a_recoverable_store() {
    let _gate = gate();
    let dir = temp_dir("mid-compaction");
    // Aggressive thresholds so compaction triggers at open.
    let config =
        SegmentConfig { seal_bytes: 1, compact_min_garbage: 1, compact_garbage_ratio: 0.0 };
    {
        let store = SegmentStore::open_with(&dir, config).unwrap();
        for version in 0..8 {
            store.append(key(0), &output(version)).unwrap();
        }
        store.append(key(1), &output(100)).unwrap();
    } // clean close seals; 7 of the 9 records are garbage

    fault::arm(FaultPlan::parse("13:cache.disk.write=panic").expect("plan parses"));
    let crashed = catch_unwind(AssertUnwindSafe(|| SegmentStore::open_with(&dir, config)));
    fault::disarm();
    assert!(crashed.is_err(), "a certain panic plan must crash the compaction write");
    // The crashed opener died holding `compact.lock`. Its pid would be dead
    // in a real crash (the next opener breaks the lock as stale); in this
    // in-process simulation the pid is ours and alive, so model the death.
    std::fs::remove_file(dir.join("compact.lock")).expect("crashed open left its lock");

    let store = SegmentStore::open_with(&dir, config).unwrap();
    let stats = store.stats();
    assert!(stats.compacted_records >= 7, "the retried compaction dropped the garbage: {stats:?}");
    assert_eq!(stats.index_entries, 2, "{stats:?}");
    match store.load_classified(key(0)) {
        LoadOutcome::Hit(out) => assert_eq!(out.counts.g1, 7, "latest version survives"),
        other => panic!("key 0 classified as {other:?}"),
    }
    match store.load_classified(key(1)) {
        LoadOutcome::Hit(out) => assert_eq!(out.counts.g1, 100),
        other => panic!("key 1 classified as {other:?}"),
    }
    drop(store);
    for entry in std::fs::read_dir(&dir).unwrap().filter_map(Result::ok) {
        let name = entry.file_name().to_string_lossy().into_owned();
        assert!(!name.ends_with(".compacting"), "crash debris swept: {name}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Transient IO faults on append retry within the bounded budget, exactly
/// like the per-file layer: every put resolves as a readable record or a
/// counted disk error, never torn bytes.
#[test]
fn injected_append_faults_retry_and_every_put_resolves() {
    let _gate = gate();
    const N: usize = 24;
    let dir = temp_dir("append-faults");
    let cache = CompileCache::with_segment_store(N, &dir).unwrap();

    fault::arm(FaultPlan::parse("14:cache.disk.write=io@0.4").expect("plan parses"));
    for i in 0..N {
        cache.put(key(i), &output(i));
    }
    fault::disarm();

    let stats = cache.stats();
    assert!(stats.disk_retries > 0, "a 40% fault rate must force retries: {stats:?}");

    let fresh = CompileCache::with_segment_store(N, &dir).unwrap();
    let readable = (0..N).filter(|&i| fresh.get(key(i)).is_some()).count();
    assert_eq!(
        readable + stats.disk_errors as usize,
        N,
        "readable records + write failures account for every put: {stats:?}"
    );
    assert!(readable > 0, "at a 40% fault rate most puts must get through");
    let fs = fresh.stats();
    assert_eq!((fs.disk_errors, fs.quarantined), (0, 0), "failed appends left no debris: {fs:?}");

    std::fs::remove_dir_all(&dir).ok();
}
