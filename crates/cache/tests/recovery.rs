//! Seeded fault-plan tests for the disk layer's crash-safety: bounded
//! write retries under injected IO faults, and read faults classifying as
//! disk errors (never quarantine — the bytes on disk are fine).
//!
//! Fault plans are **process-global**, which is why these tests live in
//! their own binary (a plan armed here can never leak into the
//! `concurrency` suite) and serialize on [`GATE`] within it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use zac_cache::{CacheKey, CompileCache};
use zac_core::CompileOutput;
use zac_fidelity::{evaluate_neutral_atom, ExecutionSummary, NeutralAtomParams};
use zac_telemetry::{fault, FaultPlan};

static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn temp_cache_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "zac-cache-rec-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn key(i: usize) -> CacheKey {
    CacheKey { circuit: 0xfa_0000 + i as u64, compiler: 0xdeed }
}

fn output(i: usize) -> CompileOutput {
    let summary = ExecutionSummary {
        name: format!("rec-{i}"),
        num_qubits: 2,
        duration_us: 10.0 + i as f64,
        g1: i,
        g2: 1,
        n_exc: 0,
        n_tran: 2,
        idle_us: vec![1.0, 2.5],
    };
    let report = evaluate_neutral_atom(&summary, &NeutralAtomParams::reference());
    CompileOutput::new(summary, report, Duration::from_micros(321), None)
}

#[test]
fn injected_write_faults_retry_and_every_store_resolves() {
    let _gate = gate();
    const N: usize = 24;
    let dir = temp_cache_dir("write-faults");
    let cache = CompileCache::with_disk(N, &dir).unwrap();

    // 40% of write attempts fail: most stores succeed within the 3-attempt
    // budget (retries counted), a store whose three draws all fail surfaces
    // as a disk error — never a torn or half-written entry.
    fault::arm(FaultPlan::parse("9:cache.disk.write=io@0.4").expect("plan parses"));
    for i in 0..N {
        cache.put(key(i), &output(i));
    }
    fault::disarm();

    let stats = cache.stats();
    assert!(stats.disk_retries > 0, "a 40% fault rate must force retries: {stats:?}");

    // Every store resolved exactly one way: a readable entry on disk or a
    // counted disk error. A fresh cache (cold memory) proves the survivors
    // are intact — and none of the failures left debris behind.
    let fresh = CompileCache::with_disk(N, &dir).unwrap();
    let readable = (0..N).filter(|&i| fresh.get(key(i)).is_some()).count();
    assert_eq!(
        readable + stats.disk_errors as usize,
        N,
        "readable entries + write failures account for every store: {stats:?}"
    );
    assert!(readable > 0, "at a 40% fault rate most stores must get through");
    let fresh_stats = fresh.stats();
    assert_eq!(fresh_stats.quarantined, 0, "failed writes never publish bytes: {fresh_stats:?}");
    for file in std::fs::read_dir(&dir).unwrap().filter_map(Result::ok) {
        let name = file.file_name().to_string_lossy().into_owned();
        assert!(!name.contains(".tmp."), "leaked temp file {name}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_read_faults_are_disk_errors_not_quarantine() {
    let _gate = gate();
    let dir = temp_cache_dir("read-faults");
    {
        let cache = CompileCache::with_disk(4, &dir).unwrap();
        cache.put(key(0), &output(0));
    }

    let cache = CompileCache::with_disk(4, &dir).unwrap();
    zac_telemetry::set_enabled(true);
    let metric_before = zac_telemetry::metrics::CACHE_DISK_READ_ERRORS.get();
    fault::arm(FaultPlan::parse("10:cache.disk.read=io").expect("plan parses"));
    assert!(cache.get(key(0)).is_none(), "a failed read degrades to a miss");
    fault::disarm();

    let stats = cache.stats();
    assert_eq!(stats.disk_errors, 1, "{stats:?}");
    assert_eq!(stats.quarantined, 0, "the entry's bytes are fine — no quarantine: {stats:?}");
    assert_eq!(
        zac_telemetry::metrics::CACHE_DISK_READ_ERRORS.get(),
        metric_before + 1,
        "read errors surface in telemetry, not just internal stats"
    );
    zac_telemetry::set_enabled(false);

    // The fault was transient: the same entry serves a disk hit afterwards.
    let out = cache.get(key(0)).expect("entry survives the injected read fault");
    assert_eq!(out.counts.g1, 0);
    let stats = cache.stats();
    assert_eq!(stats.disk_hits, 1, "{stats:?}");

    std::fs::remove_dir_all(&dir).ok();
}
